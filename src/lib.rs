//! # pilot-rf — meta-crate for the Pilot Register File reproduction
//!
//! Re-exports the workspace crates under one roof and hosts the top-level
//! `examples/` and cross-crate integration `tests/`:
//!
//! * [`isa`] — PTX-like instruction set, kernels, CFG/IPDOM analysis,
//! * [`sim`] — cycle-level Kepler-like SM simulator,
//! * [`finfet`] — 7 nm FinFET device / SRAM / array models,
//! * [`core`] — the partitioned register file itself (swapping table,
//!   compiler/pilot/hybrid profiling, adaptive FRF, RFC baseline, energy),
//! * [`workloads`] — the 17-benchmark Table I suite.
//!
//! See the repository `README.md` for a guided tour and `DESIGN.md` for
//! the paper-to-code map.
//!
//! # Example
//!
//! ```rust
//! use pilot_rf::core::{run_experiment, Launch, PartitionedRfConfig, RfKind};
//! use pilot_rf::isa::{GridConfig, KernelBuilder, Reg, SpecialReg};
//! use pilot_rf::sim::GpuConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut kb = KernelBuilder::new("hello");
//! kb.mov_special(Reg(0), SpecialReg::GlobalTid);
//! kb.iadd_imm(Reg(1), Reg(0), 41);
//! kb.stg(Reg(0), Reg(1), 0);
//! kb.exit();
//!
//! let gpu = GpuConfig::kepler_single_sm();
//! let rf = RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks));
//! let result = run_experiment(
//!     &gpu,
//!     &rf,
//!     &[Launch::new(kb.build()?, GridConfig::new(2, 64))],
//!     &[],
//! )?;
//! println!("saved {:.1}% dynamic RF energy", 100.0 * result.dynamic_saving());
//! # Ok(())
//! # }
//! ```

pub use prf_core as core;
pub use prf_finfet as finfet;
pub use prf_isa as isa;
pub use prf_sim as sim;
pub use prf_workloads as workloads;
