//! Write a GPU kernel as text assembly, run it, and watch it on the
//! pipeline trace — a tour of the assembler and tracing facilities.
//!
//! Run with: `cargo run --release --example asm_kernel`

use pilot_rf::isa::{parse_kernel, GridConfig};
use pilot_rf::sim::{BaselineRf, Gpu, GpuConfig, TraceEvent};

const PROGRAM: &str = r"
    .kernel dot_chunk
    ; each thread accumulates x[i] * y[i] over an 8-element chunk
    mov   R0, %gtid
    shl   R1, R0, #3          ; base = gtid * 8
    iadd  R2, R1, #0x1000     ; &x[base]
    iadd  R3, R1, #0x3000     ; &y[base]
    mov   R4, #0              ; acc
    mov   R5, #0              ; i
loop:
    ldg   R6, [R2]
    ldg   R7, [R3]
    imad  R4, R6, R7, R4
    iadd  R2, R2, #1
    iadd  R3, R3, #1
    iadd  R5, R5, #1
    setp.lt P0, R5, #8
    @P0 bra loop
    stg   [R0], R4
    exit
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = parse_kernel(PROGRAM)?;
    println!(
        "parsed `{}`: {} instructions, {} registers/thread\n",
        kernel.name(),
        kernel.len(),
        kernel.regs_per_thread()
    );
    println!("{kernel}");

    let config = GpuConfig {
        trace_capacity: 64,
        global_mem_words: 1 << 16,
        ..GpuConfig::kepler_single_sm()
    };
    let banks = config.num_rf_banks;
    let mut gpu = Gpu::new(config);
    // x = [1,1,...], y = [2,2,...]: every dot chunk = 8 * 1 * 2 = 16.
    gpu.global_mem().load(0x1000, &vec![1u32; 1024]);
    gpu.global_mem().load(0x3000, &vec![2u32; 1024]);

    let result = gpu.run(kernel, GridConfig::new(2, 64), &|_| {
        Box::new(BaselineRf::stv(banks))
    })?;

    println!("ran in {} cycles (IPC {:.2})", result.cycles, result.ipc());
    for tid in [0u32, 63, 127] {
        assert_eq!(gpu.global_mem_ref().read(tid), 16);
    }
    println!("all dot chunks correct.\n");

    println!("last pipeline events (trace ring):");
    for e in result.trace.iter().rev().take(12).rev() {
        println!("  {e}");
    }
    let finishes = result
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::WarpFinish { .. }))
        .count();
    println!("... including {finishes} warp-finish events in the retained window");
    Ok(())
}
