//! Energy explorer: sweep the FRF size (how many hot registers per thread
//! are kept in the fast partition) across a workload subset and print the
//! energy/performance trade-off curve — the design-space exploration
//! behind the paper's choice of n = 4 (32 KB FRF / 224 KB SRF).
//!
//! Per-access energies are *size-adjusted* for each split: a bigger FRF
//! captures more accesses but each access costs more.
//!
//! Run with: `cargo run --release --example energy_explorer`

use pilot_rf::core::{run_experiment, PartitionedRfConfig, RfKind};
use pilot_rf::finfet::array::{characterize, ArraySpec, VoltageMode};
use pilot_rf::finfet::BackGate;
use pilot_rf::sim::{GpuConfig, RfPartition};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpu = GpuConfig::kepler_single_sm();
    // A representative subset keeps the sweep quick; swap in
    // `prf_workloads::suite()` for the full run.
    let names = ["backprop", "srad", "kmeans", "sgemm", "LIB"];
    let mrf_pj = characterize(&ArraySpec::mrf_stv()).access_energy_pj;
    println!(
        "{:>4} {:>9} {:>10} {:>12} {:>12} {:>12}",
        "n", "FRF KB", "FRF E pJ", "FRF share", "dyn saving", "cycles (sum)"
    );
    for n in [2usize, 3, 4, 6, 8] {
        let frf_kb = (n * 64 * 32 * 4) as f64 / 1024.0;
        let srf_kb = 256.0 - frf_kb;
        // Size-adjusted per-access energies for this split.
        let frf_hi = characterize(&ArraySpec::rf(frf_kb, VoltageMode::Stv)).access_energy_pj;
        let frf_lo = characterize(&ArraySpec {
            back_gate: BackGate::Grounded,
            ..ArraySpec::rf(frf_kb, VoltageMode::Stv)
        })
        .access_energy_pj;
        let srf = characterize(&ArraySpec::rf(srf_kb, VoltageMode::Ntv)).access_energy_pj;

        let cfg = PartitionedRfConfig {
            frf_regs: n,
            ..PartitionedRfConfig::paper_default(gpu.num_rf_banks)
        };
        let (mut frf_share, mut saving, mut cycles) = (0.0, 0.0, 0u64);
        for name in names {
            let w = pilot_rf::workloads::by_name(name).expect("known workload");
            let r = run_experiment(
                &gpu,
                &RfKind::Partitioned(cfg.clone()),
                &w.launches,
                &w.mem_init,
            )?;
            let pa = &r.stats.partition_accesses;
            let (hi, lo, s) = (
                pa.fraction(RfPartition::FrfHigh),
                pa.fraction(RfPartition::FrfLow),
                pa.fraction(RfPartition::Srf),
            );
            frf_share += hi + lo;
            // Recompute the dynamic energy with the size-adjusted FRF/SRF.
            let e = hi * frf_hi + lo * frf_lo + s * srf;
            saving += 1.0 - e / mrf_pj;
            cycles += r.cycles;
        }
        let k = names.len() as f64;
        println!(
            "{:>4} {:>9.0} {:>10.2} {:>11.1}% {:>11.1}% {:>12}",
            n,
            frf_kb,
            frf_hi,
            100.0 * frf_share / k,
            100.0 * saving / k,
            cycles
        );
    }
    println!();
    println!(
        "The paper picks n = 4: below it the SRF (3-cycle) share grows; beyond \
         it the FRF's own per-access energy eats the gains."
    );
    Ok(())
}
