//! RFC vs partitioned RF — the paper's §V-D head-to-head, on one workload.
//!
//! Runs the kmeans-like benchmark under the two-level scheduler with the
//! register file cache (Gebhart et al., ISCA 2011) and the partitioned RF,
//! printing the cache behaviour and energy split the comparison hinges on.
//!
//! Run with: `cargo run --release --example rfc_vs_partitioned`

use pilot_rf::core::{run_experiment, PartitionedRfConfig, RfKind, RfcConfig};
use pilot_rf::sim::{GpuConfig, RfPartition, SchedulerPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = pilot_rf::workloads::by_name("kmeans").expect("kmeans exists");
    let gpu = GpuConfig {
        scheduler: SchedulerPolicy::TwoLevel {
            active_per_scheduler: 2,
        },
        ..GpuConfig::kepler_single_sm()
    };

    let base = run_experiment(&gpu, &RfKind::MrfStv, &w.launches, &w.mem_init)?;

    let rfc_cfg = RfcConfig {
        sized_for_warps: 8,
        ..RfcConfig::paper_default(gpu.num_rf_banks, gpu.max_warps_per_sm)
    };
    let rfc = run_experiment(&gpu, &RfKind::Rfc(rfc_cfg), &w.launches, &w.mem_init)?;

    let part = run_experiment(
        &gpu,
        &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks)),
        &w.launches,
        &w.mem_init,
    )?;

    println!(
        "workload: {} (two-level scheduler, 8 active warps)\n",
        w.name
    );

    println!("== register file cache (6 entries/warp over an NTV MRF) ==");
    let t = &rfc.telemetry;
    println!(
        "  hits {} / misses {} / write-backs {}  (read-hit rate {:.1}%)",
        t.rfc_hits,
        t.rfc_misses,
        t.rfc_writebacks,
        100.0 * t.rfc_read_hit_rate()
    );
    println!(
        "  dynamic energy: {:.1} nJ ({:.1}% saved), time {:.3}x",
        rfc.dynamic_energy_pj / 1000.0,
        100.0 * rfc.dynamic_saving(),
        rfc.normalized_time(&base)
    );

    println!("\n== partitioned RF (4-register FRF + SRF) ==");
    let pa = &part.stats.partition_accesses;
    for p in [RfPartition::FrfHigh, RfPartition::FrfLow, RfPartition::Srf] {
        println!(
            "  {:9} {:>6.1}% of accesses",
            p.to_string(),
            100.0 * pa.fraction(p)
        );
    }
    println!(
        "  dynamic energy: {:.1} nJ ({:.1}% saved), time {:.3}x",
        part.dynamic_energy_pj / 1000.0,
        100.0 * part.dynamic_saving(),
        part.normalized_time(&base)
    );

    println!();
    println!("The paper's point (§V-D): the RFC's advantage depends on its size and");
    println!("port count scaling with the active-warp pool, while the partitioned");
    println!("RF's savings depend only on where registers live. Scale the active");
    println!("pool up (see `fig13_rfc_scaling`) and the RFC's savings collapse;");
    println!("the partitioned RF's stay put.");
    Ok(())
}
