//! Quickstart: build a small GPU kernel, run it on the simulator under the
//! baseline register file and the paper's partitioned register file, and
//! compare performance and energy.
//!
//! Run with: `cargo run --release --example quickstart`

use pilot_rf::core::{run_experiment, Launch, PartitionedRfConfig, RfKind};
use pilot_rf::isa::{CmpOp, GridConfig, KernelBuilder, PredReg, Reg, SpecialReg};
use pilot_rf::sim::GpuConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a kernel: each thread computes a short polynomial loop and
    //    stores the result. R1/R2/R3 get hammered; everything else is
    //    touched a couple of times — exactly the skew the paper exploits.
    let mut kb = KernelBuilder::new("quickstart");
    kb.mov_special(Reg(0), SpecialReg::GlobalTid);
    kb.mov_imm(Reg(1), 0); // accumulator (hot)
    kb.mov_imm(Reg(2), 0); // loop counter (hot)
    kb.mov_imm(Reg(3), 3); // coefficient  (hot)
    kb.mov_imm(Reg(4), 7); // cold
    kb.mov_imm(Reg(5), 11); // cold
    let top = kb.new_label();
    kb.place_label(top);
    kb.imad(Reg(1), Reg(3), Reg(3), Reg(1));
    kb.iadd_imm(Reg(2), Reg(2), 1);
    kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(2), 32);
    kb.bra_if(PredReg(0), true, top);
    kb.iadd(Reg(1), Reg(1), Reg(4));
    kb.iadd(Reg(1), Reg(1), Reg(5));
    kb.stg(Reg(0), Reg(1), 0);
    kb.exit();
    let kernel = kb.build()?;

    // 2. Launch geometry: 16 CTAs of 128 threads.
    let launches = [Launch::new(kernel, GridConfig::new(16, 128))];

    // 3. Run under the monolithic STV baseline and the partitioned RF.
    let gpu = GpuConfig::kepler_single_sm();
    let baseline = run_experiment(&gpu, &RfKind::MrfStv, &launches, &[])?;
    let partitioned = run_experiment(
        &gpu,
        &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks)),
        &launches,
        &[],
    )?;

    // 4. Compare.
    println!("baseline (MRF@STV):   {} cycles", baseline.cycles);
    println!("partitioned RF:       {} cycles", partitioned.cycles);
    println!(
        "performance overhead: {:+.1}%",
        100.0 * (partitioned.normalized_time(&baseline) - 1.0)
    );
    println!(
        "dynamic RF energy:    {:.1} nJ -> {:.1} nJ  ({:.1}% saved)",
        baseline.dynamic_energy_pj / 1000.0,
        partitioned.dynamic_energy_pj / 1000.0,
        100.0 * partitioned.dynamic_saving()
    );
    println!(
        "leakage saving:       {:.1}%",
        100.0 * partitioned.leakage_saving()
    );
    println!(
        "pilot warp finished at cycle {:?}, hot registers identified: {:?}",
        partitioned.telemetry.pilot_done_cycle, partitioned.telemetry.pilot_hot_regs
    );
    Ok(())
}
