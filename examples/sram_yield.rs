//! SRAM yield explorer: the circuit-level study behind the paper's §IV-A
//! cell choice. Sweeps supply voltage for each cell design and reports
//! Monte Carlo yield under LER + work-function variation, locating each
//! cell's practical Vmin.
//!
//! Run with: `cargo run --release --example sram_yield`

use pilot_rf::finfet::montecarlo::snm_yield;
use pilot_rf::finfet::{BackGate, SramCell, NTV, STV};

fn main() {
    println!("Monte Carlo yield vs supply voltage (20k samples per point)\n");
    print!("{:>7}", "Vdd");
    for cell in SramCell::ALL {
        print!("{:>9}", cell.to_string());
    }
    println!();
    let mut v = 0.24;
    while v <= 0.50 + 1e-9 {
        print!("{v:>7.2}");
        for cell in SramCell::ALL {
            let r = snm_yield(cell, v, BackGate::Vdd, 20_000, 2024);
            print!("{:>8.1}%", 100.0 * r.yield_fraction);
        }
        let marker = if (v - NTV).abs() < 0.005 {
            "   <-- NTV"
        } else if (v - STV).abs() < 0.005 {
            "   <-- STV"
        } else {
            ""
        };
        println!("{marker}");
        v += 0.02;
    }
    println!();
    println!("Reading the table:");
    println!(" * 6T never reaches usable yield at NTV — the paper's reason to reject it;");
    println!(" * 8T crosses high yield right around NTV: the SRF is buildable;");
    println!(" * 9T/10T buy little extra margin for their area (Table III area column).");
    println!();
    let bg = snm_yield(SramCell::T8, STV, BackGate::Grounded, 20_000, 2024);
    println!(
        "8T at STV with the back gate grounded (the FRF_low corner): \
         yield {:.1}%, SNM mean {:.3} V",
        100.0 * bg.yield_fraction,
        bg.snm_mean
    );
}
