//! Profiling demo: why the hybrid compiler + pilot-warp scheme wins.
//!
//! Builds a kernel in the spirit of the paper's Category 2: a block of
//! "decoy" registers appears many times in straight-line code (so the
//! compiler ranks them hot), while a data-dependent loop makes completely
//! different registers dynamically hot. Shows what each profiling
//! technique identifies and how the swapping table ends up mapped —
//! a live version of the paper's Figs. 6 and 7.
//!
//! Run with: `cargo run --release --example profiling_demo`

use pilot_rf::core::{
    compiler_hot_registers, run_experiment, Launch, PartitionedRfConfig, RfKind, SwappingTable,
};
use pilot_rf::isa::{CmpOp, GridConfig, KernelBuilder, PredReg, Reg, StaticRegisterProfile};
use pilot_rf::sim::GpuConfig;

fn category2_kernel() -> pilot_rf::isa::Kernel {
    let mut kb = KernelBuilder::new("cat2_demo");
    kb.mov_special(Reg(0), pilot_rf::isa::SpecialReg::GlobalTid);
    for r in 1..12u8 {
        kb.mov_imm(Reg(r), u32::from(r));
    }
    // Decoy block: R1..R3 appear often, execute once.
    for _ in 0..3 {
        kb.iadd(Reg(1), Reg(1), Reg(2));
        kb.imad(Reg(2), Reg(3), Reg(3), Reg(2));
        kb.iadd(Reg(3), Reg(3), Reg(1));
    }
    // Data-dependent loop over R8..R10 (trip count from memory).
    kb.iadd_imm(Reg(4), Reg(0), 0x400);
    kb.ldg(Reg(10), Reg(4), 0); // bound
    kb.mov_imm(Reg(9), 0); // counter
    let top = kb.new_label();
    kb.place_label(top);
    kb.imad(Reg(8), Reg(8), Reg(8), Reg(8));
    kb.iadd_imm(Reg(9), Reg(9), 1);
    kb.setp(PredReg(0), CmpOp::Lt, Reg(9), Reg(10));
    kb.bra_if(PredReg(0), true, top);
    kb.stg(Reg(0), Reg(8), 0);
    kb.exit();
    kb.build().expect("demo kernel is valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = category2_kernel();
    println!("== the kernel ==\n{kernel}");

    // Static view (what the compiler sees).
    let profile = StaticRegisterProfile::analyze(&kernel);
    println!("compiler-identified top-4 (static): {:?}", profile.top_n(4));
    println!("  -> the decoys! They execute once but appear often.\n");

    // Dynamic truth: run it.
    let gpu = GpuConfig::kepler_single_sm();
    let trips: Vec<u32> = (0..2048).map(|i| 20 + (i * 7) % 30).collect();
    let launches = [Launch::new(kernel.clone(), GridConfig::new(8, 128))];
    let base = run_experiment(&gpu, &RfKind::MrfStv, &launches, &[(0x400, trips.clone())])?;
    println!(
        "actual top-4 after execution:       {:?}",
        base.stats.reg_accesses.top_n(4)
    );

    // The hybrid partitioned RF in action.
    let hybrid = run_experiment(
        &gpu,
        &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks)),
        &launches,
        &[(0x400, trips)],
    )?;
    println!("\n== hybrid profiling timeline ==");
    println!(
        "at launch, compiler seed installed:  {:?}",
        hybrid.telemetry.compiler_hot_regs
    );
    println!(
        "pilot warp finished at cycle {} and reported: {:?}",
        hybrid.telemetry.pilot_done_cycle.unwrap_or(0),
        hybrid.telemetry.pilot_hot_regs
    );

    // Show the swapping-table mechanics (Fig. 7).
    println!("\n== swapping table (Fig. 7 walk-through) ==");
    let mut table = SwappingTable::new(4);
    println!(
        "initial mapping: identity ({} CAM bits)",
        table.storage_bits()
    );
    table.apply_hot_registers(&compiler_hot_registers(&kernel, 4));
    println!("after compiler seed: {:?}", table.entries());
    table.apply_hot_registers(&hybrid.telemetry.pilot_hot_regs);
    println!("after pilot result:  {:?}", table.entries());
    for r in &hybrid.telemetry.pilot_hot_regs {
        assert!(table.is_frf(*r), "{r} must live in the FRF now");
    }
    println!("all pilot-identified hot registers now live in the FRF.");
    Ok(())
}
