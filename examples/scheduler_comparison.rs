//! Scheduler comparison: run the same workload under all four warp
//! schedulers (GTO, LRR, two-level, fetch-group) with and without the
//! partitioned register file. The paper reports "consistent performance
//! across all the schedulers" (§V).
//!
//! Run with: `cargo run --release --example scheduler_comparison`

use pilot_rf::core::{run_experiment, PartitionedRfConfig, RfKind};
use pilot_rf::sim::{GpuConfig, SchedulerPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policies = [
        SchedulerPolicy::Gto,
        SchedulerPolicy::Lrr,
        SchedulerPolicy::TwoLevel {
            active_per_scheduler: 8,
        },
        SchedulerPolicy::FetchGroup { group_size: 8 },
    ];
    let w = pilot_rf::workloads::by_name("srad").expect("srad exists");
    println!("workload: {} ({} launch(es))", w.name, w.launches.len());
    println!(
        "{:<6} {:>14} {:>14} {:>10} {:>12}",
        "sched", "base cycles", "part cycles", "overhead", "dyn saving"
    );
    for policy in policies {
        let gpu = GpuConfig {
            scheduler: policy,
            ..GpuConfig::kepler_single_sm()
        };
        let base = run_experiment(&gpu, &RfKind::MrfStv, &w.launches, &w.mem_init)?;
        let part = run_experiment(
            &gpu,
            &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks)),
            &w.launches,
            &w.mem_init,
        )?;
        println!(
            "{:<6} {:>14} {:>14} {:>9.1}% {:>11.1}%",
            policy.to_string(),
            base.cycles,
            part.cycles,
            100.0 * (part.normalized_time(&base) - 1.0),
            100.0 * part.dynamic_saving()
        );
    }
    println!();
    println!("The energy saving is scheduler-independent: it comes from *where*");
    println!("registers live, not from *when* warps issue.");
    Ok(())
}
