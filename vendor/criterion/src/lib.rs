//! Offline drop-in subset of the `criterion` crate API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of criterion its benches use: `Criterion`, benchmark groups,
//! `iter`/`iter_batched`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is simple wall-clock sampling
//! (median / mean / min over `sample_size` samples) printed as plain text —
//! no statistics engine, no HTML report — which is enough to track the
//! perf trajectory of the experiment harness between commits.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The offline stub runs one
/// routine call per setup call regardless of variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Per-benchmark measurement driver.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Captured per-sample durations of the last `iter*` call.
    last: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            last: Vec::new(),
        }
    }

    /// Measures `f` once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call so first-touch effects (allocation, page faults)
        // don't land in sample 0.
        black_box(f());
        self.last = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed()
            })
            .collect();
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        self.last = (0..self.samples)
            .map(|_| {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                t0.elapsed()
            })
            .collect();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{id:<48} median {:>12}   mean {:>12}   min {:>12}   ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(min),
        sorted.len()
    );
}

/// A named set of related benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    // Holds the exclusive borrow of the parent `Criterion` for the group's
    // lifetime, matching upstream's API shape.
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&id, &b.last);
        self
    }

    /// Ends the group (upstream finalises its report here; the stub prints
    /// as it goes, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            sample_size,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&id.into(), &b.last);
        self
    }
}

/// Declares a group-runner function over benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` over group-runner functions, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a plain
            // wall-clock runner has nothing to configure, so ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| 1 + 1);
        assert_eq!(b.last.len(), 5);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.last.len(), 5);
    }

    #[test]
    fn group_runs_and_respects_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        g.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }
}
