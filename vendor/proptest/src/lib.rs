//! Offline drop-in subset of the `proptest` crate API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest its tests use: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`/`prop_flat_map`, range/tuple/`Just`/`any`
//! strategies, `collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from upstream: cases are sampled from a deterministic
//! per-test generator (seeded from the test name), and failing cases are
//! *not* shrunk — the panic message reports the case index instead, which
//! is enough to reproduce locally because sampling is deterministic.

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 stream used to sample test cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for case `case` of the test named `name`: deterministic
    /// across runs and platforms.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy by mapping sampled values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Derives a strategy by sampling a value and then sampling from the
    /// strategy it selects.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy over empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy over empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategies!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Samples a value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Whole-domain strategy marker for `T`.
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the whole domain of `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.size, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector strategy: lengths uniform in `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy over empty size range");
        VecStrategy { element, size }
    }
}

/// Everything a proptest-based test file usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests. Supports the subset of upstream syntax used in
/// this workspace: an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let __run = || {
                        let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                        $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )*
                        $body
                    };
                    if let Err(payload) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed (deterministic; rerun reproduces it)",
                            __case + 1,
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sampling_is_deterministic() {
        let s = (0u32..100, any::<u64>());
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    #[test]
    fn vec_lengths_respect_range() {
        let s = crate::collection::vec(0u8..10, 2..5);
        let mut rng = crate::TestRng::for_case("v", 0);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn flat_map_threads_values() {
        let s = (1u8..4)
            .prop_flat_map(|n| crate::collection::vec(0u32..10, (n as usize)..(n as usize + 1)));
        let mut rng = crate::TestRng::for_case("f", 1);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_wires_strategies(x in 0u32..50, v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 50);
            prop_assert!(v.len() < 4);
        }
    }
}
