//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: seedable
//! deterministic generators (`StdRng`, `SmallRng`), the [`Rng`] extension
//! trait with `gen`/`gen_range`, and uniform sampling over integer and
//! float ranges. The generators are *not* the upstream ChaCha12/xoshiro128
//! implementations — they are splitmix64/xoshiro256++ — so streams differ
//! numerically from upstream `rand`, but every consumer in this workspace
//! only relies on determinism-per-seed, which holds.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
    /// Builds a generator from OS entropy. Offline stub: uses a fixed
    /// seed — deterministic, which is what reproduction runs want anyway.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workhorse generator (xoshiro256++, seeded via splitmix64).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A smaller/faster generator; offline stub aliases the same engine.
pub type SmallRng = StdRng;

/// Namespaced generator types, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::{SmallRng, StdRng};
}

/// Types that can be drawn uniformly over their whole domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * f64::standard(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * f32::standard(rng)
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw over `T`'s whole domain (unit interval for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u8 = rng.gen_range(0..=255);
            let _ = y;
            let z: usize = rng.gen_range(5..6);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!(
                (700..1300).contains(&b),
                "bucket count {b} out of tolerance"
            );
        }
    }
}
