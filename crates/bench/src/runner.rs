//! Parallel experiment engine: fans a matrix of independent simulation
//! jobs (workload × RF organisation × scheduler × jitter seed) across a
//! bounded pool of worker threads.
//!
//! Every job owns its configuration, its telemetry sink, and its RNG seed
//! (`GpuConfig::jitter_seed`), so runs share nothing mutable and the
//! parallel results are bit-identical to a serial sweep — the pool only
//! changes *when* a job runs, never what it computes. Results come back in
//! the input order regardless of completion order, so report tables are
//! deterministic too.
//!
//! Thread count defaults to [`std::thread::available_parallelism`] and can
//! be overridden with the `PRF_THREADS` environment variable (`PRF_THREADS=1`
//! gives a serial run for debugging or timing baselines).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use prf_core::{run_experiment, ExperimentResult, RfKind};
use prf_sim::GpuConfig;
use prf_workloads::Workload;

/// One cell of an evaluation matrix: a workload to run under a GPU
/// configuration (which carries the scheduler and jitter seed) and an RF
/// organisation.
#[derive(Debug, Clone)]
pub struct Job {
    /// Report/diagnostic label, e.g. `"BFS/partitioned/seed2"`.
    pub name: String,
    /// The workload (launches + memory image). Cloning is cheap — kernels
    /// are behind `Arc`.
    pub workload: Workload,
    /// Full GPU configuration, including `scheduler` and `jitter_seed`.
    pub gpu: GpuConfig,
    /// Register-file organisation under test.
    pub rf: RfKind,
}

impl Job {
    /// Builds a job with an explicit label.
    pub fn new(name: impl Into<String>, workload: &Workload, gpu: &GpuConfig, rf: &RfKind) -> Self {
        Job {
            name: name.into(),
            workload: workload.clone(),
            gpu: gpu.clone(),
            rf: rf.clone(),
        }
    }

    /// Builds a job labelled `"<workload>/<rf>"`.
    pub fn labeled(workload: &Workload, gpu: &GpuConfig, rf: &RfKind) -> Self {
        Job::new(
            format!("{}/{}", workload.name, rf.name()),
            workload,
            gpu,
            rf,
        )
    }

    fn run(&self) -> ExperimentResult {
        run_experiment(
            &self.gpu,
            &self.rf,
            &self.workload.launches,
            &self.workload.mem_init,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", self.name))
    }
}

/// One completed matrix cell, in the same position as its input [`Job`].
#[derive(Debug)]
pub struct JobResult {
    /// The job's label, copied through for reports.
    pub name: String,
    /// The experiment outcome.
    pub result: ExperimentResult,
}

/// Wall-clock accounting for one matrix run, for the throughput footer.
#[derive(Debug, Clone, Copy)]
pub struct MatrixReport {
    /// Number of jobs executed.
    pub jobs: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time for the whole matrix.
    pub elapsed: Duration,
    /// Jobs that ran with the conservation-invariant audit enabled.
    pub audited_jobs: usize,
    /// Total audit violations across all audited jobs (expected 0).
    pub audit_violations: usize,
}

impl MatrixReport {
    /// One-line throughput footer, e.g.
    /// `[matrix] 45 jobs on 8 threads in 12.3 s (3.7 jobs/s)`.
    pub fn footer(&self) -> String {
        let secs = self.elapsed.as_secs_f64();
        let rate = if secs > 0.0 {
            self.jobs as f64 / secs
        } else {
            f64::INFINITY
        };
        let audit = if self.audited_jobs > 0 {
            format!(
                " [audit: {}/{} jobs, {} violations]",
                self.audited_jobs, self.jobs, self.audit_violations
            )
        } else {
            String::new()
        };
        format!(
            "[matrix] {} jobs on {} threads in {:.2} s ({:.1} jobs/s){audit}",
            self.jobs, self.threads, secs, rate
        )
    }
}

/// Worker-pool size: `PRF_THREADS` if set and positive, else
/// [`std::thread::available_parallelism`], else 1.
pub fn threads_from_env() -> usize {
    if let Ok(v) = std::env::var("PRF_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!("PRF_THREADS={v:?} is not a positive integer; using default"),
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs the matrix on [`threads_from_env`] workers. See
/// [`run_matrix_with_threads`].
pub fn run_matrix(jobs: &[Job]) -> Vec<JobResult> {
    run_matrix_with_threads(jobs, threads_from_env())
}

/// Runs the matrix and returns the results together with a wall-clock
/// [`MatrixReport`] for the binary's throughput footer.
pub fn run_matrix_timed(jobs: &[Job]) -> (Vec<JobResult>, MatrixReport) {
    let threads = threads_from_env();
    let t0 = Instant::now();
    let results = run_matrix_with_threads(jobs, threads);
    let audited: Vec<_> = results
        .iter()
        .filter_map(|jr| jr.result.audit.as_ref())
        .collect();
    let report = MatrixReport {
        jobs: jobs.len(),
        threads: threads.min(jobs.len().max(1)),
        elapsed: t0.elapsed(),
        audited_jobs: audited.len(),
        audit_violations: audited.iter().map(|a| a.violations.len()).sum(),
    };
    (results, report)
}

/// Runs every job on a pool of at most `threads` scoped worker threads and
/// returns the results **in input order**.
///
/// Workers pull jobs from a shared atomic cursor (dynamic load balancing:
/// long simulations don't serialise behind short ones). A panicking job
/// does not poison the pool — remaining jobs still run — and the panic is
/// re-raised on the caller's thread after the pool drains, prefixed with
/// the failing job's name.
///
/// # Panics
///
/// Re-raises the first (in input order) job panic.
pub fn run_matrix_with_threads(jobs: &[Job], threads: usize) -> Vec<JobResult> {
    let threads = threads.clamp(1, jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<std::thread::Result<ExperimentResult>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let outcome = catch_unwind(AssertUnwindSafe(|| job.run()));
                *slots[i].lock().unwrap() = Some(outcome);
            });
        }
    });

    slots
        .into_iter()
        .zip(jobs)
        .map(|(slot, job)| {
            let outcome = slot
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .unwrap_or_else(|| panic!("job `{}` was never executed", job.name));
            match outcome {
                Ok(result) => JobResult {
                    name: job.name.clone(),
                    result,
                },
                Err(payload) => {
                    eprintln!("experiment job `{}` panicked; re-raising", job.name);
                    resume_unwind(payload)
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_sim::SchedulerPolicy;

    fn tiny_jobs(n: usize) -> Vec<Job> {
        let w = prf_workloads::suite::bfs();
        let gpu = crate::experiment_gpu(SchedulerPolicy::Gto);
        (0..n as u64)
            .map(|seed| {
                let gpu = GpuConfig {
                    jitter_seed: seed,
                    ..gpu.clone()
                };
                Job::new(format!("BFS/seed{seed}"), &w, &gpu, &RfKind::MrfStv)
            })
            .collect()
    }

    #[test]
    fn results_come_back_in_input_order() {
        let jobs = tiny_jobs(4);
        let results = run_matrix_with_threads(&jobs, 3);
        assert_eq!(results.len(), 4);
        for (j, r) in jobs.iter().zip(&results) {
            assert_eq!(j.name, r.name);
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let jobs = tiny_jobs(3);
        let serial = run_matrix_with_threads(&jobs, 1);
        let parallel = run_matrix_with_threads(&jobs, 3);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.result.cycles, b.result.cycles);
            assert_eq!(a.result.dynamic_energy_pj, b.result.dynamic_energy_pj);
            assert_eq!(
                a.result.stats.partition_accesses,
                b.result.stats.partition_accesses
            );
        }
    }

    #[test]
    fn panicking_job_reports_its_name() {
        let mut jobs = tiny_jobs(2);
        // An impossible cycle limit forces a SimError, which Job::run
        // turns into a panic carrying the job name.
        jobs[1].gpu.max_cycles = 1;
        jobs[1].name = "doomed".into();
        let err = std::panic::catch_unwind(|| run_matrix_with_threads(&jobs, 2));
        let payload = err.expect_err("doomed job must propagate its panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| payload.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(
            msg.contains("doomed"),
            "panic message should name the job: {msg}"
        );
    }

    #[test]
    fn footer_formats() {
        let r = MatrixReport {
            jobs: 10,
            threads: 4,
            elapsed: Duration::from_secs(2),
            audited_jobs: 0,
            audit_violations: 0,
        };
        let f = r.footer();
        assert!(f.contains("10 jobs"), "{f}");
        assert!(f.contains("4 threads"), "{f}");
        assert!(f.contains("5.0 jobs/s"), "{f}");
        assert!(
            !f.contains("audit"),
            "unaudited runs keep the old footer: {f}"
        );
    }

    #[test]
    fn footer_reports_audit_coverage() {
        let r = MatrixReport {
            jobs: 10,
            threads: 4,
            elapsed: Duration::from_secs(2),
            audited_jobs: 10,
            audit_violations: 0,
        };
        let f = r.footer();
        assert!(f.contains("[audit: 10/10 jobs, 0 violations]"), "{f}");
    }

    #[test]
    fn timed_matrix_counts_audited_jobs() {
        let mut jobs = tiny_jobs(2);
        jobs[1].gpu.audit = true;
        let (results, report) = run_matrix_timed(&jobs);
        assert!(results[0].result.audit.is_none());
        let audit = results[1].result.audit.as_ref().expect("audited job");
        assert!(audit.is_clean(), "{audit}");
        assert_eq!(report.audited_jobs, 1);
        assert_eq!(report.audit_violations, 0);
    }
}
