//! Parallel experiment engine: fans a matrix of independent simulation
//! jobs (workload × RF organisation × scheduler × jitter seed) across a
//! bounded pool of worker threads.
//!
//! Every job owns its configuration, its telemetry sink, and its RNG seed
//! (`GpuConfig::jitter_seed`), so runs share nothing mutable and the
//! parallel results are bit-identical to a serial sweep — the pool only
//! changes *when* a job runs, never what it computes. Results come back in
//! the input order regardless of completion order, so report tables are
//! deterministic too.
//!
//! Thread count defaults to [`std::thread::available_parallelism`] and can
//! be overridden with the `PRF_THREADS` environment variable (`PRF_THREADS=1`
//! gives a serial run for debugging or timing baselines).
//!
//! The engine is crash-proof: each job attempt runs behind
//! `catch_unwind`, optionally under a wall-clock watchdog
//! (`PRF_JOB_TIMEOUT_SECS`) and with bounded retry-with-backoff
//! (`PRF_JOB_RETRIES` / `PRF_RETRY_BACKOFF_MS`). The resilient entry
//! points ([`run_matrix_resilient`]) always return a [`JobOutcome`] for
//! every job — partial results plus a failure manifest — while the
//! classic [`run_matrix`] keeps its all-or-nothing contract and re-raises
//! the first failure with the job's index and name.
//!
//! Failures are classified before the retry budget is spent: a job whose
//! inputs the validation layer rejects — or whose run returns a
//! *deterministic* [`SimError`] — fails fast as [`JobOutcome::Rejected`]
//! (retrying a pure function of its inputs can only waste the budget),
//! while panics and watchdog timeouts keep the full retry-with-backoff
//! treatment. Invalid jobs are rejected up front, before a worker spawns
//! an attempt thread or arms the watchdog.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use prf_core::{
    run_experiment_with_faults, validate_experiment_inputs, ExperimentResult, FaultConfig,
    PhaseTimings, RfKind,
};
use prf_sim::{GpuConfig, SimError};
use prf_workloads::Workload;

use crate::cache::ResultCache;
use crate::digest::job_digest;

/// One cell of an evaluation matrix: a workload to run under a GPU
/// configuration (which carries the scheduler and jitter seed) and an RF
/// organisation.
#[derive(Debug, Clone)]
pub struct Job {
    /// Report/diagnostic label, e.g. `"BFS/partitioned/seed2"`.
    pub name: String,
    /// The workload (launches + memory image). Cloning is cheap — kernels
    /// are behind `Arc`.
    pub workload: Workload,
    /// Full GPU configuration, including `scheduler` and `jitter_seed`.
    pub gpu: GpuConfig,
    /// Register-file organisation under test.
    pub rf: RfKind,
    /// Optional fault campaign: a variation-derived fault map plus repair
    /// policy wrapped around the RF model (see `prf_core::faults`).
    pub faults: Option<FaultConfig>,
}

impl Job {
    /// Builds a job with an explicit label.
    pub fn new(name: impl Into<String>, workload: &Workload, gpu: &GpuConfig, rf: &RfKind) -> Self {
        Job {
            name: name.into(),
            workload: workload.clone(),
            gpu: gpu.clone(),
            rf: rf.clone(),
            faults: None,
        }
    }

    /// Builds a job labelled `"<workload>/<rf>"`.
    pub fn labeled(workload: &Workload, gpu: &GpuConfig, rf: &RfKind) -> Self {
        Job::new(
            format!("{}/{}", workload.name, rf.name()),
            workload,
            gpu,
            rf,
        )
    }

    /// Attaches (or clears) a fault campaign.
    pub fn with_faults(mut self, faults: Option<FaultConfig>) -> Self {
        self.faults = faults;
        self
    }

    /// Validates the job's inputs without simulating anything — the same
    /// checks `run` performs first, exposed so callers (the matrix engine,
    /// `prf-serve`) can reject hostile jobs before committing a worker.
    ///
    /// # Errors
    ///
    /// The first failing check (see
    /// [`prf_core::validate_experiment_inputs`]).
    pub fn validate(&self) -> Result<(), prf_sim::ValidationError> {
        validate_experiment_inputs(&self.gpu, &self.workload.launches, self.faults.as_ref())
    }

    fn run(&self) -> Result<ExperimentResult, SimError> {
        run_experiment_with_faults(
            &self.gpu,
            &self.rf,
            &self.workload.launches,
            &self.workload.mem_init,
            self.faults.as_ref(),
        )
    }
}

/// How one matrix job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Finished on the first attempt.
    Completed,
    /// Finished, but only after retries (`attempts` ≥ 2 counts every
    /// attempt including the successful one).
    Retried {
        /// Total attempts made.
        attempts: u32,
    },
    /// Every attempt panicked; `message` carries the last panic payload.
    Panicked {
        /// Stringified panic payload of the final attempt.
        message: String,
    },
    /// The final attempt exceeded the wall-clock watchdog.
    TimedOut {
        /// The watchdog budget that was exceeded.
        timeout: Duration,
    },
    /// The job's inputs were rejected by the validation layer, or the run
    /// returned a deterministic [`SimError`]. A rejection is a pure
    /// function of the job's inputs, so it fails fast: no retries, no
    /// watchdog, and (for pre-validated jobs) no attempt thread at all.
    Rejected {
        /// The typed error, stringified for the report.
        reason: String,
    },
    /// The job belongs to another shard of a `PRF_SHARD=i/n` run and was
    /// not executed here. Not a failure — the owning shard computes it.
    Skipped,
}

impl JobOutcome {
    /// True when the job produced a result (possibly after retries).
    pub fn succeeded(&self) -> bool {
        matches!(self, JobOutcome::Completed | JobOutcome::Retried { .. })
    }

    /// True when the job needed retries or failed outright — anything a
    /// campaign report should flag. Skipped (sharded-away) jobs are not
    /// degraded; another process computes them.
    pub fn is_degraded(&self) -> bool {
        !matches!(self, JobOutcome::Completed | JobOutcome::Skipped)
    }
}

impl std::fmt::Display for JobOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobOutcome::Completed => write!(f, "completed"),
            JobOutcome::Retried { attempts } => write!(f, "completed after {attempts} attempts"),
            JobOutcome::Panicked { message } => write!(f, "panicked: {message}"),
            JobOutcome::TimedOut { timeout } => {
                write!(f, "timed out after {:.1} s", timeout.as_secs_f64())
            }
            JobOutcome::Rejected { reason } => write!(f, "rejected: {reason}"),
            JobOutcome::Skipped => write!(f, "skipped (owned by another shard)"),
        }
    }
}

/// One shard of a multi-process matrix split: this process owns every job
/// whose input index is ≡ `index` (mod `count`). Because every job is
/// self-contained (per-row-seeded fault maps, own jitter seed), the union
/// of all shards' cached results is bit-identical to a serial run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This process's shard index, `0 ≤ index < count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl ShardSpec {
    /// Parses an `i/n` spec, e.g. `"0/2"`.
    ///
    /// # Errors
    ///
    /// Rejects malformed specs, `n == 0`, and `i ≥ n`.
    pub fn parse(spec: &str) -> Result<ShardSpec, String> {
        let (i, n) = spec
            .split_once('/')
            .ok_or_else(|| format!("`{spec}`: expected `<i>/<n>` (e.g. `0/2`)"))?;
        let index = i
            .trim()
            .parse::<usize>()
            .map_err(|e| format!("`{spec}`: bad shard index: {e}"))?;
        let count = n
            .trim()
            .parse::<usize>()
            .map_err(|e| format!("`{spec}`: bad shard count: {e}"))?;
        if count == 0 {
            return Err(format!("`{spec}`: shard count must be ≥ 1"));
        }
        if index >= count {
            return Err(format!("`{spec}`: shard index {index} ≥ count {count}"));
        }
        Ok(ShardSpec { index, count })
    }

    /// True when this shard executes the job at `job_index`.
    pub fn owns(&self, job_index: usize) -> bool {
        job_index % self.count == self.index
    }
}

/// The shard spec from `PRF_SHARD=i/n`, or `None` when unset. Invalid
/// specs abort the process — silently running the whole matrix (or the
/// wrong slice) would waste exactly the work sharding exists to split.
pub fn shard_from_env() -> Option<ShardSpec> {
    let v = std::env::var("PRF_SHARD").ok()?;
    match ShardSpec::parse(&v) {
        Ok(spec) if spec.count == 1 => None,
        Ok(spec) => Some(spec),
        Err(e) => panic!("PRF_SHARD invalid: {e}"),
    }
}

/// Watchdog and retry budget for one matrix run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Wall-clock budget per attempt; `None` disables the watchdog (the
    /// attempt runs inline on the worker thread).
    pub timeout: Option<Duration>,
    /// Retries after the first attempt (0 = single attempt).
    pub retries: u32,
    /// Base back-off between attempts (attempt `n` waits `n × backoff`).
    pub backoff: Duration,
}

impl RetryPolicy {
    /// Single attempt, no watchdog — the classic engine behaviour.
    pub fn none() -> Self {
        RetryPolicy {
            timeout: None,
            retries: 0,
            backoff: Duration::ZERO,
        }
    }

    /// Policy from the environment: `PRF_JOB_TIMEOUT_SECS` (unset or 0
    /// disables the watchdog), `PRF_JOB_RETRIES` (default 0) and
    /// `PRF_RETRY_BACKOFF_MS` (default 100).
    pub fn from_env() -> Self {
        fn parse_env(key: &str) -> Option<u64> {
            let v = std::env::var(key).ok()?;
            match v.trim().parse::<u64>() {
                Ok(n) => Some(n),
                Err(_) => {
                    eprintln!("{key}={v:?} is not a non-negative integer; ignoring");
                    None
                }
            }
        }
        RetryPolicy {
            timeout: parse_env("PRF_JOB_TIMEOUT_SECS")
                .filter(|&s| s > 0)
                .map(Duration::from_secs),
            retries: parse_env("PRF_JOB_RETRIES")
                .unwrap_or(0)
                .min(u32::MAX as u64) as u32,
            backoff: Duration::from_millis(parse_env("PRF_RETRY_BACKOFF_MS").unwrap_or(100)),
        }
    }

    /// Back-off to sleep before retry `attempt_no` (1-based): linear
    /// `attempt_no × backoff`, saturating at `Duration::MAX`. The naive
    /// `backoff * attempt_no` panics on overflow, so a campaign run with
    /// huge `PRF_RETRY_BACKOFF_MS` × `PRF_JOB_RETRIES` values would crash
    /// the worker instead of retrying.
    pub fn backoff_delay(&self, attempt_no: u32) -> Duration {
        self.backoff.saturating_mul(attempt_no)
    }
}

/// One job's report in a resilient matrix run: its input position, label,
/// how it ended, and the result when it succeeded.
#[derive(Debug)]
pub struct JobReport {
    /// Position in the input job list.
    pub index: usize,
    /// The job's label.
    pub name: String,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// When this job started, as an offset from the matrix start (jobs
    /// run concurrently, so offsets overlap).
    pub started: Duration,
    /// Wall-clock time this job occupied its worker (all attempts,
    /// including backoff sleeps). For a cache hit this replays the
    /// *original* run's wall-clock, so reports stay bit-identical.
    pub elapsed: Duration,
    /// The experiment result; `None` iff the outcome is a failure or the
    /// job was skipped by sharding.
    pub result: Option<ExperimentResult>,
    /// Cache disposition: `Some(true)` = served from the result cache,
    /// `Some(false)` = executed while a cache was configured (a miss),
    /// `None` = no cache configured, or the job was skipped.
    pub cached: Option<bool>,
}

/// The partial-results view of a matrix run: one [`JobReport`] per input
/// job, in input order, no matter how many jobs crashed or hung.
#[derive(Debug)]
pub struct MatrixOutcome {
    /// Per-job reports, in input order.
    pub reports: Vec<JobReport>,
}

impl MatrixOutcome {
    /// Reports of jobs that produced a result.
    pub fn healthy(&self) -> impl Iterator<Item = &JobReport> {
        self.reports.iter().filter(|r| r.result.is_some())
    }

    /// Reports of jobs that failed (panicked, timed out, or were rejected
    /// by input validation). Jobs skipped by sharding are not failures —
    /// another shard computes them.
    pub fn failures(&self) -> impl Iterator<Item = &JobReport> {
        self.reports
            .iter()
            .filter(|r| r.result.is_none() && r.outcome != JobOutcome::Skipped)
    }

    /// Jobs skipped because another `PRF_SHARD` process owns them.
    pub fn skipped_jobs(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.outcome == JobOutcome::Skipped)
            .count()
    }

    /// Jobs that needed retries but eventually succeeded.
    pub fn retried_jobs(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::Retried { .. }))
            .count()
    }

    /// Jobs that failed outright.
    pub fn failed_jobs(&self) -> usize {
        self.failures().count()
    }

    /// Multi-line manifest of every non-`Completed` job (empty string when
    /// the whole matrix completed cleanly on first attempts).
    pub fn failure_manifest(&self) -> String {
        self.reports
            .iter()
            .filter(|r| r.outcome.is_degraded())
            .map(|r| format!("job #{} `{}`: {}", r.index, r.name, r.outcome))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Converts to the all-or-nothing result list, panicking with the
    /// failure manifest — first failure's index and name up front — if any
    /// job failed.
    ///
    /// # Panics
    ///
    /// Panics when any job panicked, timed out, or was rejected, or when
    /// the run was sharded (a shard never holds the complete result set —
    /// merge by re-running unsharded against the shared `PRF_CACHE_DIR`).
    pub fn expect_complete(self) -> Vec<JobResult> {
        if self.skipped_jobs() > 0 {
            panic!(
                "sharded run is incomplete: {} of {} jobs were skipped by PRF_SHARD; \
                 merge by re-running unsharded with the same PRF_CACHE_DIR",
                self.skipped_jobs(),
                self.reports.len()
            );
        }
        if self.failed_jobs() > 0 {
            let manifest = self.failure_manifest();
            let first = self
                .failures()
                .next()
                .expect("failed_jobs > 0 implies a failure");
            panic!(
                "experiment job #{} `{}` {}; full manifest:\n{manifest}",
                first.index, first.name, first.outcome
            );
        }
        self.reports
            .into_iter()
            .map(|r| JobResult {
                name: r.name,
                result: r.result.expect("no failures, so every job has a result"),
            })
            .collect()
    }
}

/// One completed matrix cell, in the same position as its input [`Job`].
#[derive(Debug)]
pub struct JobResult {
    /// The job's label, copied through for reports.
    pub name: String,
    /// The experiment outcome.
    pub result: ExperimentResult,
}

/// Wall-clock accounting for one matrix run, for the throughput footer.
#[derive(Debug, Clone, Copy)]
pub struct MatrixReport {
    /// Number of jobs executed.
    pub jobs: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time for the whole matrix.
    pub elapsed: Duration,
    /// Jobs that ran with the conservation-invariant audit enabled.
    pub audited_jobs: usize,
    /// Total audit violations across all audited jobs (expected 0).
    pub audit_violations: usize,
    /// Jobs that succeeded only after retries.
    pub retried_jobs: usize,
    /// Jobs that failed outright (panicked or timed out).
    pub failed_jobs: usize,
    /// Jobs answered from the on-disk result cache (no simulation ran).
    pub cache_hits: usize,
    /// Jobs executed while a cache was configured (simulated, then stored
    /// when cacheable). Zero when `PRF_CACHE_DIR` is unset.
    pub cache_misses: usize,
    /// Jobs skipped because another `PRF_SHARD` process owns them.
    pub skipped_jobs: usize,
    /// Cache store attempts that failed (ENOSPC, rename failure, …) and
    /// degraded to miss-and-recompute. Nonzero means the run completed
    /// but its results were not all persisted.
    pub cache_write_errors: usize,
    /// Cache entries that failed their integrity check on read and were
    /// moved to the `corrupt/` quarantine directory.
    pub cache_quarantined: usize,
    /// Per-phase wall-clock totals summed over every successful job
    /// (CPU-time-like: with N workers this exceeds `elapsed`).
    pub phase_totals: PhaseTimings,
}

impl MatrixReport {
    /// One-line throughput footer, e.g.
    /// `[matrix] 45 jobs on 8 threads in 12.3 s (3.7 jobs/s)`.
    pub fn footer(&self) -> String {
        // Clamp the denominator: a sub-millisecond matrix (empty or trivial
        // job list) must not print `inf`/`NaN` jobs/s.
        let secs = self.elapsed.as_secs_f64();
        let rate = self.jobs as f64 / secs.max(1e-3);
        let audit = if self.audited_jobs > 0 {
            format!(
                " [audit: {}/{} jobs, {} violations]",
                self.audited_jobs, self.jobs, self.audit_violations
            )
        } else {
            String::new()
        };
        let degraded = if self.retried_jobs > 0 || self.failed_jobs > 0 {
            format!(
                " [degraded: {} retried, {} failed]",
                self.retried_jobs, self.failed_jobs
            )
        } else {
            String::new()
        };
        let cache_active = self.cache_hits + self.cache_misses > 0
            || self.cache_write_errors > 0
            || self.cache_quarantined > 0;
        let cache = if cache_active {
            // Degradation segments only appear when nonzero, so a healthy
            // run's footer is unchanged from previous releases.
            let mut seg = format!(
                " [cache: {} hit / {} miss",
                self.cache_hits, self.cache_misses
            );
            if self.cache_write_errors > 0 {
                seg.push_str(&format!(" / {} write-err", self.cache_write_errors));
            }
            if self.cache_quarantined > 0 {
                seg.push_str(&format!(" / {} quarantined", self.cache_quarantined));
            }
            seg.push(']');
            seg
        } else {
            String::new()
        };
        let shard = if self.skipped_jobs > 0 {
            format!(" [shard: {} jobs skipped]", self.skipped_jobs)
        } else {
            String::new()
        };
        let phases = if self.phase_totals.total() > Duration::ZERO {
            format!(" [phases: {}]", self.phase_totals)
        } else {
            String::new()
        };
        format!(
            "[matrix] {} jobs on {} threads in {:.2} s ({:.1} jobs/s){audit}{degraded}{cache}{shard}{phases}",
            self.jobs, self.threads, secs, rate
        )
    }
}

/// Worker-pool size: `PRF_THREADS` if set and positive, else
/// [`std::thread::available_parallelism`], else 1.
pub fn threads_from_env() -> usize {
    if let Ok(v) = std::env::var("PRF_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!("PRF_THREADS={v:?} is not a positive integer; using default"),
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Stringifies a panic payload (the common `String`/`&str` cases; anything
/// else gets a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A watchdog attempt's message: the generation (attempt ordinal) that
/// produced it plus the attempt's outcome — the inner `Result` is the
/// attempt's own return value, the outer `Err` a stringified panic.
type AttemptMsg = (u32, Result<Result<ExperimentResult, SimError>, String>);

/// Folds one finished attempt into the engine's failure taxonomy:
/// deterministic [`SimError`]s fail fast as [`JobOutcome::Rejected`];
/// panics (and any future non-deterministic error) stay retryable.
fn classify_attempt(
    finished: Result<Result<ExperimentResult, SimError>, String>,
) -> Result<ExperimentResult, JobOutcome> {
    match finished {
        Ok(Ok(result)) => Ok(result),
        Ok(Err(e)) if e.is_deterministic() => Err(JobOutcome::Rejected {
            reason: e.to_string(),
        }),
        Ok(Err(e)) => Err(JobOutcome::Panicked {
            message: e.to_string(),
        }),
        Err(message) => Err(JobOutcome::Panicked { message }),
    }
}

/// Runs one attempt, catching panics; with a watchdog the attempt runs on
/// a detached thread and is abandoned (not killed — the thread keeps
/// spinning until the process exits) when the budget elapses.
///
/// All attempts of one job share a single channel, so an abandoned
/// attempt that completes *later* can still deliver its message while a
/// retry is waiting. Every message therefore carries the generation that
/// produced it; messages from older generations are discarded, so a
/// timed-out-then-retried job can never report (or cache) the stale
/// attempt's result.
fn run_attempt<F>(
    attempt: &F,
    timeout: Option<Duration>,
    generation: u32,
    tx: &mpsc::Sender<AttemptMsg>,
    rx: &mpsc::Receiver<AttemptMsg>,
) -> Result<ExperimentResult, JobOutcome>
where
    F: Fn() -> Result<ExperimentResult, SimError> + Clone + Send + 'static,
{
    match timeout {
        None => classify_attempt(catch_unwind(AssertUnwindSafe(attempt)).map_err(panic_message)),
        Some(budget) => {
            let attempt = attempt.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(&attempt)).map_err(panic_message);
                // The receiver may have given up already; that's fine.
                let _ = tx.send((generation, outcome));
            });
            let deadline = Instant::now() + budget;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(remaining) {
                    // A previous, abandoned attempt finally finished.
                    // Its result is stale — the watchdog already declared
                    // that generation timed out — so drop it and keep
                    // waiting for the current attempt.
                    Ok((gen, _)) if gen != generation => continue,
                    Ok((_, finished)) => return classify_attempt(finished),
                    Err(_) => return Err(JobOutcome::TimedOut { timeout: budget }),
                }
            }
        }
    }
}

/// Runs one job attempt-by-attempt under a [`RetryPolicy`]: up to
/// `1 + retries` attempts, sleeping `attempt × backoff` between them.
/// Never panics — the closure's own panics become [`JobOutcome::Panicked`].
///
/// Failures are classified: an attempt that *returns* a deterministic
/// [`SimError`] is [`JobOutcome::Rejected`] and ends the job immediately
/// (re-running a pure function of the inputs cannot change the answer),
/// while panics and watchdog timeouts spend the full retry budget.
///
/// Generic over the attempt closure so tests can inject panicking, hanging
/// or flaky work; matrix runs pass an owned [`Job`] clone.
pub fn run_resilient_job<F>(
    policy: RetryPolicy,
    attempt: F,
) -> (JobOutcome, Option<ExperimentResult>)
where
    F: Fn() -> Result<ExperimentResult, SimError> + Clone + Send + 'static,
{
    let mut last_failure = None;
    // One channel for every attempt of this job: abandoned watchdog
    // threads keep a sender clone, and their late messages are filtered
    // out by generation in `run_attempt`.
    let (tx, rx) = mpsc::channel();
    for attempt_no in 0..=policy.retries {
        if attempt_no > 0 && !policy.backoff.is_zero() {
            std::thread::sleep(policy.backoff_delay(attempt_no));
        }
        match run_attempt(&attempt, policy.timeout, attempt_no, &tx, &rx) {
            Ok(result) => {
                let outcome = if attempt_no == 0 {
                    JobOutcome::Completed
                } else {
                    JobOutcome::Retried {
                        attempts: attempt_no + 1,
                    }
                };
                return (outcome, Some(result));
            }
            Err(failure) => {
                let fail_fast = matches!(failure, JobOutcome::Rejected { .. });
                last_failure = Some(failure);
                if fail_fast {
                    break;
                }
            }
        }
    }
    (last_failure.expect("at least one attempt ran"), None)
}

/// Runs the matrix on [`threads_from_env`] workers. See
/// [`run_matrix_with_threads`].
pub fn run_matrix(jobs: &[Job]) -> Vec<JobResult> {
    run_matrix_with_threads(jobs, threads_from_env())
}

/// Runs the matrix and returns the results together with a wall-clock
/// [`MatrixReport`] for the binary's throughput footer.
///
/// # Panics
///
/// Like [`run_matrix_with_threads`], panics if any job fails after the
/// environment's retry budget.
pub fn run_matrix_timed(jobs: &[Job]) -> (Vec<JobResult>, MatrixReport) {
    let (outcome, report) = run_matrix_resilient_timed(jobs, RetryPolicy::from_env());
    exit_if_shard_run(&outcome, Some(&report));
    (outcome.expect_complete(), report)
}

/// Runs every job on a pool of at most `threads` scoped worker threads and
/// returns the results **in input order**.
///
/// Workers pull jobs from a shared atomic cursor (dynamic load balancing:
/// long simulations don't serialise behind short ones). A panicking job
/// does not poison the pool — remaining jobs still run — and the failure
/// is re-raised on the caller's thread after the pool drains, carrying the
/// failing job's index and name. The watchdog/retry knobs from
/// [`RetryPolicy::from_env`] apply; with the environment unset this is a
/// plain single-attempt run.
///
/// # Panics
///
/// Re-raises the first (in input order) job failure with the full failure
/// manifest.
pub fn run_matrix_with_threads(jobs: &[Job], threads: usize) -> Vec<JobResult> {
    let outcome = run_matrix_resilient_with_threads(jobs, RetryPolicy::from_env(), threads);
    exit_if_shard_run(&outcome, None);
    outcome.expect_complete()
}

/// Crash-proof matrix run on [`threads_from_env`] workers: never panics,
/// returns a [`JobOutcome`] for every job. See
/// [`run_matrix_resilient_with_threads`].
pub fn run_matrix_resilient(jobs: &[Job], policy: RetryPolicy) -> MatrixOutcome {
    run_matrix_resilient_with_threads(jobs, policy, threads_from_env())
}

/// Crash-proof matrix run with a wall-clock [`MatrixReport`] (including
/// degraded-job counts) for the binary's footer. Owns the env-configured
/// cache for the duration of the run so its durability counters
/// (write errors, quarantined entries) can be folded into the report.
pub fn run_matrix_resilient_timed(
    jobs: &[Job],
    policy: RetryPolicy,
) -> (MatrixOutcome, MatrixReport) {
    let threads = threads_from_env();
    let cache = ResultCache::from_env();
    let t0 = Instant::now();
    let outcome =
        run_matrix_resilient_configured(jobs, policy, threads, shard_from_env(), cache.as_ref());
    let audited: Vec<_> = outcome
        .reports
        .iter()
        .filter_map(|r| r.result.as_ref().and_then(|res| res.audit.as_ref()))
        .collect();
    let mut phase_totals = PhaseTimings::default();
    for r in outcome.healthy() {
        if let Some(res) = &r.result {
            phase_totals.merge(&res.phases);
        }
    }
    let report = MatrixReport {
        jobs: jobs.len(),
        threads: threads.min(jobs.len().max(1)),
        elapsed: t0.elapsed(),
        audited_jobs: audited.len(),
        audit_violations: audited.iter().map(|a| a.violations.len()).sum(),
        retried_jobs: outcome.retried_jobs(),
        failed_jobs: outcome.failed_jobs(),
        cache_hits: outcome
            .reports
            .iter()
            .filter(|r| r.cached == Some(true))
            .count(),
        cache_misses: outcome
            .reports
            .iter()
            .filter(|r| r.cached == Some(false))
            .count(),
        skipped_jobs: outcome.skipped_jobs(),
        cache_write_errors: cache.as_ref().map_or(0, |c| c.write_errors() as usize),
        cache_quarantined: cache.as_ref().map_or(0, |c| c.quarantined() as usize),
        phase_totals,
    };
    (outcome, report)
}

/// Terminates a shard run cleanly: when any job was skipped by `PRF_SHARD`
/// (and nothing failed), this shard's purpose — computing its slice into
/// the shared `PRF_CACHE_DIR` — is fulfilled, so print a summary and exit
/// 0 instead of letting `expect_complete` panic on the missing results.
/// Merging is a subsequent *unsharded* run over the warmed cache, which is
/// bit-identical to a serial run. A no-op for unsharded runs; failures
/// fall through so the normal failure path reports them.
pub fn exit_if_shard_run(outcome: &MatrixOutcome, report: Option<&MatrixReport>) {
    let skipped = outcome.skipped_jobs();
    if skipped == 0 || outcome.failed_jobs() > 0 {
        return;
    }
    if let Some(report) = report {
        println!("{}", report.footer());
    }
    let executed = outcome.reports.len() - skipped;
    let spec = shard_from_env()
        .map(|s| format!("{}/{}", s.index, s.count))
        .unwrap_or_else(|| "?/?".to_string());
    eprintln!(
        "[shard {spec}] executed {executed} of {} jobs ({skipped} owned by other shards); \
         merge by re-running unsharded with the same PRF_CACHE_DIR",
        outcome.reports.len()
    );
    std::process::exit(0);
}

/// Crash-proof matrix run: every job gets `1 + policy.retries` attempts
/// behind `catch_unwind` (and a watchdog when `policy.timeout` is set),
/// and the returned [`MatrixOutcome`] has one report per input job, in
/// input order — healthy results survive neighbouring crashes and hangs.
pub fn run_matrix_resilient_with_threads(
    jobs: &[Job],
    policy: RetryPolicy,
    threads: usize,
) -> MatrixOutcome {
    run_matrix_resilient_configured(
        jobs,
        policy,
        threads,
        shard_from_env(),
        ResultCache::from_env().as_ref(),
    )
}

/// One worker slot's record of a finished job.
struct SlotData {
    outcome: JobOutcome,
    started: Duration,
    elapsed: Duration,
    result: Option<ExperimentResult>,
    cached: Option<bool>,
}

/// [`run_matrix_resilient_with_threads`] with the shard filter and result
/// cache passed explicitly instead of read from the environment — the
/// testable core, also used by `prf-serve`.
///
/// With a `shard`, only jobs whose index the shard owns are executed; the
/// rest report [`JobOutcome::Skipped`]. With a `cache`, cacheable jobs are
/// answered from disk when their digest matches a stored entry, and
/// freshly computed results are stored for the next run. The cache store
/// happens on the worker thread *after* `run_resilient_job` returns, so —
/// together with the attempt generation counter — an abandoned watchdog
/// attempt can never publish a stale entry.
pub fn run_matrix_resilient_configured(
    jobs: &[Job],
    policy: RetryPolicy,
    threads: usize,
    shard: Option<ShardSpec>,
    cache: Option<&ResultCache>,
) -> MatrixOutcome {
    run_matrix_resilient_observed(jobs, policy, threads, shard, cache, None)
}

/// Progress hooks invoked from the worker threads of
/// [`run_matrix_resilient_observed`]. `prf-serve` uses this to journal
/// per-job start/completion records; both methods default to no-ops.
/// Callbacks must be cheap and must not panic — they run inline on the
/// worker, between jobs.
pub trait JobObserver: Sync {
    /// A worker picked up job `index` (after shard filtering; fires for
    /// rejected and cache-answered jobs too).
    fn job_started(&self, _index: usize, _job: &Job) {}
    /// Job `index` reached a terminal outcome (including rejection and
    /// cache hits). Fires after the cache store, so by the time a
    /// journal records completion the result is already published.
    fn job_finished(&self, _index: usize, _job: &Job, _outcome: &JobOutcome) {}
}

/// [`run_matrix_resilient_configured`] with per-job [`JobObserver`]
/// callbacks.
pub fn run_matrix_resilient_observed(
    jobs: &[Job],
    policy: RetryPolicy,
    threads: usize,
    shard: Option<ShardSpec>,
    cache: Option<&ResultCache>,
    observer: Option<&dyn JobObserver>,
) -> MatrixOutcome {
    let threads = threads.clamp(1, jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    let slots: Vec<Mutex<Option<SlotData>>> = jobs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                if let Some(spec) = shard {
                    if !spec.owns(i) {
                        *slots[i].lock().unwrap() = Some(SlotData {
                            outcome: JobOutcome::Skipped,
                            started: t0.elapsed(),
                            elapsed: Duration::ZERO,
                            result: None,
                            cached: None,
                        });
                        continue;
                    }
                }
                let started = t0.elapsed();
                if let Some(obs) = observer {
                    obs.job_started(i, job);
                }
                // Reject invalid jobs up front: no attempt thread, no
                // watchdog, no retries — a hostile job costs one
                // validation pass, not a worker's retry budget.
                if let Err(e) = job.validate() {
                    let outcome = JobOutcome::Rejected {
                        reason: format!("rejected input: {e}"),
                    };
                    if let Some(obs) = observer {
                        obs.job_finished(i, job, &outcome);
                    }
                    *slots[i].lock().unwrap() = Some(SlotData {
                        outcome,
                        started,
                        elapsed: Duration::ZERO,
                        result: None,
                        cached: None,
                    });
                    continue;
                }
                // Consult the cache before simulating. The digest is only
                // computed when a cache is configured and the job's result
                // would round-trip exactly (see `ResultCache::is_cacheable`).
                let digest = cache
                    .filter(|_| ResultCache::is_cacheable(job))
                    .map(|_| job_digest(job));
                if let (Some(cache), Some(digest)) = (cache, &digest) {
                    if let Some(hit) = cache.load(digest, job) {
                        if let Some(obs) = observer {
                            obs.job_finished(i, job, &hit.outcome);
                        }
                        *slots[i].lock().unwrap() = Some(SlotData {
                            outcome: hit.outcome,
                            started,
                            elapsed: hit.elapsed,
                            result: Some(hit.result),
                            cached: Some(true),
                        });
                        continue;
                    }
                }
                // Owned clone so watchdog attempts can move to a detached
                // thread (cheap: kernels are behind `Arc`).
                let owned = job.clone();
                let job_start = Instant::now();
                let (outcome, result) = run_resilient_job(policy, move || owned.run());
                let elapsed = job_start.elapsed();
                if let (Some(cache), Some(digest), Some(r)) = (cache, &digest, result.as_ref()) {
                    cache.store(digest, job, &outcome, elapsed, r);
                }
                if let Some(obs) = observer {
                    obs.job_finished(i, job, &outcome);
                }
                *slots[i].lock().unwrap() = Some(SlotData {
                    outcome,
                    started,
                    elapsed,
                    result,
                    cached: cache.map(|_| false),
                });
            });
        }
    });

    let reports = slots
        .into_iter()
        .zip(jobs)
        .enumerate()
        .map(|(index, (slot, job))| {
            let data = slot
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .unwrap_or_else(|| panic!("job `{}` was never executed", job.name));
            JobReport {
                index,
                name: job.name.clone(),
                outcome: data.outcome,
                started: data.started,
                elapsed: data.elapsed,
                result: data.result,
                cached: data.cached,
            }
        })
        .collect();
    MatrixOutcome { reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_sim::SchedulerPolicy;

    fn tiny_jobs(n: usize) -> Vec<Job> {
        let w = prf_workloads::suite::bfs();
        let gpu = crate::experiment_gpu(SchedulerPolicy::Gto);
        (0..n as u64)
            .map(|seed| {
                let gpu = GpuConfig {
                    jitter_seed: seed,
                    ..gpu.clone()
                };
                Job::new(format!("BFS/seed{seed}"), &w, &gpu, &RfKind::MrfStv)
            })
            .collect()
    }

    #[test]
    fn results_come_back_in_input_order() {
        let jobs = tiny_jobs(4);
        let results = run_matrix_with_threads(&jobs, 3);
        assert_eq!(results.len(), 4);
        for (j, r) in jobs.iter().zip(&results) {
            assert_eq!(j.name, r.name);
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let jobs = tiny_jobs(3);
        let serial = run_matrix_with_threads(&jobs, 1);
        let parallel = run_matrix_with_threads(&jobs, 3);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.result.cycles, b.result.cycles);
            assert_eq!(a.result.dynamic_energy_pj, b.result.dynamic_energy_pj);
            assert_eq!(
                a.result.stats.partition_accesses,
                b.result.stats.partition_accesses
            );
        }
    }

    #[test]
    fn failing_job_reports_its_name() {
        let mut jobs = tiny_jobs(2);
        // An impossible cycle limit forces a deterministic SimError; the
        // all-or-nothing entry point re-raises it with the job name.
        jobs[1].gpu.max_cycles = 1;
        jobs[1].name = "doomed".into();
        let err = std::panic::catch_unwind(|| run_matrix_with_threads(&jobs, 2));
        let payload = err.expect_err("doomed job must propagate its failure");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| payload.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(
            msg.contains("doomed"),
            "panic message should name the job: {msg}"
        );
    }

    #[test]
    fn footer_formats() {
        let r = MatrixReport {
            jobs: 10,
            threads: 4,
            elapsed: Duration::from_secs(2),
            audited_jobs: 0,
            audit_violations: 0,
            retried_jobs: 0,
            failed_jobs: 0,
            cache_hits: 0,
            cache_misses: 0,
            skipped_jobs: 0,
            cache_write_errors: 0,
            cache_quarantined: 0,
            phase_totals: PhaseTimings::default(),
        };
        let f = r.footer();
        assert!(f.contains("10 jobs"), "{f}");
        assert!(f.contains("4 threads"), "{f}");
        assert!(f.contains("5.0 jobs/s"), "{f}");
        assert!(
            !f.contains("audit"),
            "unaudited runs keep the old footer: {f}"
        );
        assert!(
            !f.contains("degraded"),
            "clean runs keep the old footer: {f}"
        );
    }

    #[test]
    fn footer_reports_audit_coverage() {
        let r = MatrixReport {
            jobs: 10,
            threads: 4,
            elapsed: Duration::from_secs(2),
            audited_jobs: 10,
            audit_violations: 0,
            retried_jobs: 0,
            failed_jobs: 0,
            cache_hits: 0,
            cache_misses: 0,
            skipped_jobs: 0,
            cache_write_errors: 0,
            cache_quarantined: 0,
            phase_totals: PhaseTimings::default(),
        };
        let f = r.footer();
        assert!(f.contains("[audit: 10/10 jobs, 0 violations]"), "{f}");
    }

    #[test]
    fn footer_reports_degraded_jobs() {
        let r = MatrixReport {
            jobs: 10,
            threads: 4,
            elapsed: Duration::from_secs(2),
            audited_jobs: 0,
            audit_violations: 0,
            retried_jobs: 2,
            failed_jobs: 1,
            cache_hits: 0,
            cache_misses: 0,
            skipped_jobs: 0,
            cache_write_errors: 0,
            cache_quarantined: 0,
            phase_totals: PhaseTimings::default(),
        };
        let f = r.footer();
        assert!(f.contains("[degraded: 2 retried, 1 failed]"), "{f}");
    }

    #[test]
    fn footer_survives_sub_millisecond_matrices() {
        // Satellite regression: a zero-duration run used to print
        // `inf jobs/s` (and an empty matrix `NaN jobs/s`).
        for jobs in [0, 10] {
            let r = MatrixReport {
                jobs,
                threads: 4,
                elapsed: Duration::ZERO,
                audited_jobs: 0,
                audit_violations: 0,
                retried_jobs: 0,
                failed_jobs: 0,
                cache_hits: 0,
                cache_misses: 0,
                skipped_jobs: 0,
                cache_write_errors: 0,
                cache_quarantined: 0,
                phase_totals: PhaseTimings::default(),
            };
            let f = r.footer();
            assert!(!f.contains("inf"), "{f}");
            assert!(!f.contains("NaN"), "{f}");
        }
    }

    #[test]
    fn footer_reports_phase_totals() {
        let r = MatrixReport {
            jobs: 1,
            threads: 1,
            elapsed: Duration::from_secs(1),
            audited_jobs: 0,
            audit_violations: 0,
            retried_jobs: 0,
            failed_jobs: 0,
            cache_hits: 0,
            cache_misses: 0,
            skipped_jobs: 0,
            cache_write_errors: 0,
            cache_quarantined: 0,
            phase_totals: PhaseTimings {
                setup: Duration::from_millis(5),
                simulate: Duration::from_millis(900),
                energy: Duration::from_millis(2),
                audit: Duration::from_millis(40),
            },
        };
        let f = r.footer();
        assert!(f.contains("[phases: "), "{f}");
        assert!(f.contains("simulate 900.0ms"), "{f}");
    }

    #[test]
    fn timed_matrix_measures_phases_and_job_elapsed() {
        let jobs = tiny_jobs(2);
        let (outcome, report) = run_matrix_resilient_timed(&jobs, RetryPolicy::none());
        assert!(report.phase_totals.simulate > Duration::ZERO);
        assert!(report.phase_totals.total() > Duration::ZERO);
        for r in &outcome.reports {
            assert!(r.elapsed > Duration::ZERO);
            let phases = r.result.as_ref().expect("healthy job").phases;
            // A job's phase breakdown cannot exceed its wall-clock span.
            assert!(phases.total() <= r.elapsed + Duration::from_millis(50));
        }
    }

    #[test]
    fn timed_matrix_counts_audited_jobs() {
        let mut jobs = tiny_jobs(2);
        jobs[1].gpu.audit = true;
        let (results, report) = run_matrix_timed(&jobs);
        assert!(results[0].result.audit.is_none());
        let audit = results[1].result.audit.as_ref().expect("audited job");
        assert!(audit.is_clean(), "{audit}");
        assert_eq!(report.audited_jobs, 1);
        assert_eq!(report.audit_violations, 0);
        assert_eq!(report.retried_jobs, 0);
        assert_eq!(report.failed_jobs, 0);
    }

    #[test]
    fn resilient_matrix_reports_every_job_and_keeps_healthy_results() {
        let mut jobs = tiny_jobs(3);
        jobs[1].gpu.max_cycles = 1;
        jobs[1].name = "doomed".into();
        let outcome = run_matrix_resilient_with_threads(&jobs, RetryPolicy::none(), 3);
        assert_eq!(outcome.reports.len(), 3);
        for (i, report) in outcome.reports.iter().enumerate() {
            assert_eq!(report.index, i);
            assert_eq!(report.name, jobs[i].name);
        }
        assert_eq!(outcome.reports[0].outcome, JobOutcome::Completed);
        assert!(outcome.reports[0].result.is_some());
        assert!(outcome.reports[2].result.is_some());
        match &outcome.reports[1].outcome {
            // A cycle-limit overrun is a deterministic SimError, so the
            // engine classifies it as a rejection rather than a crash.
            JobOutcome::Rejected { reason } => {
                assert!(reason.contains("cycle"), "reason explains itself: {reason}")
            }
            other => panic!("expected a rejected outcome, got {other}"),
        }
        assert!(outcome.reports[1].result.is_none());
        assert_eq!(outcome.failed_jobs(), 1);
        assert_eq!(outcome.retried_jobs(), 0);
        let manifest = outcome.failure_manifest();
        assert!(manifest.contains("job #1 `doomed`"), "{manifest}");
    }

    #[test]
    #[should_panic(expected = "job #1 `doomed`")]
    fn expect_complete_panics_with_index_and_name() {
        let mut jobs = tiny_jobs(2);
        jobs[1].gpu.max_cycles = 1;
        jobs[1].name = "doomed".into();
        run_matrix_resilient_with_threads(&jobs, RetryPolicy::none(), 2).expect_complete();
    }

    #[test]
    fn flaky_job_succeeds_after_retries() {
        use std::sync::atomic::AtomicU32;
        use std::sync::Arc;
        let job = Arc::new(tiny_jobs(1).remove(0));
        let calls = Arc::new(AtomicU32::new(0));
        let policy = RetryPolicy {
            timeout: None,
            retries: 3,
            backoff: Duration::ZERO,
        };
        let (outcome, result) = run_resilient_job(policy, {
            let calls = Arc::clone(&calls);
            let job = Arc::clone(&job);
            move || {
                if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("transient failure");
                }
                job.run()
            }
        });
        assert_eq!(outcome, JobOutcome::Retried { attempts: 3 });
        assert!(result.is_some());
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn exhausted_retries_keep_the_last_panic() {
        let policy = RetryPolicy {
            timeout: None,
            retries: 1,
            backoff: Duration::ZERO,
        };
        let (outcome, result) =
            run_resilient_job(policy, || -> Result<ExperimentResult, SimError> {
                panic!("always down")
            });
        assert_eq!(
            outcome,
            JobOutcome::Panicked {
                message: "always down".into()
            }
        );
        assert!(result.is_none());
    }

    #[test]
    fn shard_spec_parses_and_partitions() {
        let s = ShardSpec::parse("1/3").unwrap();
        assert_eq!(s, ShardSpec { index: 1, count: 3 });
        assert!(!s.owns(0));
        assert!(s.owns(1));
        assert!(!s.owns(2));
        assert!(s.owns(4));
        assert!(ShardSpec::parse("3/3").is_err(), "index must be < count");
        assert!(ShardSpec::parse("0/0").is_err(), "count must be ≥ 1");
        assert!(ShardSpec::parse("a/2").is_err());
        assert!(ShardSpec::parse("2").is_err());
    }

    #[test]
    fn sharded_union_over_cache_matches_serial_exactly() {
        let dir = std::env::temp_dir().join(format!("prf_shard_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = crate::cache::ResultCache::at(&dir);
        let jobs = tiny_jobs(5);
        // Reference: plain serial run, no cache, no shard.
        let serial = run_matrix_resilient_configured(&jobs, RetryPolicy::none(), 1, None, None);
        // Two shard processes fill the shared cache with their slices.
        for index in 0..2 {
            let spec = ShardSpec { index, count: 2 };
            let outcome = run_matrix_resilient_configured(
                &jobs,
                RetryPolicy::none(),
                2,
                Some(spec),
                Some(&cache),
            );
            assert_eq!(outcome.failed_jobs(), 0);
            let owned = (0..jobs.len()).filter(|&i| spec.owns(i)).count();
            assert_eq!(outcome.skipped_jobs(), jobs.len() - owned);
            for (i, r) in outcome.reports.iter().enumerate() {
                if spec.owns(i) {
                    assert_eq!(r.outcome, JobOutcome::Completed);
                    assert_eq!(r.cached, Some(false), "first shard run must miss");
                } else {
                    assert_eq!(r.outcome, JobOutcome::Skipped);
                    assert!(r.result.is_none());
                }
            }
        }
        // The merge: an unsharded run over the warmed cache. Zero
        // simulations (every job a hit), simulation outputs bit-identical
        // to serial. Wall-clock phase profiles are measurements of *this*
        // host, not simulation outputs — the merge replays the shard
        // runs' timings, so they are excluded from the serial comparison.
        let merged =
            run_matrix_resilient_configured(&jobs, RetryPolicy::none(), 2, None, Some(&cache));
        assert_eq!(merged.reports.len(), serial.reports.len());
        for (a, b) in serial.reports.iter().zip(&merged.reports) {
            assert_eq!(b.cached, Some(true), "merge run must be all cache hits");
            assert_eq!(b.outcome, JobOutcome::Completed);
            assert_eq!(a.name, b.name);
            let mut sa = a.result.clone().unwrap();
            let mut sb = b.result.clone().unwrap();
            sa.phases = PhaseTimings::default();
            sb.phases = PhaseTimings::default();
            assert_eq!(
                sa, sb,
                "cache-merged result must equal the serial run's, field for field"
            );
        }
        // A *second* merge run replays the exact same stored entries —
        // including wall-clock — so it is fully identical to the first.
        let warm =
            run_matrix_resilient_configured(&jobs, RetryPolicy::none(), 2, None, Some(&cache));
        for (a, b) in merged.reports.iter().zip(&warm.reports) {
            assert_eq!(a.result, b.result, "warm replays are bit-identical");
            assert_eq!(a.elapsed, b.elapsed, "stored wall-clock is replayed");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn footer_reports_cache_and_shard_segments() {
        let mut r = MatrixReport {
            jobs: 10,
            threads: 4,
            elapsed: Duration::from_secs(2),
            audited_jobs: 0,
            audit_violations: 0,
            retried_jobs: 0,
            failed_jobs: 0,
            cache_hits: 7,
            cache_misses: 3,
            skipped_jobs: 0,
            cache_write_errors: 0,
            cache_quarantined: 0,
            phase_totals: PhaseTimings::default(),
        };
        assert!(
            r.footer().contains("[cache: 7 hit / 3 miss]"),
            "{}",
            r.footer()
        );
        r.skipped_jobs = 5;
        assert!(
            r.footer().contains("[shard: 5 jobs skipped]"),
            "{}",
            r.footer()
        );
        r.cache_hits = 0;
        r.cache_misses = 0;
        assert!(!r.footer().contains("[cache:"), "{}", r.footer());
    }

    #[test]
    fn footer_reports_cache_durability_degradation() {
        let mut r = MatrixReport {
            jobs: 10,
            threads: 4,
            elapsed: Duration::from_secs(2),
            audited_jobs: 0,
            audit_violations: 0,
            retried_jobs: 0,
            failed_jobs: 0,
            cache_hits: 7,
            cache_misses: 3,
            skipped_jobs: 0,
            cache_write_errors: 2,
            cache_quarantined: 1,
            phase_totals: PhaseTimings::default(),
        };
        assert!(
            r.footer()
                .contains("[cache: 7 hit / 3 miss / 2 write-err / 1 quarantined]"),
            "{}",
            r.footer()
        );
        // Even with zero hits/misses, degradation alone surfaces the segment.
        r.cache_hits = 0;
        r.cache_misses = 0;
        r.cache_quarantined = 0;
        assert!(
            r.footer().contains("[cache: 0 hit / 0 miss / 2 write-err]"),
            "{}",
            r.footer()
        );
    }

    #[test]
    #[should_panic(expected = "skipped by PRF_SHARD")]
    fn expect_complete_rejects_sharded_outcomes() {
        let jobs = tiny_jobs(2);
        let spec = ShardSpec { index: 0, count: 2 };
        run_matrix_resilient_configured(&jobs, RetryPolicy::none(), 1, Some(spec), None)
            .expect_complete();
    }

    #[test]
    fn backoff_delay_saturates_instead_of_panicking() {
        // Satellite regression: `backoff * attempt_no` panics on overflow,
        // so PRF_RETRY_BACKOFF_MS / PRF_JOB_RETRIES values near the limits
        // crashed the worker thread instead of retrying.
        let policy = RetryPolicy {
            timeout: None,
            retries: u32::MAX,
            backoff: Duration::from_millis(u64::MAX / 100),
        };
        assert_eq!(policy.backoff_delay(u32::MAX), Duration::MAX);
        assert_eq!(policy.backoff_delay(0), Duration::ZERO);
        let sane = RetryPolicy {
            timeout: None,
            retries: 3,
            backoff: Duration::from_millis(100),
        };
        // Linear schedule is unchanged in the non-saturating range.
        assert_eq!(sane.backoff_delay(1), Duration::from_millis(100));
        assert_eq!(sane.backoff_delay(3), Duration::from_millis(300));
    }

    /// A fabricated result whose `cycles` value identifies which attempt
    /// produced it.
    fn marker_result(cycles: u64) -> ExperimentResult {
        ExperimentResult {
            rf_name: "mrf@stv",
            cycles,
            stats: prf_sim::SmStats::new(),
            per_launch: Vec::new(),
            telemetry: Default::default(),
            dynamic_energy_pj: 0.0,
            baseline_dynamic_energy_pj: 0.0,
            leakage_energy_pj: 0.0,
            baseline_leakage_energy_pj: 0.0,
            repair_energy_pj: 0.0,
            phases: PhaseTimings::default(),
            audit: None,
        }
    }

    #[test]
    fn stale_watchdog_result_is_discarded() {
        use std::sync::atomic::AtomicU32;
        use std::sync::Arc;
        // Attempt 0 outlives its watchdog budget (500 ms) and delivers a
        // stale result at ~700 ms — squarely inside attempt 1's wait
        // window (500..1000 ms), *before* attempt 1's own result at
        // ~850 ms. Without generation tagging the retry would adopt the
        // abandoned attempt's result (cycles = 111).
        let calls = Arc::new(AtomicU32::new(0));
        let policy = RetryPolicy {
            timeout: Some(Duration::from_millis(500)),
            retries: 1,
            backoff: Duration::ZERO,
        };
        let (outcome, result) = run_resilient_job(policy, {
            let calls = Arc::clone(&calls);
            move || {
                if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                    std::thread::sleep(Duration::from_millis(700));
                    Ok(marker_result(111))
                } else {
                    std::thread::sleep(Duration::from_millis(350));
                    Ok(marker_result(222))
                }
            }
        });
        assert_eq!(outcome, JobOutcome::Retried { attempts: 2 });
        let result = result.expect("retry succeeded");
        assert_eq!(
            result.cycles, 222,
            "job must report the live attempt's result, not the abandoned one's"
        );
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn deterministic_failure_skips_the_retry_budget() {
        use std::sync::atomic::AtomicU32;
        use std::sync::Arc;
        let calls = Arc::new(AtomicU32::new(0));
        let policy = RetryPolicy {
            timeout: None,
            retries: 5,
            backoff: Duration::from_secs(60), // would hang the test if slept
        };
        let (outcome, result) = run_resilient_job(policy, {
            let calls = Arc::clone(&calls);
            move || {
                calls.fetch_add(1, Ordering::SeqCst);
                Err(SimError::CycleLimitExceeded { limit: 7 })
            }
        });
        assert!(matches!(outcome, JobOutcome::Rejected { .. }), "{outcome}");
        assert!(result.is_none());
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "a deterministic failure must not be retried"
        );
    }

    #[test]
    fn invalid_job_is_rejected_before_any_attempt_runs() {
        let mut jobs = tiny_jobs(2);
        // A CTA whose register demand exceeds the whole RF can never
        // dispatch: pre-validation rejects it on the worker thread, with
        // no attempt, no watchdog, and zero simulated wall-clock.
        jobs[1].gpu.rf_registers = 1;
        jobs[1].name = "hostile".into();
        let watchdog = RetryPolicy {
            timeout: Some(Duration::from_secs(120)),
            retries: 3,
            backoff: Duration::from_secs(60),
        };
        let outcome = run_matrix_resilient_with_threads(&jobs, watchdog, 2);
        assert_eq!(outcome.reports[0].outcome, JobOutcome::Completed);
        match &outcome.reports[1].outcome {
            JobOutcome::Rejected { reason } => {
                assert!(reason.contains("rejected input"), "{reason}");
                assert!(reason.contains("register file"), "{reason}");
            }
            other => panic!("expected a rejection, got {other}"),
        }
        assert_eq!(outcome.reports[1].elapsed, Duration::ZERO);
        assert!(outcome.reports[1].result.is_none());
        assert_eq!(outcome.failed_jobs(), 1);
        let manifest = outcome.failure_manifest();
        assert!(
            manifest.contains("job #1 `hostile`: rejected:"),
            "{manifest}"
        );
    }

    #[test]
    fn rejected_outcome_is_degraded_and_not_successful() {
        let o = JobOutcome::Rejected {
            reason: "invalid config: num_sms: must be at least 1".into(),
        };
        assert!(!o.succeeded());
        assert!(o.is_degraded());
        assert!(o.to_string().starts_with("rejected: "), "{o}");
    }

    #[test]
    fn hanging_job_times_out() {
        let job = std::sync::Arc::new(tiny_jobs(1).remove(0));
        let budget = Duration::from_millis(20);
        let policy = RetryPolicy {
            timeout: Some(budget),
            retries: 0,
            backoff: Duration::ZERO,
        };
        let (outcome, result) = run_resilient_job(policy, move || {
            std::thread::sleep(Duration::from_secs(60));
            job.run()
        });
        assert_eq!(outcome, JobOutcome::TimedOut { timeout: budget });
        assert!(result.is_none());
    }

    #[test]
    fn watchdog_passes_healthy_results_through() {
        let jobs = tiny_jobs(2);
        let plain = run_matrix_resilient_with_threads(&jobs, RetryPolicy::none(), 2);
        let policy = RetryPolicy {
            timeout: Some(Duration::from_secs(120)),
            retries: 2,
            backoff: Duration::from_millis(1),
        };
        let watched = run_matrix_resilient_with_threads(&jobs, policy, 2);
        for (a, b) in plain.reports.iter().zip(&watched.reports) {
            assert_eq!(a.outcome, JobOutcome::Completed);
            assert_eq!(b.outcome, JobOutcome::Completed);
            let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(ra.cycles, rb.cycles);
            assert_eq!(ra.dynamic_energy_pj, rb.dynamic_energy_pj);
        }
    }
}
