//! Durable job journal for `prf-serve`: an append-only write-ahead log.
//!
//! The server's batch queue lives in memory; without a journal, killing
//! the process loses every submitted-but-unfinished batch with no trace.
//! With `PRF_JOURNAL_DIR` set, every batch submission, per-job start and
//! per-job completion is appended to `serve.wal` as a checksummed,
//! length-framed record *before* the client's submit is acknowledged. On
//! startup the server replays the journal and re-enqueues every batch
//! that has no matching [`Record::BatchDone`]; because jobs are
//! content-addressed digests and completed jobs hit the warmed result
//! cache, recovery is exactly-once by construction — re-run jobs are
//! answered from the cache bit-identically and only genuinely
//! unfinished work simulates again.
//!
//! ## On-disk format
//!
//! ```text
//! "PRFWAL1\n"                                  8-byte magic + version
//! [len: u32 LE][sum: 8 bytes][payload: len]    frame 0
//! [len: u32 LE][sum: 8 bytes][payload: len]    frame 1
//! ...
//! ```
//!
//! `sum` is the first 8 bytes of the SHA-256 of the payload (the same
//! hand-rolled digest the result cache keys on, [`crate::digest`]).
//! Payloads are single-line JSON records. Replay stops at the first
//! frame that is truncated, oversized, or fails its checksum: a torn
//! tail — the expected artefact of a crash mid-append — costs at most
//! that one record and never a panic. A file whose *magic* is wrong is
//! not a torn journal but a foreign or corrupt file; it is preserved as
//! `serve.wal.corrupt` (never deleted) and a fresh journal is started.
//!
//! ## Durability placement
//!
//! [`Record::Submit`], [`Record::BatchDone`] and [`Record::Next`] are
//! fsynced before `append` returns — they change what recovery would
//! re-enqueue. Per-job [`Record::Start`]/[`Record::JobDone`] records are
//! appended without fsync: they are diagnostic progress markers, and
//! losing them changes nothing (the result cache, not the journal, is
//! what makes re-running a finished job free). See DESIGN.md §10.
//!
//! Once every recorded batch is done the journal is compacted: a fresh
//! file carrying only the batch-id high-water mark is written to the
//! side and renamed over `serve.wal`, followed by a directory fsync.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::digest::Sha256;
use crate::json::Json;
use crate::vfs::Vfs;

/// Magic prefix of a journal file: identifies the format and its
/// version. Bump the digit on breaking frame-format changes.
pub const JOURNAL_MAGIC: &[u8; 8] = b"PRFWAL1\n";

/// Journal file name inside the journal directory.
pub const JOURNAL_FILE: &str = "serve.wal";

/// Upper bound on one record's payload. Far above any real submit (the
/// server refuses request lines over 1 MiB). The length field is read
/// before the checksum can vouch for it, so this bound is what keeps a
/// garbage length cheap during replay: anything larger is classified as
/// a torn/corrupt tail instead of attempted as an allocation.
pub const MAX_RECORD_BYTES: usize = 16 << 20;

/// One journal record. `batch` ids are the server's protocol-visible
/// batch numbers; `job` indexes into the batch's job list.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A batch was accepted: its id and the raw job specs (verbatim
    /// protocol JSON, so recovery rebuilds jobs through the same
    /// [`crate::serve::job_from_spec`] path as a live submit).
    Submit {
        /// Protocol batch id.
        batch: u64,
        /// Raw job specs as submitted.
        jobs: Vec<Json>,
    },
    /// A job began executing (progress marker; not fsynced).
    Start {
        /// Batch the job belongs to.
        batch: u64,
        /// Index of the job within the batch.
        job: u64,
    },
    /// A job reached a terminal outcome (progress marker; not fsynced).
    JobDone {
        /// Batch the job belongs to.
        batch: u64,
        /// Index of the job within the batch.
        job: u64,
    },
    /// Every job of the batch is done and its report exists.
    BatchDone {
        /// The completed batch.
        batch: u64,
    },
    /// Batch-id high-water mark, written on open and by compaction so
    /// ids stay unique across restarts even after the history is gone.
    Next {
        /// The next batch id to hand out.
        id: u64,
    },
}

impl Record {
    /// True for records that must be fsynced before `append` returns:
    /// they change what recovery re-enqueues.
    fn is_durable(&self) -> bool {
        !matches!(self, Record::Start { .. } | Record::JobDone { .. })
    }

    fn to_json(&self) -> Json {
        match self {
            Record::Submit { batch, jobs } => Json::obj()
                .field("t", "submit")
                .field("batch", *batch)
                .field("jobs", Json::Arr(jobs.clone())),
            Record::Start { batch, job } => Json::obj()
                .field("t", "start")
                .field("batch", *batch)
                .field("job", *job),
            Record::JobDone { batch, job } => Json::obj()
                .field("t", "job_done")
                .field("batch", *batch)
                .field("job", *job),
            Record::BatchDone { batch } => {
                Json::obj().field("t", "batch_done").field("batch", *batch)
            }
            Record::Next { id } => Json::obj().field("t", "next").field("id", *id),
        }
    }

    fn from_json(doc: &Json) -> Option<Record> {
        let t = doc.get("t")?.as_str()?;
        let batch = || doc.get("batch")?.as_u64();
        match t {
            "submit" => Some(Record::Submit {
                batch: batch()?,
                jobs: doc.get("jobs")?.as_arr()?.to_vec(),
            }),
            "start" => Some(Record::Start {
                batch: batch()?,
                job: doc.get("job")?.as_u64()?,
            }),
            "job_done" => Some(Record::JobDone {
                batch: batch()?,
                job: doc.get("job")?.as_u64()?,
            }),
            "batch_done" => Some(Record::BatchDone { batch: batch()? }),
            "next" => Some(Record::Next {
                id: doc.get("id")?.as_u64()?,
            }),
            _ => None,
        }
    }
}

/// Frames one payload: `[len][8-byte truncated SHA-256][payload]`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut h = Sha256::new();
    h.update(payload);
    let sum = h.finish();
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("record fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(&sum[..8]);
    out.extend_from_slice(payload);
    out
}

/// What replay found in an existing journal.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Batches submitted but never marked done, in batch-id order:
    /// `(batch id, raw job specs)`. These are what the server
    /// re-enqueues.
    pub pending: Vec<(u64, Vec<Json>)>,
    /// Next batch id to hand out (one past the highest id seen).
    pub next_id: u64,
    /// Complete records replayed.
    pub records: usize,
    /// Per-job `JobDone` markers seen for pending batches — progress
    /// the crashed run made (those jobs will be cache hits).
    pub jobs_done: usize,
    /// True when the file ended in a torn/corrupt frame (the expected
    /// artefact of a crash mid-append; at most one record was lost).
    pub torn_tail: bool,
    /// True when an existing file had a foreign magic and was preserved
    /// aside as `serve.wal.corrupt`.
    pub quarantined: bool,
    /// Byte length of the valid prefix (magic plus complete frames).
    /// Everything beyond it is the torn tail, which [`Journal::open`]
    /// truncates before appending — a new frame written after a partial
    /// one would be unreachable to the next replay.
    pub valid_len: usize,
}

/// Replays journal bytes (including magic). Never panics: stops cleanly
/// at the first torn or corrupt frame.
fn replay(bytes: &[u8]) -> Recovery {
    let mut rec = Recovery::default();
    let Some(body) = bytes.strip_prefix(&JOURNAL_MAGIC[..]) else {
        // Caller decides what to do with a foreign file; an empty or
        // magic-less journal replays as empty.
        rec.torn_tail = !bytes.is_empty();
        return rec;
    };
    let mut pending: BTreeMap<u64, Vec<Json>> = BTreeMap::new();
    let mut jobs_done: BTreeMap<u64, usize> = BTreeMap::new();
    let mut pos = 0usize;
    while pos < body.len() {
        let Some(header) = body.get(pos..pos + 12) else {
            rec.torn_tail = true;
            break;
        };
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        if len > MAX_RECORD_BYTES {
            rec.torn_tail = true;
            break;
        }
        let Some(payload) = body.get(pos + 12..pos + 12 + len) else {
            rec.torn_tail = true;
            break;
        };
        let mut h = Sha256::new();
        h.update(payload);
        if h.finish()[..8] != header[4..12] {
            rec.torn_tail = true;
            break;
        }
        let parsed = String::from_utf8(payload.to_vec())
            .ok()
            .and_then(|s| Json::parse(&s).ok())
            .and_then(|doc| Record::from_json(&doc));
        let Some(record) = parsed else {
            // Checksummed but unintelligible: written by a future
            // version, perhaps. Skip it rather than dropping the rest
            // of the log.
            pos += 12 + len;
            rec.records += 1;
            continue;
        };
        rec.records += 1;
        pos += 12 + len;
        match record {
            Record::Submit { batch, jobs } => {
                rec.next_id = rec.next_id.max(batch + 1);
                pending.insert(batch, jobs);
            }
            Record::Start { .. } => {}
            Record::JobDone { batch, .. } => {
                *jobs_done.entry(batch).or_insert(0) += 1;
            }
            Record::BatchDone { batch } => {
                pending.remove(&batch);
            }
            Record::Next { id } => {
                rec.next_id = rec.next_id.max(id);
            }
        }
    }
    rec.jobs_done = pending.keys().filter_map(|b| jobs_done.get(b)).sum();
    rec.pending = pending.into_iter().collect();
    rec.valid_len = JOURNAL_MAGIC.len() + pos;
    rec
}

/// Handle on an open journal. All appends go through the [`Vfs`], so
/// tests can inject write failures; an append error leaves the on-disk
/// log with at most a torn tail, which the next replay tolerates.
#[derive(Debug)]
pub struct Journal {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    path: PathBuf,
    /// Batches submitted but not yet marked done (drives compaction).
    outstanding: Vec<u64>,
    next_id: u64,
}

impl Journal {
    /// Opens (or creates) the journal in `dir` and replays any existing
    /// log. The returned [`Recovery`] lists the batches a previous
    /// process left unfinished; the caller re-enqueues them and then
    /// records their completion through this same journal.
    ///
    /// # Errors
    ///
    /// Only on I/O errors that prevent having a journal at all (cannot
    /// create the directory, cannot write the magic). A torn or even
    /// fully corrupt existing file is handled, not an error.
    pub fn open(dir: &Path, vfs: Arc<dyn Vfs>) -> io::Result<(Journal, Recovery)> {
        vfs.create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let existing = match vfs.read(&path) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let foreign = existing
            .as_deref()
            .is_some_and(|b| !b.is_empty() && !b.starts_with(JOURNAL_MAGIC));
        let mut recovery = existing.as_deref().map(replay).unwrap_or_default();
        if foreign {
            // Foreign magic: preserve the file for forensics and start
            // fresh. Quarantine, never delete.
            let aside = dir.join(format!("{JOURNAL_FILE}.corrupt"));
            if let Err(e) = vfs.rename(&path, &aside) {
                // Starting fresh would truncate the evidence; refuse to
                // journal instead (the caller degrades to non-durable).
                return Err(io::Error::new(
                    io::ErrorKind::Other,
                    format!("cannot quarantine corrupt {}: {e}", path.display()),
                ));
            }
            recovery.quarantined = true;
            recovery.torn_tail = false;
        }
        // The log is usable when it starts with our magic; a missing,
        // empty, or just-quarantined file needs a fresh header.
        let usable = existing
            .as_deref()
            .is_some_and(|b| b.starts_with(JOURNAL_MAGIC));
        let mut journal = Journal {
            vfs,
            dir: dir.to_path_buf(),
            path,
            outstanding: recovery.pending.iter().map(|(id, _)| *id).collect(),
            next_id: recovery.next_id,
        };
        if !usable {
            // Fresh log: magic plus the id high-water mark, fsynced.
            journal.vfs.write_file(&journal.path, JOURNAL_MAGIC)?;
            journal.append(&Record::Next {
                id: journal.next_id,
            })?;
        } else if recovery.torn_tail {
            // Cut the torn tail before appending anything: a frame
            // written after a partial frame would be unreachable to the
            // next replay. Atomic rewrite, same recipe as compaction —
            // but here a failure is an open error, because appending to
            // an untrimmed log silently loses every new record.
            let existing = existing.as_deref().unwrap_or_default();
            let tmp = dir.join(format!("{JOURNAL_FILE}.tmp"));
            journal
                .vfs
                .write_file(&tmp, &existing[..recovery.valid_len])?;
            journal.vfs.rename(&tmp, &journal.path)?;
            journal.vfs.sync_dir(dir)?;
        }
        Ok((journal, recovery))
    }

    /// Opens the journal configured via `PRF_JOURNAL_DIR`, or `None`
    /// when unset. Open failures disable journaling with a diagnostic
    /// rather than refusing to serve.
    pub fn from_env(vfs: Arc<dyn Vfs>) -> Option<(Journal, Recovery)> {
        let dir = PathBuf::from(std::env::var_os("PRF_JOURNAL_DIR")?);
        match Journal::open(&dir, vfs) {
            Ok(opened) => Some(opened),
            Err(e) => {
                eprintln!(
                    "PRF_JOURNAL_DIR: cannot open journal in {}: {e}; serving WITHOUT durability",
                    dir.display()
                );
                None
            }
        }
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one record, fsyncing when the record class requires it
    /// (see the module docs). Tracks outstanding batches and compacts
    /// the log once none remain.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error; the on-disk log is left
    /// with at most a torn tail. The server reacts by flipping to a
    /// loud non-durable mode — it never refuses traffic over this.
    pub fn append(&mut self, record: &Record) -> io::Result<()> {
        let payload = record.to_json().to_json();
        self.vfs
            .append(&self.path, &frame(payload.as_bytes()), record.is_durable())?;
        match record {
            Record::Submit { batch, .. } => {
                self.next_id = self.next_id.max(batch + 1);
                if !self.outstanding.contains(batch) {
                    self.outstanding.push(*batch);
                }
            }
            Record::BatchDone { batch } => {
                self.outstanding.retain(|b| b != batch);
                if self.outstanding.is_empty() {
                    self.compact();
                }
            }
            Record::Next { id } => self.next_id = self.next_id.max(*id),
            _ => {}
        }
        Ok(())
    }

    /// Batches recorded as submitted but not yet done.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Rewrites the log as just `magic + Next{next_id}` — correct only
    /// when no batch is outstanding, which `append` guarantees at its
    /// call site. Best-effort: on failure the old (valid, longer) log
    /// simply survives, so errors are logged, not propagated.
    fn compact(&mut self) {
        let tmp = self.dir.join(format!("{JOURNAL_FILE}.tmp"));
        let mut bytes = JOURNAL_MAGIC.to_vec();
        bytes.extend_from_slice(&frame(
            Record::Next { id: self.next_id }
                .to_json()
                .to_json()
                .as_bytes(),
        ));
        let publish = self
            .vfs
            .write_file(&tmp, &bytes)
            .and_then(|()| self.vfs.rename(&tmp, &self.path))
            .and_then(|()| self.vfs.sync_dir(&self.dir));
        if let Err(e) = publish {
            eprintln!("journal: compaction failed ({e}); keeping the full log");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultPlan, FaultyVfs};
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("prf_journal_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(seed: u64) -> Json {
        Json::obj()
            .field("workload", "BFS")
            .field("rf", "partitioned")
            .field("seed", seed)
    }

    #[test]
    fn record_round_trips_through_json() {
        for record in [
            Record::Submit {
                batch: 3,
                jobs: vec![spec(0), spec(1)],
            },
            Record::Start { batch: 3, job: 1 },
            Record::JobDone { batch: 3, job: 1 },
            Record::BatchDone { batch: 3 },
            Record::Next { id: 9 },
        ] {
            let doc = record.to_json();
            assert_eq!(Record::from_json(&doc), Some(record));
        }
    }

    #[test]
    fn replay_recovers_unfinished_batches_only() {
        let dir = temp_dir("replay");
        let vfs = crate::vfs::real();
        {
            let (mut j, rec) = Journal::open(&dir, Arc::clone(&vfs)).unwrap();
            assert!(rec.pending.is_empty());
            j.append(&Record::Submit {
                batch: 0,
                jobs: vec![spec(0)],
            })
            .unwrap();
            j.append(&Record::Start { batch: 0, job: 0 }).unwrap();
            j.append(&Record::JobDone { batch: 0, job: 0 }).unwrap();
            j.append(&Record::Submit {
                batch: 1,
                jobs: vec![spec(1), spec(2)],
            })
            .unwrap();
            // Batch 0 never gets its BatchDone; the process "crashes".
        }
        let (j2, rec) = Journal::open(&dir, vfs).unwrap();
        assert_eq!(
            rec.pending.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(rec.pending[1].1.len(), 2, "specs survive verbatim");
        assert_eq!(rec.next_id, 2);
        assert_eq!(rec.jobs_done, 1, "batch 0 made progress before the crash");
        assert!(!rec.torn_tail);
        assert_eq!(j2.outstanding(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completion_of_every_batch_compacts_the_log() {
        let dir = temp_dir("compact");
        let vfs = crate::vfs::real();
        let (mut j, _) = Journal::open(&dir, Arc::clone(&vfs)).unwrap();
        for batch in 0..3u64 {
            j.append(&Record::Submit {
                batch,
                jobs: vec![spec(batch)],
            })
            .unwrap();
        }
        let grown = std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len();
        for batch in 0..3u64 {
            j.append(&Record::BatchDone { batch }).unwrap();
        }
        let compacted = std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len();
        assert!(
            compacted < grown,
            "compaction must shrink the log ({compacted} vs {grown})"
        );
        // The compacted log still carries the id high-water mark.
        let (_, rec) = Journal::open(&dir, vfs).unwrap();
        assert!(rec.pending.is_empty());
        assert_eq!(rec.next_id, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_loses_at_most_the_last_record() {
        let dir = temp_dir("torn");
        let vfs = crate::vfs::real();
        let (mut j, _) = Journal::open(&dir, Arc::clone(&vfs)).unwrap();
        j.append(&Record::Submit {
            batch: 0,
            jobs: vec![spec(0)],
        })
        .unwrap();
        j.append(&Record::Submit {
            batch: 1,
            jobs: vec![spec(1)],
        })
        .unwrap();
        let path = dir.join(JOURNAL_FILE);
        let full = std::fs::read(&path).unwrap();
        // Tear the final frame: drop its last 3 bytes.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (mut j2, rec) = Journal::open(&dir, Arc::clone(&vfs)).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(
            rec.pending.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![0],
            "only the torn record is lost"
        );
        // Open must have trimmed the tail: records appended after a torn
        // frame must be reachable to the next replay.
        j2.append(&Record::Submit {
            batch: 5,
            jobs: vec![spec(5)],
        })
        .unwrap();
        drop(j2);
        let (_, rec) = Journal::open(&dir, vfs).unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(
            rec.pending.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![0, 5],
            "the post-tear append survives the next replay"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_file_is_quarantined_not_deleted() {
        let dir = temp_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(JOURNAL_FILE);
        std::fs::write(&path, b"this is not a journal").unwrap();
        let vfs = crate::vfs::real();
        let (_, rec) = Journal::open(&dir, vfs).unwrap();
        assert!(rec.quarantined);
        assert!(!rec.torn_tail);
        assert_eq!(
            std::fs::read(dir.join(format!("{JOURNAL_FILE}.corrupt"))).unwrap(),
            b"this is not a journal",
            "foreign bytes preserved verbatim"
        );
        assert!(
            std::fs::read(&path).unwrap().starts_with(JOURNAL_MAGIC),
            "a fresh journal took its place"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn power_cut_mid_append_recovers_the_prefix() {
        let dir = temp_dir("powercut");
        let vfs = Arc::new(FaultyVfs::new());
        let (mut j, _) = Journal::open(&dir, vfs.clone() as Arc<dyn Vfs>).unwrap();
        j.append(&Record::Submit {
            batch: 0,
            jobs: vec![spec(0)],
        })
        .unwrap();
        vfs.set_plan(FaultPlan {
            power_cut_after_ops: Some(0),
            ..FaultPlan::default()
        });
        // The cut lands mid-frame: half the bytes reach the disk.
        assert!(j
            .append(&Record::Submit {
                batch: 1,
                jobs: vec![spec(1)],
            })
            .is_err());
        vfs.revive();
        let (_, rec) = Journal::open(&dir, vfs as Arc<dyn Vfs>).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(
            rec.pending.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![0],
            "the un-acknowledged record is the only loss"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_failure_leaves_log_replayable() {
        let dir = temp_dir("enospc");
        let vfs = Arc::new(FaultyVfs::new());
        let (mut j, _) = Journal::open(&dir, vfs.clone() as Arc<dyn Vfs>).unwrap();
        j.append(&Record::Submit {
            batch: 0,
            jobs: vec![spec(0)],
        })
        .unwrap();
        vfs.set_plan(FaultPlan {
            fail_writes: true,
            ..FaultPlan::default()
        });
        assert!(j.append(&Record::BatchDone { batch: 0 }).is_err());
        vfs.revive();
        let (_, rec) = Journal::open(&dir, vfs as Arc<dyn Vfs>).unwrap();
        // The failed BatchDone never landed, so recovery conservatively
        // re-offers batch 0 — the cache makes the re-run free.
        assert_eq!(rec.pending.len(), 1);
        assert!(!rec.torn_tail, "ENOSPC wrote nothing: no torn frame");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
