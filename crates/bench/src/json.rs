//! A minimal JSON value type with a writer and a parser.
//!
//! The harness builds offline with no external crates, so the structured
//! run reports ([`crate::bench_report`]) and the Chrome-trace exporter
//! ([`crate::chrometrace`]) serialise through this instead of serde. The
//! dialect is plain RFC 8259 JSON; the only liberty taken is that
//! non-finite numbers serialise as `null` (JSON has no NaN/inf).

use std::fmt::Write as _;

/// A JSON value. Objects keep insertion order so rendered reports are
/// deterministic and diffable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers included; exact for |x| ≤ 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key–value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder seed: `Json::obj().field("k", v)…`.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object (panics on non-objects — builder use
    /// only).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's float Display is shortest-round-trip and never
                    // emits exponents, both of which are valid JSON.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => Self::write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Self::write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                // Control characters must be escaped; everything past
                // ASCII is escaped too so the output is 7-bit clean (and
                // the surrogate-pair path below is actually exercised).
                c if (c as u32) < 0x20 || (c as u32) > 0x7E => Self::write_u_escape(c, out),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Writes one `\uXXXX` escape — as a UTF-16 surrogate pair for
    /// supplementary-plane characters. A single `\u{:04x}` would silently
    /// truncate any code point above U+FFFF into invalid JSON (RFC 8259
    /// §7 requires the pair encoding), which the crate's own parser —
    /// which decodes pairs — would then reject or mis-read.
    fn write_u_escape(c: char, out: &mut String) {
        let code = c as u32;
        if code <= 0xFFFF {
            let _ = write!(out, "\\u{code:04x}");
        } else {
            let v = code - 0x10000;
            let hi = 0xD800 + (v >> 10);
            let lo = 0xDC00 + (v & 0x3FF);
            let _ = write!(out, "\\u{hi:04x}\\u{lo:04x}");
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a byte offset and message on malformed input, including
    /// trailing garbage after the top-level value and nesting deeper than
    /// [`MAX_PARSE_DEPTH`] (the parser is recursive-descent, so the depth
    /// cap is what turns a `[[[[…` bomb into an error instead of a stack
    /// overflow).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

/// Maximum container nesting depth [`Json::parse`] accepts. Real reports
/// nest a handful of levels; the cap exists so untrusted input (the
/// `prf-serve` wire protocol parses with this) cannot overflow the
/// recursive-descent parser's stack.
pub const MAX_PARSE_DEPTH: usize = 128;

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_PARSE_DEPTH} levels")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            // The input is valid UTF-8 (it's a &str) and we only stopped on
            // ASCII bytes, so the span is valid UTF-8 too.
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("str input"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if self.bytes[self.pos..].starts_with(b"\\u") {
                        self.pos += 2;
                        let lo = self.hex4()?;
                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF)
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?
            }
            _ => return Err(self.err("unknown escape character")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("non-hex digits in \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("str input");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let doc = Json::obj()
            .field("name", "fig11")
            .field("jobs", 3u64)
            .field("ipc", 2.5)
            .field("clean", true)
            .field("audit", Json::Null)
            .field("tags", Json::Arr(vec!["a".into(), "b".into()]));
        assert_eq!(
            doc.to_json(),
            r#"{"name":"fig11","jobs":3,"ipc":2.5,"clean":true,"audit":null,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(s.to_json(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_json(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn round_trips_through_the_parser() {
        let doc = Json::obj()
            .field("schema_version", 1u64)
            .field(
                "nested",
                Json::obj().field("xs", Json::Arr(vec![1u64.into(), 2.75.into()])),
            )
            .field("text", "line1\nline2 \"quoted\"")
            .field("none", Json::Null)
            .field("neg", Json::Num(-42.0));
        let text = doc.to_json();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let parsed =
            Json::parse(" { \"k\" : [ 1 , -2.5e1 , \"\\u0041\\t\" , true , null ] } ").unwrap();
        let arr = parsed.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("A\t"));
        assert_eq!(arr[3].as_bool(), Some(true));
        assert_eq!(arr[4], Json::Null);
    }

    #[test]
    fn parses_surrogate_pairs() {
        let parsed = Json::parse(r#""😀""#).unwrap();
        assert_eq!(parsed.as_str(), Some("😀"));
    }

    #[test]
    fn writes_surrogate_pairs_for_non_bmp_chars() {
        // Regression: U+1F600 used to serialise as the single (invalid)
        // escape `ὠ0`-style truncation; it must be the RFC 8259
        // surrogate pair.
        assert_eq!(Json::Str("😀".into()).to_json(), "\"\\ud83d\\ude00\"");
        // BMP non-ASCII gets a single escape; output stays 7-bit clean.
        assert_eq!(Json::Str("é".into()).to_json(), "\"\\u00e9\"");
        assert!(Json::Str("naïve 🚀 κόσμε".into()).to_json().is_ascii());
    }

    #[test]
    fn strings_round_trip_through_own_parser() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "control \u{1}\u{1f}\u{7f}",
            "bmp: é κ ‚ \u{fffd}",
            "astral: 😀 🚀 \u{10FFFF} \u{10000}",
            "mixed\n\t😀é\r",
            "",
        ] {
            let rendered = Json::Str(s.to_string()).to_json();
            assert_eq!(
                Json::parse(&rendered).unwrap().as_str(),
                Some(s),
                "rendered: {rendered}"
            );
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("01x").is_err());
    }

    #[test]
    fn accessor_types_are_strict() {
        let n = Json::Num(1.5);
        assert_eq!(n.as_f64(), Some(1.5));
        assert_eq!(n.as_u64(), None, "fractional numbers are not integers");
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn nesting_bombs_error_instead_of_overflowing_the_stack() {
        // A megabyte of `[` used to recurse once per byte; now it must
        // come back as a depth error at offset MAX_PARSE_DEPTH-ish.
        let bomb = "[".repeat(1 << 20);
        let err = Json::parse(&bomb).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let obj_bomb = "{\"k\":".repeat(1 << 18);
        assert!(Json::parse(&obj_bomb)
            .unwrap_err()
            .message
            .contains("nesting"));

        // …while the cap stays far above anything the reports produce.
        let mut doc = "1".to_string();
        for _ in 0..MAX_PARSE_DEPTH {
            doc = format!("[{doc}]");
        }
        assert!(Json::parse(&doc).is_ok());
        assert!(Json::parse(&format!("[{doc}]")).is_err());
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            /// Arbitrary byte strings — decoded lossily, as the serve
            /// read path does — never panic the parser: every input is
            /// either parsed or rejected with an offset.
            #[test]
            fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
                let text = String::from_utf8_lossy(&bytes);
                let _ = Json::parse(&text);
            }

            /// JSON-flavoured garbage (high density of structural bytes,
            /// escapes, and digits) never panics either — this alphabet
            /// reaches far deeper into the grammar than uniform bytes.
            #[test]
            fn jsonish_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
                const ALPHABET: &[u8] = br#"[]{}",:0123456789eEuU+.\ tfn-"#;
                let text: String = bytes
                    .iter()
                    .map(|b| ALPHABET[*b as usize % ALPHABET.len()] as char)
                    .collect();
                let _ = Json::parse(&text);
            }
        }
    }
}
