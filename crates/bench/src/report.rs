//! CSV export for experiment results.
//!
//! Every figure binary prints a human-readable table; when the
//! `PRF_CSV_DIR` environment variable is set, it additionally writes the
//! same series as CSV into that directory, ready for plotting.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple CSV table builder (no external dependency; values are
/// escaped per RFC 4180 when needed).
#[derive(Debug, Clone)]
pub struct CsvTable {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(columns: impl IntoIterator<Item = S>) -> Self {
        CsvTable {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row<S: Into<String>>(&mut self, values: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = values.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != header width {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
        self
    }

    /// Column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Data rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn escape(field: &str) -> String {
        if field.contains([',', '"', '\n']) {
            format!("\"{}\"", field.replace('"', "\"\""))
        } else {
            field.to_string()
        }
    }

    /// Renders the table as a CSV string.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let header: Vec<String> = self.columns.iter().map(|c| Self::escape(c)).collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in &self.rows {
            let fields: Vec<String> = row.iter().map(|f| Self::escape(f)).collect();
            out.push_str(&fields.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the table to `$PRF_CSV_DIR/<name>.csv` when the environment
    /// variable is set; otherwise does nothing. Returns the path written.
    /// The name is passed through [`safe_file_name`] first, so a label
    /// containing `/` or `..` cannot escape the configured directory.
    pub fn write_if_configured(&self, name: &str) -> Option<PathBuf> {
        let dir = std::env::var_os("PRF_CSV_DIR")?;
        let dir = PathBuf::from(dir);
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("PRF_CSV_DIR: cannot create {}: {e}", dir.display());
            return None;
        }
        let path = dir.join(format!("{}.csv", safe_file_name(name)));
        match fs::File::create(&path).and_then(|mut f| f.write_all(self.to_csv().as_bytes())) {
            Ok(()) => {
                eprintln!("wrote {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("PRF_CSV_DIR: cannot write {}: {e}", path.display());
                None
            }
        }
    }
}

/// Formats a fraction as a percentage string with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

/// Restricts a report name to `[A-Za-z0-9_.-]` for use as a file stem:
/// every other byte (path separators, spaces, `..` smuggled via `/`)
/// becomes `_`, so names derived from job labels cannot escape the
/// configured output directory. Empty input yields `"unnamed"`.
///
/// The mapping is **injective**: whenever any character was substituted
/// (or the input was empty), a short content hash of the *original* name
/// is appended, so distinct labels like `"a/b"` and `"a_b"` can never
/// sanitise to the same file and silently clobber each other's
/// `BENCH_*.json`/CSV/cache artifacts. Names that are already clean pass
/// through unchanged, keeping existing file names (and the committed
/// baselines) stable.
///
/// The CSV, JSON-report, Chrome-trace, and result-cache writers all
/// route file names through this.
pub fn safe_file_name(name: &str) -> String {
    if name.is_empty() {
        return format!("unnamed-{}", crate::digest::short_hash(name));
    }
    let mut substituted = false;
    let sanitized: String = name
        .chars()
        .map(|c| match c {
            'A'..='Z' | 'a'..='z' | '0'..='9' | '_' | '.' | '-' => c,
            _ => {
                substituted = true;
                '_'
            }
        })
        .collect();
    if substituted {
        format!("{sanitized}-{}", crate::digest::short_hash(name))
    } else {
        sanitized
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_simple_csv() {
        let mut t = CsvTable::new(["workload", "top3"]);
        t.row(["BFS", "62.1"]);
        t.row(["btree", "59.0"]);
        assert_eq!(t.to_csv(), "workload,top3\nBFS,62.1\nbtree,59.0\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn escapes_commas_and_quotes() {
        let mut t = CsvTable::new(["a"]);
        t.row(["x,y"]);
        t.row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = CsvTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.629), "62.9");
    }

    #[test]
    fn safe_file_name_defuses_path_escapes() {
        use crate::digest::short_hash;
        // Already-clean names pass through untouched (committed baseline
        // files keep their names).
        assert_eq!(safe_file_name("fig11_energy"), "fig11_energy");
        // Substituted names carry a short hash of the original.
        assert_eq!(
            safe_file_name("../../etc/passwd"),
            format!(".._.._etc_passwd-{}", short_hash("../../etc/passwd"))
        );
        assert_eq!(
            safe_file_name("/absolute/path"),
            format!("_absolute_path-{}", short_hash("/absolute/path"))
        );
        assert_eq!(
            safe_file_name("BFS/partitioned seed 2"),
            format!(
                "BFS_partitioned_seed_2-{}",
                short_hash("BFS/partitioned seed 2")
            )
        );
        assert!(safe_file_name("nul\0byte").starts_with("nul_byte-"));
        assert!(safe_file_name("").starts_with("unnamed-"));
    }

    #[test]
    fn safe_file_name_is_injective_on_colliding_labels() {
        // Regression: "a/b" and "a_b" used to both map to "a_b", letting
        // two benches silently overwrite each other's artifacts.
        assert_ne!(safe_file_name("a/b"), safe_file_name("a_b"));
        assert_ne!(safe_file_name("a/b"), safe_file_name("a b"));
        assert_ne!(safe_file_name("a/b"), safe_file_name("a\\b"));
        assert_ne!(safe_file_name(""), safe_file_name("unnamed"));
        // Both still start with the readable sanitised stem.
        assert!(safe_file_name("a/b").starts_with("a_b-"));
        // Deterministic across calls.
        assert_eq!(safe_file_name("a/b"), safe_file_name("a/b"));
    }

    /// Serialises the tests that mutate `PRF_CSV_DIR` (the test harness
    /// runs tests concurrently and the environment is process-global).
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn write_sanitizes_hostile_names() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("prf_csv_sanitize_test");
        std::env::set_var("PRF_CSV_DIR", &dir);
        let mut t = CsvTable::new(["k"]);
        t.row(["v"]);
        let path = t.write_if_configured("../escape").expect("written");
        std::env::remove_var("PRF_CSV_DIR");
        // The file landed inside the directory, not beside it.
        assert_eq!(path.parent().unwrap(), dir.as_path());
        let expected = format!(".._escape-{}.csv", crate::digest::short_hash("../escape"));
        assert_eq!(path.file_name().unwrap().to_str().unwrap(), expected);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn write_respects_env() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("prf_csv_test");
        std::env::set_var("PRF_CSV_DIR", &dir);
        let mut t = CsvTable::new(["k", "v"]);
        t.row(["a", "1"]);
        let path = t.write_if_configured("unit_test").expect("written");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("k,v"));
        std::env::remove_var("PRF_CSV_DIR");
        assert!(t.write_if_configured("unit_test").is_none());
        let _ = std::fs::remove_dir_all(dir);
    }
}
