//! Canonical, content-addressed job digests.
//!
//! A job digest is a stable SHA-256 over everything that determines a
//! simulation's outcome: the full `GpuConfig` (jitter seed included),
//! the workload (kernel instruction streams, launch geometry, memory
//! image), the `RfKind` under test, and the fault campaign. Two jobs
//! with the same digest are guaranteed to produce bit-identical
//! [`prf_core::ExperimentResult`]s, which is what lets the on-disk result
//! cache ([`crate::cache`]) serve a lookup instead of a simulation.
//!
//! ## Encoding and stability rules
//!
//! The hash input is a deterministic, field-ordered byte encoding built
//! by [`DigestBuilder`]: every field is framed as
//! `<label> '=' <value> '\x1f'` inside labelled `section(..)` frames, so
//! neither reordering nor concatenation ambiguity ("ab"+"c" vs "a"+"bc")
//! can alias two distinct jobs. Structured configuration (`GpuConfig`,
//! `RfKind`, repair policies) is fed through its `Debug` rendering, which
//! Rust derives in declaration order: **any** added, removed, renamed, or
//! retyped config field changes the encoding and therefore the digest —
//! old cache entries for a changed struct can never be served for a new
//! build's jobs. None of the digested types may contain `HashMap`/
//! `HashSet` state (iteration order would break determinism); they are
//! all `Vec`/scalar shaped today, and the determinism test in
//! `tests/cache_shard.rs` guards the contract.
//!
//! On top of the structural self-versioning, [`DIGEST_VERSION`] is mixed
//! into every digest. Bump it whenever the *semantics* of a field change
//! without its `Debug` shape changing (e.g. a latency that used to mean
//! "cycles" now means "half-cycles"), or when the cached result format
//! changes incompatibly ([`crate::cache::CACHE_SCHEMA_VERSION`] is mixed
//! in by the cache layer for exactly that reason).

use std::fmt::Write as _;

use crate::runner::Job;

/// Version of the digest encoding itself. Bump on any semantic change
/// that the structural (Debug-shaped) encoding would not capture.
pub const DIGEST_VERSION: u64 = 1;

/// A minimal, dependency-free SHA-256 (FIPS 180-4). Plenty fast for
/// hashing job descriptions — the unit of work here is an entire GPU
/// simulation, not a packet.
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hash state.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finish(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 32];
        for (chunk, s) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&s.to_be_bytes());
        }
        out
    }

    /// Finishes and renders lowercase hex.
    pub fn finish_hex(self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.finish() {
            let _ = write!(s, "{b:02x}");
        }
        s
    }
}

/// Builds the canonical byte encoding that a job digest hashes.
///
/// Every value is framed as `label '=' value '\x1f'` (unit separator) so
/// adjacent fields cannot alias, and nested structures open/close named
/// frames. Field order is fixed by the call sequence, mirroring struct
/// declaration order.
pub struct DigestBuilder {
    hasher: Sha256,
}

impl Default for DigestBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DigestBuilder {
    /// Fresh builder, pre-seeded with the encoding version frame.
    pub fn new() -> Self {
        let mut b = DigestBuilder {
            hasher: Sha256::new(),
        };
        b.field_u64("digest_version", DIGEST_VERSION);
        b
    }

    /// Opens a labelled section frame.
    pub fn section(&mut self, name: &str) -> &mut Self {
        self.hasher.update(b"\x1d");
        self.hasher.update(name.as_bytes());
        self.hasher.update(b"\x1e");
        self
    }

    /// A labelled raw-bytes field (length-prefixed: arbitrary payloads
    /// cannot forge the framing).
    pub fn field_bytes(&mut self, label: &str, bytes: &[u8]) -> &mut Self {
        self.hasher.update(label.as_bytes());
        self.hasher.update(b"=");
        self.hasher.update(&(bytes.len() as u64).to_le_bytes());
        self.hasher.update(bytes);
        self.hasher.update(b"\x1f");
        self
    }

    /// A labelled string field.
    pub fn field_str(&mut self, label: &str, s: &str) -> &mut Self {
        self.field_bytes(label, s.as_bytes())
    }

    /// A labelled integer field.
    pub fn field_u64(&mut self, label: &str, v: u64) -> &mut Self {
        self.field_bytes(label, &v.to_le_bytes())
    }

    /// A labelled `Debug`-rendered field. Rust derives `Debug` in field
    /// declaration order, so this is a deterministic field-ordered
    /// encoding for any (HashMap-free) config struct — and it changes
    /// whenever the struct does, which is the cache-invalidation rule.
    pub fn field_debug(&mut self, label: &str, v: &impl std::fmt::Debug) -> &mut Self {
        let rendered = format!("{v:?}");
        self.field_bytes(label, rendered.as_bytes())
    }

    /// Finishes into a lowercase-hex digest string.
    pub fn finish_hex(self) -> String {
        self.hasher.finish_hex()
    }
}

/// The canonical content digest of one matrix [`Job`]: a pure function of
/// (GpuConfig, workload, RfKind, fault campaign, digest version). The
/// job's display `name` is deliberately excluded — relabelling a job must
/// not force a re-simulation.
pub fn job_digest(job: &Job) -> String {
    let mut b = DigestBuilder::new();

    // GpuConfig — Debug covers every field (jitter_seed, scheduler,
    // sampling, audit, ...) in declaration order. sm_threads and
    // skip_ahead are bit-identity-neutral by construction, but they stay
    // in the digest: proving neutrality is the simulator's test suite's
    // job, not the cache's.
    b.section("gpu").field_debug("config", &job.gpu);

    // RF organisation, nested configs included.
    b.section("rf").field_debug("kind", &job.rf);

    // Workload: kernel streams, launch geometry, memory image.
    b.section("workload")
        .field_str("name", job.workload.name)
        .field_debug("category", &job.workload.category)
        .field_u64("launches", job.workload.launches.len() as u64);
    for (i, launch) in job.workload.launches.iter().enumerate() {
        b.section("launch")
            .field_u64("index", i as u64)
            .field_str("kernel", launch.kernel.name())
            .field_u64(
                "regs_per_thread",
                u64::from(launch.kernel.regs_per_thread()),
            )
            .field_debug("instructions", &launch.kernel.instructions())
            .field_u64("num_ctas", u64::from(launch.grid.num_ctas))
            .field_u64("threads_per_cta", u64::from(launch.grid.threads_per_cta));
    }
    b.section("mem_init")
        .field_u64("blocks", job.workload.mem_init.len() as u64);
    for (base, words) in &job.workload.mem_init {
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        b.field_u64("base", u64::from(*base))
            .field_bytes("words", &bytes);
    }

    // Fault campaign: the map's canonical text form plus the policy.
    match &job.faults {
        None => {
            b.section("faults").field_str("campaign", "none");
        }
        Some(fc) => {
            b.section("faults")
                .field_str("map", &fc.map.to_text())
                .field_debug("policy", &fc.policy);
        }
    }

    b.finish_hex()
}

/// Short (8 hex chars, 32 bits) content hash of a string — used by
/// [`crate::report::safe_file_name`] to keep sanitised file names
/// injective without making every name 64 chars longer.
pub fn short_hash(s: &str) -> String {
    let mut h = Sha256::new();
    h.update(s.as_bytes());
    h.finish_hex()[..8].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_core::RfKind;
    use prf_sim::{GpuConfig, SchedulerPolicy};

    #[test]
    fn sha256_matches_known_vectors() {
        // FIPS 180-4 / RFC 6234 test vectors.
        let empty = Sha256::new().finish_hex();
        assert_eq!(
            empty,
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        let mut h = Sha256::new();
        h.update(b"abc");
        assert_eq!(
            h.finish_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        let mut h = Sha256::new();
        h.update(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
        assert_eq!(
            h.finish_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Multi-part absorption across block boundaries agrees with
        // one-shot hashing.
        let data = vec![0xa5u8; 1000];
        let mut one = Sha256::new();
        one.update(&data);
        let mut parts = Sha256::new();
        for chunk in data.chunks(77) {
            parts.update(chunk);
        }
        assert_eq!(one.finish_hex(), parts.finish_hex());
    }

    fn tiny_job(seed: u64) -> crate::runner::Job {
        let w = prf_workloads::suite::bfs();
        let gpu = GpuConfig {
            jitter_seed: seed,
            ..GpuConfig::kepler_single_sm()
        };
        crate::runner::Job::new("job", &w, &gpu, &RfKind::MrfStv)
    }

    #[test]
    fn digest_is_deterministic_and_seed_sensitive() {
        assert_eq!(job_digest(&tiny_job(1)), job_digest(&tiny_job(1)));
        assert_ne!(job_digest(&tiny_job(1)), job_digest(&tiny_job(2)));
    }

    #[test]
    fn digest_ignores_the_display_name() {
        let mut a = tiny_job(1);
        let mut b = tiny_job(1);
        a.name = "first-label".into();
        b.name = "second-label".into();
        assert_eq!(job_digest(&a), job_digest(&b));
    }

    #[test]
    fn digest_distinguishes_rf_and_scheduler_and_faults() {
        let base = tiny_job(1);
        let mut rf = tiny_job(1);
        rf.rf = RfKind::MrfNtv { latency: 3 };
        assert_ne!(job_digest(&base), job_digest(&rf));

        let mut sched = tiny_job(1);
        sched.gpu.scheduler = SchedulerPolicy::Lrr;
        assert_ne!(job_digest(&base), job_digest(&sched));

        let faulted = base
            .clone()
            .with_faults(Some(crate::fault_config_for(42, 0.3)));
        assert_ne!(job_digest(&base), job_digest(&faulted));
        let refaulted = tiny_job(1).with_faults(Some(crate::fault_config_for(42, 0.3)));
        assert_eq!(job_digest(&faulted), job_digest(&refaulted));
    }

    #[test]
    fn framing_prevents_concatenation_aliasing() {
        let mut a = DigestBuilder::new();
        a.field_str("x", "ab").field_str("y", "c");
        let mut b = DigestBuilder::new();
        b.field_str("x", "a").field_str("y", "bc");
        assert_ne!(a.finish_hex(), b.finish_hex());
    }

    #[test]
    fn short_hash_is_stable() {
        assert_eq!(short_hash("a/b"), short_hash("a/b"));
        assert_ne!(short_hash("a/b"), short_hash("a_b"));
        assert_eq!(short_hash("x").len(), 8);
    }
}
