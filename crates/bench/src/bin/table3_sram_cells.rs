//! Table III — characteristics of the 8T SRAM cells built in 7 nm FinFET:
//! operating voltage, ON current, and static noise margin for NTV,
//! STV with back gate at Vdd, and STV with back gate grounded.

use prf_bench::report::CsvTable;
use prf_bench::{header, RunReport};
use prf_finfet::{BackGate, FinFet, SramCell, NTV, STV};

fn main() {
    header(
        "Table III: 8T SRAM cell characteristics (7nm FinFET)",
        "NTV: 7.505e-4 A/um, SNM 0.092V | STV BG=Vdd: 2.372e-3, 0.144V | STV BG=0: 2.427e-4, 0.096V",
    );
    let rows = [
        ("NTV", NTV, BackGate::Vdd, 7.505e-4, 0.092),
        ("STV, BG=Vdd", STV, BackGate::Vdd, 2.372e-3, 0.144),
        ("STV, BG=0", STV, BackGate::Grounded, 2.427e-4, 0.096),
    ];
    println!(
        "{:<14} {:>8} {:>14} {:>14} {:>10} {:>10}",
        "design", "V", "Ion meas", "Ion paper", "SNM meas", "SNM paper"
    );
    let mut report = RunReport::new("table3_sram_cells");
    let mut table = CsvTable::new([
        "design",
        "vdd_v",
        "ion_a_per_um",
        "ion_paper",
        "snm_v",
        "snm_paper",
    ]);
    for (name, vdd, bg, ion_paper, snm_paper) in rows {
        let dev = FinFet { back_gate: bg };
        let ion = dev.ion(vdd);
        let snm = SramCell::T8.snm(vdd, bg);
        println!(
            "{:<14} {:>8.2} {:>13.4e} {:>13.4e} {:>9.3}V {:>9.3}V",
            name, vdd, ion, ion_paper, snm, snm_paper
        );
        table.row([
            name.to_string(),
            format!("{vdd:.2}"),
            format!("{ion:.4e}"),
            format!("{ion_paper:.4e}"),
            format!("{snm:.3}"),
            format!("{snm_paper:.3}"),
        ]);
    }
    report.add_table("table3_8t_cell", &table);
    println!();
    let ratio = FinFet::dual_gate().ion(STV) / FinFet::front_gate_only().ion(STV);
    println!(
        "dual-gate vs front-gate-only drive at STV: {ratio:.1}x  \
         (paper: \"the current is 9 times larger\")"
    );
    println!();
    println!("All SRAM cells, nominal SNM (V):");
    println!(
        "{:<6} {:>10} {:>10} {:>12}",
        "cell", "STV", "NTV", "area (rel)"
    );
    for cell in SramCell::ALL {
        println!(
            "{:<6} {:>10.3} {:>10.3} {:>12.2}",
            cell.to_string(),
            cell.snm(STV, BackGate::Vdd),
            cell.snm(NTV, BackGate::Vdd),
            cell.area_rel()
        );
    }
    println!();
    println!(
        "8T chosen: NTV-stable (SNM 0.092V) at near-minimal area; \
         6T is larger yet has only {:.3}V at STV (paper §IV-A).",
        SramCell::T6.snm(STV, BackGate::Vdd)
    );
    report.add_metric("dual_gate_drive_ratio", ratio);
    report.add_metric("t8_snm_ntv_v", SramCell::T8.snm(NTV, BackGate::Vdd));
    report.add_metric("t6_snm_stv_v", SramCell::T6.snm(STV, BackGate::Vdd));
    report.write();
}
