//! Methodology validation — single-SM vs full-chip simulation.
//!
//! The experiments in this repository (like most RF studies) simulate one
//! SM with its share of CTAs because register-file behaviour is per-SM.
//! This binary validates that choice: it runs a subset of workloads on the
//! full 15-SM GTX-780-like configuration and compares the RF-level
//! statistics against the single-SM runs. It also contextualises the RF
//! saving at chip level using the paper's GPUWattch shares (§I: "the RF
//! consumes 13.4% and 17.2% of the GTX-480 and Quadro FX5600 chips
//! power").

use prf_bench::{header, run_cells_reported, Cell};
use prf_core::{ChipProfile, PartitionedRfConfig, RfKind};
use prf_sim::{GpuConfig, RfPartition, SchedulerPolicy};

fn main() {
    header(
        "Validation: single-SM methodology vs full 15-SM chip",
        "per-SM RF statistics should match; chip-level saving = RF share x RF saving",
    );
    let names = ["backprop", "srad", "kmeans", "LIB"];

    // 4 workloads × {1 SM, 15 SMs} as one matrix — the 15-SM runs are the
    // heavyweight jobs this binary exists to parallelise.
    let workloads: Vec<_> = names
        .iter()
        .map(|name| prf_workloads::by_name(name).expect("known workload"))
        .collect();
    let cells: Vec<Cell> = workloads
        .iter()
        .flat_map(|w| {
            [1usize, 15].map(|sms| {
                let gpu = GpuConfig {
                    num_sms: sms,
                    scheduler: SchedulerPolicy::Gto,
                    audit: prf_bench::audit_from_args(),
                    ..GpuConfig::kepler_gtx780()
                };
                let rf = RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks));
                Cell::new(w, &gpu, &rf)
            })
        })
        .collect();
    let (results, report, run_report) = run_cells_reported("validation_multi_sm", &cells, 1);

    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "workload", "1-SM FRF%", "15-SM FRF%", "1-SM save", "15-SM save"
    );
    let mut savings = Vec::new();
    for (name, r) in names.iter().zip(results.chunks(2)) {
        let row: Vec<(f64, f64)> = r
            .iter()
            .map(|res| {
                let pa = &res.stats.partition_accesses;
                let frf = pa.fraction(RfPartition::FrfHigh) + pa.fraction(RfPartition::FrfLow);
                (frf, res.dynamic_saving())
            })
            .collect();
        println!(
            "{:<12} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}%",
            name,
            100.0 * row[0].0,
            100.0 * row[1].0,
            100.0 * row[0].1,
            100.0 * row[1].1,
        );
        savings.push(row[0].1);
    }
    let mean_saving = savings.iter().sum::<f64>() / savings.len() as f64;
    println!();
    println!("chip-level context (paper §I, GPUWattch):");
    for chip in [ChipProfile::gtx480(), ChipProfile::quadro_fx5600()] {
        println!(
            "  {:<14} RF = {:>4.1}% of chip power -> partitioned RF saves {:>4.1}% of chip power",
            chip.name,
            100.0 * chip.rf_power_share,
            100.0 * chip.chip_saving(mean_saving.clamp(0.0, 1.0))
        );
    }
    println!();
    println!("{}", report.footer());
    run_report.write();
}
