//! Table IV — size, access energy, and leakage power for the partitioned
//! register file structures and the monolithic baseline, plus the §III-B
//! swapping-table CAM characterisation and the <10% area-overhead claim.

use prf_bench::report::CsvTable;
use prf_bench::{header, RunReport};
use prf_finfet::array::{characterize, partitioned_rf_area_mm2, ArraySpec};
use prf_finfet::{SwapTableCam, TechNode};

fn main() {
    header(
        "Table IV: RF structure characteristics (FinCACTI-like model)",
        "FRF_low 5.25pJ | FRF_high 7.65pJ/7.28mW/32KB | SRF 7.03pJ/13.4mW/224KB | MRF 14.9pJ/33.8mW/256KB",
    );
    let rows = [
        ("FRF_low", ArraySpec::frf_low(), 5.25, 7.28, 32.0),
        ("FRF_high", ArraySpec::frf_high(), 7.65, 7.28, 32.0),
        ("SRF", ArraySpec::srf(), 7.03, 13.4, 224.0),
        ("MRF", ArraySpec::mrf_stv(), 14.9, 33.8, 256.0),
    ];
    println!(
        "{:<10} {:>10} {:>10} {:>11} {:>11} {:>8} {:>10}",
        "RF type", "E/acc pJ", "paper pJ", "leak mW", "paper mW", "size KB", "t_acc ns"
    );
    let mut report = RunReport::new("table4_rf_energy");
    let mut table = CsvTable::new([
        "rf_type",
        "access_energy_pj",
        "paper_pj",
        "leakage_mw",
        "paper_mw",
        "size_kb",
        "access_time_ns",
    ]);
    for (name, spec, e_paper, l_paper, kb) in rows {
        let c = characterize(&spec);
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>11.2} {:>11.2} {:>8.0} {:>10.3}",
            name, c.access_energy_pj, e_paper, c.leakage_mw, l_paper, kb, c.access_time_ns
        );
        table.row([
            name.to_string(),
            format!("{:.3}", c.access_energy_pj),
            format!("{e_paper:.2}"),
            format!("{:.3}", c.leakage_mw),
            format!("{l_paper:.2}"),
            format!("{kb:.0}"),
            format!("{:.3}", c.access_time_ns),
        ]);
    }
    report.add_table("table4_rf_structures", &table);
    println!();
    let base_area = characterize(&ArraySpec::mrf_stv()).area_mm2;
    let prop_area = partitioned_rf_area_mm2();
    println!(
        "area: baseline {base_area:.3} mm^2 -> proposed {prop_area:.3} mm^2 \
         (+{:.1}%; paper: 0.2 -> 0.214, <10%)",
        100.0 * (prop_area - base_area) / base_area
    );

    println!();
    println!("Swapping-table CAM (2n = 8 entries x 13 bits = 104 bits):");
    println!(
        "{:<12} {:>12} {:>14} {:>16}",
        "node", "delay ps", "paper ps", "search energy fJ"
    );
    let paper = [105.0, 95.0, 55.0];
    for (node, p) in TechNode::ALL.iter().zip(paper) {
        let cam = SwapTableCam::reference(*node);
        println!(
            "{:<12} {:>12.0} {:>14.0} {:>16.1}",
            node.to_string(),
            cam.search_delay_ps(),
            p,
            cam.search_energy_fj()
        );
        assert!(cam.fits_in_cycle_fraction(0.10), "<10% of a 900MHz cycle");
    }
    println!("all nodes < 10% of a 900 MHz clock cycle, as in §III-B");
    report.add_metric("baseline_area_mm2", base_area);
    report.add_metric("proposed_area_mm2", prop_area);
    report.add_metric("area_overhead", (prop_area - base_area) / base_area);
    report.write();
}
