//! Diagnostic probe: per-workload pipeline statistics under each RF
//! organisation. Not part of the paper reproduction — a tool for
//! understanding where cycles go.

use prf_bench::{experiment_gpu, run_workload, SingleRunReporter};
use prf_core::{PartitionedRfConfig, RfKind};
use prf_sim::SchedulerPolicy;

/// Positional arguments: everything that is not an observability flag
/// (`--sample <w>` / `--trace-out <path>` and their `=` forms take a
/// value and are handled inside prf-bench).
fn workload_args() -> Vec<String> {
    let mut names = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--sample" || a == "--trace-out" {
            let _ = args.next();
        } else if !a.starts_with("--") {
            names.push(a);
        }
    }
    names
}

fn main() {
    let names = workload_args();
    let sched = match std::env::var("DIAG_SCHED").as_deref() {
        Ok("lrr") => SchedulerPolicy::Lrr,
        _ => SchedulerPolicy::Gto,
    };
    let gpu = experiment_gpu(sched);
    let mut reporter = SingleRunReporter::new("diag");
    for name in names {
        let w = prf_workloads::by_name(&name).expect("unknown workload");
        for (label, rf) in [
            ("MRF@STV", RfKind::MrfStv),
            ("MRF@NTV", RfKind::MrfNtv { latency: 3 }),
            (
                "partitioned",
                RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks)),
            ),
            (
                "part-noadapt",
                RfKind::Partitioned(PartitionedRfConfig::without_adaptive(gpu.num_rf_banks)),
            ),
            (
                "part-alwayslow",
                RfKind::Partitioned(PartitionedRfConfig {
                    adaptive: Some(prf_core::AdaptiveFrfConfig {
                        epoch_length: 50,
                        threshold: u32::MAX,
                    }),
                    ..PartitionedRfConfig::paper_default(gpu.num_rf_banks)
                }),
            ),
            (
                "part-alwayshigh",
                RfKind::Partitioned(PartitionedRfConfig {
                    adaptive: Some(prf_core::AdaptiveFrfConfig {
                        epoch_length: 50,
                        threshold: 0,
                    }),
                    ..PartitionedRfConfig::paper_default(gpu.num_rf_banks)
                }),
            ),
        ] {
            let r = run_workload(&w, &gpu, &rf);
            reporter.add(&format!("{}/{label}", w.name), &r);
            println!(
                "{:<10} {:<12} cycles {:>8} instrs {:>8} ipc {:>5.2} \
                 issue_cy {:>8} bankwait {:>9} collstall {:>7}",
                w.name,
                label,
                r.cycles,
                r.stats.instructions,
                r.stats.instructions as f64 / r.cycles as f64,
                r.stats.issue_cycles,
                r.stats.bank_conflict_waits,
                r.stats.collector_stalls,
            );
            println!(
                "{:<23} l1 h/m {:>7}/{:>7} txns {:>7} ldst {:>7} | stalls mem {:>7} bar {:>6} coll {:>6} alu {:>6}",
                "",
                r.stats.l1_hits,
                r.stats.l1_misses,
                r.stats.mem_transactions,
                r.stats.mem_instructions,
                r.stats.stall_mem,
                r.stats.stall_barrier,
                r.stats.stall_collector,
                r.stats.stall_alu_dep,
            );
        }
    }
    reporter.finish();
}
