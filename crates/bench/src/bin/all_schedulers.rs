//! §V scheduler consistency — "In addition we ran our experiments with
//! the GTO and the fetch group schedulers. Our technique shows a
//! consistent performance across all the schedulers."

use prf_bench::{experiment_gpu, geomean, header, run_workload_averaged};
use prf_core::{PartitionedRfConfig, RfKind};
use prf_sim::SchedulerPolicy;

fn main() {
    header(
        "Scheduler consistency: partitioned-RF overhead under GTO / LRR / TL / FG",
        "consistent performance across all the schedulers",
    );
    const SEEDS: u64 = 3;
    let policies = [
        SchedulerPolicy::Gto,
        SchedulerPolicy::Lrr,
        SchedulerPolicy::TwoLevel { active_per_scheduler: 8 },
        SchedulerPolicy::FetchGroup { group_size: 8 },
    ];
    println!("{:<8} {:>16} {:>14}", "sched", "geomean overhead", "dyn saving");
    for policy in policies {
        let gpu = experiment_gpu(policy);
        let part = RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks));
        let mut norms = Vec::new();
        let mut savings = Vec::new();
        for w in prf_workloads::suite() {
            let base = run_workload_averaged(&w, &gpu, &RfKind::MrfStv, SEEDS);
            let p = run_workload_averaged(&w, &gpu, &part, SEEDS);
            norms.push(p.normalized_time(&base));
            savings.push(p.dynamic_saving());
        }
        println!(
            "{:<8} {:>15.1}% {:>13.1}%",
            policy.to_string(),
            100.0 * (geomean(&norms) - 1.0),
            100.0 * prf_bench::mean(&savings)
        );
    }
    println!();
    println!("The saving column is scheduler-independent by construction; the overhead");
    println!("column shows the consistency claim of §V.");
}
