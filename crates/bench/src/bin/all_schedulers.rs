//! §V scheduler consistency — "In addition we ran our experiments with
//! the GTO and the fetch group schedulers. Our technique shows a
//! consistent performance across all the schedulers."

use prf_bench::{experiment_gpu, geomean, header, run_cells_reported, Cell};
use prf_core::{PartitionedRfConfig, RfKind};
use prf_sim::SchedulerPolicy;

fn main() {
    header(
        "Scheduler consistency: partitioned-RF overhead under GTO / LRR / TL / FG",
        "consistent performance across all the schedulers",
    );
    const SEEDS: u64 = 3;
    let policies = [
        SchedulerPolicy::Gto,
        SchedulerPolicy::Lrr,
        SchedulerPolicy::TwoLevel {
            active_per_scheduler: 8,
        },
        SchedulerPolicy::FetchGroup { group_size: 8 },
    ];

    // 4 schedulers × suite × {baseline, partitioned} as one matrix.
    let suite = prf_workloads::suite();
    let cells: Vec<Cell> = policies
        .iter()
        .flat_map(|&policy| {
            let gpu = experiment_gpu(policy);
            let part = RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks));
            suite
                .iter()
                .flat_map(move |w| {
                    [
                        Cell::new(w, &gpu, &RfKind::MrfStv),
                        Cell::new(w, &gpu, &part),
                    ]
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let (results, report, run_report) = run_cells_reported("all_schedulers", &cells, SEEDS);

    println!(
        "{:<8} {:>16} {:>14}",
        "sched", "geomean overhead", "dyn saving"
    );
    let per_policy = suite.len() * 2;
    for (policy, block) in policies.iter().zip(results.chunks(per_policy)) {
        let mut norms = Vec::new();
        let mut savings = Vec::new();
        for r in block.chunks(2) {
            let (base, p) = (&r[0], &r[1]);
            norms.push(p.normalized_time(base));
            savings.push(p.dynamic_saving());
        }
        println!(
            "{:<8} {:>15.1}% {:>13.1}%",
            policy.to_string(),
            100.0 * (geomean(&norms) - 1.0),
            100.0 * prf_bench::mean(&savings)
        );
    }
    println!();
    println!("The saving column is scheduler-independent by construction; the overhead");
    println!("column shows the consistency claim of §V.");
    println!();
    println!("{}", report.footer());
    run_report.write();
}
