//! `prf-serve` — a long-lived experiment server over TCP.
//!
//! Listens on `--addr <host:port>` (default `127.0.0.1:7878`) and speaks
//! the newline-delimited JSON protocol documented in [`prf_bench::serve`]:
//! `ping`, `submit`, `poll`, `fetch`, `status`, `shutdown`. Batches run
//! through the resilient matrix runner with the `PRF_JOB_TIMEOUT_SECS` /
//! `PRF_JOB_RETRIES` / `PRF_RETRY_BACKOFF_MS` policy, `PRF_THREADS`
//! worker threads, and — when `PRF_CACHE_DIR` is set — the on-disk
//! result cache, so repeated submissions of the same job are served
//! without re-simulating. When `PRF_JOURNAL_DIR` is set, submissions
//! are additionally journaled to a write-ahead log and unfinished
//! batches are re-enqueued on the next start (see
//! [`prf_bench::journal`]).
//!
//! ```text
//! $ PRF_CACHE_DIR=/tmp/prf-cache prf-serve --addr 127.0.0.1:7878 &
//! $ printf '%s\n' '{"op":"submit","jobs":[{"workload":"BFS","rf":"partitioned","audit":true}]}' \
//!     | nc 127.0.0.1 7878
//! {"ok":true,"batch":0,"jobs":1}
//! ```

use std::net::TcpListener;

use prf_bench::cache::ResultCache;
use prf_bench::journal::Journal;
use prf_bench::runner::RetryPolicy;
use prf_bench::serve::{serve_with_journal, ServeConfig};
use prf_bench::vfs;

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return Some(args.next().unwrap_or_else(|| {
                panic!("{flag} needs a value");
            }));
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let addr = arg_value("--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let config = ServeConfig {
        threads: prf_bench::runner::threads_from_env(),
        policy: RetryPolicy::from_env(),
        max_inflight: arg_value("--max-inflight")
            .map(|v| {
                v.parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        panic!("--max-inflight must be a positive integer, got {v:?}")
                    })
            })
            .unwrap_or(4),
    };
    let cache = ResultCache::from_env();
    match &cache {
        Some(c) => eprintln!("prf-serve: result cache at {}", c.dir().display()),
        None => eprintln!("prf-serve: no result cache (set PRF_CACHE_DIR to enable)"),
    }
    let journal = Journal::from_env(vfs::real());
    match &journal {
        Some((j, recovery)) => {
            eprintln!(
                "prf-serve: journal at {} ({} unfinished batch(es) to recover{})",
                j.dir().display(),
                recovery.pending.len(),
                if recovery.torn_tail {
                    ", torn tail discarded"
                } else {
                    ""
                }
            );
        }
        None => eprintln!("prf-serve: no journal (set PRF_JOURNAL_DIR for crash durability)"),
    }

    let listener =
        TcpListener::bind(&addr).unwrap_or_else(|e| panic!("cannot listen on {addr}: {e}"));
    eprintln!(
        "prf-serve: listening on {} ({} threads, {} batches in flight max)",
        listener
            .local_addr()
            .map_or(addr.clone(), |a| a.to_string()),
        config.threads,
        config.max_inflight
    );
    serve_with_journal(listener, config, cache, journal);
    eprintln!("prf-serve: shut down cleanly");
}
