//! Fig. 12 — execution time of the proposed designs, normalised to the
//! MRF@STV baseline under the *same* scheduler.
//!
//! Paper: the partitioned RF (hybrid profiling, adaptive FRF) loses less
//! than 2% performance under GTO; running the whole MRF at NTV loses
//! 7.1%; hybrid profiling beats compiler-only profiling by ~2%.

use prf_bench::report::CsvTable;
use prf_bench::{experiment_gpu, geomean, header, run_cells_reported, Cell};
use prf_core::{PartitionedRfConfig, ProfilingStrategy, RfKind};
use prf_sim::SchedulerPolicy;

fn main() {
    header(
        "Figure 12: normalised execution time (lower is better)",
        "partitioned <2% overhead (GTO); MRF@NTV 7.1%; hybrid ~2% better than compiler",
    );
    let tl = SchedulerPolicy::TwoLevel {
        active_per_scheduler: 8,
    };
    let gpu_gto = experiment_gpu(SchedulerPolicy::Gto);
    let gpu_tl = experiment_gpu(tl);
    let hybrid = RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu_gto.num_rf_banks));
    let compiler = RfKind::Partitioned(PartitionedRfConfig {
        strategy: ProfilingStrategy::Compiler,
        ..PartitionedRfConfig::paper_default(gpu_gto.num_rf_banks)
    });
    let ntv = RfKind::MrfNtv { latency: 3 };

    // 6 cells per workload (2 baselines + 4 designs), every seed of every
    // cell fanned out through one matrix.
    const SEEDS: u64 = 5;
    const CELLS_PER_W: usize = 6;
    let suite = prf_workloads::suite();
    let cells: Vec<Cell> = suite
        .iter()
        .flat_map(|w| {
            [
                Cell::new(w, &gpu_gto, &RfKind::MrfStv),
                Cell::new(w, &gpu_tl, &RfKind::MrfStv),
                Cell::new(w, &gpu_gto, &hybrid),
                Cell::new(w, &gpu_tl, &hybrid),
                Cell::new(w, &gpu_gto, &compiler),
                Cell::new(w, &gpu_gto, &ntv),
            ]
        })
        .collect();
    let (results, report, mut run_report) = run_cells_reported("fig12_performance", &cells, SEEDS);

    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "workload", "part/GTO", "part/TL", "compiler", "MRF@NTV"
    );
    let (mut gto_n, mut tl_n, mut comp_n, mut ntv_n) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let mut csv = CsvTable::new(["workload", "part_gto", "part_tl", "compiler", "mrf_ntv"]);
    for (w, r) in suite.iter().zip(results.chunks(CELLS_PER_W)) {
        let (base_gto, base_tl) = (&r[0], &r[1]);
        let p_gto = r[2].normalized_time(base_gto);
        let p_tl = r[3].normalized_time(base_tl);
        let p_comp = r[4].normalized_time(base_gto);
        let p_ntv = r[5].normalized_time(base_gto);

        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            w.name, p_gto, p_tl, p_comp, p_ntv
        );
        csv.row([
            w.name.to_string(),
            format!("{p_gto:.4}"),
            format!("{p_tl:.4}"),
            format!("{p_comp:.4}"),
            format!("{p_ntv:.4}"),
        ]);
        gto_n.push(p_gto);
        tl_n.push(p_tl);
        comp_n.push(p_comp);
        ntv_n.push(p_ntv);
    }
    csv.write_if_configured("fig12_performance");
    println!("{:-<56}", "");
    println!(
        "{:<12} {:>10.3} {:>10.3} {:>10.3} {:>10.3}   (paper: <1.02, ~1.02, +2% vs hybrid, 1.071)",
        "GEOMEAN",
        geomean(&gto_n),
        geomean(&tl_n),
        geomean(&comp_n),
        geomean(&ntv_n)
    );
    println!();
    println!("{}", report.footer());
    run_report.add_metric("geomean_part_gto", geomean(&gto_n));
    run_report.add_metric("geomean_part_tl", geomean(&tl_n));
    run_report.add_metric("geomean_compiler", geomean(&comp_n));
    run_report.add_metric("geomean_mrf_ntv", geomean(&ntv_n));
    run_report.write();
}
