//! Fig. 11 — dynamic energy of the partitioned RF (with and without the
//! adaptive FRF) normalised to the MRF@STV baseline, plus the leakage
//! accounting of §V-B.
//!
//! Paper: "The partitioned RF saves 54% of the RF dynamic energy across
//! all the benchmarks"; a monolithic RF at NTV saves only 47%; leakage
//! saving is 39% (FRF 21.5% + SRF 39.7% of MRF leakage).

use prf_bench::{experiment_gpu, header, mean, run_cells_reported, Cell};
use prf_core::{LeakageModel, PartitionedRfConfig, RfKind};
use prf_sim::SchedulerPolicy;

fn main() {
    header(
        "Figure 11: RF dynamic-energy savings vs MRF@STV",
        "partitioned+adaptive saves 54%; MRF@NTV saves 47%; leakage saving 39%",
    );
    let gpu = experiment_gpu(SchedulerPolicy::Gto);
    let plain = RfKind::Partitioned(PartitionedRfConfig::without_adaptive(gpu.num_rf_banks));
    let adaptive = RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks));
    let ntv = RfKind::MrfNtv { latency: 3 };

    // The whole figure as one parallel matrix: 3 RF organisations per
    // workload, results chunked back per workload below.
    let suite = prf_workloads::suite();
    let cells: Vec<Cell> = suite
        .iter()
        .flat_map(|w| [&plain, &adaptive, &ntv].map(|rf| Cell::new(w, &gpu, rf)))
        .collect();
    let (results, report, mut run_report) = run_cells_reported("fig11_energy_savings", &cells, 1);

    println!(
        "{:<12} {:>12} {:>14} {:>10}",
        "workload", "partitioned", "part+adaptive", "MRF@NTV"
    );
    let (mut s_plain, mut s_adapt, mut s_ntv) = (Vec::new(), Vec::new(), Vec::new());
    for (w, r) in suite.iter().zip(results.chunks(3)) {
        let (rp, ra, rn) = (&r[0], &r[1], &r[2]);
        println!(
            "{:<12} {:>11.1}% {:>13.1}% {:>9.1}%",
            w.name,
            100.0 * rp.dynamic_saving(),
            100.0 * ra.dynamic_saving(),
            100.0 * rn.dynamic_saving()
        );
        s_plain.push(rp.dynamic_saving());
        s_adapt.push(ra.dynamic_saving());
        s_ntv.push(rn.dynamic_saving());
    }
    println!("{:-<52}", "");
    println!(
        "{:<12} {:>11.1}% {:>13.1}% {:>9.1}%   (paper: —, 54%, 47%)",
        "MEAN",
        100.0 * mean(&s_plain),
        100.0 * mean(&s_adapt),
        100.0 * mean(&s_ntv)
    );

    // Leakage section (§V-B) — structural, workload independent.
    let l = LeakageModel::from_finfet();
    println!();
    println!("Leakage power (per SM):");
    println!("  MRF@STV      {:>7.2} mW", l.mrf_stv_mw);
    println!(
        "  FRF          {:>7.2} mW ({:.1}% of MRF; paper 21.5%)",
        l.frf_mw,
        100.0 * l.frf_mw / l.mrf_stv_mw
    );
    println!(
        "  SRF          {:>7.2} mW ({:.1}% of MRF; paper 39.7%)",
        l.srf_mw,
        100.0 * l.srf_mw / l.mrf_stv_mw
    );
    println!(
        "  partitioned leakage saving {:.1}%  (paper 39%)",
        100.0 * l.partitioned_saving()
    );
    println!();
    println!("{}", report.footer());
    run_report.add_metric("mean_dynamic_saving_partitioned", mean(&s_plain));
    run_report.add_metric("mean_dynamic_saving_adaptive", mean(&s_adapt));
    run_report.add_metric("mean_dynamic_saving_ntv", mean(&s_ntv));
    run_report.add_metric("leakage_saving", l.partitioned_saving());
    run_report.write();
}
