//! Fig. 1 — delay of a 40-stage FO4 inverter chain vs Vdd for the 7 nm
//! FinFET technology with Vth = 0.23 V.
//!
//! Paper shape: delay rises steeply below the threshold voltage; NTV
//! (0.3 V) is markedly slower than STV (0.45 V) — 3× in this model — but
//! far faster than sub-threshold operation.

use prf_bench::report::CsvTable;
use prf_bench::{header, RunReport};
use prf_finfet::delay::{chain_delay_ns, fig1_sweep, FIG1_CHAIN_STAGES};
use prf_finfet::{BackGate, NTV, STV, VTH};

fn main() {
    header(
        "Figure 1: 40-stage FO4 inverter-chain delay vs Vdd (7nm FinFET, Vth=0.23V)",
        "steep sub-threshold rise; NTV/STV delay ratio = 3",
    );
    println!("{:>8} {:>12}   curve", "Vdd (V)", "delay (ns)");
    let points = fig1_sweep(0.15, 0.60, 46);
    let max_log = points[0].delay_ns.log10();
    let min_log = points.last().unwrap().delay_ns.log10();
    for p in &points {
        // Log-scale ASCII bar so the sub-threshold explosion is visible.
        let frac = (p.delay_ns.log10() - min_log) / (max_log - min_log);
        let bar = "#".repeat(1 + (frac * 50.0) as usize);
        let marker = if (p.vdd - NTV).abs() < 0.005 {
            "  <-- NTV"
        } else if (p.vdd - STV).abs() < 0.005 {
            "  <-- STV"
        } else if (p.vdd - VTH).abs() < 0.005 {
            "  <-- Vth"
        } else {
            ""
        };
        println!("{:>8.2} {:>12.4}   {bar}{marker}", p.vdd, p.delay_ns);
    }
    let ntv = chain_delay_ns(FIG1_CHAIN_STAGES, NTV, BackGate::Vdd);
    let stv = chain_delay_ns(FIG1_CHAIN_STAGES, STV, BackGate::Vdd);
    println!();
    println!(
        "NTV delay {:.4} ns / STV delay {:.4} ns = {:.2}x  (paper: ~3x, \"3X longer access delay\")",
        ntv,
        stv,
        ntv / stv
    );
    let mut report = RunReport::new("fig01_fo4_delay");
    let mut curve = CsvTable::new(["vdd_v", "delay_ns"]);
    for p in &points {
        curve.row([format!("{:.3}", p.vdd), format!("{:.6}", p.delay_ns)]);
    }
    report.add_table("fo4_delay_curve", &curve);
    report.add_metric("ntv_delay_ns", ntv);
    report.add_metric("stv_delay_ns", stv);
    report.add_metric("ntv_stv_delay_ratio", ntv / stv);
    report.write();
}
