//! Related-work comparison — drowsy registers (the paper's ref. \[4\], HPCA 2013) vs the
//! partitioned RF.
//!
//! The paper positions partitioning against power-gating/drowsy
//! approaches: drowsing attacks *leakage only* (registers still burn full
//! dynamic energy per access), while the FRF/SRF split attacks both
//! dynamic and leakage energy. This binary quantifies that argument on
//! the benchmark suite.

use prf_bench::{experiment_gpu, geomean, header, mean, run_workload_averaged, SingleRunReporter};
use prf_core::{DrowsyConfig, LeakageModel, PartitionedRfConfig, RfKind};
use prf_sim::SchedulerPolicy;

fn main() {
    header(
        "Related work: drowsy registers vs the partitioned RF",
        "drowsy saves leakage only; partitioned saves dynamic (54%) + leakage (39%)",
    );
    let gpu = experiment_gpu(SchedulerPolicy::Gto);
    const SEEDS: u64 = 3;
    let drowsy = RfKind::Drowsy(DrowsyConfig::paper_adjacent(
        gpu.num_rf_banks,
        gpu.max_warps_per_sm,
    ));
    let part = RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks));

    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "workload", "drowsy dyn", "part dyn", "drowsy time", "part time"
    );
    let (mut d_dyn, mut p_dyn, mut d_t, mut p_t) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let mut reporter = SingleRunReporter::new("compare_drowsy");
    for w in prf_workloads::suite() {
        let base = run_workload_averaged(&w, &gpu, &RfKind::MrfStv, SEEDS);
        let d = run_workload_averaged(&w, &gpu, &drowsy, SEEDS);
        let p = run_workload_averaged(&w, &gpu, &part, SEEDS);
        reporter.add(&format!("{}/mrf_stv", w.name), &base.result);
        reporter.add(&format!("{}/drowsy", w.name), &d.result);
        reporter.add(&format!("{}/partitioned", w.name), &p.result);
        println!(
            "{:<12} {:>11.1}% {:>11.1}% {:>12.3} {:>12.3}",
            w.name,
            100.0 * d.dynamic_saving(),
            100.0 * p.dynamic_saving(),
            d.normalized_time(&base),
            p.normalized_time(&base)
        );
        d_dyn.push(d.dynamic_saving());
        p_dyn.push(p.dynamic_saving());
        d_t.push(d.normalized_time(&base));
        p_t.push(p.normalized_time(&base));
    }
    println!("{:-<64}", "");
    println!(
        "{:<12} {:>11.1}% {:>11.1}% {:>12.3} {:>12.3}",
        "MEAN/GEO",
        100.0 * mean(&d_dyn),
        100.0 * mean(&p_dyn),
        geomean(&d_t),
        geomean(&p_t)
    );
    println!();
    let leak = LeakageModel::from_finfet();
    println!("leakage (per SM):");
    println!(
        "  drowsy (60% drowsy fraction @ 0.25 retention) ~ {:.1} mW  ({:.0}% saving)",
        leak.mrf_stv_mw * (0.4 + 0.6 * 0.25),
        100.0 * (1.0 - (0.4 + 0.6 * 0.25))
    );
    println!(
        "  partitioned FRF+SRF                            = {:.1} mW  ({:.0}% saving)",
        leak.partitioned_mw(),
        100.0 * leak.partitioned_saving()
    );
    println!();
    println!("Drowsy's dynamic saving is ~0 by construction (every access still runs");
    println!("the full STV array); the partitioned RF saves both. This is the paper's");
    println!("§VI argument for partitioning over power-gating/drowsy approaches.");
    reporter
        .report
        .add_metric("mean_drowsy_dynamic_saving", mean(&d_dyn));
    reporter
        .report
        .add_metric("mean_part_dynamic_saving", mean(&p_dyn));
    reporter
        .report
        .add_metric("geomean_drowsy_time", geomean(&d_t));
    reporter
        .report
        .add_metric("geomean_part_time", geomean(&p_t));
    reporter.finish();
}
