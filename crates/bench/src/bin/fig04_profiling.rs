//! Fig. 4 — efficiency of the profiling techniques.
//!
//! The paper's metric: "the fraction of accesses to the four
//! compiler-identified registers over the total access count for all
//! registers" — an *identification* metric, computed per kernel against
//! the full-run access histogram. The hybrid bar is time-weighted: the
//! compiler's set applies while the pilot runs, the pilot's set after.
//!
//! Paper shape: Category 1 — compiler within 10% of pilot; Category 2 —
//! compiler >10% *below* pilot; Category 3 — compiler >10% *above* pilot
//! (the pilot warp is unrepresentative); optimal bounds everything.

use prf_bench::{experiment_gpu, header, mean, run_workload, SingleRunReporter};
use prf_core::{PartitionedRfConfig, RfKind};
use prf_sim::SchedulerPolicy;
use prf_workloads::{Category, Workload};

/// Coverage of the four registers each technique identifies, per launch,
/// aggregated over a workload's launches weighted by access volume.
fn profile_coverages(
    w: &Workload,
    gpu: &prf_sim::GpuConfig,
    reporter: &mut SingleRunReporter,
) -> (f64, f64, f64, f64) {
    let mut totals = 0.0;
    let (mut comp, mut pilot, mut hybrid, mut optimal) = (0.0, 0.0, 0.0, 0.0);
    for (li, launch) in w.launches.iter().enumerate() {
        let single = Workload {
            name: w.name,
            category: w.category,
            launches: vec![launch.clone()],
            mem_init: w.mem_init.clone(),
            table1: w.table1,
        };
        // Reference histogram (what actually gets accessed).
        let base = run_workload(&single, gpu, &RfKind::MrfStv);
        let hist = &base.stats.reg_accesses;
        // One hybrid run yields both identified sets and the pilot timing.
        let part = run_workload(
            &single,
            gpu,
            &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks)),
        );
        reporter.add(&format!("{}/launch{li}/mrf_stv", w.name), &base);
        reporter.add(&format!("{}/launch{li}/partitioned", w.name), &part);
        let t = &part.telemetry;
        let c_cov = hist.coverage(&t.compiler_hot_regs);
        let p_cov = hist.coverage(&t.pilot_hot_regs);
        let pilot_frac = t
            .pilot_done_cycle
            .map(|d| d as f64 / part.cycles.max(1) as f64)
            .unwrap_or(1.0);
        let h_cov = pilot_frac * c_cov + (1.0 - pilot_frac) * p_cov;
        let o_cov = hist.top_share(4);

        let weight = hist.total() as f64;
        totals += weight;
        comp += weight * c_cov;
        pilot += weight * p_cov;
        hybrid += weight * h_cov;
        optimal += weight * o_cov;
    }
    (
        comp / totals,
        pilot / totals,
        hybrid / totals,
        optimal / totals,
    )
}

fn main() {
    header(
        "Figure 4: profiling technique efficiency (top-4 identification coverage)",
        "Cat1: compiler within 10% of pilot; Cat2: compiler >10% below; Cat3: >10% above",
    );
    let gpu = experiment_gpu(SchedulerPolicy::Gto);
    println!(
        "{:<12} {:<11} {:>9} {:>9} {:>9} {:>9}",
        "workload", "category", "compiler", "pilot", "hybrid", "optimal"
    );
    let mut cat_rows: Vec<(Category, f64, f64, f64, f64)> = Vec::new();
    let mut reporter = SingleRunReporter::new("fig04_profiling");
    for w in prf_workloads::suite() {
        let (c, p, h, o) = profile_coverages(&w, &gpu, &mut reporter);
        println!(
            "{:<12} {:<11} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            w.name,
            w.category.to_string(),
            100.0 * c,
            100.0 * p,
            100.0 * h,
            100.0 * o
        );
        cat_rows.push((w.category, c, p, h, o));
    }
    println!("{:-<64}", "");
    for cat in [Category::One, Category::Two, Category::Three] {
        let rows: Vec<_> = cat_rows.iter().filter(|r| r.0 == cat).collect();
        let m = |f: fn(&&(Category, f64, f64, f64, f64)) -> f64| {
            mean(&rows.iter().map(f).collect::<Vec<_>>())
        };
        println!(
            "{:<12} {:<11} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            "MEAN",
            cat.to_string(),
            100.0 * m(|r| r.1),
            100.0 * m(|r| r.2),
            100.0 * m(|r| r.3),
            100.0 * m(|r| r.4),
        );
    }
    let all = |f: fn(&(Category, f64, f64, f64, f64)) -> f64| {
        mean(&cat_rows.iter().map(f).collect::<Vec<_>>())
    };
    reporter
        .report
        .add_metric("mean_compiler_coverage", all(|r| r.1));
    reporter
        .report
        .add_metric("mean_pilot_coverage", all(|r| r.2));
    reporter
        .report
        .add_metric("mean_hybrid_coverage", all(|r| r.3));
    reporter
        .report
        .add_metric("mean_optimal_coverage", all(|r| r.4));
    reporter.finish();
}
