//! Figs. 3, 5, 6, 7 — the paper's mechanism illustrations, rendered live
//! from simulator state instead of as static artwork:
//!
//! * Fig. 3 — baseline vs partitioned register file organisation,
//! * Fig. 5 — kernel execution timeline with the pilot warp highlighted,
//! * Fig. 6 — register mapping between FRF and SRF across the hybrid
//!   profiling phases,
//! * Fig. 7 — the swapping-table contents at each phase.

use prf_bench::{experiment_gpu, header, run_workload, SingleRunReporter};
use prf_core::{compiler_hot_registers, PartitionedRfConfig, RfKind, SwappingTable};
use prf_isa::Reg;
use prf_sim::SchedulerPolicy;

fn render_table(t: &SwappingTable, label: &str) {
    println!("  {label}:");
    let entries = t.entries();
    if entries.is_empty() {
        println!("    (identity — no valid CAM entries)");
        return;
    }
    println!(
        "    {:^6} | {:^10} | {:^10}",
        "valid", "arch reg", "mapped to"
    );
    for (arch, phys) in entries {
        println!(
            "    {:^6} | {:^10} | {:^10}",
            1,
            arch.to_string(),
            phys.to_string()
        );
    }
}

fn main() {
    header(
        "Figures 3/5/6/7: the partitioned-RF mechanisms, live",
        "organisation, pilot timeline, FRF/SRF mapping phases, swapping-table states",
    );

    // ---- Fig. 3: organisation -----------------------------------------
    println!("Fig. 3 — register file organisation (per SM)");
    println!("  baseline:   [ MRF 256 KB @ STV, 24 banks, 1 cycle ]");
    println!("  proposed:   [ FRF 32 KB @ STV (back-gate dual-mode, 1-2 cy) ]");
    println!("              [ SRF 224 KB @ NTV (3 cy)                      ]");
    println!("              each of the 24 banks is split FRF/SRF; the arbiter");
    println!("              issues at most one request per bank pair per cycle\n");

    // ---- Fig. 5/6/7: run a Category-2 workload and narrate ------------
    let w = prf_workloads::by_name("kmeans").expect("kmeans exists");
    let gpu = experiment_gpu(SchedulerPolicy::Gto);
    let r = run_workload(
        &w,
        &gpu,
        &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks)),
    );
    let mut reporter = SingleRunReporter::new("fig03_07_mechanisms");
    reporter.add(w.name, &r);
    let launch = &r.per_launch[0];
    let pilot_done = r.telemetry.pilot_done_cycle.unwrap_or(0);

    println!("Fig. 5 — kernel execution timeline ({} on 1 SM)", w.name);
    let total = launch.cycles.max(1);
    let width = 60usize;
    let pilot_mark = ((pilot_done as f64 / total as f64) * width as f64) as usize;
    let mut bar: Vec<char> = vec!['='; width];
    for (i, c) in bar.iter_mut().enumerate() {
        if i <= pilot_mark {
            *c = '#';
        }
    }
    println!("  |{}|", bar.iter().collect::<String>());
    println!(
        "  '#' = pilot warp running (finishes at cycle {} of {}, {:.1}% of the kernel)",
        pilot_done,
        total,
        100.0 * pilot_done as f64 / total as f64
    );
    println!("  compiler mapping active until the pilot finishes; pilot mapping after\n");

    // ---- Fig. 6/7: mapping phases --------------------------------------
    let compiler_hot = compiler_hot_registers(&w.launches[0].kernel, 4);
    let pilot_hot = r.telemetry.pilot_hot_regs.clone();

    println!("Fig. 6 — register mapping phases (n = 4)");
    let mut table = SwappingTable::new(4);
    println!("  (a) before launch: R0..R3 in the FRF, rest in the SRF");
    let in_frf = |t: &SwappingTable| {
        (0..63u8)
            .filter(|&a| t.is_frf(Reg(a)))
            .map(|a| format!("R{a}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!("      FRF = {{{}}}", in_frf(&table));
    table.apply_hot_registers(&compiler_hot);
    println!("  (b) while the pilot runs (compiler profile {compiler_hot:?}):");
    println!("      FRF = {{{}}}", in_frf(&table));
    table.apply_hot_registers(&pilot_hot);
    println!("  (c) after the pilot completes (dynamic profile {pilot_hot:?}):");
    println!("      FRF = {{{}}}\n", in_frf(&table));

    println!("Fig. 7 — swapping-table contents (13 bits/entry, 2n = 8 entries)");
    let mut t = SwappingTable::new(4);
    render_table(&t, "(left) before execution");
    t.apply_hot_registers(&compiler_hot);
    render_table(&t, "(middle) compiler-based data applied");
    t.apply_hot_registers(&pilot_hot);
    render_table(&t, "(right) pilot-warp data applied (reset-then-apply)");
    println!();
    let frf_share = r
        .stats
        .partition_accesses
        .fraction(prf_sim::RfPartition::FrfHigh)
        + r.stats
            .partition_accesses
            .fraction(prf_sim::RfPartition::FrfLow);
    println!(
        "outcome: {:.1}% of this run's accesses were serviced by the FRF",
        100.0 * frf_share
    );
    reporter.report.add_metric("frf_access_share", frf_share);
    reporter.finish();
}
