//! Voltage design-space sweep — the continuous version of the paper's
//! STV/NTV design points.
//!
//! The paper operates the SRF at 0.3 V (NTV) and the FRF at 0.45 V (STV),
//! with Vth = 0.23 V. This sweep shows why: the access-energy × delay
//! product of an RF array bottoms out in the near-threshold region —
//! below it delay explodes, above it energy does.

use prf_bench::report::CsvTable;
use prf_bench::{header, RunReport};
use prf_finfet::{sweep_voltage, NTV, STV, VTH};

fn main() {
    header(
        "Voltage sweep: 224 KB SRF-class array, 0.20-0.60 V",
        "SRF at 0.3 V (NTV) sits near the total-energy-per-operation sweet spot",
    );
    let pts = sweep_voltage(224.0, 0.20, 0.60, 41);
    let best = pts
        .iter()
        .min_by(|a, b| a.energy_per_op().total_cmp(&b.energy_per_op()))
        .unwrap();
    println!(
        "{:>7} {:>12} {:>10} {:>12} {:>12}",
        "Vdd", "E/acc (pJ)", "leak (mW)", "t_acc (ns)", "E/op (pJ)"
    );
    for p in &pts {
        let marker = if (p.vdd - best.vdd).abs() < 1e-9 {
            "  <-- E/op minimum"
        } else if (p.vdd - NTV).abs() < 0.005 {
            "  <-- NTV (SRF)"
        } else if (p.vdd - STV).abs() < 0.005 {
            "  <-- STV (FRF/MRF)"
        } else if (p.vdd - VTH).abs() < 0.005 {
            "  <-- Vth"
        } else {
            ""
        };
        println!(
            "{:>7.2} {:>12.2} {:>10.2} {:>12.3} {:>12.2}{marker}",
            p.vdd,
            p.access_energy_pj,
            p.leakage_mw,
            p.access_time_ns,
            p.energy_per_op()
        );
    }
    println!();
    println!(
        "total energy/op minimum at {:.2} V — the near-threshold region the paper \
         puts the SRF in (NTV = {NTV} V).",
        best.vdd
    );
    let mut report = RunReport::new("sweep_vdd");
    let mut table = CsvTable::new([
        "vdd_v",
        "access_energy_pj",
        "leakage_mw",
        "access_time_ns",
        "energy_per_op_pj",
    ]);
    for p in &pts {
        table.row([
            format!("{:.3}", p.vdd),
            format!("{:.3}", p.access_energy_pj),
            format!("{:.3}", p.leakage_mw),
            format!("{:.4}", p.access_time_ns),
            format!("{:.3}", p.energy_per_op()),
        ]);
    }
    report.add_table("vdd_sweep", &table);
    report.add_metric("best_vdd_v", best.vdd);
    report.add_metric("best_energy_per_op_pj", best.energy_per_op());
    report.write();
}
