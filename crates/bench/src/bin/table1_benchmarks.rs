//! Table I — benchmark runtime information: registers/thread, threads/CTA
//! (matched exactly by construction) and the pilot warp's runtime as a
//! fraction of kernel execution time.
//!
//! Paper: pilot runs <3% of kernel time on average (geomean 3%), but 37%
//! for MUM, 47% for CP, 60% for LIB and 75% for WP. Our grids are scaled
//! down (tens of CTAs instead of thousands), so the measured percentages
//! reproduce the paper's *ordering*, not its absolute values — see
//! DESIGN.md §2.4.

use prf_bench::{experiment_gpu, header, run_workload, SingleRunReporter};
use prf_core::{PartitionedRfConfig, RfKind};
use prf_sim::SchedulerPolicy;

fn main() {
    header(
        "Table I: benchmark shapes and pilot-warp runtime fraction",
        "regs/thread and threads/CTA exact; pilot% tiny except MUM(37) CP(47) LIB(60) WP(75)",
    );
    let gpu = experiment_gpu(SchedulerPolicy::Gto);
    println!(
        "{:<12} {:>6} {:>8} {:>12} {:>13} {:>24}",
        "workload", "regs", "thr/CTA", "pilot%(meas)", "pilot%(paper)", "occupancy (limiter)"
    );
    let mut reporter = SingleRunReporter::new("table1_benchmarks");
    for w in prf_workloads::suite() {
        let rf = RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks));
        let r = run_workload(&w, &gpu, &rf);
        reporter.add(w.name, &r);
        // Pilot fraction of the *first* launch (pilot profiling restarts
        // per kernel; Table I reports per-kernel numbers).
        let frac = r.per_launch[0]
            .pilot_runtime_fraction()
            .map(|f| 100.0 * f)
            .unwrap_or(f64::NAN);
        let occ = prf_sim::Occupancy::compute(&gpu, &w.launches[0].grid, w.regs_per_thread());
        println!(
            "{:<12} {:>6} {:>8} {:>11.1}% {:>12.2}% {:>14} ({})",
            w.name,
            w.regs_per_thread(),
            w.threads_per_cta(),
            frac,
            w.table1.pilot_cta_pct,
            format!("{} warps", occ.resident_warps),
            occ.limiter
        );
        assert_eq!(w.regs_per_thread(), w.table1.regs_per_thread);
        assert_eq!(w.threads_per_cta(), w.table1.threads_per_cta);
    }
    reporter.finish();
}
