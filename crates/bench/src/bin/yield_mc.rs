//! §IV-A — Monte Carlo SNM/yield analysis of the SRAM cell candidates
//! under LER + work-function process variation, the study behind the
//! paper's choice of the 8T cell.

use prf_bench::report::CsvTable;
use prf_bench::{header, RunReport};
use prf_finfet::montecarlo::{sigma_vth_total, snm_yield};
use prf_finfet::{BackGate, SramCell, NTV, STV};

fn main() {
    header(
        "SRAM Monte Carlo yield (LER + WFV process variation)",
        "8T is NTV-viable; 6T fails at NTV even with a larger cell (paper §IV-A)",
    );
    println!(
        "combined Vth sigma = {:.1} mV (LER ⊕ WFV); 50k samples per cell/voltage",
        1000.0 * sigma_vth_total()
    );
    println!();
    println!(
        "{:<6} {:>6} {:>12} {:>10} {:>10} {:>10} {:>12}",
        "cell", "Vdd", "SNM nominal", "SNM mean", "SNM std", "yield", "fails/Mcell"
    );
    let mut report = RunReport::new("yield_mc");
    let mut table = CsvTable::new([
        "cell",
        "vdd",
        "snm_mean_v",
        "snm_std_v",
        "yield",
        "fails_ppm",
    ]);
    for cell in SramCell::ALL {
        for (vname, vdd) in [("STV", STV), ("NTV", NTV)] {
            let r = snm_yield(cell, vdd, BackGate::Vdd, 50_000, 0xC0FFEE);
            table.row([
                cell.to_string(),
                vname.to_string(),
                format!("{:.4}", r.snm_mean),
                format!("{:.4}", r.snm_std),
                format!("{:.6}", r.yield_fraction),
                format!("{:.0}", r.failures_ppm()),
            ]);
            println!(
                "{:<6} {:>6} {:>11.3}V {:>9.3}V {:>9.3}V {:>9.2}% {:>12.0}",
                cell.to_string(),
                vname,
                cell.snm(vdd, BackGate::Vdd),
                r.snm_mean,
                r.snm_std,
                100.0 * r.yield_fraction,
                r.failures_ppm()
            );
        }
    }
    println!();
    let bg = snm_yield(SramCell::T8, STV, BackGate::Grounded, 50_000, 0xC0FFEE);
    println!(
        "8T @ STV with back gate grounded: yield {:.2}% (SNM mean {:.3} V) — \
         the FRF_low mode stays manufacturable",
        100.0 * bg.yield_fraction,
        bg.snm_mean
    );
    report.add_table("snm_yield", &table);
    report.add_metric("sigma_vth_v", sigma_vth_total());
    report.add_metric("t8_stv_bg0_yield", bg.yield_fraction);
    report.add_metric("t8_stv_bg0_snm_mean_v", bg.snm_mean);
    report.write();
}
