//! §III-B sensitivity — conservative swap-table pipelining.
//!
//! Paper: the CAM search (55–105 ps) fits inside the register-access
//! cycle; "But if we conservatively assumed that the swapping table access
//! adds one cycle to the register access pipeline then the overall
//! performance overhead is still less than 1%."

use prf_bench::{experiment_gpu, geomean, header, run_workload_averaged, SingleRunReporter};
use prf_core::{PartitionedRfConfig, RfKind};
use prf_sim::SchedulerPolicy;

fn main() {
    header(
        "Sensitivity: swap-table lookup folded into the access vs +1 pipeline cycle",
        "conservative +1 cycle costs <1% extra overall (§III-B)",
    );
    let gpu = experiment_gpu(SchedulerPolicy::Gto);
    const SEEDS: u64 = 3;
    let mut cycles = [Vec::new(), Vec::new()];
    let mut reporter = SingleRunReporter::new("sens_swap_table");
    println!("{:<12} {:>12} {:>12}", "workload", "integrated", "+1 cycle");
    for w in prf_workloads::suite() {
        let mut row = [0.0f64; 2];
        for (i, extra) in [false, true].into_iter().enumerate() {
            let cfg = PartitionedRfConfig {
                swap_table_extra_cycle: extra,
                ..PartitionedRfConfig::paper_default(gpu.num_rf_banks)
            };
            let r = run_workload_averaged(&w, &gpu, &RfKind::Partitioned(cfg), SEEDS);
            let label = if extra { "+1cycle" } else { "integrated" };
            reporter.add(&format!("{}/{label}", w.name), &r.result);
            row[i] = r.cycles as f64;
            cycles[i].push(r.cycles as f64);
        }
        println!("{:<12} {:>12.3} {:>12.3}", w.name, 1.0, row[1] / row[0]);
    }
    let g0 = geomean(&cycles[0]);
    let g1 = geomean(&cycles[1]);
    println!("{:-<38}", "");
    println!(
        "{:<12} {:>12.3} {:>12.3}   (paper: +1 cycle costs <1%)",
        "GEOMEAN",
        1.0,
        g1 / g0
    );
    reporter
        .report
        .add_metric("geomean_extra_cycle_overhead", g1 / g0);
    reporter.finish();
}
