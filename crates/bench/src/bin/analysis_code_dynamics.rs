//! §III-A2 "Code Dynamics" — how similar are register access patterns
//! across warps?
//!
//! Paper: "our results show that on average the number of accesses to
//! various registers differ by no more than 5% irrespective of which warp
//! is selected as a pilot warp in any CTA. Even more encouraging is the
//! fact that … the sorted list of registers based on access count is the
//! same across the warps within the same CTAs and the warps across
//! different CTAs in the same kernel."
//!
//! We enable per-warp statistics, pick every warp in turn as a
//! hypothetical pilot, and measure (a) the mean relative difference of its
//! per-register counts from the all-warp average, and (b) whether its
//! top-4 set matches the global top-4.

use prf_bench::{experiment_gpu, header, mean, SingleRunReporter};
use prf_core::RfKind;
use prf_isa::MAX_ARCH_REGS;
use prf_sim::SchedulerPolicy;

fn main() {
    header(
        "Code dynamics (§III-A2): per-warp register-access similarity",
        "counts differ <=5% across warps; sorted register order identical",
    );
    let gpu = prf_sim::GpuConfig {
        per_warp_stats: true,
        ..experiment_gpu(SchedulerPolicy::Gto)
    };
    println!(
        "{:<12} {:>8} {:>16} {:>18}",
        "workload", "warps", "mean |Δ| counts", "top-4 agreement"
    );
    let (mut devs, mut agrees) = (Vec::new(), Vec::new());
    let mut reporter = SingleRunReporter::new("analysis_code_dynamics");
    for w in prf_workloads::suite() {
        let r = prf_bench::run_workload(&w, &gpu, &RfKind::MrfStv);
        reporter.add(w.name, &r);
        let per_warp = &r.stats.per_warp;
        if per_warp.len() < 2 {
            continue;
        }
        // Global per-register mean (normalised per warp).
        let mut global = [0.0f64; MAX_ARCH_REGS];
        for h in per_warp.values() {
            let t = h.total().max(1) as f64;
            for (i, &c) in h.counts().iter().enumerate() {
                global[i] += c as f64 / t;
            }
        }
        let nw = per_warp.len() as f64;
        for g in global.iter_mut() {
            *g /= nw;
        }
        let global_top: Vec<_> = r.stats.reg_accesses.top_n(4);

        let mut dev_sum = 0.0;
        let mut agree = 0usize;
        for h in per_warp.values() {
            let t = h.total().max(1) as f64;
            let mut d = 0.0;
            let mut mass = 0.0;
            for (i, &c) in h.counts().iter().enumerate() {
                let share = c as f64 / t;
                d += (share - global[i]).abs();
                mass += global[i];
            }
            dev_sum += d / mass.max(1e-12) / 2.0; // total-variation style
            if h.top_n(4) == global_top {
                agree += 1;
            }
        }
        let dev = dev_sum / nw;
        let agreement = agree as f64 / nw;
        println!(
            "{:<12} {:>8} {:>15.2}% {:>17.1}%",
            w.name,
            per_warp.len(),
            100.0 * dev,
            100.0 * agreement
        );
        devs.push(dev);
        agrees.push(agreement);
    }
    println!("{:-<58}", "");
    println!(
        "{:<12} {:>8} {:>15.2}% {:>17.1}%   (paper: <=5%, \"same sorted list\")",
        "MEAN",
        "",
        100.0 * mean(&devs),
        100.0 * mean(&agrees)
    );
    reporter
        .report
        .add_metric("mean_count_deviation", mean(&devs));
    reporter
        .report
        .add_metric("mean_top4_agreement", mean(&agrees));
    reporter.finish();
}
