//! Ablation — what if the NTV register-file banks were *not* pipelined?
//!
//! The paper's 7.1% NTV penalty (and our reproduction of it) assumes a
//! bank accepts a new request each cycle while a multi-cycle access delays
//! only its data. This ablation turns that off: a 3-cycle access occupies
//! its bank for 3 cycles, so the NTV register file loses throughput as
//! well as latency. It quantifies why the microarchitectural framing
//! ("latency, not bandwidth") is load-bearing for the whole design.

use prf_bench::{experiment_gpu, geomean, header, run_workload_averaged};
use prf_core::{PartitionedRfConfig, RfKind};
use prf_sim::{GpuConfig, SchedulerPolicy};

fn main() {
    header(
        "Ablation: pipelined vs unpipelined RF banks",
        "(not in the paper) multi-cycle banks must be pipelined or NTV throughput collapses",
    );
    const SEEDS: u64 = 3;
    println!(
        "{:<14} {:>16} {:>16}",
        "banks", "MRF@NTV overhead", "partitioned ovh."
    );
    for (label, pipelined) in [("pipelined", true), ("unpipelined", false)] {
        let gpu = GpuConfig {
            rf_pipelined: pipelined,
            ..experiment_gpu(SchedulerPolicy::Gto)
        };
        let part = RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks));
        let (mut ntv_n, mut part_n) = (Vec::new(), Vec::new());
        for w in prf_workloads::suite() {
            let base = run_workload_averaged(&w, &gpu, &RfKind::MrfStv, SEEDS);
            let ntv =
                run_workload_averaged(&w, &gpu, &RfKind::MrfNtv { latency: 3 }, SEEDS);
            let p = run_workload_averaged(&w, &gpu, &part, SEEDS);
            ntv_n.push(ntv.normalized_time(&base));
            part_n.push(p.normalized_time(&base));
        }
        println!(
            "{:<14} {:>15.1}% {:>15.1}%",
            label,
            100.0 * (geomean(&ntv_n) - 1.0),
            100.0 * (geomean(&part_n) - 1.0)
        );
    }
    println!();
    println!("With unpipelined banks the all-NTV design pays a bandwidth penalty on");
    println!("every access; the partitioned RF contains the damage because most");
    println!("accesses stay on the 1-cycle FRF — the paper's argument, sharpened.");
}
