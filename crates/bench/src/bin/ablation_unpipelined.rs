//! Ablation — what if the NTV register-file banks were *not* pipelined?
//!
//! The paper's 7.1% NTV penalty (and our reproduction of it) assumes a
//! bank accepts a new request each cycle while a multi-cycle access delays
//! only its data. This ablation turns that off: a 3-cycle access occupies
//! its bank for 3 cycles, so the NTV register file loses throughput as
//! well as latency. It quantifies why the microarchitectural framing
//! ("latency, not bandwidth") is load-bearing for the whole design.

use prf_bench::{experiment_gpu, geomean, header, run_cells_reported, Cell};
use prf_core::{PartitionedRfConfig, RfKind};
use prf_sim::{GpuConfig, SchedulerPolicy};

fn main() {
    header(
        "Ablation: pipelined vs unpipelined RF banks",
        "(not in the paper) multi-cycle banks must be pipelined or NTV throughput collapses",
    );
    const SEEDS: u64 = 3;
    let modes = [("pipelined", true), ("unpipelined", false)];

    // 2 bank modes × suite × {base, NTV, partitioned} as one matrix.
    let suite = prf_workloads::suite();
    let cells: Vec<Cell> = modes
        .iter()
        .flat_map(|&(_, pipelined)| {
            let gpu = GpuConfig {
                rf_pipelined: pipelined,
                ..experiment_gpu(SchedulerPolicy::Gto)
            };
            let part = RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks));
            suite
                .iter()
                .flat_map(|w| {
                    [
                        Cell::new(w, &gpu, &RfKind::MrfStv),
                        Cell::new(w, &gpu, &RfKind::MrfNtv { latency: 3 }),
                        Cell::new(w, &gpu, &part),
                    ]
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let (results, report, run_report) = run_cells_reported("ablation_unpipelined", &cells, SEEDS);

    println!(
        "{:<14} {:>16} {:>16}",
        "banks", "MRF@NTV overhead", "partitioned ovh."
    );
    let per_mode = suite.len() * 3;
    for ((label, _), block) in modes.iter().zip(results.chunks(per_mode)) {
        let (mut ntv_n, mut part_n) = (Vec::new(), Vec::new());
        for r in block.chunks(3) {
            let (base, ntv, p) = (&r[0], &r[1], &r[2]);
            ntv_n.push(ntv.normalized_time(base));
            part_n.push(p.normalized_time(base));
        }
        println!(
            "{:<14} {:>15.1}% {:>15.1}%",
            label,
            100.0 * (geomean(&ntv_n) - 1.0),
            100.0 * (geomean(&part_n) - 1.0)
        );
    }
    println!();
    println!("With unpipelined banks the all-NTV design pays a bandwidth penalty on");
    println!("every access; the partitioned RF contains the damage because most");
    println!("accesses stay on the 1-cycle FRF — the paper's argument, sharpened.");
    println!();
    println!("{}", report.footer());
    run_report.write();
}
