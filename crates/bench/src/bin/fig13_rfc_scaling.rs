//! Fig. 13 — scalability of the register-file cache vs the partitioned RF
//! as issue width and active-warp counts grow.
//!
//! The paper's four configurations, labelled
//! `(schedulers/SM, RFC banks, active warps, MRF region)`:
//! `(1,2,8,NTV)`, `(4,4,16,NTV)`, `(4,8,32,NTV)`, `(4,8,32,STV)`.
//!
//! Paper shape: at the small configuration the RFC's dynamic-energy saving
//! is close to the partitioned RF's; scaling shrinks the RFC's saving
//! while the partitioned RF's stays constant; the RFC costs 9.5%, 3.8%,
//! and 3.3% performance at 8/16/32 active warps; with the MRF at STV the
//! RFC has no performance cost but saves only ~10% of the energy.
//! The RFC hit rate stays below ~45% at 32 active warps.

use prf_bench::{experiment_gpu, header, mean, run_cells_reported, Cell};
use prf_core::{PartitionedRfConfig, RfKind, RfcConfig};
use prf_sim::{GpuConfig, SchedulerPolicy};

struct Config13 {
    label: &'static str,
    schedulers: usize,
    rfc_banks: u32,
    active_warps: u32,
    mrf_ntv: bool,
    paper_overhead_pct: f64,
}

fn main() {
    header(
        "Figure 13: RFC vs partitioned RF scaling",
        "RFC savings shrink with scale; partitioned constant; RFC overhead 9.5/3.8/3.3%; RFC@STV saves ~10%",
    );
    let configs = [
        Config13 {
            label: "(1,2,8,NTV)",
            schedulers: 1,
            rfc_banks: 2,
            active_warps: 8,
            mrf_ntv: true,
            paper_overhead_pct: 9.5,
        },
        Config13 {
            label: "(4,4,16,NTV)",
            schedulers: 4,
            rfc_banks: 4,
            active_warps: 16,
            mrf_ntv: true,
            paper_overhead_pct: 3.8,
        },
        Config13 {
            label: "(4,8,32,NTV)",
            schedulers: 4,
            rfc_banks: 8,
            active_warps: 32,
            mrf_ntv: true,
            paper_overhead_pct: 3.3,
        },
        Config13 {
            label: "(4,8,32,STV)",
            schedulers: 4,
            rfc_banks: 8,
            active_warps: 32,
            mrf_ntv: false,
            paper_overhead_pct: 0.0,
        },
    ];

    // All four configurations × suite × {base, RFC, partitioned} as one
    // parallel matrix; rows are re-assembled per configuration below.
    const SEEDS: u64 = 3;
    let suite = prf_workloads::suite();
    let mut cells = Vec::new();
    for c in &configs {
        let sched = SchedulerPolicy::TwoLevel {
            active_per_scheduler: (c.active_warps as usize / c.schedulers).max(1),
        };
        let gpu = GpuConfig {
            num_schedulers: c.schedulers,
            ..experiment_gpu(sched)
        };
        let rfc_cfg = RfcConfig {
            mrf_at_ntv: c.mrf_ntv,
            mrf_latency: if c.mrf_ntv { 3 } else { 1 },
            sized_for_warps: c.active_warps,
            crossbar_banks: c.rfc_banks,
            ..RfcConfig::paper_default(gpu.num_rf_banks, gpu.max_warps_per_sm)
        };
        let part_cfg = PartitionedRfConfig::paper_default(gpu.num_rf_banks);
        for w in &suite {
            cells.push(Cell::new(w, &gpu, &RfKind::MrfStv));
            cells.push(Cell::new(w, &gpu, &RfKind::Rfc(rfc_cfg)));
            cells.push(Cell::new(w, &gpu, &RfKind::Partitioned(part_cfg.clone())));
        }
    }
    let (results, report, run_report) = run_cells_reported("fig13_rfc_scaling", &cells, SEEDS);

    println!(
        "{:<14} {:>9} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "config", "RFC KB", "RFC save", "part save", "RFC time", "part time", "rd-hit"
    );
    let per_config = suite.len() * 3;
    for (c, block) in configs.iter().zip(results.chunks(per_config)) {
        let (mut rfc_save, mut part_save, mut rfc_time, mut part_time, mut hit) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for r in block.chunks(3) {
            let (base, rfc, part) = (&r[0], &r[1], &r[2]);
            rfc_save.push(rfc.dynamic_saving());
            part_save.push(part.dynamic_saving());
            rfc_time.push(rfc.normalized_time(base));
            part_time.push(part.normalized_time(base));
            hit.push(rfc.telemetry.rfc_read_hit_rate());
        }
        let rfc_kb = 6.0 * f64::from(c.active_warps) * 32.0 * 4.0 / 1024.0;
        println!(
            "{:<14} {:>9.1} {:>9.1}% {:>9.1}% {:>10.3} {:>10.3} {:>8.1}%",
            c.label,
            rfc_kb,
            100.0 * mean(&rfc_save),
            100.0 * mean(&part_save),
            prf_bench::geomean(&rfc_time),
            prf_bench::geomean(&part_time),
            100.0 * mean(&hit)
        );
        let _ = c.paper_overhead_pct;
    }
    println!();
    println!("paper: RFC time overhead 9.5% / 3.8% / 3.3% / ~0%;");
    println!("       RFC@STV saves only ~10% dynamic energy; partitioned savings stay flat");
    println!();
    println!("{}", report.footer());
    run_report.write();
}
