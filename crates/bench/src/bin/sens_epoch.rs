//! §V-C sensitivity — adaptive-FRF epoch length.
//!
//! Paper: with the threshold held at the same 20%-of-issue-slots ratio,
//! "the epoch length has a small impact on performance".

use prf_bench::{experiment_gpu, geomean, header, mean, run_cells_reported, Cell};
use prf_core::{AdaptiveFrfConfig, PartitionedRfConfig, RfKind};
use prf_sim::{RfPartition, SchedulerPolicy};

fn main() {
    header(
        "Sensitivity: adaptive-FRF epoch length (same 20% threshold ratio)",
        "epoch length has a small impact on performance",
    );
    let gpu = experiment_gpu(SchedulerPolicy::Gto);
    let issue_width = gpu.issue_width() as u32;
    const SEEDS: u64 = 3;
    let epochs = [25u64, 50, 100, 200];

    // 4 epoch lengths × suite as one matrix.
    let suite = prf_workloads::suite();
    let cells: Vec<Cell> = epochs
        .iter()
        .flat_map(|&ep| {
            let cfg = PartitionedRfConfig {
                adaptive: Some(AdaptiveFrfConfig::with_epoch(ep, issue_width)),
                ..PartitionedRfConfig::paper_default(gpu.num_rf_banks)
            };
            suite
                .iter()
                .map(|w| Cell::new(w, &gpu, &RfKind::Partitioned(cfg.clone())))
                .collect::<Vec<_>>()
        })
        .collect();
    let (results, report, run_report) = run_cells_reported("sens_epoch", &cells, SEEDS);

    println!(
        "{:<10} {:>12} {:>14} {:>16}",
        "epoch", "geomean time", "energy saving", "FRF_low share"
    );
    let mut reference: Option<f64> = None;
    for (&ep, block) in epochs.iter().zip(results.chunks(suite.len())) {
        let (mut cycles, mut savings, mut low) = (Vec::new(), Vec::new(), Vec::new());
        for r in block {
            cycles.push(r.cycles as f64);
            savings.push(r.dynamic_saving());
            let pa = &r.stats.partition_accesses;
            let frf = pa.fraction(RfPartition::FrfHigh) + pa.fraction(RfPartition::FrfLow);
            low.push(if frf > 0.0 {
                pa.fraction(RfPartition::FrfLow) / frf
            } else {
                0.0
            });
        }
        let g = geomean(&cycles);
        let norm = match reference {
            None => {
                reference = Some(g);
                1.0
            }
            Some(r) => g / r,
        };
        println!(
            "{:<10} {:>12.3} {:>13.1}% {:>15.1}%",
            ep,
            norm,
            100.0 * mean(&savings),
            100.0 * mean(&low)
        );
    }
    println!();
    println!("paper: performance is insensitive to the epoch length at a fixed threshold ratio");
    println!();
    println!("{}", report.footer());
    run_report.write();
}
