//! Fig. 10 — partitioned register file access distribution: what fraction
//! of accesses each physical structure (FRF_high, FRF_low, SRF) services,
//! with four registers in the FRF and the adaptive controller on.
//!
//! Paper: "the proposed partitioned RF is able to forward 62% of the
//! accesses to the FRF"; at the 85/400 threshold, "22% of the accesses to
//! the FRF take place when the FRF is in the FRF_low mode"; high-compute
//! workloads like sad and hotspot rarely enter low mode.

use prf_bench::{experiment_gpu, header, mean, run_workload, SingleRunReporter};
use prf_core::{PartitionedRfConfig, RfKind};
use prf_sim::{RfPartition, SchedulerPolicy};

fn main() {
    header(
        "Figure 10: partitioned RF access distribution (FRF=4 regs, adaptive on)",
        "62% of accesses to the FRF; 22% of FRF accesses in FRF_low mode",
    );
    let gpu = experiment_gpu(SchedulerPolicy::Gto);
    let rf = RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks));
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>12}",
        "workload", "FRF_high", "FRF_low", "SRF", "low/FRF"
    );
    let (mut frf_tot, mut low_of_frf) = (Vec::new(), Vec::new());
    let mut reporter = SingleRunReporter::new("fig10_access_distribution");
    for w in prf_workloads::suite() {
        let r = run_workload(&w, &gpu, &rf);
        reporter.add(w.name, &r);
        let pa = &r.stats.partition_accesses;
        let hi = pa.fraction(RfPartition::FrfHigh);
        let lo = pa.fraction(RfPartition::FrfLow);
        let srf = pa.fraction(RfPartition::Srf);
        let low_share = if hi + lo > 0.0 { lo / (hi + lo) } else { 0.0 };
        println!(
            "{:<12} {:>8.1}% {:>8.1}% {:>8.1}% {:>11.1}%",
            w.name,
            100.0 * hi,
            100.0 * lo,
            100.0 * srf,
            100.0 * low_share
        );
        frf_tot.push(hi + lo);
        low_of_frf.push(low_share);
    }
    println!("{:-<56}", "");
    println!(
        "{:<12} FRF total {:>5.1}%  (paper 62%)   FRF_low share {:>5.1}%  (paper 22%)",
        "MEAN",
        100.0 * mean(&frf_tot),
        100.0 * mean(&low_of_frf)
    );
    reporter
        .report
        .add_metric("mean_frf_access_share", mean(&frf_tot));
    reporter
        .report
        .add_metric("mean_frf_low_share", mean(&low_of_frf));
    reporter.finish();
}
