//! prf-fuzz — differential and mutation fuzzing of the simulator stack.
//!
//! Two modes, both driven by the seeded [`RandomKernelGenerator`] so any
//! failing case can be replayed from its `(seed, index)` pair:
//!
//! * **differential** — every generated kernel must pass the validator,
//!   run audit-clean under every scheduler × RF model, produce a
//!   bit-identical `SimResult` at `sm_threads` 1 vs 2, and yield the same
//!   instruction count and final output image across *all* cells (the
//!   generator's race-freedom discipline makes architectural state a pure
//!   function of the kernel — see `prf_workloads::generate`).
//! * **mutation** — encoded kernels are bit-flipped and re-decoded: every
//!   corrupted stream must be rejected by the codec or the validator (or
//!   decode back to a still-valid kernel), but must *never* panic. A
//!   fixed set of targeted semantic corruptions additionally asserts the
//!   validator rejects each with instruction-index provenance.
//!
//! ```text
//! prf-fuzz [--seeds N] [--seed S] [--mode differential|mutation|all]
//! ```
//!
//! Exits non-zero if any case fails; CI runs a fixed budget of both modes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use prf_bench::runner::threads_from_env;
use prf_core::{
    rf_model_factory, shared_telemetry, DrowsyConfig, PartitionedRfConfig, RfKind, RfcConfig,
};
use prf_isa::{
    decode_kernel, encode_kernel, Dst, Instruction, Kernel, KernelBuilder, KernelValidator, Opcode,
    Operand, PredReg, Reg,
};
use prf_sim::{Gpu, GpuConfig, SchedulerPolicy, SimResult};
use prf_workloads::generate::{
    FuzzCase, KernelGenerator, RandomKernelGenerator, MEM_WORDS, OUT_BASE,
};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Differential,
    Mutation,
    All,
}

struct Args {
    seeds: u64,
    seed: u64,
    mode: Mode,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 200,
        seed: 0xC0FFEE,
        mode: Mode::All,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--seeds" => {
                args.seeds = value("--seeds")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--seeds: {e}")))
            }
            "--seed" => {
                args.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--seed: {e}")))
            }
            "--mode" => {
                args.mode = match value("--mode").as_str() {
                    "differential" => Mode::Differential,
                    "mutation" => Mode::Mutation,
                    "all" => Mode::All,
                    other => die(&format!("--mode: unknown mode `{other}`")),
                }
            }
            other => die(&format!("unknown flag `{other}`")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("prf-fuzz: {msg}");
    eprintln!("usage: prf-fuzz [--seeds N] [--seed S] [--mode differential|mutation|all]");
    std::process::exit(2);
}

/// The scheduler × RF matrix every differential case runs under.
fn schedulers() -> Vec<SchedulerPolicy> {
    vec![
        SchedulerPolicy::Gto,
        SchedulerPolicy::Lrr,
        SchedulerPolicy::TwoLevel {
            active_per_scheduler: 8,
        },
        SchedulerPolicy::FetchGroup { group_size: 8 },
    ]
}

fn rf_kinds(banks: usize, max_warps: usize) -> Vec<RfKind> {
    vec![
        RfKind::MrfStv,
        RfKind::MrfNtv { latency: 3 },
        RfKind::Partitioned(PartitionedRfConfig::paper_default(banks)),
        RfKind::Rfc(RfcConfig::paper_default(banks, max_warps)),
        RfKind::Drowsy(DrowsyConfig::paper_adjacent(banks, max_warps)),
    ]
}

/// The fuzzing machine: 2 SMs (so `sm_threads = 2` actually parallelises),
/// a small power-of-two memory covering the generator's regions, audit on.
fn fuzz_config(scheduler: SchedulerPolicy, sm_threads: usize) -> GpuConfig {
    GpuConfig {
        num_sms: 2,
        scheduler,
        sm_threads,
        global_mem_words: MEM_WORDS,
        max_cycles: 2_000_000,
        audit: true,
        ..GpuConfig::kepler_single_sm()
    }
}

/// One simulated cell: the `SimResult`, its audit verdict, and the final
/// output image.
struct CellRun {
    result: SimResult,
    out_image: Vec<u32>,
}

fn run_cell(
    case: &FuzzCase,
    kernel: &Arc<Kernel>,
    scheduler: SchedulerPolicy,
    rf: &RfKind,
    sm_threads: usize,
) -> Result<CellRun, String> {
    let config = fuzz_config(scheduler, sm_threads);
    let banks = config.num_rf_banks;
    let telemetry = shared_telemetry();
    let factory = rf_model_factory(rf, banks, &telemetry);
    let mut gpu = Gpu::try_new(config).map_err(|e| format!("try_new: {e}"))?;
    for (base, words) in &case.mem_init {
        gpu.global_mem().load(*base, words);
    }
    let result = gpu
        .run(Arc::clone(kernel), case.grid, &factory)
        .map_err(|e| format!("run: {e}"))?;
    match &result.audit {
        Some(a) if a.is_clean() => {}
        Some(a) => return Err(format!("audit violations: {a}")),
        None => return Err("audit report missing despite audit=true".into()),
    }
    let out_image = (0..case.total_threads())
        .map(|t| gpu.global_mem_ref().read(OUT_BASE + t))
        .collect();
    Ok(CellRun { result, out_image })
}

/// Differential check of one generated case across the full matrix.
/// Returns the list of discrepancies (empty = pass).
fn differential_case(generator: &RandomKernelGenerator, index: u64) -> Vec<String> {
    let mut errors = Vec::new();
    let case = generator.generate(index);
    if let Err(e) = KernelValidator::new().validate(&case.kernel) {
        return vec![format!(
            "case {index}: generated kernel failed validation: {e}"
        )];
    }
    let kernel = Arc::new(case.kernel.clone());
    let banks = GpuConfig::kepler_single_sm().num_rf_banks;
    let max_warps = GpuConfig::kepler_single_sm().max_warps_per_sm;
    // (instructions, output image) must agree across every cell.
    let mut architectural: Option<(u64, Vec<u32>, String)> = None;
    let rfs = rf_kinds(banks, max_warps);
    for scheduler in schedulers() {
        for rf in &rfs {
            let label = format!("case {index} {}/{}", scheduler.name(), rf.name());
            let serial = match run_cell(&case, &kernel, scheduler, rf, 1) {
                Ok(run) => run,
                Err(e) => {
                    errors.push(format!("{label} sm_threads=1: {e}"));
                    continue;
                }
            };
            match run_cell(&case, &kernel, scheduler, rf, 2) {
                Ok(parallel) => {
                    if parallel.result != serial.result {
                        errors.push(format!(
                            "{label}: SimResult differs between sm_threads=1 and 2"
                        ));
                    }
                    if parallel.out_image != serial.out_image {
                        errors.push(format!(
                            "{label}: output image differs between sm_threads=1 and 2"
                        ));
                    }
                }
                Err(e) => errors.push(format!("{label} sm_threads=2: {e}")),
            }
            let instructions = serial.result.stats.instructions;
            match &architectural {
                None => {
                    architectural = Some((instructions, serial.out_image, label));
                }
                Some((ref_instr, ref_image, ref_label)) => {
                    if instructions != *ref_instr {
                        errors.push(format!(
                            "{label}: {instructions} instructions vs {ref_instr} in {ref_label}"
                        ));
                    }
                    if serial.out_image != *ref_image {
                        errors.push(format!("{label}: output image differs from {ref_label}"));
                    }
                }
            }
        }
    }
    errors
}

fn run_differential(args: &Args) -> usize {
    let generator = RandomKernelGenerator::new(args.seed);
    let next = AtomicU64::new(0);
    let done = AtomicUsize::new(0);
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let workers = threads_from_env().min(args.seeds.max(1) as usize);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= args.seeds {
                    break;
                }
                let errors = differential_case(&generator, index);
                if !errors.is_empty() {
                    failures.lock().unwrap().extend(errors);
                }
                let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                if n % 50 == 0 {
                    eprintln!("[differential] {n}/{} cases", args.seeds);
                }
            });
        }
    });
    let failures = failures.into_inner().unwrap();
    for f in failures.iter().take(20) {
        eprintln!("[differential] FAIL {f}");
    }
    println!(
        "[differential] {} cases x 4 schedulers x 5 RF models x 2 thread counts: {} discrepancies",
        args.seeds,
        failures.len()
    );
    failures.len()
}

/// Targeted semantic corruptions: each builds (the structural builder
/// accepts it) but must be rejected by the validator with provenance.
fn targeted_corruptions() -> Vec<(&'static str, Kernel)> {
    let build = |name: &str, f: &dyn Fn(&mut KernelBuilder)| -> Kernel {
        let mut kb = KernelBuilder::new(name);
        f(&mut kb);
        kb.build()
            .expect("targeted corruptions are structurally buildable")
    };
    vec![
        (
            "branch without a target",
            build("no_target", &|kb| {
                kb.push(Instruction::new(Opcode::Bra));
                kb.exit();
            }),
        ),
        (
            "shfl with an immediate source",
            build("shfl_imm", &|kb| {
                kb.push(
                    Instruction::new(Opcode::Shfl)
                        .with_dst(Dst::Reg(Reg(2)))
                        .with_srcs(&[Operand::Imm(3), Operand::Imm(0)]),
                );
                kb.exit();
            }),
        ),
        (
            "selp without its predicate guard",
            build("bare_selp", &|kb| {
                kb.push(
                    Instruction::new(Opcode::Selp)
                        .with_dst(Dst::Reg(Reg(2)))
                        .with_srcs(&[Operand::Reg(Reg(0)), Operand::Reg(Reg(1))]),
                );
                kb.exit();
            }),
        ),
        (
            "guarded barrier",
            build("guarded_bar", &|kb| {
                kb.guard(PredReg(0), true);
                kb.push(Instruction::new(Opcode::Bar));
                kb.exit();
            }),
        ),
        (
            "store missing its value operand",
            build("half_store", &|kb| {
                kb.push(Instruction::new(Opcode::Stg).with_srcs(&[Operand::Reg(Reg(0))]));
                kb.exit();
            }),
        ),
        (
            "guarded exit at the end falls off",
            build("guarded_end", &|kb| {
                kb.mov_imm(Reg(0), 1);
                kb.guard(PredReg(0), true);
                kb.exit();
            }),
        ),
    ]
}

fn run_mutation(args: &Args) -> usize {
    let mut failures = 0usize;
    let validator = KernelValidator::new();

    // Targeted corruptions: must reject, with instruction provenance.
    for (what, kernel) in targeted_corruptions() {
        match validator.validate(&kernel) {
            Err(e) if e.to_string().contains("instr ") => {}
            Err(e) => {
                eprintln!("[mutation] FAIL {what}: rejected but without provenance: {e}");
                failures += 1;
            }
            Ok(()) => {
                eprintln!("[mutation] FAIL {what}: validator accepted a corrupted kernel");
                failures += 1;
            }
        }
    }

    // Random bit flips over encoded kernels: decode + validate must
    // classify, never panic.
    let generator = RandomKernelGenerator::new(args.seed);
    let (mut decode_rejected, mut validate_rejected, mut still_valid, mut panics) = (0u64, 0, 0, 0);
    for index in 0..args.seeds {
        let case = generator.generate(index);
        let mut words = encode_kernel(&case.kernel);
        // A cheap per-case stream for flip positions, decorrelated from
        // the generator's own stream.
        let mut state = (args.seed ^ index.wrapping_mul(0x94D0_49BB_1331_11EB)) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..4 {
            let w = (next() % words.len() as u64) as usize;
            words[w] ^= 1 << (next() % 32);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            match decode_kernel("mutated", &words) {
                Err(_) => 0u8,
                Ok(k) => match validator.validate(&k) {
                    Err(_) => 1,
                    Ok(()) => 2,
                },
            }
        }));
        match outcome {
            Ok(0) => decode_rejected += 1,
            Ok(1) => validate_rejected += 1,
            Ok(2) => still_valid += 1,
            Ok(_) => unreachable!(),
            Err(_) => {
                eprintln!("[mutation] FAIL case {index}: decode/validate panicked");
                panics += 1;
            }
        }
    }
    println!(
        "[mutation] {} targeted corruptions rejected with provenance; {} bit-flip cases: \
         {decode_rejected} decode-rejected, {validate_rejected} validate-rejected, \
         {still_valid} still-valid, {panics} panics",
        targeted_corruptions().len(),
        args.seeds,
    );
    failures + panics as usize
}

fn main() {
    let args = parse_args();
    let mut failures = 0;
    if args.mode != Mode::Mutation {
        failures += run_differential(&args);
    }
    if args.mode != Mode::Differential {
        failures += run_mutation(&args);
    }
    if failures > 0 {
        eprintln!("prf-fuzz: {failures} failures");
        std::process::exit(1);
    }
    println!("prf-fuzz: all checks passed");
}
