//! prf-fuzz — differential and mutation fuzzing of the simulator stack.
//!
//! Three modes, the generated-kernel ones driven by the seeded
//! [`RandomKernelGenerator`] so any failing case can be replayed from its
//! `(seed, index)` pair:
//!
//! * **differential** — every generated kernel must pass the validator,
//!   run audit-clean under every scheduler × RF model, produce a
//!   bit-identical `SimResult` at `sm_threads` 1 vs 2, and yield the same
//!   instruction count and final output image across *all* cells (the
//!   generator's race-freedom discipline makes architectural state a pure
//!   function of the kernel — see `prf_workloads::generate`).
//! * **mutation** — encoded kernels are bit-flipped and re-decoded: every
//!   corrupted stream must be rejected by the codec or the validator (or
//!   decode back to a still-valid kernel), but must *never* panic. A
//!   fixed set of targeted semantic corruptions additionally asserts the
//!   validator rejects each with instruction-index provenance.
//! * **realloc** — every generated kernel and every Table I suite kernel
//!   is rewritten by the register reallocation pass (`prf-isa::realloc`);
//!   the rewritten kernel must validate, never grow its register set, and
//!   retire the same instruction count with a bit-identical output image
//!   as the original under every scheduler × RF model. Table I kernels
//!   run on a one-warp-per-CTA grid where the recipes are provably
//!   race-free (see `prf-workloads/tests/realloc_equivalence.rs` for why
//!   renaming registers legitimately perturbs timing).
//!
//! ```text
//! prf-fuzz [--seeds N] [--seed S] [--mode differential|mutation|realloc|all]
//! ```
//!
//! Exits non-zero if any case fails; CI runs a fixed budget of all modes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use prf_bench::runner::threads_from_env;
use prf_core::{
    rf_model_factory, shared_telemetry, DrowsyConfig, PartitionedRfConfig, RfKind, RfcConfig,
};
use prf_isa::{
    decode_kernel, encode_kernel, Dst, Instruction, Kernel, KernelBuilder, KernelValidator, Opcode,
    Operand, PredReg, Reg,
};
use prf_sim::{Gpu, GpuConfig, SchedulerPolicy, SimResult};
use prf_workloads::generate::{
    FuzzCase, KernelGenerator, RandomKernelGenerator, MEM_WORDS, OUT_BASE,
};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Differential,
    Mutation,
    Realloc,
    All,
}

impl Mode {
    fn runs(self, m: Mode) -> bool {
        self == Mode::All || self == m
    }
}

struct Args {
    seeds: u64,
    seed: u64,
    mode: Mode,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 200,
        seed: 0xC0FFEE,
        mode: Mode::All,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--seeds" => {
                args.seeds = value("--seeds")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--seeds: {e}")))
            }
            "--seed" => {
                args.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--seed: {e}")))
            }
            "--mode" => {
                args.mode = match value("--mode").as_str() {
                    "differential" => Mode::Differential,
                    "mutation" => Mode::Mutation,
                    "realloc" => Mode::Realloc,
                    "all" => Mode::All,
                    other => die(&format!("--mode: unknown mode `{other}`")),
                }
            }
            other => die(&format!("unknown flag `{other}`")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("prf-fuzz: {msg}");
    eprintln!("usage: prf-fuzz [--seeds N] [--seed S] [--mode differential|mutation|realloc|all]");
    std::process::exit(2);
}

/// The scheduler × RF matrix every differential case runs under.
fn schedulers() -> Vec<SchedulerPolicy> {
    vec![
        SchedulerPolicy::Gto,
        SchedulerPolicy::Lrr,
        SchedulerPolicy::TwoLevel {
            active_per_scheduler: 8,
        },
        SchedulerPolicy::FetchGroup { group_size: 8 },
    ]
}

fn rf_kinds(banks: usize, max_warps: usize) -> Vec<RfKind> {
    vec![
        RfKind::MrfStv,
        RfKind::MrfNtv { latency: 3 },
        RfKind::Partitioned(PartitionedRfConfig::paper_default(banks)),
        RfKind::Rfc(RfcConfig::paper_default(banks, max_warps)),
        RfKind::Drowsy(DrowsyConfig::paper_adjacent(banks, max_warps)),
    ]
}

/// The fuzzing machine: 2 SMs (so `sm_threads = 2` actually parallelises),
/// a small power-of-two memory covering the generator's regions, audit on.
fn fuzz_config(scheduler: SchedulerPolicy, sm_threads: usize) -> GpuConfig {
    GpuConfig {
        num_sms: 2,
        scheduler,
        sm_threads,
        global_mem_words: MEM_WORDS,
        max_cycles: 2_000_000,
        audit: true,
        ..GpuConfig::kepler_single_sm()
    }
}

/// One simulated cell: the `SimResult`, its audit verdict, and the final
/// output image.
struct CellRun {
    result: SimResult,
    out_image: Vec<u32>,
}

fn run_cell(
    case: &FuzzCase,
    kernel: &Arc<Kernel>,
    scheduler: SchedulerPolicy,
    rf: &RfKind,
    sm_threads: usize,
) -> Result<CellRun, String> {
    let config = fuzz_config(scheduler, sm_threads);
    let banks = config.num_rf_banks;
    let telemetry = shared_telemetry();
    let factory = rf_model_factory(rf, banks, &telemetry);
    let mut gpu = Gpu::try_new(config).map_err(|e| format!("try_new: {e}"))?;
    for (base, words) in &case.mem_init {
        gpu.global_mem().load(*base, words);
    }
    let result = gpu
        .run(Arc::clone(kernel), case.grid, &factory)
        .map_err(|e| format!("run: {e}"))?;
    match &result.audit {
        Some(a) if a.is_clean() => {}
        Some(a) => return Err(format!("audit violations: {a}")),
        None => return Err("audit report missing despite audit=true".into()),
    }
    let out_image = (0..case.total_threads())
        .map(|t| gpu.global_mem_ref().read(OUT_BASE + t))
        .collect();
    Ok(CellRun { result, out_image })
}

/// Differential check of one generated case across the full matrix.
/// Returns the list of discrepancies (empty = pass).
fn differential_case(generator: &RandomKernelGenerator, index: u64) -> Vec<String> {
    let mut errors = Vec::new();
    let case = generator.generate(index);
    if let Err(e) = KernelValidator::new().validate(&case.kernel) {
        return vec![format!(
            "case {index}: generated kernel failed validation: {e}"
        )];
    }
    let kernel = Arc::new(case.kernel.clone());
    let banks = GpuConfig::kepler_single_sm().num_rf_banks;
    let max_warps = GpuConfig::kepler_single_sm().max_warps_per_sm;
    // (instructions, output image) must agree across every cell.
    let mut architectural: Option<(u64, Vec<u32>, String)> = None;
    let rfs = rf_kinds(banks, max_warps);
    for scheduler in schedulers() {
        for rf in &rfs {
            let label = format!("case {index} {}/{}", scheduler.name(), rf.name());
            let serial = match run_cell(&case, &kernel, scheduler, rf, 1) {
                Ok(run) => run,
                Err(e) => {
                    errors.push(format!("{label} sm_threads=1: {e}"));
                    continue;
                }
            };
            match run_cell(&case, &kernel, scheduler, rf, 2) {
                Ok(parallel) => {
                    if parallel.result != serial.result {
                        errors.push(format!(
                            "{label}: SimResult differs between sm_threads=1 and 2"
                        ));
                    }
                    if parallel.out_image != serial.out_image {
                        errors.push(format!(
                            "{label}: output image differs between sm_threads=1 and 2"
                        ));
                    }
                }
                Err(e) => errors.push(format!("{label} sm_threads=2: {e}")),
            }
            let instructions = serial.result.stats.instructions;
            match &architectural {
                None => {
                    architectural = Some((instructions, serial.out_image, label));
                }
                Some((ref_instr, ref_image, ref_label)) => {
                    if instructions != *ref_instr {
                        errors.push(format!(
                            "{label}: {instructions} instructions vs {ref_instr} in {ref_label}"
                        ));
                    }
                    if serial.out_image != *ref_image {
                        errors.push(format!("{label}: output image differs from {ref_label}"));
                    }
                }
            }
        }
    }
    errors
}

fn run_differential(args: &Args) -> usize {
    let generator = RandomKernelGenerator::new(args.seed);
    let next = AtomicU64::new(0);
    let done = AtomicUsize::new(0);
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let workers = threads_from_env().min(args.seeds.max(1) as usize);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= args.seeds {
                    break;
                }
                let errors = differential_case(&generator, index);
                if !errors.is_empty() {
                    failures.lock().unwrap().extend(errors);
                }
                let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                if n % 50 == 0 {
                    eprintln!("[differential] {n}/{} cases", args.seeds);
                }
            });
        }
    });
    let failures = failures.into_inner().unwrap();
    for f in failures.iter().take(20) {
        eprintln!("[differential] FAIL {f}");
    }
    println!(
        "[differential] {} cases x 4 schedulers x 5 RF models x 2 thread counts: {} discrepancies",
        args.seeds,
        failures.len()
    );
    failures.len()
}

/// Rewrite `kernel` with the reallocation pass, panicking into an error
/// string on failure. Shared by the generated-kernel and Table I arms.
fn realloc_checked(kernel: &Kernel, what: &str) -> Result<prf_isa::Realloc, String> {
    let r = prf_isa::reallocate(kernel).map_err(|e| format!("{what}: realloc failed: {e}"))?;
    KernelValidator::new()
        .validate(&r.kernel)
        .map_err(|e| format!("{what}: rewritten kernel failed validation: {e}"))?;
    if r.new_regs > r.old_regs {
        return Err(format!(
            "{what}: realloc grew the register set ({} -> {})",
            r.old_regs, r.new_regs
        ));
    }
    Ok(r)
}

/// Realloc differential on one generated case: original vs rewritten
/// kernel must retire the same instruction count and output image under
/// every scheduler × RF model. Generated kernels are race-free by
/// construction, so the comparison is exact at the case's own grid.
fn realloc_case(generator: &RandomKernelGenerator, index: u64) -> Vec<String> {
    let case = generator.generate(index);
    let r = match realloc_checked(&case.kernel, &format!("case {index}")) {
        Ok(r) => r,
        Err(e) => return vec![e],
    };
    let original = Arc::new(case.kernel.clone());
    let rewritten = Arc::new(r.kernel);
    let banks = GpuConfig::kepler_single_sm().num_rf_banks;
    let max_warps = GpuConfig::kepler_single_sm().max_warps_per_sm;
    let rfs = rf_kinds(banks, max_warps);
    let mut errors = Vec::new();
    for scheduler in schedulers() {
        for rf in &rfs {
            let label = format!("case {index} {}/{}", scheduler.name(), rf.name());
            let base = match run_cell(&case, &original, scheduler, rf, 1) {
                Ok(run) => run,
                Err(e) => {
                    errors.push(format!("{label} original: {e}"));
                    continue;
                }
            };
            match run_cell(&case, &rewritten, scheduler, rf, 1) {
                Ok(re) => {
                    if re.result.stats.instructions != base.result.stats.instructions {
                        errors.push(format!(
                            "{label}: instruction count drifted under realloc ({} vs {})",
                            re.result.stats.instructions, base.result.stats.instructions
                        ));
                    }
                    if re.out_image != base.out_image {
                        errors.push(format!("{label}: output image drifted under realloc"));
                    }
                }
                Err(e) => errors.push(format!("{label} rewritten: {e}")),
            }
        }
    }
    errors
}

/// The race-free launch geometry for Table I realloc differentials: one
/// warp per CTA keeps the recipes' streaming walkers far below the output
/// region and turns shared-tile neighbour reads into same-warp lockstep.
fn table1_grid() -> prf_isa::GridConfig {
    prf_isa::GridConfig::new(8, 32)
}

/// Table I kernels write their output at `0x100000 + gtid`, so the fuzz
/// memory is too small; this config covers the recipe address map.
fn table1_config(scheduler: SchedulerPolicy) -> GpuConfig {
    GpuConfig {
        num_sms: 2,
        scheduler,
        global_mem_words: 1 << 21,
        max_cycles: 4_000_000,
        audit: true,
        ..GpuConfig::kepler_single_sm()
    }
}

/// One Table I realloc cell: (instructions, full final memory image).
fn table1_cell(
    kernel: &Arc<Kernel>,
    mem_init: &[(u32, Vec<u32>)],
    scheduler: SchedulerPolicy,
    rf: &RfKind,
) -> Result<(u64, Vec<u32>), String> {
    let config = table1_config(scheduler);
    let banks = config.num_rf_banks;
    let telemetry = shared_telemetry();
    let factory = rf_model_factory(rf, banks, &telemetry);
    let mut gpu = Gpu::try_new(config).map_err(|e| format!("try_new: {e}"))?;
    for (base, words) in mem_init {
        gpu.global_mem().load(*base, words);
    }
    let result = gpu
        .run(Arc::clone(kernel), table1_grid(), &factory)
        .map_err(|e| format!("run: {e}"))?;
    match &result.audit {
        Some(a) if a.is_clean() => {}
        Some(a) => return Err(format!("audit violations: {a}")),
        None => return Err("audit report missing despite audit=true".into()),
    }
    let image = (0..gpu.global_mem_ref().len() as u32)
        .map(|a| gpu.global_mem_ref().read(a))
        .collect();
    Ok((result.stats.instructions, image))
}

/// Realloc differential over every Table I suite kernel, full scheduler ×
/// RF matrix, full-memory-image oracle.
fn realloc_table1() -> Vec<String> {
    let banks = GpuConfig::kepler_single_sm().num_rf_banks;
    let max_warps = GpuConfig::kepler_single_sm().max_warps_per_sm;
    let rfs = rf_kinds(banks, max_warps);
    let mut errors = Vec::new();
    for w in prf_workloads::suite() {
        for (li, launch) in w.launches.iter().enumerate() {
            let what = format!("{} launch {li}", w.name);
            let r = match realloc_checked(&launch.kernel, &what) {
                Ok(r) => r,
                Err(e) => {
                    errors.push(e);
                    continue;
                }
            };
            let rewritten = Arc::new(r.kernel);
            for scheduler in schedulers() {
                for rf in &rfs {
                    let label = format!("{what} {}/{}", scheduler.name(), rf.name());
                    let base = match table1_cell(&launch.kernel, &w.mem_init, scheduler, rf) {
                        Ok(run) => run,
                        Err(e) => {
                            errors.push(format!("{label} original: {e}"));
                            continue;
                        }
                    };
                    match table1_cell(&rewritten, &w.mem_init, scheduler, rf) {
                        Ok(re) => {
                            if re.0 != base.0 {
                                errors.push(format!(
                                    "{label}: instruction count drifted under realloc \
                                     ({} vs {})",
                                    re.0, base.0
                                ));
                            }
                            if re.1 != base.1 {
                                errors.push(format!("{label}: memory image drifted under realloc"));
                            }
                        }
                        Err(e) => errors.push(format!("{label} rewritten: {e}")),
                    }
                }
            }
        }
    }
    errors
}

fn run_realloc(args: &Args) -> usize {
    let generator = RandomKernelGenerator::new(args.seed);
    let next = AtomicU64::new(0);
    let done = AtomicUsize::new(0);
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let workers = threads_from_env().min(args.seeds.max(1) as usize);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= args.seeds {
                    break;
                }
                let errors = realloc_case(&generator, index);
                if !errors.is_empty() {
                    failures.lock().unwrap().extend(errors);
                }
                let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                if n % 50 == 0 {
                    eprintln!("[realloc] {n}/{} generated cases", args.seeds);
                }
            });
        }
    });
    let table1_errors = realloc_table1();
    let mut failures = failures.into_inner().unwrap();
    failures.extend(table1_errors);
    for f in failures.iter().take(20) {
        eprintln!("[realloc] FAIL {f}");
    }
    println!(
        "[realloc] {} generated cases + Table I suite x 4 schedulers x 5 RF models: \
         {} discrepancies",
        args.seeds,
        failures.len()
    );
    failures.len()
}

/// Targeted semantic corruptions: each builds (the structural builder
/// accepts it) but must be rejected by the validator with provenance.
fn targeted_corruptions() -> Vec<(&'static str, Kernel)> {
    let build = |name: &str, f: &dyn Fn(&mut KernelBuilder)| -> Kernel {
        let mut kb = KernelBuilder::new(name);
        f(&mut kb);
        kb.build()
            .expect("targeted corruptions are structurally buildable")
    };
    vec![
        (
            "branch without a target",
            build("no_target", &|kb| {
                kb.push(Instruction::new(Opcode::Bra));
                kb.exit();
            }),
        ),
        (
            "shfl with an immediate source",
            build("shfl_imm", &|kb| {
                kb.push(
                    Instruction::new(Opcode::Shfl)
                        .with_dst(Dst::Reg(Reg(2)))
                        .with_srcs(&[Operand::Imm(3), Operand::Imm(0)]),
                );
                kb.exit();
            }),
        ),
        (
            "selp without its predicate guard",
            build("bare_selp", &|kb| {
                kb.push(
                    Instruction::new(Opcode::Selp)
                        .with_dst(Dst::Reg(Reg(2)))
                        .with_srcs(&[Operand::Reg(Reg(0)), Operand::Reg(Reg(1))]),
                );
                kb.exit();
            }),
        ),
        (
            "guarded barrier",
            build("guarded_bar", &|kb| {
                kb.guard(PredReg(0), true);
                kb.push(Instruction::new(Opcode::Bar));
                kb.exit();
            }),
        ),
        (
            "store missing its value operand",
            build("half_store", &|kb| {
                kb.push(Instruction::new(Opcode::Stg).with_srcs(&[Operand::Reg(Reg(0))]));
                kb.exit();
            }),
        ),
        (
            "guarded exit at the end falls off",
            build("guarded_end", &|kb| {
                kb.mov_imm(Reg(0), 1);
                kb.guard(PredReg(0), true);
                kb.exit();
            }),
        ),
    ]
}

fn run_mutation(args: &Args) -> usize {
    let mut failures = 0usize;
    let validator = KernelValidator::new();

    // Targeted corruptions: must reject, with instruction provenance.
    for (what, kernel) in targeted_corruptions() {
        match validator.validate(&kernel) {
            Err(e) if e.to_string().contains("instr ") => {}
            Err(e) => {
                eprintln!("[mutation] FAIL {what}: rejected but without provenance: {e}");
                failures += 1;
            }
            Ok(()) => {
                eprintln!("[mutation] FAIL {what}: validator accepted a corrupted kernel");
                failures += 1;
            }
        }
    }

    // Random bit flips over encoded kernels: decode + validate must
    // classify, never panic.
    let generator = RandomKernelGenerator::new(args.seed);
    let (mut decode_rejected, mut validate_rejected, mut still_valid, mut panics) = (0u64, 0, 0, 0);
    for index in 0..args.seeds {
        let case = generator.generate(index);
        let mut words = encode_kernel(&case.kernel);
        // A cheap per-case stream for flip positions, decorrelated from
        // the generator's own stream.
        let mut state = (args.seed ^ index.wrapping_mul(0x94D0_49BB_1331_11EB)) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..4 {
            let w = (next() % words.len() as u64) as usize;
            words[w] ^= 1 << (next() % 32);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            match decode_kernel("mutated", &words) {
                Err(_) => 0u8,
                Ok(k) => match validator.validate(&k) {
                    Err(_) => 1,
                    Ok(()) => 2,
                },
            }
        }));
        match outcome {
            Ok(0) => decode_rejected += 1,
            Ok(1) => validate_rejected += 1,
            Ok(2) => still_valid += 1,
            Ok(_) => unreachable!(),
            Err(_) => {
                eprintln!("[mutation] FAIL case {index}: decode/validate panicked");
                panics += 1;
            }
        }
    }
    println!(
        "[mutation] {} targeted corruptions rejected with provenance; {} bit-flip cases: \
         {decode_rejected} decode-rejected, {validate_rejected} validate-rejected, \
         {still_valid} still-valid, {panics} panics",
        targeted_corruptions().len(),
        args.seeds,
    );
    failures + panics as usize
}

fn main() {
    let args = parse_args();
    let mut failures = 0;
    if args.mode.runs(Mode::Differential) {
        failures += run_differential(&args);
    }
    if args.mode.runs(Mode::Mutation) {
        failures += run_mutation(&args);
    }
    if args.mode.runs(Mode::Realloc) {
        failures += run_realloc(&args);
    }
    if failures > 0 {
        eprintln!("prf-fuzz: {failures} failures");
        std::process::exit(1);
    }
    println!("prf-fuzz: all checks passed");
}
