//! §V-B design-space exploration — the adaptive-FRF low-compute threshold.
//!
//! Paper: "We did a detailed design space exploration of this threshold to
//! see the energy savings versus potential performance penalties. Our
//! results show that any threshold around 85 works well (average
//! performance overhead is less than 0.5%) … At this threshold 22% of the
//! accesses to the FRF take place when the FRF is in the FRF_low mode."

use prf_bench::{experiment_gpu, geomean, header, mean, run_cells_reported, Cell};
use prf_core::{AdaptiveFrfConfig, PartitionedRfConfig, RfKind};
use prf_sim::{RfPartition, SchedulerPolicy};

fn main() {
    header(
        "Sensitivity: adaptive-FRF issue threshold (out of 400 slots / 50-cycle epoch)",
        "any threshold around 85 works well; ~0.5% extra overhead; 22% of FRF accesses in low mode",
    );
    let gpu = experiment_gpu(SchedulerPolicy::Gto);
    const SEEDS: u64 = 3;
    let thresholds = [0u32, 40, 85, 130, 200, 400];

    // 6 thresholds × suite as one matrix.
    let suite = prf_workloads::suite();
    let cells: Vec<Cell> = thresholds
        .iter()
        .flat_map(|&threshold| {
            let cfg = PartitionedRfConfig {
                adaptive: Some(AdaptiveFrfConfig {
                    epoch_length: 50,
                    threshold,
                }),
                ..PartitionedRfConfig::paper_default(gpu.num_rf_banks)
            };
            suite
                .iter()
                .map(|w| Cell::new(w, &gpu, &RfKind::Partitioned(cfg.clone())))
                .collect::<Vec<_>>()
        })
        .collect();
    let (results, report, run_report) = run_cells_reported("sens_threshold", &cells, SEEDS);

    println!(
        "{:<10} {:>14} {:>14} {:>16}",
        "threshold", "time vs t=0", "dyn saving", "FRF_low share"
    );
    let mut reference: Option<f64> = None;
    for (&threshold, block) in thresholds.iter().zip(results.chunks(suite.len())) {
        let (mut cycles, mut savings, mut low) = (Vec::new(), Vec::new(), Vec::new());
        for r in block {
            cycles.push(r.cycles as f64);
            savings.push(r.dynamic_saving());
            let pa = &r.stats.partition_accesses;
            let frf = pa.fraction(RfPartition::FrfHigh) + pa.fraction(RfPartition::FrfLow);
            low.push(if frf > 0.0 {
                pa.fraction(RfPartition::FrfLow) / frf
            } else {
                0.0
            });
        }
        let g = geomean(&cycles);
        let r0 = *reference.get_or_insert(g);
        let marker = if threshold == 85 {
            "  <-- paper's design point"
        } else {
            ""
        };
        println!(
            "{:<10} {:>14.3} {:>13.1}% {:>15.1}%{marker}",
            threshold,
            g / r0,
            100.0 * mean(&savings),
            100.0 * mean(&low)
        );
    }
    println!();
    println!("threshold 0 pins FRF_high (no adaptive savings); threshold 400 pins FRF_low");
    println!("(max savings, max latency). The knee sits around the paper's 85.");
    println!();
    println!("{}", report.footer());
    run_report.write();
}
