//! fig_greener — GREENER-class compiler-directed register reallocation
//! (liveness → interference coloring → power gating, see
//! `prf-isa::liveness` / `prf-isa::realloc` / `prf-core::gating`) layered
//! on the paper's pilot register file, across the Table I suite.
//!
//! Four arms per workload:
//!
//! 1. **baseline**  — MRF@STV, original kernels;
//! 2. **pilot**     — partitioned RF (paper default), original kernels;
//! 3. **greener**   — MRF@STV, realloc-compacted kernels + dead-range
//!    power-gating credit on leakage;
//! 4. **combined**  — partitioned RF over the compacted kernels (hot
//!    registers concentrated at low indices feed the FRF capture) + the
//!    same gating credit.
//!
//! The gating credit is applied here, at the experiment layer, so the
//! simulated access streams stay untouched (see `prf-core::gating` for
//! why). The realloc pass is semantics-preserving: this binary asserts
//! every rewritten kernel validates and retires exactly the baseline
//! arm's instruction count; the bit-identical memory oracle runs in
//! `prf-fuzz --mode realloc`.
//!
//! `--quick` trims the suite to four representative workloads for CI.

use prf_bench::{experiment_gpu, header, mean, run_cells_reported, Cell};
use prf_core::{Launch, PartitionedRfConfig, PowerGatingModel, RfKind};
use prf_isa::{reallocate, KernelValidator};
use prf_sim::SchedulerPolicy;
use prf_workloads::Workload;

/// Workloads with at least this many registers per thread must show a
/// strict total-RF-energy win under the greener arm (acceptance
/// criterion: gating credit on a compacted allocation always beats the
/// structural baseline when registers are plentiful).
const HIGH_REGS: u8 = 15;

/// The `--quick` CI subset: one workload per recipe family, including
/// two high-register-count ones.
const QUICK: [&str; 4] = ["BFS", "btree", "hotspot", "sgemm"];

/// A workload whose kernels were rewritten by the realloc pass, plus the
/// numbers the figure reports about the rewrite itself.
struct Greener {
    workload: Workload,
    /// Mean (over launches) of live registers / original allocation —
    /// the power-gating live fraction.
    live_fraction: f64,
    old_regs: u8,
    new_regs: u8,
}

fn greener_clone(w: &Workload, validator: &KernelValidator) -> Greener {
    let mut launches = Vec::new();
    let mut fracs = Vec::new();
    let (mut old_regs, mut new_regs) = (0u8, 0u8);
    for launch in &w.launches {
        let r = reallocate(&launch.kernel)
            .unwrap_or_else(|e| panic!("{}: realloc failed: {e}", w.name));
        validator
            .validate(&r.kernel)
            .unwrap_or_else(|e| panic!("{}: rewritten kernel invalid: {e}", w.name));
        fracs.push(r.live_fraction_of(r.old_regs));
        old_regs = old_regs.max(r.old_regs);
        new_regs = new_regs.max(r.new_regs);
        launches.push(Launch::new(r.kernel, launch.grid));
    }
    // Reports and job digests need a distinct &'static name per rewritten
    // workload; the handful of leaked strings live for the process anyway.
    let name: &'static str = Box::leak(format!("{}+greener", w.name).into_boxed_str());
    Greener {
        workload: Workload {
            name,
            category: w.category,
            launches,
            mem_init: w.mem_init.clone(),
            table1: w.table1,
        },
        live_fraction: mean(&fracs),
        old_regs,
        new_regs,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    header(
        "fig_greener: pilot RF x GREENER-style register reallocation",
        "liveness-driven compaction + dead-range gating stacks on the partitioned RF's 54%",
    );
    let gpu = experiment_gpu(SchedulerPolicy::Gto);
    let mrf = RfKind::MrfStv;
    let pilot = RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks));
    let gating = PowerGatingModel::greener_default();

    let mut suite = prf_workloads::suite();
    if quick {
        suite.retain(|w| QUICK.contains(&w.name));
        assert_eq!(
            suite.len(),
            QUICK.len(),
            "--quick subset drifted from the suite"
        );
    }
    let validator = KernelValidator::new();
    let rewritten: Vec<Greener> = suite.iter().map(|w| greener_clone(w, &validator)).collect();

    // 4 arms per workload, the whole figure as one parallel matrix.
    let cells: Vec<Cell> = suite
        .iter()
        .zip(&rewritten)
        .flat_map(|(w, g)| {
            [
                Cell::new(w, &gpu, &mrf),
                Cell::new(w, &gpu, &pilot),
                Cell::new(&g.workload, &gpu, &mrf),
                Cell::new(&g.workload, &gpu, &pilot),
            ]
        })
        .collect();
    let (results, report, mut run_report) = run_cells_reported("fig_greener", &cells, 1);

    println!(
        "{:<12} {:>5} {:>6} {:>7} {:>8} {:>9} {:>9}",
        "workload", "regs", "live%", "pilot", "greener", "combined", "(energy saving vs MRF@STV)"
    );
    let (mut s_pilot, mut s_greener, mut s_combined) = (Vec::new(), Vec::new(), Vec::new());
    for ((w, g), r) in suite.iter().zip(&rewritten).zip(results.chunks(4)) {
        let (base, pil, grn, cmb) = (&r[0], &r[1], &r[2], &r[3]);

        // Semantics guard: realloc must not change what the program does,
        // only how fast it does it.
        assert_eq!(
            base.stats.instructions, grn.stats.instructions,
            "{}: instruction count drifted under realloc (MRF arm)",
            w.name
        );
        assert_eq!(
            pil.stats.instructions, cmb.stats.instructions,
            "{}: instruction count drifted under realloc (partitioned arm)",
            w.name
        );

        // Total RF energy per arm: dynamic + leakage, with the gating
        // credit scaling the realloc'd arms' leakage by the live fraction.
        let gate = gating.effective_leakage_mw(1.0, g.live_fraction);
        let base_total = base.dynamic_energy_pj + base.leakage_energy_pj;
        let pilot_total = pil.dynamic_energy_pj + pil.leakage_energy_pj;
        let greener_total = grn.dynamic_energy_pj + grn.leakage_energy_pj * gate;
        let combined_total = cmb.dynamic_energy_pj + cmb.leakage_energy_pj * gate;

        if w.regs_per_thread() >= HIGH_REGS {
            assert!(
                greener_total < base_total,
                "{}: greener arm must strictly beat baseline RF energy \
                 ({greener_total:.1} pJ vs {base_total:.1} pJ)",
                w.name
            );
        }

        let saving = |arm: f64| 1.0 - arm / base_total;
        println!(
            "{:<12} {:>2}->{:<2} {:>5.1} {:>6.1}% {:>7.1}% {:>8.1}%",
            w.name,
            g.old_regs,
            g.new_regs,
            100.0 * g.live_fraction,
            100.0 * saving(pilot_total),
            100.0 * saving(greener_total),
            100.0 * saving(combined_total),
        );
        s_pilot.push(saving(pilot_total));
        s_greener.push(saving(greener_total));
        s_combined.push(saving(combined_total));
    }
    println!("{:-<62}", "");
    println!(
        "{:<12} {:>12} {:>6.1}% {:>7.1}% {:>8.1}%",
        "MEAN",
        "",
        100.0 * mean(&s_pilot),
        100.0 * mean(&s_greener),
        100.0 * mean(&s_combined),
    );
    println!();
    println!("{}", report.footer());

    run_report.add_metric("mean_total_saving_pilot", mean(&s_pilot));
    run_report.add_metric("mean_total_saving_greener", mean(&s_greener));
    run_report.add_metric("mean_total_saving_combined", mean(&s_combined));
    run_report.add_metric(
        "mean_live_fraction",
        mean(
            &rewritten
                .iter()
                .map(|g| g.live_fraction)
                .collect::<Vec<_>>(),
        ),
    );
    run_report.write();
}
