//! Fig. 2 — percentage of accesses to the top N highly accessed
//! registers, per workload.
//!
//! Paper: "the top 3 registers in each kernel account for 62% of the total
//! registers accesses on average across all the workloads. The top 4 and 5
//! registers account for 72% and 77%."

use prf_bench::report::{pct, CsvTable};
use prf_bench::{experiment_gpu, header, mean, run_workload, SingleRunReporter};
use prf_core::RfKind;
use prf_sim::SchedulerPolicy;

fn main() {
    header(
        "Figure 2: access share of the top-N registers",
        "top-3 = 62%, top-4 = 72%, top-5 = 77% on average",
    );
    let gpu = experiment_gpu(SchedulerPolicy::Gto);
    println!(
        "{:<12} {:>8} {:>8} {:>8}",
        "workload", "top-3", "top-4", "top-5"
    );
    let (mut t3, mut t4, mut t5) = (Vec::new(), Vec::new(), Vec::new());
    let mut csv = CsvTable::new(["workload", "top3_pct", "top4_pct", "top5_pct"]);
    let mut reporter = SingleRunReporter::new("fig02_access_skew");
    for w in prf_workloads::suite() {
        let r = run_workload(&w, &gpu, &RfKind::MrfStv);
        reporter.add(w.name, &r);
        let h = &r.stats.reg_accesses;
        let (a, b, c) = (h.top_share(3), h.top_share(4), h.top_share(5));
        println!(
            "{:<12} {:>7.1}% {:>7.1}% {:>7.1}%",
            w.name,
            100.0 * a,
            100.0 * b,
            100.0 * c
        );
        csv.row([w.name.to_string(), pct(a), pct(b), pct(c)]);
        t3.push(a);
        t4.push(b);
        t5.push(c);
    }
    csv.write_if_configured("fig02_access_skew");
    println!("{:-<40}", "");
    println!(
        "{:<12} {:>7.1}% {:>7.1}% {:>7.1}%   (paper: 62% / 72% / 77%)",
        "MEAN",
        100.0 * mean(&t3),
        100.0 * mean(&t4),
        100.0 * mean(&t5)
    );
    reporter.report.add_metric("mean_top3_share", mean(&t3));
    reporter.report.add_metric("mean_top4_share", mean(&t4));
    reporter.report.add_metric("mean_top5_share", mean(&t5));
    reporter.report.add_table("fig02_access_skew", &csv);
    reporter.finish();
}
