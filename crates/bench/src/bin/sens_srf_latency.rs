//! §V-C sensitivity — impact of a slower SRF on overall performance.
//!
//! Paper: "Our results show only 0.5% and 2.4% degradation in performance
//! when the access delay to the SRF is 4 cycles and 5 cycles,
//! respectively" (relative to the 3-cycle design).

use prf_bench::{experiment_gpu, geomean, header, run_cells_reported, Cell};
use prf_core::{PartitionedRfConfig, RfKind};
use prf_sim::SchedulerPolicy;

fn main() {
    header(
        "Sensitivity: SRF access latency (3 -> 4 -> 5 cycles)",
        "+0.5% at 4 cycles, +2.4% at 5 cycles vs the 3-cycle partitioned design",
    );
    let gpu = experiment_gpu(SchedulerPolicy::Gto);
    const SEEDS: u64 = 5;
    const LATENCIES: [u32; 3] = [3, 4, 5];

    // suite × 3 latencies as one matrix.
    let suite = prf_workloads::suite();
    let cells: Vec<Cell> = suite
        .iter()
        .flat_map(|w| {
            LATENCIES.map(|lat| {
                let cfg = PartitionedRfConfig {
                    srf_latency: lat,
                    ..PartitionedRfConfig::paper_default(gpu.num_rf_banks)
                };
                Cell::new(w, &gpu, &RfKind::Partitioned(cfg))
            })
        })
        .collect();
    let (results, report, run_report) = run_cells_reported("sens_srf_latency", &cells, SEEDS);

    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "workload", "srf=3", "srf=4", "srf=5"
    );
    let mut norms: Vec<Vec<f64>> = vec![Vec::new(), Vec::new(), Vec::new()];
    for (w, r) in suite.iter().zip(results.chunks(LATENCIES.len())) {
        let runs: Vec<f64> = r.iter().map(|a| a.cycles as f64).collect();
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3}",
            w.name,
            1.0,
            runs[1] / runs[0],
            runs[2] / runs[0]
        );
        for (i, run) in runs.iter().enumerate() {
            norms[i].push(run / runs[0]);
        }
    }
    println!("{:-<46}", "");
    println!(
        "{:<12} {:>10.3} {:>10.3} {:>10.3}   (paper: 1.000, 1.005, 1.024)",
        "GEOMEAN",
        geomean(&norms[0]),
        geomean(&norms[1]),
        geomean(&norms[2])
    );
    println!();
    println!("{}", report.footer());
    run_report.write();
}
