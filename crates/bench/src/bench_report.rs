//! Structured, schema-versioned run reports.
//!
//! Every figure binary emits a `BENCH_<name>.json` next to its printed
//! table: per-job cycles, instruction counts, the energy breakdown, audit
//! status, repair counts, the retry/timeout outcome, and wall-clock phase
//! profile — so the bench trajectory is diffable across commits without
//! re-parsing human-oriented tables. The file lands in `$PRF_REPORT_DIR`
//! when set, else the current directory; names pass through
//! [`crate::report::safe_file_name`].
//!
//! The schema is intentionally flat and versioned ([`SCHEMA_VERSION`]);
//! consumers should reject files whose `schema_version` they don't know.

use std::path::PathBuf;
use std::time::Duration;

use prf_core::{ExperimentResult, PhaseTimings};

use crate::json::Json;
use crate::report::{safe_file_name, CsvTable};
use crate::runner::{JobOutcome, MatrixReport};
use crate::vfs::Vfs;

/// Version of the `BENCH_<name>.json` schema. Bump on breaking changes.
pub const SCHEMA_VERSION: u64 = 1;

fn ms(d: Duration) -> Json {
    Json::Num(d.as_secs_f64() * 1e3)
}

fn phases_json(p: &PhaseTimings) -> Json {
    Json::obj()
        .field("setup_ms", ms(p.setup))
        .field("simulate_ms", ms(p.simulate))
        .field("energy_ms", ms(p.energy))
        .field("audit_ms", ms(p.audit))
}

pub(crate) fn outcome_json(outcome: &JobOutcome) -> Json {
    match outcome {
        JobOutcome::Completed => Json::obj().field("kind", "completed"),
        JobOutcome::Retried { attempts } => Json::obj()
            .field("kind", "retried")
            .field("attempts", u64::from(*attempts)),
        JobOutcome::Panicked { message } => Json::obj()
            .field("kind", "panicked")
            .field("message", message.as_str()),
        JobOutcome::TimedOut { timeout } => Json::obj()
            .field("kind", "timed_out")
            .field("timeout_s", timeout.as_secs_f64()),
        JobOutcome::Rejected { reason } => Json::obj()
            .field("kind", "rejected")
            .field("reason", reason.as_str()),
        JobOutcome::Skipped => Json::obj().field("kind", "skipped"),
    }
}

pub(crate) fn result_json(r: &ExperimentResult) -> Json {
    let audit = match &r.audit {
        Some(a) => Json::obj()
            .field("checks", a.checks)
            .field("violations", a.violations.len())
            .field("clean", a.is_clean()),
        None => Json::Null,
    };
    let sampled_windows: usize = r
        .per_launch
        .iter()
        .flat_map(|l| &l.samples)
        .map(|s| s.windows.len())
        .sum();
    Json::obj()
        .field("rf", r.rf_name)
        .field("cycles", r.cycles)
        .field("instructions", r.stats.instructions)
        .field("ipc", r.stats.instructions as f64 / r.cycles.max(1) as f64)
        .field("dynamic_energy_pj", r.dynamic_energy_pj)
        .field("baseline_dynamic_energy_pj", r.baseline_dynamic_energy_pj)
        .field("leakage_energy_pj", r.leakage_energy_pj)
        .field("baseline_leakage_energy_pj", r.baseline_leakage_energy_pj)
        .field("repair_energy_pj", r.repair_energy_pj)
        .field(
            "repairs",
            Json::obj()
                .field("remapped", r.telemetry.fault_remaps)
                .field("spilled", r.telemetry.fault_spills)
                .field("escalated", r.telemetry.fault_escalations),
        )
        .field("audit", audit)
        .field("sampled_windows", sampled_windows)
        .field("phases", phases_json(&r.phases))
}

/// Accumulates one figure binary's structured output and writes it as
/// `BENCH_<name>.json`.
#[derive(Debug)]
pub struct RunReport {
    bench: String,
    jobs: Vec<Json>,
    metrics: Vec<(String, Json)>,
    tables: Vec<(String, Json)>,
    matrix: Option<Json>,
}

impl RunReport {
    /// Starts a report for the named bench binary.
    pub fn new(bench: &str) -> Self {
        RunReport {
            bench: bench.to_string(),
            jobs: Vec::new(),
            metrics: Vec::new(),
            tables: Vec::new(),
            matrix: None,
        }
    }

    /// Records one completed (single-run) experiment.
    pub fn add_result(&mut self, name: &str, result: &ExperimentResult) {
        self.jobs.push(
            Json::obj()
                .field("name", name)
                .field("outcome", outcome_json(&JobOutcome::Completed))
                .field("result", result_json(result)),
        );
    }

    /// Records one matrix job: its real outcome (completed / retried /
    /// panicked / timed out), worker wall-clock, and — when it produced
    /// one — the experiment result.
    pub fn add_job(
        &mut self,
        name: &str,
        outcome: &JobOutcome,
        elapsed: Duration,
        result: Option<&ExperimentResult>,
    ) {
        self.jobs.push(
            Json::obj()
                .field("name", name)
                .field("outcome", outcome_json(outcome))
                .field("elapsed_ms", ms(elapsed))
                .field("result", result.map_or(Json::Null, result_json)),
        );
    }

    /// Records a named summary metric (geomeans, savings, …).
    pub fn add_metric(&mut self, key: &str, value: f64) {
        self.metrics.push((key.to_string(), Json::Num(value)));
    }

    /// Records a rendered table (same data as the CSV export).
    pub fn add_table(&mut self, name: &str, table: &CsvTable) {
        let columns: Vec<Json> = table.columns().iter().map(|c| c.as_str().into()).collect();
        let rows: Vec<Json> = table
            .rows()
            .iter()
            .map(|row| Json::Arr(row.iter().map(|f| f.as_str().into()).collect()))
            .collect();
        self.tables.push((
            name.to_string(),
            Json::obj()
                .field("columns", Json::Arr(columns))
                .field("rows", Json::Arr(rows)),
        ));
    }

    /// Attaches the matrix footer data (throughput, audit coverage,
    /// degradation counts, phase totals). Cache-durability counters are
    /// emitted only when nonzero so a healthy run's report stays
    /// byte-identical to previous releases (and cold/warm runs over a
    /// cache still compare equal).
    pub fn set_matrix(&mut self, report: &MatrixReport) {
        let mut matrix = Json::obj()
            .field("jobs", report.jobs)
            .field("threads", report.threads)
            .field("elapsed_ms", ms(report.elapsed))
            .field("audited_jobs", report.audited_jobs)
            .field("audit_violations", report.audit_violations)
            .field("retried_jobs", report.retried_jobs)
            .field("failed_jobs", report.failed_jobs);
        if report.cache_write_errors > 0 {
            matrix = matrix.field("cache_write_errors", report.cache_write_errors);
        }
        if report.cache_quarantined > 0 {
            matrix = matrix.field("cache_quarantined", report.cache_quarantined);
        }
        self.matrix = Some(matrix.field("phases", phases_json(&report.phase_totals)));
    }

    /// The whole report as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("schema_version", SCHEMA_VERSION)
            .field("bench", self.bench.as_str())
            .field("jobs", Json::Arr(self.jobs.clone()))
            .field("metrics", Json::Obj(self.metrics.clone()))
            .field("tables", Json::Obj(self.tables.clone()))
            .field("matrix", self.matrix.clone().unwrap_or(Json::Null))
    }

    /// Writes `BENCH_<name>.json` into `$PRF_REPORT_DIR` (created if
    /// needed) or the current directory, and returns the path. Returns
    /// `None` — with a diagnostic on stderr — only on I/O failure.
    pub fn write(&self) -> Option<PathBuf> {
        self.write_with(&crate::vfs::RealVfs)
    }

    /// [`RunReport::write`] over an explicit [`Vfs`] backend, so report
    /// persistence is covered by the injected-fault tests: a report that
    /// cannot be written is a diagnostic, never a panic.
    pub fn write_with(&self, vfs: &dyn Vfs) -> Option<PathBuf> {
        let dir = std::env::var_os("PRF_REPORT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        if let Err(e) = vfs.create_dir_all(&dir) {
            eprintln!("PRF_REPORT_DIR: cannot create {}: {e}", dir.display());
            return None;
        }
        let path = dir.join(format!("BENCH_{}.json", safe_file_name(&self.bench)));
        let mut body = self.to_json().to_json();
        body.push('\n');
        match vfs.write_file(&path, body.as_bytes()) {
            Ok(()) => {
                eprintln!("wrote {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_has_versioned_schema() {
        let doc = RunReport::new("fig99_test").to_json();
        assert_eq!(
            doc.get("schema_version").unwrap().as_u64(),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("fig99_test"));
        assert_eq!(doc.get("jobs").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(doc.get("matrix"), Some(&Json::Null));
    }

    #[test]
    fn outcomes_serialize_with_their_detail() {
        assert_eq!(
            outcome_json(&JobOutcome::Retried { attempts: 3 })
                .get("attempts")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        let timed = outcome_json(&JobOutcome::TimedOut {
            timeout: Duration::from_secs(5),
        });
        assert_eq!(timed.get("kind").unwrap().as_str(), Some("timed_out"));
        assert_eq!(timed.get("timeout_s").unwrap().as_f64(), Some(5.0));
        let panicked = outcome_json(&JobOutcome::Panicked {
            message: "boom".into(),
        });
        assert_eq!(panicked.get("message").unwrap().as_str(), Some("boom"));
        let rejected = outcome_json(&JobOutcome::Rejected {
            reason: "rejected input: invalid config: num_sms: must be at least 1".into(),
        });
        assert_eq!(rejected.get("kind").unwrap().as_str(), Some("rejected"));
        assert!(rejected
            .get("reason")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("num_sms"));
    }

    #[test]
    fn tables_and_metrics_round_trip() {
        let mut rr = RunReport::new("roundtrip");
        let mut t = CsvTable::new(["workload", "saving"]);
        t.row(["BFS", "0.61"]);
        rr.add_table("fig11", &t);
        rr.add_metric("geomean_saving", 0.58);
        let text = rr.to_json().to_json();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed
                .get("metrics")
                .unwrap()
                .get("geomean_saving")
                .unwrap()
                .as_f64(),
            Some(0.58)
        );
        let table = parsed.get("tables").unwrap().get("fig11").unwrap();
        assert_eq!(
            table.get("columns").unwrap().as_arr().unwrap()[0].as_str(),
            Some("workload")
        );
        assert_eq!(
            table.get("rows").unwrap().as_arr().unwrap()[0]
                .as_arr()
                .unwrap()[1]
                .as_str(),
            Some("0.61")
        );
    }
}
