//! Chrome/Perfetto `trace_event` export.
//!
//! `--trace-out <path>` on any figure binary renders two streams into one
//! trace file loadable by `chrome://tracing` or <https://ui.perfetto.dev>:
//!
//! * **runner spans** (pid 1): one complete ("X") event per matrix job,
//!   timed in real microseconds from the matrix start, with the job's
//!   phase profile (setup/simulate/energy/audit) as nested spans and its
//!   retry/timeout outcome in the args; and
//! * **simulator events** (pid 2): the per-cycle pipeline trace
//!   ([`prf_sim::TraceEvent`]) of every captured launch, with one
//!   microsecond standing in for one GPU cycle and one track per SM.
//!
//! The format is the JSON-array flavour of the Trace Event spec:
//! `{"traceEvents":[...]}` with `ts`/`dur` in microseconds.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use prf_sim::TraceEvent;

use crate::json::Json;
use crate::runner::JobReport;

/// The trace path requested on the command line via `--trace-out <path>`
/// (or `--trace-out=<path>`), if any.
///
/// # Panics
///
/// Panics when the flag is present without a path.
pub fn trace_out_from_args() -> Option<PathBuf> {
    let mut args = std::env::args();
    loop {
        let arg = args.next()?;
        if arg == "--trace-out" {
            let path = args
                .next()
                .unwrap_or_else(|| panic!("--trace-out needs a file path argument"));
            return Some(PathBuf::from(path));
        }
        if let Some(path) = arg.strip_prefix("--trace-out=") {
            return Some(PathBuf::from(path));
        }
    }
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// A complete ("X") event.
fn span(name: &str, pid: u64, tid: usize, ts_us: f64, dur_us: f64, args: Json) -> Json {
    Json::obj()
        .field("name", name)
        .field("ph", "X")
        .field("pid", pid)
        .field("tid", tid)
        .field("ts", ts_us)
        .field("dur", dur_us)
        .field("args", args)
}

/// An instant ("i") event, thread-scoped.
fn instant(name: &str, pid: u64, tid: usize, ts_us: f64, args: Json) -> Json {
    Json::obj()
        .field("name", name)
        .field("ph", "i")
        .field("s", "t")
        .field("pid", pid)
        .field("tid", tid)
        .field("ts", ts_us)
        .field("args", args)
}

/// Builds a `trace_event` stream from runner job reports and simulator
/// pipeline traces.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<Json>,
    sim_events: usize,
    dropped_sim_events: u64,
}

const RUNNER_PID: u64 = 1;
const SIM_PID: u64 = 2;

/// Ceiling on simulator instant events per trace file. A full figure
/// matrix generates hundreds of millions of pipeline events; past this
/// point the file stops being loadable in a trace viewer, so the excess
/// is counted and reported instead of written.
const MAX_SIM_EVENTS: usize = 250_000;

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Number of events accumulated.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Records one matrix job: a span over the job's wall-clock window
    /// (offset from the matrix start), nested phase spans from its
    /// [`prf_core::PhaseTimings`], and the job's pipeline trace on the
    /// simulator tracks. Each job gets its own runner track (`tid` = job
    /// index).
    pub fn add_job(&mut self, report: &JobReport) {
        let lane = report.index;
        let start = report.started;
        let args = Json::obj()
            .field("index", report.index)
            .field("outcome", report.outcome.to_string());
        self.events.push(span(
            &report.name,
            RUNNER_PID,
            lane,
            us(start),
            us(report.elapsed),
            args,
        ));
        if let Some(result) = &report.result {
            // Phases run back-to-back within the job's span.
            let mut at = start;
            let p = result.phases;
            for (name, dur) in [
                ("setup", p.setup),
                ("simulate", p.simulate),
                ("energy", p.energy),
                ("audit", p.audit),
            ] {
                if dur > Duration::ZERO {
                    self.events
                        .push(span(name, RUNNER_PID, lane, us(at), us(dur), Json::obj()));
                    at += dur;
                }
            }
            for launch in &result.per_launch {
                self.add_sim_events(&launch.trace);
            }
        }
    }

    /// Records simulator pipeline events (one µs per cycle, one track per
    /// SM). Events past the 250k-event cap are counted as dropped and
    /// reported by [`ChromeTrace::write`] rather than ballooning the file.
    pub fn add_sim_events(&mut self, trace: &[TraceEvent]) {
        for e in trace {
            if self.sim_events >= MAX_SIM_EVENTS {
                self.dropped_sim_events += 1;
                continue;
            }
            self.sim_events += 1;
            let (name, sm, ts, args) = match *e {
                TraceEvent::CtaDispatch { cycle, sm, cta } => (
                    "cta_dispatch",
                    sm,
                    cycle,
                    Json::obj().field("cta", u64::from(cta)),
                ),
                TraceEvent::Issue {
                    cycle,
                    sm,
                    warp,
                    pc,
                } => (
                    "issue",
                    sm,
                    cycle,
                    Json::obj().field("warp", warp).field("pc", pc),
                ),
                TraceEvent::BarrierWait { cycle, sm, warp } => {
                    ("barrier_wait", sm, cycle, Json::obj().field("warp", warp))
                }
                TraceEvent::WarpFinish { cycle, sm, warp } => {
                    ("warp_finish", sm, cycle, Json::obj().field("warp", warp))
                }
                TraceEvent::Collect {
                    cycle,
                    sm,
                    warp,
                    mem,
                } => (
                    "collect",
                    sm,
                    cycle,
                    Json::obj().field("warp", warp).field("mem", mem),
                ),
                TraceEvent::RfRead {
                    cycle,
                    sm,
                    partition,
                } => (
                    "rf_read",
                    sm,
                    cycle,
                    Json::obj().field("partition", partition.to_string()),
                ),
                TraceEvent::RfWrite {
                    cycle,
                    sm,
                    partition,
                } => (
                    "rf_write",
                    sm,
                    cycle,
                    Json::obj().field("partition", partition.to_string()),
                ),
                TraceEvent::RfRepair { cycle, sm, repair } => (
                    "rf_repair",
                    sm,
                    cycle,
                    Json::obj().field("repair", repair.to_string()),
                ),
                TraceEvent::Writeback {
                    cycle,
                    sm,
                    warp,
                    reg,
                } => (
                    "writeback",
                    sm,
                    cycle,
                    Json::obj()
                        .field("warp", warp)
                        .field("reg", u64::from(reg.0)),
                ),
                TraceEvent::LsuComplete { cycle, sm, warp } => {
                    ("lsu_complete", sm, cycle, Json::obj().field("warp", warp))
                }
                TraceEvent::ScoreboardReserve { cycle, sm, warp } => (
                    "scoreboard_reserve",
                    sm,
                    cycle,
                    Json::obj().field("warp", warp),
                ),
                TraceEvent::ScoreboardRelease { cycle, sm, warp } => (
                    "scoreboard_release",
                    sm,
                    cycle,
                    Json::obj().field("warp", warp),
                ),
            };
            self.events
                .push(instant(name, SIM_PID, sm, ts as f64, args));
        }
    }

    /// The `{"traceEvents":[...]}` document.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("traceEvents", Json::Arr(self.events.clone()))
            .field("displayTimeUnit", "ms")
    }

    /// Writes the trace to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (unwritable path, full disk, …).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(self.to_json().to_json().as_bytes())?;
        f.write_all(b"\n")?;
        eprintln!("wrote {} ({} events)", path.display(), self.events.len());
        if self.dropped_sim_events > 0 {
            eprintln!(
                "trace: dropped {} simulator events beyond the {MAX_SIM_EVENTS}-event cap",
                self.dropped_sim_events
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_events_become_instant_events() {
        let mut ct = ChromeTrace::new();
        ct.add_sim_events(&[
            TraceEvent::Issue {
                cycle: 7,
                sm: 0,
                warp: 3,
                pc: 12,
            },
            TraceEvent::RfRead {
                cycle: 9,
                sm: 1,
                partition: prf_sim::RfPartition::Srf,
            },
        ]);
        assert_eq!(ct.len(), 2);
        let doc = ct.to_json();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("issue"));
        assert_eq!(events[0].get("ts").unwrap().as_u64(), Some(7));
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(
            events[1]
                .get("args")
                .unwrap()
                .get("partition")
                .unwrap()
                .as_str(),
            Some("SRF")
        );
        assert_eq!(events[1].get("tid").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn sim_events_are_capped_not_unbounded() {
        let mut ct = ChromeTrace::new();
        let burst: Vec<TraceEvent> = (0..MAX_SIM_EVENTS as u64 + 10)
            .map(|cycle| TraceEvent::Issue {
                cycle,
                sm: 0,
                warp: 0,
                pc: 0,
            })
            .collect();
        ct.add_sim_events(&burst);
        assert_eq!(ct.len(), MAX_SIM_EVENTS);
        assert_eq!(ct.dropped_sim_events, 10);
    }

    #[test]
    fn document_shape_is_trace_event_json() {
        let ct = ChromeTrace::new();
        assert!(ct.is_empty());
        let text = ct.to_json().to_json();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("traceEvents").unwrap().as_arr().unwrap().len(),
            0
        );
    }
}
