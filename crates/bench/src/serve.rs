//! Serve-many front end: a line-oriented job server over TCP.
//!
//! `prf-serve` turns the resilient matrix runner plus the on-disk result
//! cache into a long-lived experiment service. Clients connect over TCP
//! and speak a newline-delimited JSON protocol — one request object per
//! line, one response object per line:
//!
//! | request                                   | response                                     |
//! |-------------------------------------------|----------------------------------------------|
//! | `{"op":"ping"}`                           | `{"ok":true,"pong":true,"version":1}`        |
//! | `{"op":"submit","jobs":[<spec>,…]}`       | `{"ok":true,"batch":N,"jobs":K}`             |
//! | `{"op":"poll","batch":N}`                 | `{"ok":true,"state":"queued"\|"running"\|"done"}` |
//! | `{"op":"fetch","batch":N}`                | `{"ok":true,"report":{…}}` once done         |
//! | `{"op":"status"}`                         | `{"ok":true,"recovered_batches":N,"durable":…,"inflight":K}` |
//! | `{"op":"shutdown"}`                       | `{"ok":true,"stopping":true,"mode":"drain"}` |
//! | `{"op":"shutdown","mode":"now"}`          | `{"ok":true,"stopping":true,"mode":"now"}`   |
//!
//! Any error — unknown op, malformed spec, unknown batch, server at
//! capacity — comes back as `{"ok":false,"error":"…"}` on the same line;
//! the connection stays usable. Two exceptions close the connection
//! after the error: a request line longer than [`MAX_LINE_BYTES`]
//! (bounds memory against oversized or slow-loris clients), and I/O
//! failure on the socket itself. A client that disconnects mid-protocol
//! only takes its own handler thread down — submitted batches keep
//! running and any other client can poll/fetch them.
//!
//! A job spec selects everything the simulator needs by name:
//!
//! ```json
//! {"workload":"BFS","rf":"partitioned","scheduler":"GTO",
//!  "seed":2,"audit":true,"faults":"42,0.3"}
//! ```
//!
//! `workload` resolves through [`prf_workloads::suite::by_name`]; `rf`
//! through [`rf_by_name`] (paper-default configurations); `scheduler`
//! (default `GTO`), `seed` (default 0), `audit` (default false) and
//! `faults` (`"<seed>,<vdd>"`, default none) are optional. So are the
//! machine overrides `max_cycles` and `rf_registers`: they pass name
//! resolution unchecked, so a hostile combination (say `rf_registers`
//! below the workload's footprint) flows to the runner's admission
//! check and comes back in the batch report as a structured
//! `{"kind":"rejected"}` outcome instead of wasting a retry budget.
//!
//! Batches execute in submission order on a single worker thread that
//! drives [`runner::run_matrix_resilient_configured`] — so every batch
//! gets the full worker pool, the retry/watchdog policy, and the result
//! cache ([`ResultCache::from_env`]) for free. In-flight batching is
//! bounded: at most [`ServeConfig::max_inflight`] batches may be queued
//! or running at once; submissions beyond that are refused with a
//! capacity error rather than queued without bound. `shutdown` is
//! graceful by default — the listener stops accepting, queued batches
//! drain, and [`serve`] returns; `{"op":"shutdown","mode":"now"}` skips
//! the drain (the batch already running finishes; queued batches are
//! left to the journal).
//!
//! ## Durability
//!
//! With `PRF_JOURNAL_DIR` set (see [`crate::journal`]), every accepted
//! submit is journaled *before* it is acknowledged, and on startup
//! [`serve_with_journal`] re-enqueues every batch the journal shows as
//! unfinished — `{"op":"status"}` reports how many. A journal append
//! failure mid-flight does not refuse traffic: the server drops to a
//! loud non-durable mode (`"durable":false` in `status`, a diagnostic
//! per lost append on stderr) and keeps serving from memory.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use prf_core::{DrowsyConfig, PartitionedRfConfig, RfKind, RfcConfig};
use prf_sim::{GpuConfig, SchedulerPolicy};

use crate::bench_report::{outcome_json, result_json};
use crate::cache::ResultCache;
use crate::journal::{Journal, Record, Recovery};
use crate::json::Json;
use crate::runner::{self, Job, JobObserver, RetryPolicy};

/// Version of the line protocol, reported by `ping`. Bump on breaking
/// changes to request or response shapes.
pub const PROTOCOL_VERSION: u64 = 1;

/// Maximum accepted request-line length in bytes. Far above any real
/// submit (a full-suite batch is a few KB) while bounding what one
/// client can make the server buffer; longer lines get a structured
/// error and the connection is closed.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Tunables for one [`serve`] call.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads for each batch's matrix run.
    pub threads: usize,
    /// Retry/watchdog policy applied to every job.
    pub policy: RetryPolicy,
    /// Maximum batches queued-or-running at once; further submissions
    /// are refused with a capacity error.
    pub max_inflight: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            policy: RetryPolicy::none(),
            max_inflight: 4,
        }
    }
}

/// Resolves an RF organisation by report name, using the paper-default
/// configuration for parameterised kinds. Accepted names (ASCII
/// case-insensitive): `MRF@STV`, `MRF@NTV`, `partitioned`,
/// `partitioned-plain` (no adaptive FRF), `RFC`, `drowsy`.
pub fn rf_by_name(name: &str, gpu: &GpuConfig) -> Option<RfKind> {
    let n = name.trim();
    let eq = |s: &str| n.eq_ignore_ascii_case(s);
    if eq("MRF@STV") {
        Some(RfKind::MrfStv)
    } else if eq("MRF@NTV") {
        Some(RfKind::MrfNtv { latency: 3 })
    } else if eq("partitioned") {
        Some(RfKind::Partitioned(PartitionedRfConfig::paper_default(
            gpu.num_rf_banks,
        )))
    } else if eq("partitioned-plain") {
        Some(RfKind::Partitioned(PartitionedRfConfig::without_adaptive(
            gpu.num_rf_banks,
        )))
    } else if eq("RFC") {
        Some(RfKind::Rfc(RfcConfig::paper_default(
            gpu.num_rf_banks,
            gpu.max_warps_per_sm,
        )))
    } else if eq("drowsy") {
        Some(RfKind::Drowsy(DrowsyConfig::paper_adjacent(
            gpu.num_rf_banks,
            gpu.max_warps_per_sm,
        )))
    } else {
        None
    }
}

fn scheduler_by_name(name: &str) -> Option<SchedulerPolicy> {
    if name.eq_ignore_ascii_case("GTO") {
        Some(SchedulerPolicy::Gto)
    } else if name.eq_ignore_ascii_case("LRR") {
        Some(SchedulerPolicy::Lrr)
    } else {
        None
    }
}

/// Builds a [`Job`] from one protocol job spec. Errors name the offending
/// field so the client can fix its request.
pub fn job_from_spec(spec: &Json) -> Result<Job, String> {
    let workload_name = spec
        .get("workload")
        .and_then(Json::as_str)
        .ok_or("job spec needs a string `workload` field")?;
    let workload = prf_workloads::suite::by_name(workload_name)
        .ok_or_else(|| format!("unknown workload {workload_name:?}"))?;

    let scheduler = match spec.get("scheduler") {
        None => SchedulerPolicy::Gto,
        Some(s) => {
            let name = s.as_str().ok_or("`scheduler` must be a string")?;
            scheduler_by_name(name).ok_or_else(|| format!("unknown scheduler {name:?}"))?
        }
    };
    let seed = match spec.get("seed") {
        None => 0,
        Some(s) => s.as_u64().ok_or("`seed` must be a non-negative integer")?,
    };
    let audit = match spec.get("audit") {
        None => false,
        Some(a) => a.as_bool().ok_or("`audit` must be a boolean")?,
    };
    let mut gpu = GpuConfig {
        scheduler,
        jitter_seed: seed,
        audit,
        ..GpuConfig::kepler_single_sm()
    };
    // Machine overrides are deliberately *not* sanity-checked here: the
    // runner's admission check owns that judgement, and an impossible
    // value must surface as a structured `rejected` outcome in the batch
    // report rather than a submit-time parse error.
    if let Some(v) = spec.get("max_cycles") {
        gpu.max_cycles = v
            .as_u64()
            .ok_or("`max_cycles` must be a non-negative integer")?;
    }
    if let Some(v) = spec.get("rf_registers") {
        let regs = v
            .as_u64()
            .ok_or("`rf_registers` must be a non-negative integer")?;
        gpu.rf_registers = usize::try_from(regs).map_err(|_| "`rf_registers` is out of range")?;
    }

    let rf_name = spec
        .get("rf")
        .and_then(Json::as_str)
        .ok_or("job spec needs a string `rf` field")?;
    let rf = rf_by_name(rf_name, &gpu).ok_or_else(|| format!("unknown rf {rf_name:?}"))?;

    let faults = match spec.get("faults") {
        None => None,
        Some(f) => {
            let spec = f
                .as_str()
                .ok_or("`faults` must be a `\"<seed>,<vdd>\"` string")?;
            let (fault_seed, vdd) =
                crate::parse_faults_spec(spec).map_err(|e| format!("bad `faults`: {e}"))?;
            Some(crate::fault_config_for(fault_seed, vdd))
        }
    };

    Ok(Job::new(
        format!("{}/{}/seed{}", workload.name, rf.name(), seed),
        &workload,
        &gpu,
        &rf,
    )
    .with_faults(faults))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchState {
    Queued,
    Running,
    Done,
}

impl BatchState {
    fn name(self) -> &'static str {
        match self {
            BatchState::Queued => "queued",
            BatchState::Running => "running",
            BatchState::Done => "done",
        }
    }
}

struct Batch {
    id: u64,
    jobs: Vec<Job>,
    state: BatchState,
    report: Option<Json>,
}

/// How the server was asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum StopMode {
    /// Not stopping.
    #[default]
    No,
    /// Graceful: queued batches drain before [`serve`] returns.
    Drain,
    /// Immediate: the running batch (if any) finishes — a matrix run
    /// cannot be interrupted — but queued batches are left to the
    /// journal for the next start.
    Now,
}

#[derive(Default)]
struct ServerState {
    batches: Vec<Batch>,
    queue: VecDeque<usize>,
    next_id: u64,
    stop: StopMode,
    /// Batches re-enqueued from the journal at startup.
    recovered: u64,
}

impl ServerState {
    fn inflight(&self) -> usize {
        self.batches
            .iter()
            .filter(|b| b.state != BatchState::Done)
            .count()
    }

    fn find(&self, id: u64) -> Option<usize> {
        self.batches.iter().position(|b| b.id == id)
    }
}

struct Shared {
    state: Mutex<ServerState>,
    work: Condvar,
    /// The write-ahead log, if `PRF_JOURNAL_DIR` is configured. Set to
    /// `None` by [`Shared::journal_append`] after the first append
    /// failure: the server keeps serving, loudly non-durable.
    journal: Mutex<Option<Journal>>,
    /// False while the journal is absent or has failed. Reported by
    /// `{"op":"status"}` (as `null` when no journal was configured).
    durable: AtomicBool,
    /// Whether a journal was configured at startup at all.
    journaled: bool,
}

impl Shared {
    /// Appends to the journal if one is (still) active. The first
    /// failure drops the journal and flips the server to non-durable
    /// mode — a degraded server is better than a refused batch, but the
    /// degradation must be loud.
    ///
    /// Lock order: callers may hold `state` while calling this (submit
    /// does, so its `Submit` record always precedes the worker's
    /// `Start` records); nothing acquires `state` while holding
    /// `journal`.
    fn journal_append(&self, record: &Record) {
        let mut guard = self.journal.lock().unwrap();
        if let Some(journal) = guard.as_mut() {
            if let Err(e) = journal.append(record) {
                eprintln!(
                    "prf-serve: journal append failed ({e}); continuing WITHOUT durability — \
                     batches submitted from now on will not survive a crash"
                );
                *guard = None;
                self.durable.store(false, Ordering::SeqCst);
            }
        }
    }
}

/// Journals per-job progress markers from the matrix runner's worker
/// threads while a batch executes.
struct BatchJournalist<'a> {
    shared: &'a Shared,
    batch: u64,
}

impl JobObserver for BatchJournalist<'_> {
    fn job_started(&self, index: usize, _job: &Job) {
        self.shared.journal_append(&Record::Start {
            batch: self.batch,
            job: index as u64,
        });
    }

    fn job_finished(&self, index: usize, _job: &Job, _outcome: &runner::JobOutcome) {
        self.shared.journal_append(&Record::JobDone {
            batch: self.batch,
            job: index as u64,
        });
    }
}

fn batch_report_json(batch_id: u64, outcome: &runner::MatrixOutcome) -> Json {
    let jobs: Vec<Json> = outcome
        .reports
        .iter()
        .map(|r| {
            Json::obj()
                .field("name", r.name.as_str())
                .field("outcome", outcome_json(&r.outcome))
                .field("cached", r.cached.map_or(Json::Null, Json::Bool))
                .field("result", r.result.as_ref().map_or(Json::Null, result_json))
        })
        .collect();
    let failed = outcome
        .reports
        .iter()
        .filter(|r| r.result.is_none())
        .count();
    let hits = outcome
        .reports
        .iter()
        .filter(|r| r.cached == Some(true))
        .count();
    Json::obj()
        .field("batch", batch_id)
        .field("jobs", outcome.reports.len() as u64)
        .field("failed_jobs", failed as u64)
        .field("cache_hits", hits as u64)
        .field("results", Json::Arr(jobs))
}

fn worker_loop(shared: &Shared, config: &ServeConfig, cache: Option<&ResultCache>) {
    loop {
        let (slot, batch_id, jobs) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.stop == StopMode::Now {
                    // Immediate shutdown: leave queued batches to the
                    // journal — their Submit records have no BatchDone,
                    // so the next start re-enqueues them.
                    return;
                }
                if let Some(slot) = st.queue.pop_front() {
                    st.batches[slot].state = BatchState::Running;
                    break (slot, st.batches[slot].id, st.batches[slot].jobs.clone());
                }
                if st.stop == StopMode::Drain {
                    return;
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        let journalist = BatchJournalist {
            shared,
            batch: batch_id,
        };
        let outcome = runner::run_matrix_resilient_observed(
            &jobs,
            config.policy,
            config.threads,
            None,
            cache,
            Some(&journalist),
        );
        let mut st = shared.state.lock().unwrap();
        let report = batch_report_json(st.batches[slot].id, &outcome);
        st.batches[slot].report = Some(report);
        st.batches[slot].state = BatchState::Done;
        drop(st);
        // BatchDone is appended *after* the report is visible and with
        // no state lock held. A crash between the two re-enqueues an
        // already-finished batch on restart — it replays through the
        // warmed cache, which is exactly-once's cheap half.
        shared.journal_append(&Record::BatchDone { batch: batch_id });
        shared.work.notify_all();
    }
}

fn handle_request(req: &Json, shared: &Shared, config: &ServeConfig) -> (Json, bool) {
    let err = |msg: String| (Json::obj().field("ok", false).field("error", msg), false);
    let Some(op) = req.get("op").and_then(Json::as_str) else {
        return err("request needs a string `op` field".into());
    };
    match op {
        "ping" => (
            Json::obj()
                .field("ok", true)
                .field("pong", true)
                .field("version", PROTOCOL_VERSION),
            false,
        ),
        "submit" => {
            let Some(specs) = req.get("jobs").and_then(Json::as_arr) else {
                return err("submit needs a `jobs` array".into());
            };
            if specs.is_empty() {
                return err("submit needs at least one job".into());
            }
            let mut jobs = Vec::with_capacity(specs.len());
            for (i, spec) in specs.iter().enumerate() {
                match job_from_spec(spec) {
                    Ok(job) => jobs.push(job),
                    Err(e) => return err(format!("job {i}: {e}")),
                }
            }
            let mut st = shared.state.lock().unwrap();
            if st.stop != StopMode::No {
                return err("server is shutting down".into());
            }
            if st.inflight() >= config.max_inflight {
                return err(format!(
                    "server at capacity ({} batches in flight); retry after a poll shows `done`",
                    config.max_inflight
                ));
            }
            let id = st.next_id;
            st.next_id += 1;
            let count = jobs.len();
            st.batches.push(Batch {
                id,
                jobs,
                state: BatchState::Queued,
                report: None,
            });
            let slot = st.batches.len() - 1;
            st.queue.push_back(slot);
            // Journal the raw specs before the submit is acknowledged,
            // inside the state lock so the Submit record always precedes
            // the worker's Start records for this batch.
            shared.journal_append(&Record::Submit {
                batch: id,
                jobs: specs.to_vec(),
            });
            drop(st);
            shared.work.notify_all();
            (
                Json::obj()
                    .field("ok", true)
                    .field("batch", id)
                    .field("jobs", count as u64),
                false,
            )
        }
        "poll" | "fetch" => {
            let Some(id) = req.get("batch").and_then(Json::as_u64) else {
                return err(format!("{op} needs a numeric `batch` field"));
            };
            let st = shared.state.lock().unwrap();
            let Some(slot) = st.find(id) else {
                return err(format!("unknown batch {id}"));
            };
            let batch = &st.batches[slot];
            if op == "poll" {
                (
                    Json::obj()
                        .field("ok", true)
                        .field("batch", id)
                        .field("state", batch.state.name()),
                    false,
                )
            } else {
                match &batch.report {
                    Some(report) => (
                        Json::obj()
                            .field("ok", true)
                            .field("report", report.clone()),
                        false,
                    ),
                    None => err(format!(
                        "batch {id} is {}; fetch only after poll reports `done`",
                        batch.state.name()
                    )),
                }
            }
        }
        "status" => {
            let st = shared.state.lock().unwrap();
            let durable = if shared.journaled {
                Json::Bool(shared.durable.load(Ordering::SeqCst))
            } else {
                Json::Null
            };
            (
                Json::obj()
                    .field("ok", true)
                    .field("version", PROTOCOL_VERSION)
                    .field("recovered_batches", st.recovered)
                    .field("inflight", st.inflight() as u64)
                    .field("durable", durable),
                false,
            )
        }
        "shutdown" => {
            let mode = match req.get("mode") {
                None => StopMode::Drain,
                Some(m) => match m.as_str() {
                    Some("drain") => StopMode::Drain,
                    Some("now") => StopMode::Now,
                    _ => return err("`mode` must be \"drain\" or \"now\"".into()),
                },
            };
            let mut st = shared.state.lock().unwrap();
            // An immediate shutdown is never downgraded by a later
            // graceful request.
            if st.stop != StopMode::Now {
                st.stop = mode;
            }
            drop(st);
            shared.work.notify_all();
            (
                Json::obj().field("ok", true).field("stopping", true).field(
                    "mode",
                    if mode == StopMode::Now {
                        "now"
                    } else {
                        "drain"
                    },
                ),
                true,
            )
        }
        other => err(format!("unknown op {other:?}")),
    }
}

/// Runs the server until a client sends `shutdown`: accepts connections
/// on `listener`, answers the line protocol, and executes batches on one
/// worker thread through the resilient runner and `cache`. Queued batches
/// drain before this returns (unless shut down with `mode:"now"`); idle
/// clients that never disconnect do NOT block shutdown — their handler
/// threads are detached and die with the process. Runs without a
/// journal; see [`serve_with_journal`] for the durable variant.
pub fn serve(listener: TcpListener, config: ServeConfig, cache: Option<ResultCache>) {
    serve_with_journal(listener, config, cache, None)
}

/// [`serve`] with an optional write-ahead journal (usually from
/// [`Journal::from_env`]): re-enqueues the recovery's unfinished
/// batches before accepting traffic, journals every subsequent
/// submission, and compacts the log as batches complete. A batch whose
/// journaled specs no longer parse (e.g. a workload renamed across
/// versions) is dropped with a diagnostic rather than wedging startup.
pub fn serve_with_journal(
    listener: TcpListener,
    config: ServeConfig,
    cache: Option<ResultCache>,
    journal: Option<(Journal, Recovery)>,
) {
    let local = listener.local_addr().ok();
    let journaled = journal.is_some();
    let mut state = ServerState::default();
    let journal = journal.map(|(journal, recovery)| {
        state.next_id = recovery.next_id;
        for (id, specs) in &recovery.pending {
            let mut jobs = Vec::with_capacity(specs.len());
            let mut broken = None;
            for (i, spec) in specs.iter().enumerate() {
                match job_from_spec(spec) {
                    Ok(job) => jobs.push(job),
                    Err(e) => {
                        broken = Some(format!("job {i}: {e}"));
                        break;
                    }
                }
            }
            if let Some(why) = broken {
                eprintln!("prf-serve: journaled batch {id} no longer parses ({why}); dropping it");
                continue;
            }
            state.batches.push(Batch {
                id: *id,
                jobs,
                state: BatchState::Queued,
                report: None,
            });
            state.queue.push_back(state.batches.len() - 1);
            state.recovered += 1;
        }
        if state.recovered > 0 {
            eprintln!(
                "prf-serve: recovered {} unfinished batch(es) from {}",
                state.recovered,
                journal.dir().display()
            );
        }
        journal
    });
    let shared = Arc::new(Shared {
        state: Mutex::new(state),
        work: Condvar::new(),
        journal: Mutex::new(journal),
        durable: AtomicBool::new(journaled),
        journaled,
    });

    let worker_shared = Arc::clone(&shared);
    let worker_config = config.clone();
    let worker = std::thread::spawn(move || {
        worker_loop(&worker_shared, &worker_config, cache.as_ref());
    });

    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) => {
                eprintln!("prf-serve: accept failed: {e}");
                continue;
            }
        };
        if shared.state.lock().unwrap().stop != StopMode::No {
            // A wake-up connection (or a late client) after shutdown:
            // stop accepting and drain.
            drop(stream);
            break;
        }
        let client_shared = Arc::clone(&shared);
        let client_config = config.clone();
        std::thread::spawn(move || {
            handle_client(stream, &client_shared, &client_config, local);
        });
    }
    let _ = worker.join();
}

/// One bounded request line off the wire.
enum LineRead {
    /// A complete line (newline stripped, lossily decoded).
    Line(String),
    /// The client sent [`MAX_LINE_BYTES`] without a newline.
    TooLong,
    /// Clean end of stream or socket error — either way the client is
    /// gone and the handler should just return.
    Closed,
}

/// Reads one `\n`-terminated line, refusing to buffer more than
/// [`MAX_LINE_BYTES`]. The length cap — not `BufRead::lines` — is what
/// keeps an oversized or drip-feeding client from growing a line buffer
/// without bound.
fn read_bounded_line(reader: &mut impl BufRead) -> LineRead {
    let mut buf = Vec::new();
    let mut limited = reader.take(MAX_LINE_BYTES as u64 + 1);
    match limited.read_until(b'\n', &mut buf) {
        Ok(0) => LineRead::Closed,
        Ok(_) if buf.len() > MAX_LINE_BYTES => LineRead::TooLong,
        Ok(_) => {
            if buf.last() == Some(&b'\n') {
                buf.pop();
            }
            LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
        }
        Err(_) => LineRead::Closed,
    }
}

fn handle_client(
    stream: TcpStream,
    shared: &Shared,
    config: &ServeConfig,
    local: Option<SocketAddr>,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("prf-serve: cannot clone client stream: {e}");
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_bounded_line(&mut reader) {
            LineRead::Line(l) => l,
            LineRead::TooLong => {
                let refusal = Json::obj()
                    .field("ok", false)
                    .field(
                        "error",
                        format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                    )
                    .to_json();
                let _ = writer.write_all(refusal.as_bytes());
                let _ = writer.write_all(b"\n");
                let _ = writer.flush();
                return;
            }
            LineRead::Closed => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop) = match Json::parse(&line) {
            Ok(req) => handle_request(&req, shared, config),
            Err(e) => (
                Json::obj()
                    .field("ok", false)
                    .field("error", format!("bad JSON: {e}")),
                false,
            ),
        };
        let mut body = response.to_json();
        body.push('\n');
        if writer.write_all(body.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if stop {
            // Unblock the accept loop so `serve` can notice `stopping`.
            if let Some(addr) = local {
                let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &Json) -> Json {
        let mut line = req.to_json();
        line.push('\n');
        stream.write_all(line.as_bytes()).unwrap();
        stream.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        Json::parse(&response).unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
    }

    fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    fn spec(workload: &str, rf: &str, seed: u64) -> Json {
        Json::obj()
            .field("workload", workload)
            .field("rf", rf)
            .field("seed", seed)
            .field("audit", true)
    }

    #[test]
    fn job_specs_resolve_names_and_reject_nonsense() {
        let job = job_from_spec(&spec("BFS", "partitioned", 7)).unwrap();
        assert_eq!(job.name, "BFS/partitioned/seed7");
        assert_eq!(job.gpu.jitter_seed, 7);
        assert!(job.gpu.audit);
        assert!(matches!(job.rf, RfKind::Partitioned(_)));

        assert!(job_from_spec(&spec("NoSuchWorkload", "partitioned", 0))
            .unwrap_err()
            .contains("unknown workload"));
        assert!(job_from_spec(&spec("BFS", "no-such-rf", 0))
            .unwrap_err()
            .contains("unknown rf"));
        assert!(job_from_spec(&Json::obj().field("rf", "RFC"))
            .unwrap_err()
            .contains("workload"));
    }

    #[test]
    fn rf_names_cover_every_kind() {
        let gpu = GpuConfig::kepler_single_sm();
        for (name, want) in [
            ("MRF@STV", "MRF@STV"),
            ("mrf@ntv", "MRF@NTV"),
            ("partitioned", "partitioned"),
            ("partitioned-plain", "partitioned"),
            ("rfc", "RFC"),
            ("Drowsy", "drowsy"),
        ] {
            assert_eq!(rf_by_name(name, &gpu).unwrap().name(), want, "{name}");
        }
        assert!(rf_by_name("mrf", &gpu).is_none());
    }

    #[test]
    fn serves_two_concurrent_clients_with_clean_audits() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let config = ServeConfig {
            threads: 2,
            policy: RetryPolicy::none(),
            max_inflight: 4,
        };
        let server = std::thread::spawn(move || serve(listener, config, None));

        let submit = move |workload: &str, seed: u64| {
            let (mut stream, mut reader) = connect(addr);
            let pong = roundtrip(&mut stream, &mut reader, &Json::obj().field("op", "ping"));
            assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));
            assert_eq!(
                pong.get("version").unwrap().as_u64(),
                Some(PROTOCOL_VERSION)
            );
            let resp = roundtrip(
                &mut stream,
                &mut reader,
                &Json::obj().field("op", "submit").field(
                    "jobs",
                    Json::Arr(vec![
                        spec(workload, "partitioned", seed),
                        spec(workload, "MRF@NTV", seed),
                    ]),
                ),
            );
            assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp:?}");
            assert_eq!(resp.get("jobs").unwrap().as_u64(), Some(2));
            let batch = resp.get("batch").unwrap().as_u64().unwrap();
            (stream, reader, batch)
        };

        // Two clients submit concurrently, then each polls its own batch
        // to completion and fetches its report.
        let client_a = std::thread::spawn(move || submit("BFS", 1));
        let (mut sb, mut rb, batch_b) = {
            let (stream, reader) = connect(addr);
            let mut stream = stream;
            let mut reader = reader;
            let resp = roundtrip(
                &mut stream,
                &mut reader,
                &Json::obj()
                    .field("op", "submit")
                    .field("jobs", Json::Arr(vec![spec("NW", "partitioned", 2)])),
            );
            assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp:?}");
            (stream, reader, resp.get("batch").unwrap().as_u64().unwrap())
        };
        let (mut sa, mut ra, batch_a) = client_a.join().unwrap();

        let fetch = |stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, batch: u64| {
            loop {
                let poll = roundtrip(
                    stream,
                    reader,
                    &Json::obj().field("op", "poll").field("batch", batch),
                );
                assert_eq!(poll.get("ok").unwrap().as_bool(), Some(true), "{poll:?}");
                if poll.get("state").unwrap().as_str() == Some("done") {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            let resp = roundtrip(
                stream,
                reader,
                &Json::obj().field("op", "fetch").field("batch", batch),
            );
            assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp:?}");
            resp.get("report").unwrap().clone()
        };

        for (report, expect_jobs) in [
            (fetch(&mut sa, &mut ra, batch_a), 2),
            (fetch(&mut sb, &mut rb, batch_b), 1),
        ] {
            assert_eq!(report.get("failed_jobs").unwrap().as_u64(), Some(0));
            let results = report.get("results").unwrap().as_arr().unwrap();
            assert_eq!(results.len(), expect_jobs);
            for job in results {
                let audit = job.get("result").unwrap().get("audit").unwrap();
                assert_eq!(
                    audit.get("clean").and_then(Json::as_bool),
                    Some(true),
                    "audit must be clean: {job:?}"
                );
            }
        }

        // Cross-client visibility: client B can poll client A's batch.
        let poll = roundtrip(
            &mut sb,
            &mut rb,
            &Json::obj().field("op", "poll").field("batch", batch_a),
        );
        assert_eq!(poll.get("state").unwrap().as_str(), Some("done"));
        // Unknown batches and bad requests error without killing the line.
        let bad = roundtrip(
            &mut sb,
            &mut rb,
            &Json::obj().field("op", "fetch").field("batch", 999u64),
        );
        assert_eq!(bad.get("ok").unwrap().as_bool(), Some(false));
        let worse = roundtrip(&mut sb, &mut rb, &Json::obj().field("op", "dance"));
        assert!(worse
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("unknown op"));

        let stop = roundtrip(&mut sb, &mut rb, &Json::obj().field("op", "shutdown"));
        assert_eq!(stop.get("stopping").unwrap().as_bool(), Some(true));
        server.join().unwrap();
    }

    fn start_server(config: ServeConfig) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(listener, config, None));
        (addr, server)
    }

    fn shutdown(addr: SocketAddr, server: std::thread::JoinHandle<()>) {
        let (mut stream, mut reader) = connect(addr);
        let stop = roundtrip(
            &mut stream,
            &mut reader,
            &Json::obj().field("op", "shutdown"),
        );
        assert_eq!(stop.get("ok").unwrap().as_bool(), Some(true));
        server.join().unwrap();
    }

    #[test]
    fn oversized_request_line_is_refused_and_the_connection_closed() {
        let (addr, server) = start_server(ServeConfig {
            threads: 1,
            policy: RetryPolicy::none(),
            max_inflight: 1,
        });
        let (mut stream, mut reader) = connect(addr);

        // A would-be request that never fits: one byte past the cap with
        // no newline. (Exactly cap+1 so the server drains everything we
        // send — closing with unread data would RST the refusal away.)
        // The server must answer with a structured refusal as soon as
        // the cap trips — not buffer forever waiting for the line to end.
        let filler = vec![b'x'; MAX_LINE_BYTES + 1];
        stream.write_all(&filler).unwrap();
        stream.flush().unwrap();

        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let refusal = Json::parse(&response).unwrap();
        assert_eq!(refusal.get("ok").unwrap().as_bool(), Some(false));
        assert!(refusal
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("exceeds"));

        // And the connection is closed: the next read sees EOF.
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "{rest:?}");

        // The server itself is unharmed.
        let (mut s2, mut r2) = connect(addr);
        let pong = roundtrip(&mut s2, &mut r2, &Json::obj().field("op", "ping"));
        assert_eq!(pong.get("pong").unwrap().as_bool(), Some(true));
        shutdown(addr, server);
    }

    #[test]
    fn client_death_mid_batch_neither_wedges_the_worker_nor_loses_the_batch() {
        let (addr, server) = start_server(ServeConfig {
            threads: 1,
            policy: RetryPolicy::none(),
            max_inflight: 2,
        });

        // A client submits a batch and is killed immediately — socket
        // dropped without reading the rest of the protocol.
        let batch = {
            let (mut stream, mut reader) = connect(addr);
            let resp = roundtrip(
                &mut stream,
                &mut reader,
                &Json::obj()
                    .field("op", "submit")
                    .field("jobs", Json::Arr(vec![spec("BFS", "MRF@STV", 0)])),
            );
            assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp:?}");
            resp.get("batch").unwrap().as_u64().unwrap()
            // stream dropped here: the client is gone mid-batch.
        };

        // A second client can still drive the batch to completion and
        // fetch the dead client's report — the worker never wedged.
        let (mut stream, mut reader) = connect(addr);
        loop {
            let poll = roundtrip(
                &mut stream,
                &mut reader,
                &Json::obj().field("op", "poll").field("batch", batch),
            );
            assert_eq!(poll.get("ok").unwrap().as_bool(), Some(true), "{poll:?}");
            if poll.get("state").unwrap().as_str() == Some("done") {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Json::obj().field("op", "fetch").field("batch", batch),
        );
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp:?}");
        assert_eq!(
            resp.get("report")
                .unwrap()
                .get("failed_jobs")
                .unwrap()
                .as_u64(),
            Some(0)
        );
        shutdown(addr, server);
    }

    #[test]
    fn hostile_job_spec_comes_back_as_a_structured_rejection() {
        let (addr, server) = start_server(ServeConfig {
            threads: 1,
            policy: RetryPolicy::none(),
            max_inflight: 1,
        });
        let (mut stream, mut reader) = connect(addr);

        // 16 registers cannot hold any suite workload: the spec parses,
        // but admission must reject the job before simulation.
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Json::obj().field("op", "submit").field(
                "jobs",
                Json::Arr(vec![spec("BFS", "MRF@STV", 0).field("rf_registers", 16u64)]),
            ),
        );
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp:?}");
        let batch = resp.get("batch").unwrap().as_u64().unwrap();

        loop {
            let poll = roundtrip(
                &mut stream,
                &mut reader,
                &Json::obj().field("op", "poll").field("batch", batch),
            );
            if poll.get("state").unwrap().as_str() == Some("done") {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Json::obj().field("op", "fetch").field("batch", batch),
        );
        let report = resp.get("report").unwrap();
        assert_eq!(report.get("failed_jobs").unwrap().as_u64(), Some(1));
        let outcome = report.get("results").unwrap().as_arr().unwrap()[0]
            .get("outcome")
            .unwrap()
            .clone();
        assert_eq!(outcome.get("kind").unwrap().as_str(), Some("rejected"));
        assert!(
            outcome
                .get("reason")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("rejected input"),
            "{outcome:?}"
        );
        shutdown(addr, server);
    }

    #[test]
    fn submit_beyond_capacity_is_refused_not_queued() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let config = ServeConfig {
            threads: 1,
            policy: RetryPolicy::none(),
            max_inflight: 1,
        };
        let server = std::thread::spawn(move || serve(listener, config, None));
        let (mut stream, mut reader) = connect(addr);

        let first = roundtrip(
            &mut stream,
            &mut reader,
            &Json::obj()
                .field("op", "submit")
                .field("jobs", Json::Arr(vec![spec("BFS", "MRF@STV", 0)])),
        );
        assert_eq!(first.get("ok").unwrap().as_bool(), Some(true), "{first:?}");
        let second = roundtrip(
            &mut stream,
            &mut reader,
            &Json::obj()
                .field("op", "submit")
                .field("jobs", Json::Arr(vec![spec("BFS", "MRF@STV", 1)])),
        );
        // The worker may already have drained batch 0; only a refusal
        // must carry the capacity diagnostic.
        if second.get("ok").unwrap().as_bool() == Some(false) {
            assert!(second
                .get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("capacity"));
        }

        let stop = roundtrip(
            &mut stream,
            &mut reader,
            &Json::obj().field("op", "shutdown"),
        );
        assert_eq!(stop.get("ok").unwrap().as_bool(), Some(true));
        server.join().unwrap();
    }

    #[test]
    fn status_without_a_journal_reports_null_durability() {
        let (addr, server) = start_server(ServeConfig {
            threads: 1,
            policy: RetryPolicy::none(),
            max_inflight: 1,
        });
        let (mut stream, mut reader) = connect(addr);
        let status = roundtrip(&mut stream, &mut reader, &Json::obj().field("op", "status"));
        assert_eq!(status.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(status.get("recovered_batches").unwrap().as_u64(), Some(0));
        assert_eq!(status.get("inflight").unwrap().as_u64(), Some(0));
        assert_eq!(status.get("durable"), Some(&Json::Null));
        shutdown(addr, server);
    }

    #[test]
    fn shutdown_now_leaves_queued_batches_for_the_next_start() {
        let dir = std::env::temp_dir().join(format!(
            "prf_serve_test_now_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            threads: 1,
            policy: RetryPolicy::none(),
            max_inflight: 4,
        };

        // First life: journaled server, one slow batch running, one
        // queued behind it, then an immediate shutdown.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let journal = Journal::open(&dir, crate::vfs::real()).unwrap();
        let first_config = config.clone();
        let server = std::thread::spawn(move || {
            serve_with_journal(listener, first_config, None, Some(journal))
        });
        let (mut stream, mut reader) = connect(addr);
        let status = roundtrip(&mut stream, &mut reader, &Json::obj().field("op", "status"));
        assert_eq!(status.get("durable").unwrap().as_bool(), Some(true));
        assert_eq!(status.get("recovered_batches").unwrap().as_u64(), Some(0));
        let slow: Vec<Json> = (0..6)
            .map(|seed| spec("BFS", "partitioned", seed))
            .collect();
        let first = roundtrip(
            &mut stream,
            &mut reader,
            &Json::obj()
                .field("op", "submit")
                .field("jobs", Json::Arr(slow)),
        );
        assert_eq!(first.get("ok").unwrap().as_bool(), Some(true), "{first:?}");
        let queued = roundtrip(
            &mut stream,
            &mut reader,
            &Json::obj()
                .field("op", "submit")
                .field("jobs", Json::Arr(vec![spec("NW", "MRF@STV", 3)])),
        );
        assert_eq!(
            queued.get("ok").unwrap().as_bool(),
            Some(true),
            "{queued:?}"
        );
        let queued_id = queued.get("batch").unwrap().as_u64().unwrap();
        let stop = roundtrip(
            &mut stream,
            &mut reader,
            &Json::obj().field("op", "shutdown").field("mode", "now"),
        );
        assert_eq!(stop.get("stopping").unwrap().as_bool(), Some(true));
        assert_eq!(stop.get("mode").unwrap().as_str(), Some("now"));
        server.join().unwrap();

        // Second life: the same journal dir. The queued batch must come
        // back (the running one may also, if the kill beat its
        // BatchDone) and run to completion under its original id.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let journal = Journal::open(&dir, crate::vfs::real()).unwrap();
        assert!(
            journal.1.pending.iter().any(|(id, _)| *id == queued_id),
            "queued batch must be in the journal: {:?}",
            journal.1.pending
        );
        let server =
            std::thread::spawn(move || serve_with_journal(listener, config, None, Some(journal)));
        let (mut stream, mut reader) = connect(addr);
        let status = roundtrip(&mut stream, &mut reader, &Json::obj().field("op", "status"));
        assert!(
            status.get("recovered_batches").unwrap().as_u64().unwrap() >= 1,
            "{status:?}"
        );
        loop {
            let poll = roundtrip(
                &mut stream,
                &mut reader,
                &Json::obj().field("op", "poll").field("batch", queued_id),
            );
            assert_eq!(poll.get("ok").unwrap().as_bool(), Some(true), "{poll:?}");
            if poll.get("state").unwrap().as_str() == Some("done") {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Json::obj().field("op", "fetch").field("batch", queued_id),
        );
        let report = resp.get("report").unwrap();
        assert_eq!(report.get("failed_jobs").unwrap().as_u64(), Some(0));
        assert_eq!(report.get("jobs").unwrap().as_u64(), Some(1));
        shutdown(addr, server);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_append_failure_degrades_to_loud_non_durable_service() {
        use crate::vfs::{FaultPlan, FaultyVfs, Vfs};
        let dir =
            std::env::temp_dir().join(format!("prf_serve_test_nondurable_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let faulty = Arc::new(FaultyVfs::new());
        let journal = Journal::open(&dir, faulty.clone() as Arc<dyn Vfs>).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let config = ServeConfig {
            threads: 1,
            policy: RetryPolicy::none(),
            max_inflight: 4,
        };
        let server =
            std::thread::spawn(move || serve_with_journal(listener, config, None, Some(journal)));

        // Break the disk, then submit: the append fails, but the batch
        // must still be accepted and must still complete.
        faulty.set_plan(FaultPlan {
            fail_writes: true,
            ..FaultPlan::default()
        });
        let (mut stream, mut reader) = connect(addr);
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Json::obj()
                .field("op", "submit")
                .field("jobs", Json::Arr(vec![spec("BFS", "MRF@STV", 0)])),
        );
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp:?}");
        let batch = resp.get("batch").unwrap().as_u64().unwrap();
        let status = roundtrip(&mut stream, &mut reader, &Json::obj().field("op", "status"));
        assert_eq!(
            status.get("durable").unwrap().as_bool(),
            Some(false),
            "append failure must flip durable to false: {status:?}"
        );
        loop {
            let poll = roundtrip(
                &mut stream,
                &mut reader,
                &Json::obj().field("op", "poll").field("batch", batch),
            );
            if poll.get("state").unwrap().as_str() == Some("done") {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let resp = roundtrip(
            &mut stream,
            &mut reader,
            &Json::obj().field("op", "fetch").field("batch", batch),
        );
        assert_eq!(
            resp.get("report")
                .unwrap()
                .get("failed_jobs")
                .unwrap()
                .as_u64(),
            Some(0)
        );
        shutdown(addr, server);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
