//! On-disk experiment result cache keyed by canonical job digests.
//!
//! When `PRF_CACHE_DIR` is set, the resilient matrix runner consults this
//! cache before simulating: a job whose [`crate::digest::job_digest`]
//! matches a stored entry is answered from disk, bit-identically to the
//! run that produced it, and the simulation is skipped entirely. Entries
//! are written atomically (tempfile + rename in the same directory), so
//! concurrent shards — or a crash mid-write — can never publish a torn
//! entry; a reader either sees a complete entry or none.
//!
//! ## What is cacheable
//!
//! Only results that round-trip exactly through the entry schema are
//! stored:
//!
//! - observability extras must be off (`trace_capacity == 0`, no
//!   `sampling`, no `per_warp_stats`) — those payloads are large and not
//!   part of any figure's numbers;
//! - audited runs are stored only when **clean** (violation records carry
//!   `&'static str` invariants that cannot be restored from disk — and a
//!   violating run is precisely the one you want to re-execute).
//!
//! Non-cacheable jobs simply run; they count as misses in the matrix
//! footer but are never stored.
//!
//! ## Versioning
//!
//! Entries embed both [`CACHE_SCHEMA_VERSION`] (the entry layout) and the
//! digest itself embeds [`crate::digest::DIGEST_VERSION`] plus the
//! `Debug` rendering of every config struct, so struct changes invalidate
//! old entries without any migration logic: the digest simply stops
//! matching. Stale files are inert and can be deleted at leisure.
//!
//! ## Integrity
//!
//! Every entry carries a checksum footer — `sha256=<64 hex>` of the body
//! including its newline — verified on every read, so bit rot or a torn
//! write can never masquerade as a bit-exact cached result. Entries that
//! fail verification are **quarantined**: moved (never deleted, never
//! served) into a `corrupt/` subdirectory for forensics, counted in
//! [`CacheStats`], and surfaced in the matrix footer. Entries predating
//! the footer (schema v1) parse as valid-but-stale JSON and are plain
//! misses, not corruption. Opening a cache sweeps orphaned `.tmp-*`
//! files left by interrupted writes; a published `rename` is followed by
//! a directory fsync so entries survive power loss (platform caveats in
//! DESIGN.md §10).
//!
//! All file operations go through the [`crate::vfs::Vfs`] layer, so the
//! durability tests drive this cache over an injected-fault backend: a
//! write failure of any kind degrades to miss-and-recompute — counted in
//! [`CacheStats::write_errors`], never a panic, never a half-published
//! entry.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use prf_core::{ExperimentResult, PhaseTimings, RfTelemetry};
use prf_isa::{Reg, MAX_ARCH_REGS};
use prf_sim::{AuditReport, PartitionAccessCounts, RegisterAccessHistogram, SimResult, SmStats};

use crate::digest::Sha256;
use crate::json::Json;
use crate::runner::{Job, JobOutcome};
use crate::vfs::{self, Vfs};

/// Version of the on-disk entry layout. Bump on any change to the entry
/// JSON shape; old entries are then ignored (treated as misses).
/// v2 added the `sha256=` checksum footer — v1 entries have none, so
/// they classify as stale (a miss), not corrupt.
pub const CACHE_SCHEMA_VERSION: u64 = 2;

/// Name of the quarantine subdirectory for corrupt entries.
pub const QUARANTINE_DIR: &str = "corrupt";

/// A cached job outcome: everything the matrix runner needs to replay the
/// job bit-identically without simulating.
#[derive(Debug)]
pub struct CachedOutcome {
    /// The outcome of the run that produced the entry (`Completed` or
    /// `Retried` — failures are never cached).
    pub outcome: JobOutcome,
    /// Worker wall-clock of the original run, replayed so `BENCH_*.json`
    /// job records are bit-identical between cold and warm runs.
    pub elapsed: Duration,
    /// The restored experiment result.
    pub result: ExperimentResult,
}

/// Durability telemetry for one cache handle, shared by its clones.
/// These counters are what turns a silently-degraded cache into a
/// visible `[cache: … write-err / … quarantined]` footer segment.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Failed entry publishes (tempfile write, rename, or directory
    /// fsync). Each one degraded a store to miss-and-recompute.
    pub write_errors: AtomicU64,
    /// Entries that failed checksum/parse verification and were moved
    /// to the quarantine directory.
    pub quarantined: AtomicU64,
    /// Orphaned `.tmp-*` files swept at open.
    pub swept_tmp: AtomicU64,
}

/// Handle on a cache directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    stats: Arc<CacheStats>,
}

impl ResultCache {
    /// The cache configured via `PRF_CACHE_DIR`, or `None` when unset.
    /// The directory is created eagerly; on failure the cache is disabled
    /// with a diagnostic rather than failing the run.
    pub fn from_env() -> Option<ResultCache> {
        let dir = PathBuf::from(std::env::var_os("PRF_CACHE_DIR")?);
        match ResultCache::open(dir.clone(), vfs::real()) {
            Ok(cache) => Some(cache),
            Err(e) => {
                eprintln!(
                    "PRF_CACHE_DIR: cannot create {}: {e}; caching disabled",
                    dir.display()
                );
                None
            }
        }
    }

    /// A cache rooted at an explicit directory (created if needed).
    ///
    /// # Panics
    ///
    /// Panics when the directory cannot be created.
    pub fn at(dir: impl Into<PathBuf>) -> ResultCache {
        let dir = dir.into();
        ResultCache::open(dir.clone(), vfs::real())
            .unwrap_or_else(|e| panic!("cannot create cache dir {}: {e}", dir.display()))
    }

    /// Opens a cache over an explicit [`Vfs`] backend — the injectable
    /// seam the durability tests use. Creates the directory and sweeps
    /// orphaned `.tmp-*` files left by interrupted writes (a crashed
    /// process can leave a tempfile behind; it was never published, so
    /// removing it is safe and keeps the directory from silting up).
    ///
    /// # Errors
    ///
    /// Only when the directory cannot be created; sweep failures are
    /// diagnostics, not errors.
    pub fn open(dir: impl Into<PathBuf>, vfs: Arc<dyn Vfs>) -> io::Result<ResultCache> {
        let dir = dir.into();
        vfs.create_dir_all(&dir)?;
        let cache = ResultCache {
            dir,
            vfs,
            stats: Arc::new(CacheStats::default()),
        };
        cache.sweep_tmp();
        Ok(cache)
    }

    fn sweep_tmp(&self) {
        let Ok(entries) = self.vfs.list_dir(&self.dir) else {
            return;
        };
        for path in entries {
            let orphan = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(".tmp-"));
            if orphan && self.vfs.remove_file(&path).is_ok() {
                self.stats.swept_tmp.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Failed entry publishes so far (each degraded a store to
    /// miss-and-recompute).
    pub fn write_errors(&self) -> u64 {
        self.stats.write_errors.load(Ordering::Relaxed)
    }

    /// Corrupt entries quarantined so far.
    pub fn quarantined(&self) -> u64 {
        self.stats.quarantined.load(Ordering::Relaxed)
    }

    /// Orphaned `.tmp-*` files swept at open.
    pub fn swept_tmp(&self) -> u64 {
        self.stats.swept_tmp.load(Ordering::Relaxed)
    }

    /// Where quarantined entries live.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(QUARANTINE_DIR)
    }

    /// True when the job's configuration produces a result this cache can
    /// round-trip exactly (see the module docs for the rules).
    pub fn is_cacheable(job: &Job) -> bool {
        job.gpu.trace_capacity == 0 && !job.gpu.per_warp_stats && job.gpu.sampling.is_none()
    }

    fn entry_path(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.json"))
    }

    /// Moves a corrupt entry into the quarantine directory — never
    /// deleted, never served — and counts it. If the move itself fails
    /// the file stays in place (still never served: the caller already
    /// rejected it), which is the conservative failure mode.
    fn quarantine(&self, digest: &str, why: &str) {
        self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
        let src = self.entry_path(digest);
        let dst = self.quarantine_dir().join(format!("{digest}.json"));
        let moved = self
            .vfs
            .create_dir_all(&self.quarantine_dir())
            .and_then(|()| self.vfs.rename(&src, &dst));
        match moved {
            Ok(()) => eprintln!("cache: quarantined corrupt entry {digest}: {why}"),
            Err(e) => {
                eprintln!("cache: corrupt entry {digest} ({why}); quarantine move failed: {e}")
            }
        }
    }

    /// Looks up an entry. Returns `None` on any mismatch — missing file,
    /// wrong schema version, or an entry whose RF name differs from the
    /// job's (paranoia: the digest should preclude it). An entry whose
    /// bytes fail checksum verification is quarantined as a side effect
    /// (see the module docs); a stale-but-intact pre-footer entry is a
    /// plain miss.
    pub fn load(&self, digest: &str, job: &Job) -> Option<CachedOutcome> {
        let bytes = self.vfs.read(&self.entry_path(digest)).ok()?;
        let text = match String::from_utf8(bytes) {
            Ok(t) => t,
            Err(_) => {
                self.quarantine(digest, "entry is not UTF-8");
                return None;
            }
        };
        let body = match verify_entry(&text) {
            EntryCheck::Valid(body) => body,
            EntryCheck::Stale => return None,
            EntryCheck::Corrupt(why) => {
                self.quarantine(digest, why);
                return None;
            }
        };
        let Ok(doc) = Json::parse(body) else {
            // The checksum vouched for these bytes, yet they are not a
            // JSON document: a writer bug, not bit rot — quarantine so
            // the evidence survives.
            self.quarantine(digest, "checksummed body is not JSON");
            return None;
        };
        if doc.get("cache_schema_version")?.as_u64()? != CACHE_SCHEMA_VERSION {
            return None;
        }
        if doc.get("digest")?.as_str()? != digest {
            return None;
        }
        // `rf_name` is `&'static str`: restore it from the job's own
        // RfKind, after checking it names the same organisation.
        let rf_name = job.rf.name();
        if doc.get("rf")?.as_str()? != rf_name {
            return None;
        }
        let attempts = doc.get("attempts")?.as_u64()?;
        let outcome = if attempts <= 1 {
            JobOutcome::Completed
        } else {
            JobOutcome::Retried {
                attempts: u32::try_from(attempts).ok()?,
            }
        };
        Some(CachedOutcome {
            outcome,
            elapsed: Duration::from_nanos(doc.get("elapsed_ns")?.as_u64()?),
            result: result_from_json(doc.get("result")?, rf_name)?,
        })
    }

    /// Stores a successful job result. Returns `false` (without writing)
    /// when the result is not exactly round-trippable — observability
    /// payloads present, or a non-clean audit — or on I/O failure (with a
    /// diagnostic; a broken cache must not fail the run).
    pub fn store(
        &self,
        digest: &str,
        job: &Job,
        outcome: &JobOutcome,
        elapsed: Duration,
        result: &ExperimentResult,
    ) -> bool {
        if !Self::is_cacheable(job) || !result_is_storable(result) {
            return false;
        }
        let attempts = match outcome {
            JobOutcome::Completed => 1,
            JobOutcome::Retried { attempts } => u64::from(*attempts),
            _ => return false,
        };
        let doc = Json::obj()
            .field("cache_schema_version", CACHE_SCHEMA_VERSION)
            .field("digest", digest)
            .field("job_name", job.name.as_str())
            .field("rf", job.rf.name())
            .field("attempts", attempts)
            .field(
                "elapsed_ns",
                u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            )
            .field("result", result_to_json(result));
        // Body line, then the checksum footer over the body *including*
        // its newline — a reader re-hashes exactly what precedes the
        // footer line.
        let mut entry = doc.to_json();
        entry.push('\n');
        let mut hasher = Sha256::new();
        hasher.update(entry.as_bytes());
        entry.push_str(CHECKSUM_PREFIX);
        entry.push_str(&hasher.finish_hex());
        entry.push('\n');
        // Atomic publish: write the full entry to a private temp file in
        // the same directory, then rename over the final name. Renames
        // within a directory are atomic, so concurrent shards racing on
        // the same digest simply last-write-wins with identical bytes.
        // Any I/O failure — tempfile write, rename, directory fsync — is
        // counted as a write error: the job's result is still returned
        // to the caller, the cache just degraded to miss-and-recompute.
        let tmp = self
            .dir
            .join(format!(".tmp-{digest}-{}", std::process::id()));
        if let Err(e) = self.vfs.write_file(&tmp, entry.as_bytes()) {
            eprintln!("cache: cannot write {}: {e}", tmp.display());
            self.stats.write_errors.fetch_add(1, Ordering::Relaxed);
            let _ = self.vfs.remove_file(&tmp);
            return false;
        }
        if let Err(e) = self.vfs.rename(&tmp, &self.entry_path(digest)) {
            eprintln!(
                "cache: cannot publish {}: {e}",
                self.entry_path(digest).display()
            );
            self.stats.write_errors.fetch_add(1, Ordering::Relaxed);
            let _ = self.vfs.remove_file(&tmp);
            return false;
        }
        // Make the rename durable: fsync the directory. On platforms
        // where directories cannot be fsynced this is a no-op inside
        // RealVfs (see `Vfs::sync_dir`); an injected failure here still
        // counts — the entry is published for this boot but might not
        // survive power loss.
        if let Err(e) = self.vfs.sync_dir(&self.dir) {
            eprintln!("cache: cannot fsync {}: {e}", self.dir.display());
            self.stats.write_errors.fetch_add(1, Ordering::Relaxed);
        }
        true
    }
}

/// The checksum footer label.
const CHECKSUM_PREFIX: &str = "sha256=";

/// Classification of raw entry text.
enum EntryCheck<'a> {
    /// Footer present and the checksum matches: `body` (without the
    /// footer line) is integrity-verified.
    Valid(&'a str),
    /// No footer, but the whole file is an intact JSON document with a
    /// `cache_schema_version` field — a pre-footer (schema v1) entry.
    /// Stale, not corrupt: a plain miss.
    Stale,
    /// Anything else: truncated, bit-flipped, or foreign bytes.
    Corrupt(&'static str),
}

/// Verifies the `sha256=` footer of entry text. The expected layout is
/// `<single-line JSON body>\n` followed by `sha256=<64 lowercase hex>\n`;
/// the checksum covers everything before the footer line.
fn verify_entry(text: &str) -> EntryCheck<'_> {
    let stale_or = |why: &'static str| {
        // Distinguish an old-format entry from damage: v1 entries are
        // intact JSON documents (with a schema field) and no footer.
        let looks_v1 = Json::parse(text.trim_end())
            .ok()
            .and_then(|doc| doc.get("cache_schema_version")?.as_u64())
            .is_some();
        if looks_v1 {
            EntryCheck::Stale
        } else {
            EntryCheck::Corrupt(why)
        }
    };
    let Some(without_final_newline) = text.strip_suffix('\n') else {
        return stale_or("missing trailing newline");
    };
    let Some((body, footer)) = without_final_newline.rsplit_once('\n') else {
        return stale_or("no checksum footer");
    };
    let Some(hex) = footer.strip_prefix(CHECKSUM_PREFIX) else {
        return stale_or("footer is not a sha256= line");
    };
    if hex.len() != 64 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return EntryCheck::Corrupt("malformed checksum hex");
    }
    // Re-hash the body plus its newline — exactly the bytes that
    // preceded the footer line on disk.
    let mut hasher = Sha256::new();
    hasher.update(body.as_bytes());
    hasher.update(b"\n");
    if hasher.finish_hex() != hex {
        return EntryCheck::Corrupt("checksum mismatch");
    }
    EntryCheck::Valid(body)
}

/// True when the result round-trips exactly through the entry schema:
/// no trace/sample/per-warp payloads, and every audit (if any) clean.
fn result_is_storable(r: &ExperimentResult) -> bool {
    let audits_clean = r.audit.as_ref().is_none_or(AuditReport::is_clean)
        && r.per_launch
            .iter()
            .all(|l| l.audit.as_ref().is_none_or(AuditReport::is_clean));
    let no_extras = r.stats.per_warp.is_empty()
        && r.per_launch
            .iter()
            .all(|l| l.trace.is_empty() && l.samples.is_empty() && l.stats.per_warp.is_empty());
    audits_clean && no_extras
}

fn u64_arr(xs: &[u64]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::from(x)).collect())
}

fn regs_arr(regs: &[Reg]) -> Json {
    Json::Arr(regs.iter().map(|r| Json::from(r.index())).collect())
}

fn opt_u64(x: Option<u64>) -> Json {
    x.map_or(Json::Null, Json::from)
}

fn histogram_json(h: &RegisterAccessHistogram) -> Json {
    u64_arr(h.counts())
}

fn partition_json(p: &PartitionAccessCounts) -> Json {
    let (reads, writes) = p.raw();
    Json::obj()
        .field("reads", u64_arr(reads))
        .field("writes", u64_arr(writes))
}

fn stats_json(s: &SmStats) -> Json {
    Json::obj()
        .field("instructions", s.instructions)
        .field("active_cycles", s.active_cycles)
        .field("issue_cycles", s.issue_cycles)
        .field("reg_accesses", histogram_json(&s.reg_accesses))
        .field("partition_accesses", partition_json(&s.partition_accesses))
        .field("bank_conflict_waits", s.bank_conflict_waits)
        .field("collector_stalls", s.collector_stalls)
        .field("l1_hits", s.l1_hits)
        .field("l1_misses", s.l1_misses)
        .field("mem_transactions", s.mem_transactions)
        .field("mem_instructions", s.mem_instructions)
        .field("stall_mem", s.stall_mem)
        .field("stall_barrier", s.stall_barrier)
        .field("stall_collector", s.stall_collector)
        .field("stall_alu_dep", s.stall_alu_dep)
        .field("divergent_branches", s.divergent_branches)
        .field("total_branches", s.total_branches)
        .field("active_lane_sum", s.active_lane_sum)
        .field("rf_repairs", u64_arr(&s.rf_repairs))
}

fn audit_json(a: &AuditReport) -> Json {
    Json::obj()
        .field("issue_events", a.issue_events)
        .field("collect_events", a.collect_events)
        .field("rf_events", partition_json(&a.rf_events))
        .field("writeback_events", a.writeback_events)
        .field("lsu_complete_events", a.lsu_complete_events)
        .field("sb_reserve_events", a.sb_reserve_events)
        .field("sb_release_events", a.sb_release_events)
        .field("rfc_evict_events", a.rfc_evict_events)
        .field("rf_repair_events", u64_arr(&a.rf_repair_events))
        .field("checks", a.checks)
}

fn telemetry_json(t: &RfTelemetry) -> Json {
    Json::obj()
        .field("rfc_hits", t.rfc_hits)
        .field("rfc_read_hits", t.rfc_read_hits)
        .field("rfc_misses", t.rfc_misses)
        .field("rfc_writebacks", t.rfc_writebacks)
        .field("frf_high_epochs", t.frf_high_epochs)
        .field("frf_low_epochs", t.frf_low_epochs)
        .field("fault_remaps", t.fault_remaps)
        .field("fault_spills", t.fault_spills)
        .field("fault_escalations", t.fault_escalations)
        .field("compiler_hot_regs", regs_arr(&t.compiler_hot_regs))
        .field("pilot_hot_regs", regs_arr(&t.pilot_hot_regs))
        .field("pilot_done_cycle", opt_u64(t.pilot_done_cycle))
}

fn phases_json(p: &PhaseTimings) -> Json {
    // Exact nanosecond integers, not milliseconds-as-float: the warm run
    // must reproduce the cold run's phase profile bit-for-bit.
    let ns = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
    Json::obj()
        .field("setup_ns", ns(p.setup))
        .field("simulate_ns", ns(p.simulate))
        .field("energy_ns", ns(p.energy))
        .field("audit_ns", ns(p.audit))
}

fn launch_json(l: &SimResult) -> Json {
    Json::obj()
        .field("kernel", l.kernel.as_str())
        .field("cycles", l.cycles)
        .field("stats", stats_json(&l.stats))
        .field("pilot_warp_finish", opt_u64(l.pilot_warp_finish))
        .field("per_sm_instructions", u64_arr(&l.per_sm_instructions))
        .field("audit", l.audit.as_ref().map_or(Json::Null, audit_json))
}

fn result_to_json(r: &ExperimentResult) -> Json {
    Json::obj()
        .field("cycles", r.cycles)
        .field("stats", stats_json(&r.stats))
        .field(
            "per_launch",
            Json::Arr(r.per_launch.iter().map(launch_json).collect()),
        )
        .field("telemetry", telemetry_json(&r.telemetry))
        .field("dynamic_energy_pj", r.dynamic_energy_pj)
        .field("baseline_dynamic_energy_pj", r.baseline_dynamic_energy_pj)
        .field("leakage_energy_pj", r.leakage_energy_pj)
        .field("baseline_leakage_energy_pj", r.baseline_leakage_energy_pj)
        .field("repair_energy_pj", r.repair_energy_pj)
        .field("phases", phases_json(&r.phases))
        .field("audit", r.audit.as_ref().map_or(Json::Null, audit_json))
}

fn get_u64(j: &Json, key: &str) -> Option<u64> {
    j.get(key)?.as_u64()
}

fn get_f64(j: &Json, key: &str) -> Option<f64> {
    j.get(key)?.as_f64()
}

fn u64s(j: &Json) -> Option<Vec<u64>> {
    j.as_arr()?.iter().map(Json::as_u64).collect()
}

fn fixed<const N: usize>(v: Vec<u64>) -> Option<[u64; N]> {
    v.try_into().ok()
}

fn histogram_from(j: &Json) -> Option<RegisterAccessHistogram> {
    let counts: [u64; MAX_ARCH_REGS] = fixed(u64s(j)?)?;
    Some(RegisterAccessHistogram::from_counts(counts))
}

fn partition_from(j: &Json) -> Option<PartitionAccessCounts> {
    let reads: [u64; 8] = fixed(u64s(j.get("reads")?)?)?;
    let writes: [u64; 8] = fixed(u64s(j.get("writes")?)?)?;
    Some(PartitionAccessCounts::from_raw(reads, writes))
}

fn regs_from(j: &Json) -> Option<Vec<Reg>> {
    j.as_arr()?
        .iter()
        .map(|x| {
            let i = x.as_u64()?;
            u8::try_from(i).ok().map(Reg)
        })
        .collect()
}

fn opt_u64_from(j: &Json, key: &str) -> Option<Option<u64>> {
    match j.get(key)? {
        Json::Null => Some(None),
        other => Some(Some(other.as_u64()?)),
    }
}

fn stats_from(j: &Json) -> Option<SmStats> {
    Some(SmStats {
        instructions: get_u64(j, "instructions")?,
        active_cycles: get_u64(j, "active_cycles")?,
        issue_cycles: get_u64(j, "issue_cycles")?,
        reg_accesses: histogram_from(j.get("reg_accesses")?)?,
        partition_accesses: partition_from(j.get("partition_accesses")?)?,
        bank_conflict_waits: get_u64(j, "bank_conflict_waits")?,
        collector_stalls: get_u64(j, "collector_stalls")?,
        per_warp: Default::default(),
        l1_hits: get_u64(j, "l1_hits")?,
        l1_misses: get_u64(j, "l1_misses")?,
        mem_transactions: get_u64(j, "mem_transactions")?,
        mem_instructions: get_u64(j, "mem_instructions")?,
        stall_mem: get_u64(j, "stall_mem")?,
        stall_barrier: get_u64(j, "stall_barrier")?,
        stall_collector: get_u64(j, "stall_collector")?,
        stall_alu_dep: get_u64(j, "stall_alu_dep")?,
        divergent_branches: get_u64(j, "divergent_branches")?,
        total_branches: get_u64(j, "total_branches")?,
        active_lane_sum: get_u64(j, "active_lane_sum")?,
        rf_repairs: fixed(u64s(j.get("rf_repairs")?)?)?,
    })
}

fn audit_from(j: &Json) -> Option<AuditReport> {
    Some(AuditReport {
        issue_events: get_u64(j, "issue_events")?,
        collect_events: get_u64(j, "collect_events")?,
        rf_events: partition_from(j.get("rf_events")?)?,
        writeback_events: get_u64(j, "writeback_events")?,
        lsu_complete_events: get_u64(j, "lsu_complete_events")?,
        sb_reserve_events: get_u64(j, "sb_reserve_events")?,
        sb_release_events: get_u64(j, "sb_release_events")?,
        rfc_evict_events: get_u64(j, "rfc_evict_events")?,
        rf_repair_events: fixed(u64s(j.get("rf_repair_events")?)?)?,
        checks: get_u64(j, "checks")?,
        // Only clean runs are stored, so restoring an empty violation
        // list is exact.
        violations: Vec::new(),
    })
}

fn opt_audit_from(j: &Json, key: &str) -> Option<Option<AuditReport>> {
    match j.get(key)? {
        Json::Null => Some(None),
        other => Some(Some(audit_from(other)?)),
    }
}

fn telemetry_from(j: &Json) -> Option<RfTelemetry> {
    Some(RfTelemetry {
        rfc_hits: get_u64(j, "rfc_hits")?,
        rfc_read_hits: get_u64(j, "rfc_read_hits")?,
        rfc_misses: get_u64(j, "rfc_misses")?,
        rfc_writebacks: get_u64(j, "rfc_writebacks")?,
        frf_high_epochs: get_u64(j, "frf_high_epochs")?,
        frf_low_epochs: get_u64(j, "frf_low_epochs")?,
        fault_remaps: get_u64(j, "fault_remaps")?,
        fault_spills: get_u64(j, "fault_spills")?,
        fault_escalations: get_u64(j, "fault_escalations")?,
        compiler_hot_regs: regs_from(j.get("compiler_hot_regs")?)?,
        pilot_hot_regs: regs_from(j.get("pilot_hot_regs")?)?,
        pilot_done_cycle: opt_u64_from(j, "pilot_done_cycle")?,
    })
}

fn phases_from(j: &Json) -> Option<PhaseTimings> {
    Some(PhaseTimings {
        setup: Duration::from_nanos(get_u64(j, "setup_ns")?),
        simulate: Duration::from_nanos(get_u64(j, "simulate_ns")?),
        energy: Duration::from_nanos(get_u64(j, "energy_ns")?),
        audit: Duration::from_nanos(get_u64(j, "audit_ns")?),
    })
}

fn launch_from(j: &Json) -> Option<SimResult> {
    Some(SimResult {
        kernel: j.get("kernel")?.as_str()?.to_string(),
        cycles: get_u64(j, "cycles")?,
        stats: stats_from(j.get("stats")?)?,
        pilot_warp_finish: opt_u64_from(j, "pilot_warp_finish")?,
        per_sm_instructions: u64s(j.get("per_sm_instructions")?)?,
        trace: Vec::new(),
        samples: Vec::new(),
        audit: opt_audit_from(j, "audit")?,
    })
}

fn result_from_json(j: &Json, rf_name: &'static str) -> Option<ExperimentResult> {
    Some(ExperimentResult {
        rf_name,
        cycles: get_u64(j, "cycles")?,
        stats: stats_from(j.get("stats")?)?,
        per_launch: j
            .get("per_launch")?
            .as_arr()?
            .iter()
            .map(launch_from)
            .collect::<Option<Vec<_>>>()?,
        telemetry: telemetry_from(j.get("telemetry")?)?,
        dynamic_energy_pj: get_f64(j, "dynamic_energy_pj")?,
        baseline_dynamic_energy_pj: get_f64(j, "baseline_dynamic_energy_pj")?,
        leakage_energy_pj: get_f64(j, "leakage_energy_pj")?,
        baseline_leakage_energy_pj: get_f64(j, "baseline_leakage_energy_pj")?,
        repair_energy_pj: get_f64(j, "repair_energy_pj")?,
        phases: phases_from(j.get("phases")?)?,
        audit: opt_audit_from(j, "audit")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::job_digest;
    use prf_core::RfKind;
    use prf_sim::GpuConfig;
    use std::fs;
    use std::path::Path;

    fn temp_cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!("prf_cache_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::at(dir)
    }

    /// Rewrites an entry's body line through `f` and recomputes the
    /// checksum footer, so the result is *intact* (not corrupt) but
    /// carries the transformed body.
    fn rewrite_body(path: &Path, f: impl Fn(&str) -> String) {
        let text = fs::read_to_string(path).unwrap();
        let body = text.split('\n').next().unwrap();
        let mut entry = f(body);
        entry.push('\n');
        let mut h = Sha256::new();
        h.update(entry.as_bytes());
        entry.push_str(CHECKSUM_PREFIX);
        entry.push_str(&h.finish_hex());
        entry.push('\n');
        fs::write(path, entry).unwrap();
    }

    fn run_job(seed: u64, audit: bool) -> (Job, Duration, ExperimentResult) {
        let w = prf_workloads::suite::bfs();
        let gpu = GpuConfig {
            jitter_seed: seed,
            audit,
            ..GpuConfig::kepler_single_sm()
        };
        let rf = RfKind::Partitioned(prf_core::PartitionedRfConfig::paper_default(
            gpu.num_rf_banks,
        ));
        let job = Job::new(format!("BFS/seed{seed}"), &w, &gpu, &rf);
        let result = prf_core::run_experiment_with_faults(
            &job.gpu,
            &job.rf,
            &job.workload.launches,
            &job.workload.mem_init,
            job.faults.as_ref(),
        )
        .expect("tiny workload simulates cleanly");
        (job, Duration::from_micros(1234), result)
    }

    #[test]
    fn round_trips_a_real_result_bit_identically() {
        let cache = temp_cache("roundtrip");
        let (job, elapsed, result) = run_job(0, true);
        let digest = job_digest(&job);
        assert!(cache.load(&digest, &job).is_none(), "cold cache is empty");
        assert!(cache.store(&digest, &job, &JobOutcome::Completed, elapsed, &result));
        let hit = cache.load(&digest, &job).expect("entry stored");
        assert_eq!(hit.outcome, JobOutcome::Completed);
        assert_eq!(hit.elapsed, elapsed);
        // Full structural equality: every counter, energy figure, phase
        // duration, audit counter, and telemetry value survives the disk
        // round-trip exactly.
        assert_eq!(hit.result, result);
    }

    #[test]
    fn changed_seed_is_a_miss() {
        let cache = temp_cache("seed_miss");
        let (job0, elapsed, result) = run_job(0, false);
        let digest0 = job_digest(&job0);
        assert!(cache.store(&digest0, &job0, &JobOutcome::Completed, elapsed, &result));
        let (job1, _, _) = run_job(1, false);
        let digest1 = job_digest(&job1);
        assert_ne!(digest0, digest1, "seed must be part of the digest");
        assert!(cache.load(&digest1, &job1).is_none());
    }

    #[test]
    fn non_cacheable_configs_are_refused() {
        let (job, elapsed, result) = run_job(0, false);
        let mut traced = job.clone();
        traced.gpu.trace_capacity = 1024;
        assert!(!ResultCache::is_cacheable(&traced));
        let mut warped = job.clone();
        warped.gpu.per_warp_stats = true;
        assert!(!ResultCache::is_cacheable(&warped));
        assert!(ResultCache::is_cacheable(&job));
        let cache = temp_cache("refuse");
        assert!(!cache.store(
            &job_digest(&traced),
            &traced,
            &JobOutcome::Completed,
            elapsed,
            &result
        ));
    }

    #[test]
    fn schema_version_mismatch_is_a_stale_miss_not_corruption() {
        let cache = temp_cache("schema");
        let (job, elapsed, result) = run_job(0, false);
        let digest = job_digest(&job);
        assert!(cache.store(&digest, &job, &JobOutcome::Completed, elapsed, &result));
        let path = cache.entry_path(&digest);
        rewrite_body(&path, |body| {
            let bumped = body.replace(
                &format!("\"cache_schema_version\":{CACHE_SCHEMA_VERSION}"),
                "\"cache_schema_version\":999999",
            );
            assert_ne!(body, bumped, "version field must be present");
            bumped
        });
        assert!(cache.load(&digest, &job).is_none());
        assert_eq!(
            cache.quarantined(),
            0,
            "an intact entry from another version is stale, not corrupt"
        );
    }

    #[test]
    fn pre_footer_v1_entries_are_stale_misses_not_corruption() {
        let cache = temp_cache("v1_stale");
        let (job, elapsed, result) = run_job(0, false);
        let digest = job_digest(&job);
        assert!(cache.store(&digest, &job, &JobOutcome::Completed, elapsed, &result));
        let path = cache.entry_path(&digest);
        // Strip the footer and claim schema v1: exactly what a pre-PR
        // entry looks like on disk.
        let text = fs::read_to_string(&path).unwrap();
        let body = text.split('\n').next().unwrap().replace(
            &format!("\"cache_schema_version\":{CACHE_SCHEMA_VERSION}"),
            "\"cache_schema_version\":1",
        );
        fs::write(&path, format!("{body}\n")).unwrap();
        assert!(cache.load(&digest, &job).is_none());
        assert_eq!(cache.quarantined(), 0, "v1 entries must not be quarantined");
        assert!(path.exists(), "stale entries stay in place");
    }

    #[test]
    fn torn_or_corrupt_entries_are_quarantined_never_served() {
        let cache = temp_cache("corrupt");
        let (job, elapsed, result) = run_job(0, false);
        let digest = job_digest(&job);
        assert!(cache.store(&digest, &job, &JobOutcome::Completed, elapsed, &result));
        let path = cache.entry_path(&digest);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(cache.load(&digest, &job).is_none(), "truncated entry");
        assert_eq!(cache.quarantined(), 1);
        let jailed = cache.quarantine_dir().join(format!("{digest}.json"));
        assert!(jailed.exists(), "quarantined, not deleted");
        assert!(!path.exists(), "quarantined entry leaves the cache dir");

        fs::write(&path, "not json at all").unwrap();
        assert!(cache.load(&digest, &job).is_none(), "garbage entry");
        assert_eq!(cache.quarantined(), 2);

        // Quarantine + re-run repopulates: the slot is free again and a
        // fresh store round-trips.
        assert!(cache.store(&digest, &job, &JobOutcome::Completed, elapsed, &result));
        assert!(cache.load(&digest, &job).is_some());
        assert_eq!(
            fs::read_to_string(&path).unwrap(),
            text,
            "repopulated entry is byte-identical to the original"
        );
    }

    #[test]
    fn open_sweeps_orphaned_tmp_files() {
        let dir = std::env::temp_dir().join(format!("prf_cache_test_sweep_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(".tmp-deadbeef-12345"), b"half-written").unwrap();
        fs::write(dir.join("keepme.json"), b"{}").unwrap();
        let cache = ResultCache::at(&dir);
        assert_eq!(cache.swept_tmp(), 1);
        assert!(!dir.join(".tmp-deadbeef-12345").exists());
        assert!(dir.join("keepme.json").exists(), "sweep only takes .tmp-*");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_failures_degrade_to_miss_and_are_counted() {
        use crate::vfs::{FaultPlan, FaultyVfs};
        let dir =
            std::env::temp_dir().join(format!("prf_cache_test_enospc_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let faulty = Arc::new(FaultyVfs::new());
        let cache = ResultCache::open(&dir, faulty.clone() as Arc<dyn Vfs>).unwrap();
        let (job, elapsed, result) = run_job(0, false);
        let digest = job_digest(&job);

        faulty.set_plan(FaultPlan {
            fail_writes: true,
            ..FaultPlan::default()
        });
        assert!(!cache.store(&digest, &job, &JobOutcome::Completed, elapsed, &result));
        assert_eq!(cache.write_errors(), 1, "ENOSPC counts");

        faulty.set_plan(FaultPlan {
            fail_rename: true,
            ..FaultPlan::default()
        });
        assert!(!cache.store(&digest, &job, &JobOutcome::Completed, elapsed, &result));
        assert_eq!(cache.write_errors(), 2, "rename failure counts");
        assert!(
            cache.load(&digest, &job).is_none(),
            "failed publishes leave no entry"
        );

        faulty.revive();
        assert!(cache.store(&digest, &job, &JobOutcome::Completed, elapsed, &result));
        assert!(cache.load(&digest, &job).is_some(), "healed disk stores");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retried_outcome_survives_the_round_trip() {
        let cache = temp_cache("retried");
        let (job, elapsed, result) = run_job(0, false);
        let digest = job_digest(&job);
        let outcome = JobOutcome::Retried { attempts: 3 };
        assert!(cache.store(&digest, &job, &outcome, elapsed, &result));
        let hit = cache.load(&digest, &job).expect("stored");
        assert_eq!(hit.outcome, outcome);
    }

    #[test]
    fn failures_are_never_stored() {
        let cache = temp_cache("failures");
        let (job, elapsed, result) = run_job(0, false);
        let digest = job_digest(&job);
        for outcome in [
            JobOutcome::Panicked {
                message: "boom".into(),
            },
            JobOutcome::TimedOut {
                timeout: Duration::from_secs(1),
            },
        ] {
            assert!(!cache.store(&digest, &job, &outcome, elapsed, &result));
        }
        assert!(cache.load(&digest, &job).is_none());
    }
}
