//! Injectable filesystem layer for the durable experiment engine.
//!
//! Every file operation the cache ([`crate::cache`]), the job journal
//! ([`crate::journal`]) and the run reports ([`crate::bench_report`])
//! perform is routed through the [`Vfs`] trait. Production code uses
//! [`RealVfs`] — a thin passthrough to `std::fs` — while tests use
//! [`FaultyVfs`] to inject the failures a long campaign actually meets:
//! disk-full (`ENOSPC`), short/torn writes, rename failure, and a
//! "power cut after N operations" mode that kills every subsequent
//! mutation mid-flight. The durability tests drive the whole engine
//! through a `FaultyVfs` and assert that every scenario ends in
//! *recover or quarantine*, never a panic and never silently corrupt
//! served data.
//!
//! The trait is deliberately tiny: whole-file read, atomic-publish
//! sized writes, appends, rename, remove, directory listing/creation,
//! and directory fsync. Nothing here buffers — callers hand over
//! complete byte slices, which is what makes torn-write injection
//! meaningful (the backend decides how many bytes "reached the disk").

use std::fmt::Debug;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Filesystem operations used by the cache, journal, and report layers.
///
/// All mutating methods are durability-annotated: `write_file` syncs
/// file contents before returning, `append` syncs only when asked, and
/// [`Vfs::sync_dir`] makes a preceding `rename` survive power loss on
/// platforms where directory fsync is meaningful (see the method docs).
pub trait Vfs: Send + Sync + Debug {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates (truncating) `path`, writes `bytes`, and fsyncs the file.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Appends `bytes` to `path` (creating it if absent); fsyncs the
    /// file when `sync` is true.
    fn append(&self, path: &Path, bytes: &[u8], sync: bool) -> io::Result<()>;

    /// Renames `from` to `to` (atomic within one directory on POSIX).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Creates a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Lists the entries of a directory (file names resolved to full
    /// paths, order unspecified).
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;

    /// Fsyncs a *directory*, making completed renames inside it
    /// durable across power loss.
    ///
    /// Platform caveat: on Linux this opens the directory and calls
    /// `fsync` on it, which is the documented way to persist a rename.
    /// On platforms where directories cannot be opened or synced
    /// (e.g. Windows), implementations should degrade to a no-op — the
    /// rename is still atomic against process crashes, just not
    /// guaranteed against power loss. See DESIGN.md §10.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;

    /// True when `path` exists (any file type).
    fn exists(&self, path: &Path) -> bool;
}

/// The production backend: a stateless passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

/// Shared handle on the production backend.
pub fn real() -> Arc<dyn Vfs> {
    Arc::new(RealVfs)
}

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn append(&self, path: &Path, bytes: &[u8], sync: bool) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(bytes)?;
        if sync {
            f.sync_all()?;
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        fs::read_dir(path)?
            .map(|entry| entry.map(|e| e.path()))
            .collect()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it persists the
        // rename that published an entry inside it (Linux semantics).
        // Platforms that refuse to open directories degrade to a no-op:
        // atomicity against crashes still holds, power-loss durability
        // is best-effort there.
        match fs::File::open(path) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// What the [`FaultyVfs`] test backend should break.
///
/// All faults default to off; a default plan makes `FaultyVfs` behave
/// exactly like [`RealVfs`].
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    /// Every write/append fails with `ENOSPC`-style errors (no bytes
    /// reach the disk).
    pub fail_writes: bool,
    /// Writes and appends land only their first `n` bytes, then fail —
    /// a short/torn write.
    pub torn_write_bytes: Option<usize>,
    /// Every rename fails (the publish step of an atomic write).
    pub fail_rename: bool,
    /// Directory fsync fails.
    pub fail_sync_dir: bool,
    /// After this many further mutating operations, the "machine loses
    /// power": the operation that crosses the budget lands only half
    /// its bytes (for writes/appends) or nothing (for other
    /// mutations), and every later mutation fails until
    /// [`FaultyVfs::revive`]. Reads keep working — they model
    /// inspecting the disk after reboot.
    pub power_cut_after_ops: Option<u64>,
}

/// Test backend: a [`RealVfs`] over a real directory, with injected
/// faults controlled by a [`FaultPlan`]. Shared freely (`Arc`) — the
/// plan can be swapped mid-test with [`FaultyVfs::set_plan`] to break
/// the disk at a chosen moment.
#[derive(Debug)]
pub struct FaultyVfs {
    inner: RealVfs,
    plan: Mutex<FaultPlan>,
    /// Mutating operations performed so far (for power-cut budgets).
    ops: AtomicU64,
    /// Set once the power-cut budget is exhausted.
    dead: AtomicU64,
}

impl Default for FaultyVfs {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultyVfs {
    /// A fault-free instance (behaves like [`RealVfs`]).
    pub fn new() -> Self {
        FaultyVfs {
            inner: RealVfs,
            plan: Mutex::new(FaultPlan::default()),
            ops: AtomicU64::new(0),
            dead: AtomicU64::new(0),
        }
    }

    /// Installs a new fault plan (replacing the previous one). The
    /// operation counter restarts so a `power_cut_after_ops` budget is
    /// measured from this moment, not from instance creation.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock().unwrap() = plan;
        self.ops.store(0, Ordering::SeqCst);
    }

    /// Mutating operations performed so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// True once a power cut has been simulated.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst) != 0
    }

    /// "Reboots the machine": clears the power-cut state and the fault
    /// plan so subsequent operations succeed again.
    pub fn revive(&self) {
        self.dead.store(0, Ordering::SeqCst);
        self.ops.store(0, Ordering::SeqCst);
        *self.plan.lock().unwrap() = FaultPlan::default();
    }

    fn enospc() -> io::Error {
        io::Error::new(
            io::ErrorKind::Other,
            "injected fault: no space left on device",
        )
    }

    fn power_cut() -> io::Error {
        io::Error::new(io::ErrorKind::Other, "injected fault: power cut")
    }

    /// Charges one mutating operation against the power-cut budget.
    /// Returns `Err` when the machine is already dead, `Ok(true)` when
    /// this very operation is the one the power cut interrupts, and
    /// `Ok(false)` for a healthy operation.
    fn charge_op(&self) -> io::Result<bool> {
        if self.is_dead() {
            return Err(Self::power_cut());
        }
        let budget = self.plan.lock().unwrap().power_cut_after_ops;
        let Some(budget) = budget else {
            self.ops.fetch_add(1, Ordering::SeqCst);
            return Ok(false);
        };
        let n = self.ops.fetch_add(1, Ordering::SeqCst);
        if n >= budget {
            self.dead.store(1, Ordering::SeqCst);
            return Ok(true);
        }
        Ok(false)
    }
}

impl Vfs for FaultyVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        // Reads survive the power cut: they model post-reboot recovery.
        self.inner.read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let cut = self.charge_op()?;
        let plan = self.plan.lock().unwrap().clone();
        if plan.fail_writes {
            return Err(Self::enospc());
        }
        let torn = if cut {
            Some(bytes.len() / 2)
        } else {
            plan.torn_write_bytes.filter(|&n| n < bytes.len())
        };
        if let Some(n) = torn {
            // The torn prefix really lands on disk — that's the point.
            self.inner.write_file(path, &bytes[..n])?;
            return Err(if cut {
                Self::power_cut()
            } else {
                Self::enospc()
            });
        }
        self.inner.write_file(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8], sync: bool) -> io::Result<()> {
        let cut = self.charge_op()?;
        let plan = self.plan.lock().unwrap().clone();
        if plan.fail_writes {
            return Err(Self::enospc());
        }
        let torn = if cut {
            Some(bytes.len() / 2)
        } else {
            plan.torn_write_bytes.filter(|&n| n < bytes.len())
        };
        if let Some(n) = torn {
            self.inner.append(path, &bytes[..n], false)?;
            return Err(if cut {
                Self::power_cut()
            } else {
                Self::enospc()
            });
        }
        self.inner.append(path, bytes, sync)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.charge_op()? {
            return Err(Self::power_cut());
        }
        if self.plan.lock().unwrap().fail_rename {
            return Err(io::Error::new(
                io::ErrorKind::Other,
                "injected fault: rename failed",
            ));
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if self.charge_op()? {
            return Err(Self::power_cut());
        }
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        if self.charge_op()? {
            return Err(Self::power_cut());
        }
        self.inner.create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list_dir(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        if self.charge_op()? {
            return Err(Self::power_cut());
        }
        if self.plan.lock().unwrap().fail_sync_dir {
            return Err(io::Error::new(
                io::ErrorKind::Other,
                "injected fault: directory fsync failed",
            ));
        }
        self.inner.sync_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

/// Convenience for tests and tools: reads a file as UTF-8 (lossy).
pub fn read_to_string_lossy(vfs: &dyn Vfs, path: &Path) -> io::Result<String> {
    Ok(String::from_utf8_lossy(&vfs.read(path)?).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("prf_vfs_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_vfs_round_trips_and_lists() {
        let dir = temp_dir("real");
        let vfs = RealVfs;
        let path = dir.join("a.txt");
        vfs.write_file(&path, b"hello").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"hello");
        vfs.append(&path, b" world", true).unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"hello world");
        let renamed = dir.join("b.txt");
        vfs.rename(&path, &renamed).unwrap();
        assert!(vfs.exists(&renamed) && !vfs.exists(&path));
        vfs.sync_dir(&dir).unwrap();
        let listing = vfs.list_dir(&dir).unwrap();
        assert_eq!(listing, vec![renamed.clone()]);
        vfs.remove_file(&renamed).unwrap();
        assert!(vfs.list_dir(&dir).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_vfs_injects_enospc_and_torn_writes() {
        let dir = temp_dir("faulty");
        let vfs = FaultyVfs::new();
        let path = dir.join("x.bin");
        vfs.write_file(&path, b"fine").unwrap();

        vfs.set_plan(FaultPlan {
            fail_writes: true,
            ..FaultPlan::default()
        });
        assert!(vfs.write_file(&path, b"nope").is_err());
        assert_eq!(
            vfs.read(&path).unwrap(),
            b"fine",
            "failed write left no bytes"
        );

        vfs.set_plan(FaultPlan {
            torn_write_bytes: Some(2),
            ..FaultPlan::default()
        });
        assert!(vfs.write_file(&path, b"longer").is_err());
        assert_eq!(vfs.read(&path).unwrap(), b"lo", "torn prefix must land");

        vfs.revive();
        vfs.write_file(&path, b"healed").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"healed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn power_cut_kills_mutations_but_not_reads() {
        let dir = temp_dir("powercut");
        let vfs = FaultyVfs::new();
        let path = dir.join("wal");
        vfs.append(&path, b"AAAA", true).unwrap();
        vfs.set_plan(FaultPlan {
            power_cut_after_ops: Some(1),
            ..FaultPlan::default()
        });
        vfs.append(&path, b"BBBB", true).unwrap(); // within budget
        let torn = vfs.append(&path, b"CCCC", true); // the cut: half lands
        assert!(torn.is_err());
        assert!(vfs.is_dead());
        assert_eq!(vfs.read(&path).unwrap(), b"AAAABBBBCC");
        assert!(
            vfs.append(&path, b"DDDD", true).is_err(),
            "dead disk stays dead"
        );
        assert!(vfs.rename(&path, &dir.join("moved")).is_err());
        // Post-reboot inspection still works.
        assert_eq!(vfs.read(&path).unwrap(), b"AAAABBBBCC");
        vfs.revive();
        vfs.append(&path, b"EEEE", true).unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"AAAABBBBCCEEEE");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rename_failure_is_injectable() {
        let dir = temp_dir("rename");
        let vfs = FaultyVfs::new();
        let a = dir.join("a");
        vfs.write_file(&a, b"x").unwrap();
        vfs.set_plan(FaultPlan {
            fail_rename: true,
            ..FaultPlan::default()
        });
        assert!(vfs.rename(&a, &dir.join("b")).is_err());
        assert!(vfs.exists(&a), "failed rename must leave the source");
        let _ = fs::remove_dir_all(&dir);
    }
}
