//! # prf-bench — the experiment harness
//!
//! Shared plumbing for the per-figure/table binaries that regenerate the
//! paper's evaluation. Each binary prints the paper's reported numbers
//! next to the measured ones; `EXPERIMENTS.md` records a snapshot.
//!
//! Binaries (run with `cargo run --release -p prf-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig01_fo4_delay` | Fig. 1 — FO4 chain delay vs Vdd |
//! | `fig02_access_skew` | Fig. 2 — top-3/4/5 register access share |
//! | `table1_benchmarks` | Table I — benchmark shapes + pilot % |
//! | `fig04_profiling` | Fig. 4 — compiler/pilot/hybrid/optimal coverage |
//! | `table3_sram_cells` | Table III — 8T SRAM cell characteristics |
//! | `table4_rf_energy` | Table IV — RF energy/leakage/area + CAM |
//! | `fig10_access_distribution` | Fig. 10 — FRF/SRF access split |
//! | `fig11_energy_savings` | Fig. 11 — dynamic + leakage energy savings |
//! | `fig12_performance` | Fig. 12 — execution-time overheads |
//! | `fig13_rfc_scaling` | Fig. 13 — RFC vs partitioned RF scaling |
//! | `sens_srf_latency` | §V-C — SRF 3/4/5-cycle sensitivity |
//! | `sens_epoch` | §V-C — epoch-length sensitivity |
//! | `yield_mc` | §IV-A — SRAM Monte Carlo yield study |

pub mod bench_report;
pub mod cache;
pub mod chrometrace;
pub mod digest;
pub mod journal;
pub mod json;
pub mod report;
pub mod runner;
pub mod serve;
pub mod vfs;

pub use bench_report::RunReport;

use std::ops::Deref;
use std::sync::OnceLock;

use prf_core::{run_experiment_with_faults, ExperimentResult, FaultConfig, RepairPolicy, RfKind};
use prf_finfet::{FaultGeometry, FaultMap, SramCell};
use prf_sim::{GpuConfig, SamplingConfig, SchedulerPolicy};
use prf_workloads::Workload;

use crate::runner::{Job, RetryPolicy};

/// True when the binary was invoked with `--audit`: opts every simulation
/// into the conservation-invariant audit harness (`prf_sim::audit`). The
/// audited counters land in each [`ExperimentResult`] and the matrix
/// footer reports how many jobs were audited and how many violations
/// surfaced (none, unless someone broke the accounting chain).
pub fn audit_from_args() -> bool {
    std::env::args().any(|a| a == "--audit")
}

/// The sampled-telemetry window requested via `--sample <cycles>` (or
/// `--sample=<cycles>`), falling back to the `PRF_SAMPLE_WINDOW`
/// environment variable. `None` — the default — disables sampling, which
/// keeps simulation output bit-identical to builds predating telemetry.
///
/// # Panics
///
/// Panics when a window is present but not a positive integer.
pub fn sampling_from_args() -> Option<SamplingConfig> {
    fn parse(source: &str, v: &str) -> SamplingConfig {
        match v.trim().parse::<u64>() {
            Ok(w) if w >= 1 => SamplingConfig::every(w),
            _ => panic!("{source}: sampling window `{v}` is not a positive cycle count"),
        }
    }
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--sample" {
            let v = args
                .next()
                .unwrap_or_else(|| panic!("--sample needs a window argument (cycles)"));
            return Some(parse("--sample", &v));
        }
        if let Some(v) = arg.strip_prefix("--sample=") {
            return Some(parse("--sample", v));
        }
    }
    std::env::var("PRF_SAMPLE_WINDOW")
        .ok()
        .map(|v| parse("PRF_SAMPLE_WINDOW", &v))
}

/// Parses a `--faults` spec of the form `"<seed>,<vdd>"`, e.g. `"42,0.3"`.
pub fn parse_faults_spec(spec: &str) -> Result<(u64, f64), String> {
    let (seed, vdd) = spec
        .split_once(',')
        .ok_or_else(|| format!("`{spec}`: expected `<seed>,<vdd>` (e.g. `42,0.3`)"))?;
    let seed = seed
        .trim()
        .parse::<u64>()
        .map_err(|e| format!("`{spec}`: bad seed: {e}"))?;
    let vdd = vdd
        .trim()
        .parse::<f64>()
        .map_err(|e| format!("`{spec}`: bad vdd: {e}"))?;
    if !(vdd > 0.0 && vdd < 2.0) {
        return Err(format!(
            "`{spec}`: vdd {vdd} V outside the plausible (0, 2) V range"
        ));
    }
    Ok((seed, vdd))
}

/// Builds the standard fault campaign for the figure binaries: a Monte
/// Carlo fault map over the Kepler RF geometry (8T cells at `vdd`, seeded
/// with `seed`) repaired by spare-row remapping with 4 spares per bank.
pub fn fault_config_for(seed: u64, vdd: f64) -> FaultConfig {
    let map = FaultMap::from_montecarlo(SramCell::T8, vdd, FaultGeometry::kepler_rf(), seed);
    FaultConfig::new(map, RepairPolicy::SpareRow { spares_per_bank: 4 })
}

/// The fault campaign requested on the command line via
/// `--faults <seed>,<vdd>` (or `--faults=<seed>,<vdd>`), if any.
///
/// # Panics
///
/// Panics when the spec is present but malformed.
pub fn faults_from_args() -> Option<FaultConfig> {
    let mut args = std::env::args();
    let spec = loop {
        let arg = args.next()?;
        if arg == "--faults" {
            break args.next().unwrap_or_else(|| {
                panic!("--faults needs a `<seed>,<vdd>` argument (e.g. --faults 42,0.3)")
            });
        }
        if let Some(spec) = arg.strip_prefix("--faults=") {
            break spec.to_string();
        }
    };
    let (seed, vdd) =
        parse_faults_spec(&spec).unwrap_or_else(|e| panic!("--faults spec invalid: {e}"));
    Some(fault_config_for(seed, vdd))
}

/// Cached [`faults_from_args`]: the Monte Carlo fault map is generated
/// once per process and shared (via `Arc`) by every job.
pub fn campaign_faults() -> Option<FaultConfig> {
    static FAULTS: OnceLock<Option<FaultConfig>> = OnceLock::new();
    FAULTS.get_or_init(faults_from_args).clone()
}

/// Number of worker threads for intra-simulation SM parallelism, from the
/// `PRF_SM_THREADS` environment variable. Defaults to 1 (serial stepping).
/// Results are bit-identical at any thread count — this only trades
/// wall-clock for cores on multi-SM configurations (single-SM runs ignore
/// it). Invalid values warn on stderr and fall back to 1, matching the
/// `PRF_THREADS` convention.
pub fn sm_threads_from_env() -> usize {
    if let Ok(v) = std::env::var("PRF_SM_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!("PRF_SM_THREADS={v:?} is not a positive integer; using 1"),
        }
    }
    1
}

/// SM-count override from the `PRF_NUM_SMS` environment variable, if set.
/// The figure binaries default to the paper's single-SM configuration
/// (register-file behaviour is per-SM); overriding lets the perf-smoke CI
/// job and scaling experiments exercise the multi-SM driver on the same
/// binaries without changing their reported defaults. Invalid values warn
/// on stderr and are ignored, matching the `PRF_THREADS` convention.
pub fn num_sms_from_env() -> Option<usize> {
    let v = std::env::var("PRF_NUM_SMS").ok()?;
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => {
            eprintln!("PRF_NUM_SMS={v:?} is not a positive integer; using the config default");
            None
        }
    }
}

/// The single-SM Kepler configuration used by the workload experiments
/// (register-file behaviour is per-SM; see DESIGN.md). Honours the
/// `--audit`, `--sample` (see [`sampling_from_args`]) and `--trace-out`
/// command-line flags — the last turns on the pipeline trace ring so the
/// Chrome-trace exporter has events to render — plus the `PRF_NUM_SMS`
/// and `PRF_SM_THREADS` environment overrides for multi-SM scaling runs.
pub fn experiment_gpu(scheduler: SchedulerPolicy) -> GpuConfig {
    let base = GpuConfig::kepler_single_sm();
    GpuConfig {
        scheduler,
        audit: audit_from_args(),
        sampling: sampling_from_args(),
        trace_capacity: if chrometrace::trace_out_from_args().is_some() {
            65_536
        } else {
            0
        },
        num_sms: num_sms_from_env().unwrap_or(base.num_sms),
        sm_threads: sm_threads_from_env(),
        ..base
    }
}

/// Runs one workload (all its launches) under an RF organisation,
/// honouring the `--faults` command-line flag (see [`campaign_faults`]).
///
/// # Panics
///
/// Panics if the simulation exceeds the cycle safety limit — workloads in
/// this repository are sized to terminate quickly.
pub fn run_workload(w: &Workload, gpu: &GpuConfig, rf: &RfKind) -> ExperimentResult {
    run_experiment_with_faults(
        gpu,
        rf,
        &w.launches,
        &w.mem_init,
        campaign_faults().as_ref(),
    )
    .unwrap_or_else(|e| panic!("{}: {e}", w.name))
}

/// A seed-averaged experiment outcome.
///
/// Derefs to the mean [`ExperimentResult`] so it drops into code written
/// for a single run, and additionally reports the cycle spread across
/// seeds so tables can show run-to-run timing noise.
#[derive(Debug, Clone)]
pub struct AveragedResult {
    /// Mean result: every counter and energy figure is the per-seed mean
    /// (integer counters round down).
    pub result: ExperimentResult,
    /// Fewest cycles any seed took.
    pub cycles_min: u64,
    /// Most cycles any seed took.
    pub cycles_max: u64,
    /// Number of seeds averaged.
    pub seeds: u64,
}

impl AveragedResult {
    /// Max-minus-min cycle spread as a fraction of the mean — a quick
    /// "how noisy was this timing" figure for report footers.
    pub fn cycle_spread(&self) -> f64 {
        (self.cycles_max - self.cycles_min) as f64 / self.result.cycles.max(1) as f64
    }
}

impl Deref for AveragedResult {
    type Target = ExperimentResult;

    fn deref(&self) -> &ExperimentResult {
        &self.result
    }
}

/// Averages per-seed runs of one workload×RF cell into an
/// [`AveragedResult`]. Panics if `results` is empty.
pub fn average_seed_results(results: &[ExperimentResult]) -> AveragedResult {
    assert!(!results.is_empty(), "averaging zero seed results");
    let seeds = results.len() as u64;
    let mut merged = results[0].clone();
    for r in &results[1..] {
        merged.cycles += r.cycles;
        merged.stats.merge(&r.stats);
        merged.telemetry.merge(&r.telemetry);
        merged.dynamic_energy_pj += r.dynamic_energy_pj;
        merged.repair_energy_pj += r.repair_energy_pj;
        merged.baseline_dynamic_energy_pj += r.baseline_dynamic_energy_pj;
        merged.leakage_energy_pj += r.leakage_energy_pj;
        merged.baseline_leakage_energy_pj += r.baseline_leakage_energy_pj;
        // Wall-clock phases are summed, not averaged: the cell genuinely
        // cost this much compute across its seeds.
        merged.phases.merge(&r.phases);
        merged.per_launch.extend(r.per_launch.iter().cloned());
        if let (Some(m), Some(a)) = (merged.audit.as_mut(), r.audit.as_ref()) {
            m.merge(a);
        }
    }
    merged.cycles /= seeds;
    merged.stats.scale_down(seeds);
    merged.telemetry.scale_down(seeds);
    merged.dynamic_energy_pj /= seeds as f64;
    merged.repair_energy_pj /= seeds as f64;
    merged.baseline_dynamic_energy_pj /= seeds as f64;
    merged.leakage_energy_pj /= seeds as f64;
    merged.baseline_leakage_energy_pj /= seeds as f64;
    AveragedResult {
        result: merged,
        cycles_min: results.iter().map(|r| r.cycles).min().unwrap(),
        cycles_max: results.iter().map(|r| r.cycles).max().unwrap(),
        seeds,
    }
}

/// Builds the per-seed job list for one workload×RF cell, for batching
/// many averaged cells into a single [`runner::run_matrix`] call. Every
/// job carries the `--faults` campaign when one was requested (see
/// [`campaign_faults`]).
pub fn seed_jobs(w: &Workload, gpu: &GpuConfig, rf: &RfKind, seeds: u64) -> Vec<Job> {
    assert!(seeds >= 1);
    let faults = campaign_faults();
    (0..seeds)
        .map(|seed| {
            let cfg = GpuConfig {
                jitter_seed: seed,
                ..gpu.clone()
            };
            Job::new(format!("{}/{}/seed{seed}", w.name, rf.name()), w, &cfg, rf)
                .with_faults(faults.clone())
        })
        .collect()
}

/// Runs one workload under an RF organisation with several jitter seeds —
/// the simulation analogue of averaging repeated hardware runs, washing
/// out timing-resonance noise — and returns the per-seed mean of *every*
/// statistic plus the cycle min/max spread. Seeds are fanned out across
/// the worker pool (see [`runner`]).
pub fn run_workload_averaged(
    w: &Workload,
    gpu: &GpuConfig,
    rf: &RfKind,
    seeds: u64,
) -> AveragedResult {
    let results: Vec<ExperimentResult> = runner::run_matrix(&seed_jobs(w, gpu, rf, seeds))
        .into_iter()
        .map(|jr| jr.result)
        .collect();
    average_seed_results(&results)
}

/// One workload×configuration cell of an evaluation matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The workload to run.
    pub workload: Workload,
    /// GPU configuration (scheduler, SM count, pipelining, ...). The
    /// jitter seed is overwritten per seed job.
    pub gpu: GpuConfig,
    /// Register-file organisation under test.
    pub rf: RfKind,
}

impl Cell {
    /// Builds a cell (clones its pieces; kernels are `Arc`-shared).
    pub fn new(workload: &Workload, gpu: &GpuConfig, rf: &RfKind) -> Self {
        Cell {
            workload: workload.clone(),
            gpu: gpu.clone(),
            rf: rf.clone(),
        }
    }
}

/// Runs a whole matrix of cells, each averaged over `seeds` jitter seeds,
/// through one parallel [`runner::run_matrix_timed`] call. Returns the
/// per-cell means in input order plus the wall-clock report for the
/// binary's throughput footer.
///
/// This is the workhorse of the figure binaries: building every cell of a
/// figure up front (rather than running cells one by one) lets the worker
/// pool chew the entire figure concurrently.
pub fn run_cells_averaged(
    cells: &[Cell],
    seeds: u64,
) -> (Vec<AveragedResult>, runner::MatrixReport) {
    assert!(seeds >= 1);
    let jobs: Vec<Job> = cells
        .iter()
        .flat_map(|c| seed_jobs(&c.workload, &c.gpu, &c.rf, seeds))
        .collect();
    let (results, report) = runner::run_matrix_timed(&jobs);
    let mut results = results.into_iter().map(|jr| jr.result);
    let averaged = cells
        .iter()
        .map(|_| {
            let per_seed: Vec<ExperimentResult> = results.by_ref().take(seeds as usize).collect();
            average_seed_results(&per_seed)
        })
        .collect();
    (averaged, report)
}

/// [`run_cells_averaged`] with the observability layer attached: runs the
/// matrix, emits the `BENCH_<bench>.json` run report (per-seed-job
/// outcomes, timings, energy, audit status plus the matrix footer data —
/// see [`bench_report`]), writes a Chrome trace when `--trace-out` was
/// passed, and *then* averages. The simulation results are identical to
/// [`run_cells_averaged`] — reporting only observes.
///
/// The returned [`RunReport`] still accepts metrics/tables; binaries add
/// their figure-specific numbers and call [`RunReport::write`] at the end.
///
/// # Panics
///
/// Like [`run_cells_averaged`], panics (after writing the report, so
/// failures are still on record) when any job fails beyond the retry
/// budget.
pub fn run_cells_reported(
    bench: &str,
    cells: &[Cell],
    seeds: u64,
) -> (Vec<AveragedResult>, runner::MatrixReport, RunReport) {
    assert!(seeds >= 1);
    let jobs: Vec<Job> = cells
        .iter()
        .flat_map(|c| seed_jobs(&c.workload, &c.gpu, &c.rf, seeds))
        .collect();
    let (outcome, report) = runner::run_matrix_resilient_timed(&jobs, RetryPolicy::from_env());

    let mut run_report = RunReport::new(bench);
    for jr in &outcome.reports {
        run_report.add_job(&jr.name, &jr.outcome, jr.elapsed, jr.result.as_ref());
    }
    run_report.set_matrix(&report);

    if let Some(path) = chrometrace::trace_out_from_args() {
        let mut trace = chrometrace::ChromeTrace::new();
        for jr in &outcome.reports {
            trace.add_job(jr);
        }
        if let Err(e) = trace.write(&path) {
            eprintln!("--trace-out: cannot write {}: {e}", path.display());
        }
    }

    if outcome.failed_jobs() > 0 {
        // Persist what we have before re-raising, so a crashed matrix
        // still leaves a diffable record of which jobs died and how.
        run_report.write();
    }
    if outcome.skipped_jobs() > 0 && outcome.failed_jobs() == 0 {
        // A PRF_SHARD run: this process computed (and cached) its slice
        // of the matrix; averaging needs the full set, so persist the
        // partial report and stop here. Merging is a subsequent unsharded
        // run over the shared PRF_CACHE_DIR.
        run_report.write();
        runner::exit_if_shard_run(&outcome, Some(&report));
    }
    let mut results = outcome.expect_complete().into_iter().map(|jr| jr.result);
    let averaged = cells
        .iter()
        .map(|_| {
            let per_seed: Vec<ExperimentResult> = results.by_ref().take(seeds as usize).collect();
            average_seed_results(&per_seed)
        })
        .collect();
    (averaged, report, run_report)
}

/// The observability wrapper for single-run binaries: a [`RunReport`] to
/// fill, plus a Chrome trace fed from each result's pipeline events when
/// `--trace-out` was passed. Call [`SingleRunReporter::finish`] last.
#[derive(Debug)]
pub struct SingleRunReporter {
    /// The accumulating JSON run report (add metrics/tables freely).
    pub report: RunReport,
    trace: Option<(std::path::PathBuf, chrometrace::ChromeTrace)>,
}

impl SingleRunReporter {
    /// Starts reporting for the named bench binary.
    pub fn new(bench: &str) -> Self {
        SingleRunReporter {
            report: RunReport::new(bench),
            trace: chrometrace::trace_out_from_args().map(|p| (p, chrometrace::ChromeTrace::new())),
        }
    }

    /// Records one completed experiment under `name`.
    pub fn add(&mut self, name: &str, result: &ExperimentResult) {
        self.report.add_result(name, result);
        if let Some((_, trace)) = &mut self.trace {
            for launch in &result.per_launch {
                trace.add_sim_events(&launch.trace);
            }
        }
    }

    /// Writes `BENCH_<bench>.json` and, when requested, the Chrome trace.
    pub fn finish(self) {
        self.report.write();
        if let Some((path, trace)) = &self.trace {
            if let Err(e) = trace.write(path) {
                eprintln!("--trace-out: cannot write {}: {e}", path.display());
            }
        }
    }
}

/// Geometric mean of a non-empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Arithmetic mean of a non-empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Prints a standard experiment header.
pub fn header(title: &str, paper_claim: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("paper: {paper_claim}");
    println!("{}", "=".repeat(78));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_rejects_empty() {
        geomean(&[]);
    }

    #[test]
    fn faults_spec_round_trips() {
        assert_eq!(parse_faults_spec("42,0.3"), Ok((42, 0.3)));
        assert_eq!(parse_faults_spec(" 7 , 0.55 "), Ok((7, 0.55)));
        assert!(parse_faults_spec("42").is_err(), "missing vdd");
        assert!(parse_faults_spec("x,0.3").is_err(), "bad seed");
        assert!(parse_faults_spec("42,volts").is_err(), "bad vdd");
        assert!(parse_faults_spec("42,-0.3").is_err(), "negative vdd");
        assert!(parse_faults_spec("42,9.0").is_err(), "implausible vdd");
    }

    #[test]
    fn fault_config_builds_the_kepler_campaign() {
        let cfg = fault_config_for(42, 0.3);
        // NTV 8T arrays have real fault rows; the map is deterministic in
        // the seed, so two builds agree exactly.
        assert!(!cfg.map.is_fault_free(), "NTV map should carry faults");
        assert_eq!(cfg.map.to_text(), fault_config_for(42, 0.3).map.to_text());
    }
}
