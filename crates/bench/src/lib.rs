//! # prf-bench — the experiment harness
//!
//! Shared plumbing for the per-figure/table binaries that regenerate the
//! paper's evaluation. Each binary prints the paper's reported numbers
//! next to the measured ones; `EXPERIMENTS.md` records a snapshot.
//!
//! Binaries (run with `cargo run --release -p prf-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig01_fo4_delay` | Fig. 1 — FO4 chain delay vs Vdd |
//! | `fig02_access_skew` | Fig. 2 — top-3/4/5 register access share |
//! | `table1_benchmarks` | Table I — benchmark shapes + pilot % |
//! | `fig04_profiling` | Fig. 4 — compiler/pilot/hybrid/optimal coverage |
//! | `table3_sram_cells` | Table III — 8T SRAM cell characteristics |
//! | `table4_rf_energy` | Table IV — RF energy/leakage/area + CAM |
//! | `fig10_access_distribution` | Fig. 10 — FRF/SRF access split |
//! | `fig11_energy_savings` | Fig. 11 — dynamic + leakage energy savings |
//! | `fig12_performance` | Fig. 12 — execution-time overheads |
//! | `fig13_rfc_scaling` | Fig. 13 — RFC vs partitioned RF scaling |
//! | `sens_srf_latency` | §V-C — SRF 3/4/5-cycle sensitivity |
//! | `sens_epoch` | §V-C — epoch-length sensitivity |
//! | `yield_mc` | §IV-A — SRAM Monte Carlo yield study |

pub mod report;

use prf_core::{run_experiment, ExperimentResult, RfKind};
use prf_sim::{GpuConfig, SchedulerPolicy};
use prf_workloads::Workload;

/// The single-SM Kepler configuration used by the workload experiments
/// (register-file behaviour is per-SM; see DESIGN.md).
pub fn experiment_gpu(scheduler: SchedulerPolicy) -> GpuConfig {
    GpuConfig { scheduler, ..GpuConfig::kepler_single_sm() }
}

/// Runs one workload (all its launches) under an RF organisation.
///
/// # Panics
///
/// Panics if the simulation exceeds the cycle safety limit — workloads in
/// this repository are sized to terminate quickly.
pub fn run_workload(w: &Workload, gpu: &GpuConfig, rf: &RfKind) -> ExperimentResult {
    run_experiment(gpu, rf, &w.launches, &w.mem_init)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name))
}

/// Runs one workload under an RF organisation with several jitter seeds
/// and returns the mean cycle count — the simulation analogue of
/// averaging repeated hardware runs, washing out timing-resonance noise.
/// Other statistics (access counts, energy) are seed-independent up to
/// noise; the first seed's result is returned with its cycle count
/// replaced by the mean.
pub fn run_workload_averaged(
    w: &Workload,
    gpu: &GpuConfig,
    rf: &RfKind,
    seeds: u64,
) -> ExperimentResult {
    assert!(seeds >= 1);
    let mut first: Option<ExperimentResult> = None;
    let mut total_cycles = 0u64;
    for seed in 0..seeds {
        let cfg = GpuConfig { jitter_seed: seed, ..gpu.clone() };
        let r = run_workload(w, &cfg, rf);
        total_cycles += r.cycles;
        if first.is_none() {
            first = Some(r);
        }
    }
    let mut r = first.expect("at least one seed");
    r.cycles = total_cycles / seeds;
    r
}

/// Geometric mean of a non-empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Arithmetic mean of a non-empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Prints a standard experiment header.
pub fn header(title: &str, paper_claim: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("paper: {paper_claim}");
    println!("{}", "=".repeat(78));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_rejects_empty() {
        geomean(&[]);
    }
}
