//! Property tests for the zero-dependency JSON layer: arbitrary
//! documents — including strings full of non-BMP code points, which the
//! writer must escape as UTF-16 surrogate pairs — survive a round trip
//! through the writer and the crate's own parser bit-for-bit.
//!
//! The vendored proptest subset has no `prop_recursive` or string
//! strategy, so document and string strategies are hand-rolled on its
//! [`Strategy`] trait.

use prf_bench::json::Json;
use proptest::prelude::*;
use proptest::TestRng;

/// A double from the full bit domain, with the handful of non-finite
/// patterns mapped to an ordinary value (the writer encodes non-finite
/// as `null` by design, which is lossy on purpose).
fn finite_f64(rng: &mut TestRng) -> f64 {
    let n = f64::from_bits(rng.next_u64());
    if n.is_finite() {
        n
    } else {
        0.5
    }
}

/// A string over the whole scalar-value range: ASCII, control bytes,
/// BMP text, and astral-plane characters (≳94% of draws land above
/// U+FFFF, so surrogate-pair escaping is exercised constantly).
fn arb_string(rng: &mut TestRng) -> String {
    let len = (rng.next_u64() % 12) as usize;
    (0..len)
        .map(|_| {
            let code = (rng.next_u64() % 0x11_0000) as u32;
            // Surrogate code points are not scalar values; remap them.
            char::from_u32(code).unwrap_or('\u{FFFD}')
        })
        .collect()
}

fn sample_json(rng: &mut TestRng, depth: u32) -> Json {
    let kinds = if depth == 0 { 4 } else { 6 };
    match rng.next_u64() % kinds {
        0 => Json::Null,
        1 => Json::Bool(rng.next_u64() & 1 == 1),
        2 => Json::Num(finite_f64(rng)),
        3 => Json::Str(arb_string(rng)),
        4 => Json::Arr(
            (0..rng.next_u64() % 5)
                .map(|_| sample_json(rng, depth - 1))
                .collect(),
        ),
        _ => Json::Obj(
            (0..rng.next_u64() % 5)
                .map(|_| (arb_string(rng), sample_json(rng, depth - 1)))
                .collect(),
        ),
    }
}

/// Strategy over arbitrary JSON documents up to 3 levels deep.
#[derive(Debug, Clone)]
struct JsonStrategy;

impl Strategy for JsonStrategy {
    type Value = Json;

    fn sample(&self, rng: &mut TestRng) -> Json {
        sample_json(rng, 3)
    }
}

/// Strategy over arbitrary strings (see [`arb_string`]).
#[derive(Debug, Clone)]
struct StringStrategy;

impl Strategy for StringStrategy {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        arb_string(rng)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn documents_round_trip_through_own_parser(doc in JsonStrategy) {
        let text = doc.to_json();
        let back = Json::parse(&text)
            .unwrap_or_else(|e| panic!("own output must reparse: {e} in {text:?}"));
        prop_assert_eq!(&doc, &back);
        // And the re-encode is byte-identical — the writer is
        // deterministic, so cached reports diff cleanly.
        prop_assert_eq!(text, back.to_json());
    }

    #[test]
    fn strings_round_trip_including_astral_plane(s in StringStrategy) {
        let text = Json::Str(s.clone()).to_json();
        prop_assert!(text.is_ascii(), "writer must emit pure ASCII: {text:?}");
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(back, Json::Str(s));
    }

    #[test]
    fn finite_numbers_round_trip_exactly(bits in any::<u64>()) {
        let n = f64::from_bits(bits);
        if !n.is_finite() {
            return;
        }
        let text = Json::Num(n).to_json();
        let back = Json::parse(&text).unwrap();
        // Bit-exact, not approximately equal: shortest-round-trip
        // Display plus strtod-style parse recovers the same double.
        prop_assert_eq!(back.as_f64().unwrap().to_bits(), n.to_bits());
    }
}
