//! Fault-injection smoke test for CI: a small matrix with injected
//! faults, a deliberately rejected job, and a deliberately hanging job
//! must come back as partial results — a [`JobOutcome`] for every job, no
//! lost healthy results, and a clean conservation audit on the faulted
//! runs.

use std::time::Duration;

use prf_bench::runner::{run_matrix_resilient_with_threads, Job, JobOutcome, RetryPolicy};
use prf_bench::{experiment_gpu, fault_config_for};
use prf_core::RfKind;
use prf_finfet::NTV;
use prf_sim::{GpuConfig, SchedulerPolicy};

/// An audited NTV job carrying the standard fault campaign.
fn faulted_job(name: &str, seed: u64) -> Job {
    let w = prf_workloads::suite::bfs();
    let gpu = GpuConfig {
        jitter_seed: seed,
        audit: true,
        ..experiment_gpu(SchedulerPolicy::Gto)
    };
    Job::new(name, &w, &gpu, &RfKind::MrfNtv { latency: 3 })
        .with_faults(Some(fault_config_for(42, NTV)))
}

#[test]
fn crashing_matrix_returns_partial_results_with_clean_audits() {
    let mut jobs = vec![
        faulted_job("healthy-a", 0),
        faulted_job("doomed", 1),
        faulted_job("healthy-b", 2),
    ];
    // An impossible cycle limit forces a deterministic SimError, which
    // the engine classifies as a fail-fast rejection.
    jobs[1].gpu.max_cycles = 1;

    let outcome = run_matrix_resilient_with_threads(&jobs, RetryPolicy::none(), 3);
    assert_eq!(
        outcome.reports.len(),
        jobs.len(),
        "an outcome for every job"
    );

    for (i, name) in ["healthy-a", "healthy-b"]
        .iter()
        .zip([0usize, 2])
        .map(|(n, i)| (i, n))
    {
        let report = &outcome.reports[i];
        assert_eq!(&report.name, name);
        assert_eq!(report.outcome, JobOutcome::Completed);
        let result = report
            .result
            .as_ref()
            .expect("healthy job keeps its result");
        let audit = result.audit.as_ref().expect("audit was enabled");
        assert!(audit.is_clean(), "{audit}");
        assert!(
            result.telemetry.total_fault_repairs() > 0,
            "the NTV fault map must trip repairs"
        );
        assert!(result.repair_energy_pj > 0.0);
    }

    let doomed = &outcome.reports[1];
    assert!(
        matches!(&doomed.outcome, JobOutcome::Rejected { reason } if reason.contains("cycle")),
        "doomed job must report its rejection: {}",
        doomed.outcome
    );
    assert!(doomed.result.is_none());
    assert_eq!(outcome.failed_jobs(), 1);
    assert!(outcome.failure_manifest().contains("job #1 `doomed`"));
}

#[test]
fn hanging_job_times_out_without_taking_the_matrix_down() {
    // A 1 ms watchdog budget: the BFS simulation cannot finish that fast,
    // so the job is reported TimedOut — while a zero-job matrix of
    // neighbours would still drain. (Retries would just time out again;
    // keep the test quick with none.)
    let jobs = vec![faulted_job("too-slow", 0)];
    let policy = RetryPolicy {
        timeout: Some(Duration::from_millis(1)),
        retries: 0,
        backoff: Duration::ZERO,
    };
    let outcome = run_matrix_resilient_with_threads(&jobs, policy, 1);
    assert_eq!(outcome.reports.len(), 1);
    assert_eq!(
        outcome.reports[0].outcome,
        JobOutcome::TimedOut {
            timeout: Duration::from_millis(1)
        }
    );
    assert!(outcome.reports[0].result.is_none());
    assert_eq!(outcome.failed_jobs(), 1);
}

#[test]
fn faulted_matrix_is_deterministic_across_thread_counts() {
    let jobs: Vec<Job> = (0..3).map(|s| faulted_job("det", s)).collect();
    let serial = run_matrix_resilient_with_threads(&jobs, RetryPolicy::none(), 1);
    let parallel = run_matrix_resilient_with_threads(&jobs, RetryPolicy::none(), 3);
    for (a, b) in serial.reports.iter().zip(&parallel.reports) {
        let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        assert_eq!(ra.cycles, rb.cycles);
        assert_eq!(ra.dynamic_energy_pj, rb.dynamic_energy_pj);
        assert_eq!(ra.repair_energy_pj, rb.repair_energy_pj);
        assert_eq!(
            ra.telemetry.total_fault_repairs(),
            rb.telemetry.total_fault_repairs()
        );
    }
}
