//! The load-bearing guarantee of the parallel experiment engine: fanning
//! the evaluation matrix across threads changes *when* each simulation
//! runs, never what it computes. A serial sweep and a 4-worker sweep of
//! the same matrix must agree bit-for-bit on every statistic a figure
//! binary reads.

use prf_bench::runner::{run_matrix_with_threads, Job};
use prf_bench::{experiment_gpu, run_workload_averaged};
use prf_core::{PartitionedRfConfig, RfKind, RfcConfig};
use prf_sim::SchedulerPolicy;

/// 3 workloads (one per Table I category) × 3 RF organisations, each with
/// its own jitter seed — the shape of a real figure matrix.
fn matrix() -> Vec<Job> {
    let mut gpu = experiment_gpu(SchedulerPolicy::Gto);
    // Audited runs: the audit counters must be as deterministic as every
    // other statistic, and the matrix itself must run clean.
    gpu.audit = true;
    let kinds = [
        RfKind::MrfStv,
        RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks)),
        RfKind::Rfc(RfcConfig::paper_default(
            gpu.num_rf_banks,
            gpu.max_warps_per_sm,
        )),
    ];
    ["BFS", "MUM", "LIB"]
        .iter()
        .flat_map(|name| {
            let w = prf_workloads::by_name(name).unwrap();
            kinds
                .iter()
                .enumerate()
                .map(|(i, rf)| {
                    let mut gpu = gpu.clone();
                    gpu.jitter_seed = i as u64;
                    Job::labeled(&w, &gpu, rf)
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn parallel_matrix_is_bit_identical_to_serial() {
    let jobs = matrix();
    let serial = run_matrix_with_threads(&jobs, 1);
    let parallel = run_matrix_with_threads(&jobs, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.name, p.name, "results must come back in input order");
        let (a, b) = (&s.result, &p.result);
        assert_eq!(a.cycles, b.cycles, "{}: cycles differ", s.name);
        assert_eq!(
            a.dynamic_energy_pj, b.dynamic_energy_pj,
            "{}: dynamic energy differs",
            s.name
        );
        assert_eq!(
            a.stats.partition_accesses, b.stats.partition_accesses,
            "{}: partition access counts differ",
            s.name
        );
        assert_eq!(a.stats.instructions, b.stats.instructions);
        assert_eq!(a.telemetry, b.telemetry, "{}: telemetry differs", s.name);
        let audit = a.audit.as_ref().expect("audit enabled");
        assert!(audit.is_clean(), "{}: {audit}", s.name);
        assert_eq!(a.audit, b.audit, "{}: audit counters differ", s.name);
    }
}

#[test]
fn seed_averaging_is_thread_count_independent() {
    let gpu = experiment_gpu(SchedulerPolicy::Gto);
    let w = prf_workloads::by_name("BFS").unwrap();
    let rf = RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks));
    // run_workload_averaged reads PRF_THREADS through the runner; pin the
    // pool size per call by setting the env var around each sweep.
    // (Env mutation is safe here: Rust tests in one binary share a
    // process, but this test file has no other env users.)
    std::env::set_var("PRF_THREADS", "1");
    let serial = run_workload_averaged(&w, &gpu, &rf, 3);
    std::env::set_var("PRF_THREADS", "4");
    let parallel = run_workload_averaged(&w, &gpu, &rf, 3);
    std::env::remove_var("PRF_THREADS");
    assert_eq!(serial.cycles, parallel.cycles);
    assert_eq!(serial.cycles_min, parallel.cycles_min);
    assert_eq!(serial.cycles_max, parallel.cycles_max);
    assert_eq!(serial.dynamic_energy_pj, parallel.dynamic_energy_pj);
    assert_eq!(
        serial.stats.partition_accesses,
        parallel.stats.partition_accesses
    );
}
