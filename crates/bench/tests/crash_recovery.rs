//! End-to-end crash-recovery tests (ISSUE 9): a server that dies after
//! accepting a batch — simulated by a journal holding a `Submit` with
//! no `BatchDone` — must, on restart against the same journal and cache
//! directories, complete the batch with results bit-identical to an
//! uninterrupted run. Plus the injected-fault scenarios: ENOSPC during
//! cache stores degrades to recompute-and-count, and a power cut
//! mid-store leaves only a `.tmp` corpse that the next open sweeps.
//!
//! (The SIGKILL variant of the first scenario — an actual `prf-serve`
//! process killed mid-batch — runs in CI as `crash-recovery-smoke`.)

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use prf_bench::cache::ResultCache;
use prf_bench::journal::{Journal, Record};
use prf_bench::json::Json;
use prf_bench::runner::{run_matrix_resilient_configured, RetryPolicy};
use prf_bench::serve::{job_from_spec, serve, serve_with_journal, ServeConfig};
use prf_bench::vfs::{self, FaultPlan, FaultyVfs, Vfs};

fn unique_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "prf_crashrec_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(workload: &str, rf: &str, seed: u64) -> Json {
    Json::obj()
        .field("workload", workload)
        .field("rf", rf)
        .field("seed", seed)
        .field("audit", true)
}

fn config() -> ServeConfig {
    ServeConfig {
        threads: 2,
        policy: RetryPolicy::none(),
        max_inflight: 4,
    }
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &Json) -> Json {
    let mut line = req.to_json();
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    Json::parse(&response).unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
}

/// Polls `batch` to `done` and fetches its report.
fn fetch_done(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, batch: u64) -> Json {
    loop {
        let poll = roundtrip(
            stream,
            reader,
            &Json::obj().field("op", "poll").field("batch", batch),
        );
        assert_eq!(poll.get("ok").unwrap().as_bool(), Some(true), "{poll:?}");
        if poll.get("state").unwrap().as_str() == Some("done") {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let resp = roundtrip(
        stream,
        reader,
        &Json::obj().field("op", "fetch").field("batch", batch),
    );
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp:?}");
    resp.get("report").unwrap().clone()
}

/// Masks the per-run provenance a recovered report may legitimately
/// differ in: whether each job was a cache hit (`cached`, plus the
/// report's `cache_hits` tally) and wall-clock phase timings. Cycles,
/// energy, audit status — the simulation results — must be identical.
fn deterministic_report(report: &Json) -> String {
    fn mask(doc: Json) -> Json {
        match doc {
            Json::Obj(fields) => Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| {
                        if k == "cached" || k == "cache_hits" || k == "phases" {
                            (k, Json::Null)
                        } else {
                            (k, mask(v))
                        }
                    })
                    .collect(),
            ),
            Json::Arr(items) => Json::Arr(items.into_iter().map(mask).collect()),
            other => other,
        }
    }
    mask(report.clone()).to_json()
}

#[test]
fn recovered_batch_is_bit_identical_to_an_uninterrupted_run() {
    let specs = vec![
        spec("BFS", "partitioned", 0),
        spec("BFS", "MRF@NTV", 1),
        spec("NW", "RFC", 2),
    ];

    // Reference: an uninterrupted server, no journal, no cache.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn({
        let config = config();
        move || serve(listener, config, None)
    });
    let (mut stream, mut reader) = connect(addr);
    let resp = roundtrip(
        &mut stream,
        &mut reader,
        &Json::obj()
            .field("op", "submit")
            .field("jobs", Json::Arr(specs.clone())),
    );
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp:?}");
    let batch = resp.get("batch").unwrap().as_u64().unwrap();
    let reference = fetch_done(&mut stream, &mut reader, batch);
    let stop = roundtrip(
        &mut stream,
        &mut reader,
        &Json::obj().field("op", "shutdown"),
    );
    assert_eq!(stop.get("ok").unwrap().as_bool(), Some(true));
    server.join().unwrap();
    assert_eq!(reference.get("failed_jobs").unwrap().as_u64(), Some(0));

    // Crash scenario: a journal says batch 0 was accepted and partially
    // started, then the process died. The cache dir is the same one the
    // dead process would have been filling.
    let journal_dir = unique_dir("journal");
    let cache_dir = unique_dir("cache");
    {
        let (mut journal, _) = Journal::open(&journal_dir, vfs::real()).unwrap();
        journal
            .append(&Record::Submit {
                batch: 0,
                jobs: specs.clone(),
            })
            .unwrap();
        journal.append(&Record::Start { batch: 0, job: 0 }).unwrap();
        // No JobDone, no BatchDone: the "crash".
    }

    // Restart: the batch must be re-enqueued under its original id and
    // run to completion with zero failures and clean audits.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let journal = Journal::open(&journal_dir, vfs::real()).unwrap();
    assert_eq!(journal.1.pending.len(), 1);
    let cache = ResultCache::at(&cache_dir);
    let server = std::thread::spawn({
        let config = config();
        move || serve_with_journal(listener, config, Some(cache), Some(journal))
    });
    let (mut stream, mut reader) = connect(addr);
    let status = roundtrip(&mut stream, &mut reader, &Json::obj().field("op", "status"));
    assert_eq!(status.get("recovered_batches").unwrap().as_u64(), Some(1));
    assert_eq!(status.get("durable").unwrap().as_bool(), Some(true));
    let recovered = fetch_done(&mut stream, &mut reader, 0);
    let stop = roundtrip(
        &mut stream,
        &mut reader,
        &Json::obj().field("op", "shutdown"),
    );
    assert_eq!(stop.get("ok").unwrap().as_bool(), Some(true));
    server.join().unwrap();

    assert_eq!(recovered.get("failed_jobs").unwrap().as_u64(), Some(0));
    assert_eq!(
        deterministic_report(&recovered),
        deterministic_report(&reference),
        "recovered results must be bit-identical to the uninterrupted run"
    );
    for job in recovered.get("results").unwrap().as_arr().unwrap() {
        let audit = job.get("result").unwrap().get("audit").unwrap();
        assert_eq!(audit.get("clean").and_then(Json::as_bool), Some(true));
    }

    // With every batch done, the journal compacted: a fresh open finds
    // nothing pending.
    let (_, after) = Journal::open(&journal_dir, vfs::real()).unwrap();
    assert!(after.pending.is_empty(), "{:?}", after.pending);
    let _ = std::fs::remove_dir_all(&journal_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// A second recovery over the same cache is pure warm hits: exactly-once
/// by construction, not by locking.
#[test]
fn double_recovery_replays_through_the_warmed_cache() {
    let specs = vec![spec("BFS", "partitioned", 9)];
    let journal_dir = unique_dir("journal2");
    let cache_dir = unique_dir("cache2");

    for life in 0..2 {
        // Each life finds the same unfinished batch: the journal is
        // rebuilt before each start to simulate dying before BatchDone.
        {
            let (mut journal, _) = Journal::open(&journal_dir, vfs::real()).unwrap();
            if journal.outstanding() == 0 {
                journal
                    .append(&Record::Submit {
                        batch: 0,
                        jobs: specs.clone(),
                    })
                    .unwrap();
            }
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let journal = Journal::open(&journal_dir, vfs::real()).unwrap();
        let cache = ResultCache::at(&cache_dir);
        let server = std::thread::spawn({
            let config = config();
            move || serve_with_journal(listener, config, Some(cache), Some(journal))
        });
        let (mut stream, mut reader) = connect(addr);
        let report = fetch_done(&mut stream, &mut reader, 0);
        assert_eq!(report.get("failed_jobs").unwrap().as_u64(), Some(0));
        if life == 1 {
            assert_eq!(
                report.get("cache_hits").unwrap().as_u64(),
                Some(1),
                "second recovery must be answered from the warmed cache"
            );
        }
        let stop = roundtrip(
            &mut stream,
            &mut reader,
            &Json::obj().field("op", "shutdown"),
        );
        assert_eq!(stop.get("ok").unwrap().as_bool(), Some(true));
        server.join().unwrap();
    }
    let _ = std::fs::remove_dir_all(&journal_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn cache_enospc_degrades_to_recompute_and_is_counted() {
    let dir = unique_dir("enospc");
    let faulty = Arc::new(FaultyVfs::new());
    let cache = ResultCache::open(&dir, faulty.clone() as Arc<dyn Vfs>).unwrap();
    faulty.set_plan(FaultPlan {
        fail_writes: true,
        ..FaultPlan::default()
    });

    let jobs: Vec<_> = (0..2)
        .map(|seed| job_from_spec(&spec("BFS", "partitioned", seed)).unwrap())
        .collect();
    let outcome =
        run_matrix_resilient_configured(&jobs, RetryPolicy::none(), 1, None, Some(&cache));
    for report in &outcome.reports {
        assert!(
            report.result.is_some(),
            "a full disk must not fail the job: {:?}",
            report.outcome
        );
    }
    assert_eq!(cache.write_errors(), 2, "every failed store is counted");
    assert_eq!(cache.quarantined(), 0);

    // Healed disk: the same jobs store and then hit.
    faulty.revive();
    let again = run_matrix_resilient_configured(&jobs, RetryPolicy::none(), 1, None, Some(&cache));
    assert!(again.reports.iter().all(|r| r.cached == Some(false)));
    let warm = run_matrix_resilient_configured(&jobs, RetryPolicy::none(), 1, None, Some(&cache));
    assert!(warm.reports.iter().all(|r| r.cached == Some(true)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn power_cut_mid_store_leaves_only_a_tmp_corpse_that_open_sweeps() {
    let dir = unique_dir("powercut");
    let faulty = Arc::new(FaultyVfs::new());
    let cache = ResultCache::open(&dir, faulty.clone() as Arc<dyn Vfs>).unwrap();
    let job = job_from_spec(&spec("BFS", "partitioned", 4)).unwrap();

    // Power dies on the very next mutating operation: the entry's .tmp
    // write lands half its bytes and the rename never happens.
    faulty.set_plan(FaultPlan {
        power_cut_after_ops: Some(0),
        ..FaultPlan::default()
    });
    let outcome = run_matrix_resilient_configured(
        std::slice::from_ref(&job),
        RetryPolicy::none(),
        1,
        None,
        Some(&cache),
    );
    assert!(
        outcome.reports[0].result.is_some(),
        "the job itself succeeds"
    );
    assert_eq!(cache.write_errors(), 1);
    let tmp_corpses = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
        .count();
    assert_eq!(tmp_corpses, 1, "the torn tmp file is the only residue");

    // "Reboot": a fresh open over the real filesystem sweeps the corpse
    // and the entry is a plain miss that repopulates cleanly.
    let rebooted = ResultCache::at(&dir);
    assert_eq!(rebooted.swept_tmp(), 1);
    let outcome = run_matrix_resilient_configured(
        std::slice::from_ref(&job),
        RetryPolicy::none(),
        1,
        None,
        Some(&rebooted),
    );
    assert_eq!(outcome.reports[0].cached, Some(false));
    assert_eq!(rebooted.quarantined(), 0, "a swept tmp is not a quarantine");
    let warm = run_matrix_resilient_configured(
        std::slice::from_ref(&job),
        RetryPolicy::none(),
        1,
        None,
        Some(&rebooted),
    );
    assert_eq!(warm.reports[0].cached, Some(true));
    let _ = std::fs::remove_dir_all(&dir);
}
