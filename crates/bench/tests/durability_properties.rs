//! Property tests for the durability layer (ISSUE 9): cache entries
//! with any single flipped byte are quarantined — never parsed into a
//! served result — and journal replay tolerates truncation at every
//! byte offset, losing at most the torn tail record.
//!
//! The vendored proptest subset has no byte-string strategy, so flip
//! positions and truncation offsets are drawn as `u64`s and reduced
//! modulo the artefact length.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use prf_bench::cache::ResultCache;
use prf_bench::digest::job_digest;
use prf_bench::journal::{Journal, Record, JOURNAL_FILE, JOURNAL_MAGIC};
use prf_bench::json::Json;
use prf_bench::runner::{run_matrix_resilient_configured, RetryPolicy};
use prf_bench::serve::job_from_spec;
use prf_bench::vfs;
use proptest::prelude::*;

fn unique_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "prf_durability_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn job_spec() -> Json {
    Json::obj()
        .field("workload", "BFS")
        .field("rf", "partitioned")
        .field("seed", 0u64)
        .field("audit", true)
}

/// Runs the reference job exactly once and returns `(digest, entry
/// bytes)` of the cache entry it produces. Every flip case perturbs a
/// copy of these bytes instead of re-simulating.
fn reference_entry() -> &'static (String, Vec<u8>) {
    static ENTRY: OnceLock<(String, Vec<u8>)> = OnceLock::new();
    ENTRY.get_or_init(|| {
        let dir = unique_dir("reference");
        let cache = ResultCache::at(&dir);
        let job = job_from_spec(&job_spec()).unwrap();
        let digest = job_digest(&job);
        let outcome = run_matrix_resilient_configured(
            std::slice::from_ref(&job),
            RetryPolicy::none(),
            1,
            None,
            Some(&cache),
        );
        assert!(
            outcome.reports[0].result.is_some(),
            "reference job must run"
        );
        let bytes = std::fs::read(dir.join(format!("{digest}.json"))).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        (digest, bytes)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single flipped byte — header, body, separator, or checksum
    /// footer — quarantines the entry. It is never served, never
    /// deleted, and never panics the reader.
    #[test]
    fn any_single_byte_flip_is_quarantined_not_served(pos in any::<u64>(), mask in any::<u64>()) {
        let (digest, entry) = reference_entry();
        let mut flipped = entry.clone();
        let pos = (pos % flipped.len() as u64) as usize;
        let mask = 1 + (mask % 255) as u8; // nonzero: the byte really changes
        flipped[pos] ^= mask;

        let dir = unique_dir("flip");
        std::fs::create_dir_all(&dir).unwrap();
        let entry_path = dir.join(format!("{digest}.json"));
        std::fs::write(&entry_path, &flipped).unwrap();
        let cache = ResultCache::at(&dir);
        let job = job_from_spec(&job_spec()).unwrap();

        prop_assert!(
            cache.load(digest, &job).is_none(),
            "flipped byte {pos} (mask {mask:#04x}) must not be served"
        );
        prop_assert_eq!(cache.quarantined(), 1);
        let jailed = cache.quarantine_dir().join(format!("{digest}.json"));
        prop_assert!(jailed.exists(), "quarantined, not deleted");
        prop_assert_eq!(std::fs::read(&jailed).unwrap(), flipped);
        prop_assert!(!entry_path.exists(), "the corrupt entry leaves the cache");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Every prefix of a valid journal recovers without panicking, and
    /// the recovered pending set is exactly what the fully-contained
    /// frame prefix implies — at most the torn tail record is lost.
    #[test]
    fn journal_replay_survives_truncation_at_every_offset(cut in any::<u64>()) {
        let full = reference_journal();
        let cut = (cut % (full.len() as u64 + 1)) as usize;
        let dir = unique_dir("truncate");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(JOURNAL_FILE), &full[..cut]).unwrap();

        let (mut journal, recovery) = Journal::open(&dir, vfs::real()).unwrap();
        if cut < JOURNAL_MAGIC.len() {
            // Not even a full magic: an empty file replays as empty, a
            // partial one is preserved aside as foreign.
            prop_assert!(recovery.pending.is_empty());
            prop_assert_eq!(recovery.quarantined, cut > 0);
        } else {
            let contained = frames_within(&full[JOURNAL_MAGIC.len()..cut]);
            let expect = expected_pending(contained);
            let got: Vec<u64> = recovery.pending.iter().map(|(id, _)| *id).collect();
            prop_assert_eq!(&got, &expect, "cut at {} ({} full frames)", cut, contained);
            prop_assert_eq!(recovery.torn_tail, cut != frame_end(&full, contained));
        }
        // The reopened journal is usable: an append lands and survives
        // the next replay regardless of where the tear was.
        journal.append(&Record::Submit { batch: 77, jobs: vec![job_spec()] }).unwrap();
        drop(journal);
        let (_, again) = Journal::open(&dir, vfs::real()).unwrap();
        prop_assert!(again.pending.iter().any(|(id, _)| *id == 77));
        prop_assert!(!again.torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Strips the wall-clock provenance fields (`elapsed_ns`, phase
/// timings) from a cache entry's body. Everything left — digest,
/// cycles, energy, audit, telemetry — is deterministic and must
/// repopulate bit-identically.
fn deterministic_body(entry: &[u8]) -> Json {
    fn mask(doc: Json) -> Json {
        match doc {
            Json::Obj(fields) => Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| {
                        if k == "elapsed_ns" || k == "phases" {
                            (k, Json::Null)
                        } else {
                            (k, mask(v))
                        }
                    })
                    .collect(),
            ),
            Json::Arr(items) => Json::Arr(items.into_iter().map(mask).collect()),
            other => other,
        }
    }
    let text = std::str::from_utf8(entry).unwrap();
    let body = text.split('\n').next().unwrap();
    mask(Json::parse(body).unwrap())
}

/// Quarantine plus re-run repopulates a bit-identical entry: the
/// corrupt bytes go to `corrupt/`, the slot is a plain miss, and the
/// deterministic simulator rebuilds exactly the original payload (only
/// the wall-clock provenance fields may differ).
#[test]
fn quarantine_and_rerun_repopulates_a_byte_identical_entry() {
    let (digest, entry) = reference_entry();
    let mut flipped = entry.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;

    let dir = unique_dir("repopulate");
    std::fs::create_dir_all(&dir).unwrap();
    let entry_path = dir.join(format!("{digest}.json"));
    std::fs::write(&entry_path, &flipped).unwrap();
    let cache = ResultCache::at(&dir);
    let job = job_from_spec(&job_spec()).unwrap();
    assert!(cache.load(digest, &job).is_none());
    assert_eq!(cache.quarantined(), 1);

    // Re-run through the matrix runner: miss, simulate, store.
    let outcome = run_matrix_resilient_configured(
        std::slice::from_ref(&job),
        RetryPolicy::none(),
        1,
        None,
        Some(&cache),
    );
    assert_eq!(outcome.reports[0].cached, Some(false), "must be a miss");
    let repopulated = std::fs::read(&entry_path).unwrap();
    assert_eq!(
        deterministic_body(&repopulated).to_json(),
        deterministic_body(entry).to_json(),
        "repopulated entry is bit-identical up to wall-clock provenance"
    );
    // And the repopulated entry passes integrity: a warm load serves it.
    assert!(cache.load(digest, &job).is_some());
    // And the quarantined corpse is still there for forensics.
    assert!(cache
        .quarantine_dir()
        .join(format!("{digest}.json"))
        .exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The known record sequence behind [`reference_journal`], as
/// `(submitted batch, completed batch)` effects per record. `None`
/// means the record touches no pending state.
const JOURNAL_SCRIPT: &[Record2] = &[
    Record2::Next,
    Record2::Submit(0),
    Record2::Progress,
    Record2::Progress,
    Record2::Submit(1),
    Record2::Done(0),
    Record2::Submit(2),
];

#[derive(Clone, Copy)]
enum Record2 {
    Next,
    Submit(u64),
    Progress,
    Done(u64),
}

/// Builds (once) a journal holding [`JOURNAL_SCRIPT`] and returns its
/// raw bytes. `Journal::open` itself writes the leading `Next` record.
fn reference_journal() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let dir = unique_dir("journal_build");
        let (mut journal, _) = Journal::open(&dir, vfs::real()).unwrap();
        journal
            .append(&Record::Submit {
                batch: 0,
                jobs: vec![job_spec(), job_spec().field("seed", 1u64)],
            })
            .unwrap();
        journal.append(&Record::Start { batch: 0, job: 0 }).unwrap();
        journal
            .append(&Record::JobDone { batch: 0, job: 0 })
            .unwrap();
        journal
            .append(&Record::Submit {
                batch: 1,
                jobs: vec![job_spec().field("seed", 2u64)],
            })
            .unwrap();
        journal.append(&Record::BatchDone { batch: 0 }).unwrap();
        journal
            .append(&Record::Submit {
                batch: 2,
                jobs: vec![job_spec().field("seed", 3u64)],
            })
            .unwrap();
        drop(journal);
        let bytes = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    })
}

/// Number of complete `[len][sum][payload]` frames fully contained in
/// `body` (journal bytes after the magic).
fn frames_within(body: &[u8]) -> usize {
    let mut pos = 0usize;
    let mut frames = 0usize;
    while let Some(header) = body.get(pos..pos + 12) {
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        if body.get(pos + 12..pos + 12 + len).is_none() {
            break;
        }
        pos += 12 + len;
        frames += 1;
    }
    frames
}

/// Byte offset (in the full journal) one past frame `n`.
fn frame_end(full: &[u8], n: usize) -> usize {
    let body = &full[JOURNAL_MAGIC.len()..];
    let mut pos = 0usize;
    for _ in 0..n {
        let len = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 12 + len;
    }
    JOURNAL_MAGIC.len() + pos
}

/// Pending batch ids after replaying the first `records` entries of
/// [`JOURNAL_SCRIPT`].
fn expected_pending(records: usize) -> Vec<u64> {
    let mut pending = Vec::new();
    for record in JOURNAL_SCRIPT.iter().take(records) {
        match record {
            Record2::Submit(b) => pending.push(*b),
            Record2::Done(b) => pending.retain(|p| p != b),
            Record2::Next | Record2::Progress => {}
        }
    }
    pending.sort_unstable();
    pending
}
