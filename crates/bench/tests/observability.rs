//! The observability layer must be free of observer effects: sampling
//! off is the exact seed behaviour, sampling on changes nothing but the
//! `samples` field, and the JSON run reports round-trip through the
//! crate's own parser with the documented schema.

use prf_bench::bench_report::{RunReport, SCHEMA_VERSION};
use prf_bench::experiment_gpu;
use prf_bench::json::Json;
use prf_core::{run_experiment_with_faults, ExperimentResult, PartitionedRfConfig, RfKind};
use prf_sim::{SamplingConfig, SchedulerPolicy};

fn run(sampling: Option<SamplingConfig>, audit: bool) -> ExperimentResult {
    let mut gpu = experiment_gpu(SchedulerPolicy::Gto);
    gpu.sampling = sampling;
    gpu.audit = audit;
    let rf = RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks));
    let w = prf_workloads::by_name("BFS").unwrap();
    run_experiment_with_faults(&gpu, &rf, &w.launches, &w.mem_init, None).unwrap()
}

/// Turning the sampler on must not perturb the simulation: every
/// statistic a figure reads is bit-identical with and without sampling;
/// only the `samples` payload differs.
#[test]
fn sampling_is_observer_effect_free() {
    let off = run(None, false);
    let on = run(Some(SamplingConfig::every(500)), false);

    assert_eq!(off.cycles, on.cycles);
    assert_eq!(off.stats, on.stats);
    assert_eq!(off.telemetry, on.telemetry);
    assert_eq!(off.dynamic_energy_pj, on.dynamic_energy_pj);
    assert_eq!(off.leakage_energy_pj, on.leakage_energy_pj);
    assert_eq!(
        off.baseline_dynamic_energy_pj,
        on.baseline_dynamic_energy_pj
    );

    assert!(off.per_launch.iter().all(|l| l.samples.is_empty()));
    assert!(on.per_launch.iter().all(|l| !l.samples.is_empty()));
}

/// An audited, sampled run stays clean (the audit includes the
/// per-window conservation checks) and the windowed deltas sum back to
/// the final counters, per launch and over the whole experiment.
#[test]
fn sampled_windows_sum_to_final_stats_under_audit() {
    let r = run(Some(SamplingConfig::every(250)), true);
    let audit = r.audit.as_ref().expect("audit enabled");
    assert!(audit.is_clean(), "{audit}");

    let mut sampled_instructions = 0;
    for launch in &r.per_launch {
        assert!(!launch.samples.is_empty());
        let per_launch: u64 = launch
            .samples
            .iter()
            .map(|s| s.total(|w| w.instructions))
            .sum();
        assert_eq!(per_launch, launch.stats.instructions);
        sampled_instructions += per_launch;
    }
    assert_eq!(sampled_instructions, r.stats.instructions);
}

/// `RunReport::write` emits a `BENCH_<name>.json` that parses with the
/// crate's own parser and carries the documented schema.
#[test]
fn bench_report_round_trips_through_parser() {
    let dir = std::env::temp_dir().join(format!("prf_obs_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("PRF_REPORT_DIR", &dir);

    let result = run(Some(SamplingConfig::every(1000)), true);
    let mut report = RunReport::new("observability_test");
    report.add_result("BFS/partitioned", &result);
    report.add_metric(
        "ipc",
        result.stats.instructions as f64 / result.cycles as f64,
    );
    let path = report.write().expect("report written");
    std::env::remove_var("PRF_REPORT_DIR");

    assert_eq!(path.file_name().unwrap(), "BENCH_observability_test.json");
    let text = std::fs::read_to_string(&path).unwrap();
    let doc = Json::parse(&text).unwrap();
    assert_eq!(
        doc.get("schema_version").unwrap().as_u64(),
        Some(SCHEMA_VERSION)
    );
    assert_eq!(
        doc.get("bench").unwrap().as_str(),
        Some("observability_test")
    );
    let jobs = doc.get("jobs").unwrap().as_arr().unwrap();
    assert_eq!(jobs.len(), 1);
    let job = &jobs[0];
    assert_eq!(job.get("name").unwrap().as_str(), Some("BFS/partitioned"));
    let res = job.get("result").unwrap();
    assert_eq!(res.get("cycles").unwrap().as_u64(), Some(result.cycles));
    assert!(res.get("sampled_windows").unwrap().as_u64().unwrap() > 0);
    let audit = res.get("audit").unwrap();
    assert_eq!(audit.get("clean").unwrap().as_bool(), Some(true));
    assert!(doc
        .get("metrics")
        .unwrap()
        .get("ipc")
        .unwrap()
        .as_f64()
        .is_some());

    std::fs::remove_dir_all(&dir).ok();
}
