//! Benchmarks of the parallel experiment engine: the same job matrix run
//! serially (1 worker) and on the full worker pool, so the speedup of
//! fanning the evaluation matrix across threads — and any regression in
//! it — shows up in `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};

use prf_bench::runner::{run_matrix_with_threads, Job};
use prf_bench::{experiment_gpu, seed_jobs};
use prf_core::{PartitionedRfConfig, RfKind};
use prf_sim::SchedulerPolicy;

/// A representative slice of the fig. 12 matrix: 3 workloads × 2 RF
/// organisations × 2 jitter seeds = 12 independent simulations.
fn jobs() -> Vec<Job> {
    let gpu = experiment_gpu(SchedulerPolicy::Gto);
    let part = RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks));
    ["backprop", "srad", "BFS"]
        .iter()
        .flat_map(|name| {
            let w = prf_workloads::by_name(name).unwrap();
            let mut v = seed_jobs(&w, &gpu, &RfKind::MrfStv, 2);
            v.extend(seed_jobs(&w, &gpu, &part, 2));
            v
        })
        .collect()
}

fn bench_matrix(c: &mut Criterion) {
    let jobs = jobs();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut g = c.benchmark_group("run_matrix");
    g.sample_size(10);
    g.bench_function("serial_1_thread", |b| {
        b.iter(|| run_matrix_with_threads(&jobs, 1))
    });
    g.bench_function(format!("parallel_{threads}_threads"), |b| {
        b.iter(|| run_matrix_with_threads(&jobs, threads))
    });
    if threads != 4 {
        g.bench_function("parallel_4_threads", |b| {
            b.iter(|| run_matrix_with_threads(&jobs, 4))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_matrix);
criterion_main!(benches);
