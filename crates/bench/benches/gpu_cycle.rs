//! Benchmarks of the whole-GPU cycle loop: a single multi-SM `Gpu::run`
//! under serial stepping, SM-parallel stepping, and skip-ahead, plus an
//! allocation census of the steady-state hot path.
//!
//! The census uses a counting `#[global_allocator]` to measure how many
//! heap allocations one `Gpu::run` performs. The cycle loop reuses scratch
//! buffers (see `prf_sim::sm`), so the count must stay proportional to the
//! amount of *work* (warps, CTAs, inflight instructions) — not to the
//! number of simulated cycles. The `alloc_census` "benchmark" asserts that
//! bound and prints the per-cycle allocation rate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use prf_core::{rf_model_factory, shared_telemetry, RfKind};
use prf_sim::{Gpu, GpuConfig, WarpContext};

/// A pass-through allocator that counts allocation calls.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn multi_sm_config(num_sms: usize) -> GpuConfig {
    GpuConfig {
        num_sms,
        global_mem_words: 1 << 18,
        ..GpuConfig::kepler_single_sm()
    }
}

/// One multi-SM `Gpu::run` of the srad workload (its launches stress the
/// LSU, barriers, and the collector) on a fresh `Gpu`, seeded with `pool`
/// (recycled warp contexts). Returns total cycles and the grown pool, so
/// back-to-back runs measure the steady state rather than cold warp
/// allocation.
fn run_once_pooled(config: &GpuConfig, pool: Vec<WarpContext>) -> (u64, Vec<WarpContext>) {
    let w = prf_workloads::by_name("srad").expect("srad workload exists");
    let telemetry = shared_telemetry();
    let factory = rf_model_factory(&RfKind::MrfStv, config.num_rf_banks, &telemetry);
    let mut gpu = Gpu::new(config.clone());
    gpu.adopt_warp_pool(pool);
    for (base, words) in &w.mem_init {
        gpu.global_mem().load(*base, words);
    }
    let mut cycles = 0;
    for launch in &w.launches {
        let kernel = std::sync::Arc::clone(&launch.kernel);
        cycles += gpu
            .run(kernel, launch.grid, &factory)
            .expect("srad terminates")
            .cycles;
    }
    (cycles, gpu.take_warp_pool())
}

fn run_once(config: &GpuConfig) -> u64 {
    run_once_pooled(config, Vec::new()).0
}

fn bench_gpu_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu_cycle");
    g.sample_size(10);

    g.bench_function("multi_sm_serial", |b| {
        let config = multi_sm_config(8);
        b.iter(|| black_box(run_once(&config)))
    });
    g.bench_function("multi_sm_parallel4", |b| {
        let config = GpuConfig {
            sm_threads: 4,
            ..multi_sm_config(8)
        };
        b.iter(|| black_box(run_once(&config)))
    });
    g.bench_function("multi_sm_skip_ahead", |b| {
        let config = GpuConfig {
            skip_ahead: true,
            ..multi_sm_config(8)
        };
        b.iter(|| black_box(run_once(&config)))
    });
    g.finish();
}

/// Not a timing benchmark: counts heap allocations across one serial
/// multi-SM run and asserts the steady-state cycle loop is allocation-free
/// (the per-cycle allocation rate stays far below one).
fn bench_alloc_census(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc_census");
    g.sample_size(10);

    // Warm-up run (criterion itself, workload construction, and the lazy
    // parts of the simulator allocate; we only care about steady state).
    // The warp-context pool carries over so the measured run exercises
    // recycled register storage, as a long-running simulation would.
    let config = multi_sm_config(4);
    let (warm_cycles, pool) = run_once_pooled(&config, Vec::new());

    let before = allocations();
    let (cycles, _pool) = run_once_pooled(&config, pool);
    let during = allocations() - before;
    assert_eq!(warm_cycles, cycles, "deterministic simulation");
    let per_cycle = during as f64 / cycles as f64;
    println!(
        "alloc census: {during} allocations over {cycles} cycles \
         ({per_cycle:.3} allocs/cycle)"
    );
    assert!(
        per_cycle < 0.5,
        "hot cycle loop should not allocate per cycle: \
         {during} allocations over {cycles} cycles"
    );

    g.bench_function("run_allocations", |b| {
        b.iter(|| {
            let before = allocations();
            black_box(run_once(&config));
            allocations() - before
        })
    });
    g.finish();
}

criterion_group!(benches, bench_gpu_run, bench_alloc_census);
criterion_main!(benches);
