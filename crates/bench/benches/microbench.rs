//! Criterion micro-benchmarks of the library's hot paths: one group per
//! reproduced table/figure pipeline plus the core data structures, so
//! regressions in simulation throughput or model evaluation cost show up
//! in `cargo bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use prf_core::{run_experiment, PartitionedRfConfig, RfKind, SwappingTable};
use prf_finfet::array::{characterize, ArraySpec};
use prf_finfet::montecarlo::snm_yield;
use prf_finfet::{BackGate, SramCell, NTV};
use prf_isa::{ReconvergenceTable, Reg, StaticRegisterProfile};
use prf_sim::GpuConfig;

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    let gpu = GpuConfig {
        global_mem_words: 1 << 18,
        ..GpuConfig::kepler_single_sm()
    };
    for name in ["backprop", "srad"] {
        let w = prf_workloads::by_name(name).unwrap();
        g.bench_function(format!("{name}/mrf_stv"), |b| {
            b.iter(|| run_experiment(&gpu, &RfKind::MrfStv, &w.launches, &w.mem_init).unwrap())
        });
        let part = RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks));
        g.bench_function(format!("{name}/partitioned"), |b| {
            b.iter(|| run_experiment(&gpu, &part, &w.launches, &w.mem_init).unwrap())
        });
    }
    g.finish();
}

fn bench_swap_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("swap_table");
    g.bench_function("apply_hot_registers", |b| {
        b.iter_batched(
            || SwappingTable::new(4),
            |mut t| {
                t.apply_hot_registers(&[Reg(8), Reg(9), Reg(10), Reg(11)]);
                black_box(t)
            },
            BatchSize::SmallInput,
        )
    });
    let mut t = SwappingTable::new(4);
    t.apply_hot_registers(&[Reg(8), Reg(9), Reg(10), Reg(11)]);
    g.bench_function("lookup", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for r in 0..63u8 {
                acc += t.lookup(black_box(Reg(r))).index();
            }
            acc
        })
    });
    g.finish();
}

fn bench_isa_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("isa_analysis");
    let w = prf_workloads::by_name("sgemm").unwrap();
    let kernel = w.launches[0].kernel.clone();
    g.bench_function("reconvergence_table", |b| {
        b.iter(|| ReconvergenceTable::compute(black_box(&kernel)))
    });
    g.bench_function("static_register_profile", |b| {
        b.iter(|| StaticRegisterProfile::analyze(black_box(&kernel)))
    });
    g.finish();
}

fn bench_circuit_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("circuit_models");
    g.bench_function("characterize_srf", |b| {
        b.iter(|| characterize(black_box(&ArraySpec::srf())))
    });
    g.bench_function("snm_yield_8t_ntv_10k", |b| {
        b.iter(|| snm_yield(SramCell::T8, NTV, BackGate::Vdd, 10_000, 42))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_simulation,
    bench_swap_table,
    bench_isa_analysis,
    bench_circuit_models
);
criterion_main!(benches);
