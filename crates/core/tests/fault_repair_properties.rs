//! Property tests for the fault-repair layer: the spare-row allocator
//! must stay injective (no two faulty rows share a spare) and stable (a
//! row keeps its spare across repeated touches) for arbitrary access
//! sequences.

use prf_core::SpareRemapTable;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spare_remap_is_injective_and_stable(
        banks in 1usize..6,
        spares in 0usize..8,
        touches in vec((0usize..6, 0usize..32), 0..64),
    ) {
        let mut table = SpareRemapTable::new(banks, spares);
        let mut seen: Vec<((usize, usize), usize)> = Vec::new();
        for (bank, row) in touches {
            let bank = bank % banks;
            match table.remap(bank, row) {
                Some(spare) => {
                    prop_assert!(spare < spares, "spare {spare} out of range");
                    match seen.iter().find(|(k, _)| *k == (bank, row)) {
                        // Stability: re-touching a row returns its spare.
                        Some((_, prev)) => prop_assert_eq!(spare, *prev),
                        None => {
                            // Injectivity: a fresh row never reuses a spare
                            // already assigned in the same bank.
                            prop_assert!(
                                !seen.iter().any(|((b, _), s)| *b == bank && *s == spare),
                                "bank {bank} spare {spare} double-assigned"
                            );
                            seen.push(((bank, row), spare));
                        }
                    }
                }
                None => {
                    // Exhaustion only once the bank really is full, and it
                    // is permanent for fresh rows of that bank.
                    let used = seen.iter().filter(|((b, _), _)| *b == bank).count();
                    prop_assert_eq!(used, spares, "refused with spares left");
                }
            }
        }
        for bank in 0..banks {
            prop_assert!(table.used_spares(bank) <= spares);
        }
    }
}
