//! Core-crate integration: all register-file models driven against a
//! common kernel through the full experiment pipeline.

use prf_core::{
    run_experiment, DrowsyConfig, EnergyDelay, Launch, PartitionedRfConfig, ProfilingStrategy,
    RfKind, RfcConfig,
};
use prf_isa::{CmpOp, GridConfig, KernelBuilder, PredReg, Reg, SpecialReg};
use prf_sim::{GpuConfig, SchedulerPolicy};

fn skewed_kernel() -> prf_isa::Kernel {
    let mut kb = KernelBuilder::new("skewed");
    kb.mov_special(Reg(0), SpecialReg::GlobalTid);
    for r in 1..10u8 {
        kb.mov_imm(Reg(r), u32::from(r));
    }
    let top = kb.new_label();
    kb.place_label(top);
    kb.imad(Reg(5), Reg(6), Reg(6), Reg(5));
    kb.iadd_imm(Reg(7), Reg(7), 1);
    kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(7), 24);
    kb.bra_if(PredReg(0), true, top);
    kb.stg(Reg(0), Reg(5), 0);
    kb.exit();
    kb.build().unwrap()
}

fn gpu(policy: SchedulerPolicy) -> GpuConfig {
    GpuConfig {
        scheduler: policy,
        global_mem_words: 1 << 14,
        // Every experiment in this file doubles as a conservation audit,
        // including the cross-crate RFC-writeback and energy checks.
        audit: true,
        ..GpuConfig::kepler_single_sm()
    }
}

/// Asserts the experiment's conservation audit came back clean.
fn assert_clean(r: &prf_core::ExperimentResult) {
    let audit = r.audit.as_ref().expect("audit enabled by gpu()");
    assert!(audit.is_clean(), "{}: {audit}", r.rf_name);
}

fn launches() -> Vec<Launch> {
    vec![Launch::new(skewed_kernel(), GridConfig::new(8, 128))]
}

fn all_kinds(config: &GpuConfig) -> Vec<RfKind> {
    vec![
        RfKind::MrfStv,
        RfKind::MrfNtv { latency: 3 },
        RfKind::Partitioned(PartitionedRfConfig::paper_default(config.num_rf_banks)),
        RfKind::Partitioned(PartitionedRfConfig {
            strategy: ProfilingStrategy::Compiler,
            ..PartitionedRfConfig::without_adaptive(config.num_rf_banks)
        }),
        RfKind::Rfc(RfcConfig::paper_default(
            config.num_rf_banks,
            config.max_warps_per_sm,
        )),
        RfKind::Drowsy(DrowsyConfig::paper_adjacent(
            config.num_rf_banks,
            config.max_warps_per_sm,
        )),
    ]
}

#[test]
fn all_models_complete_with_identical_work() {
    let config = gpu(SchedulerPolicy::TwoLevel {
        active_per_scheduler: 8,
    });
    let mut instrs = Vec::new();
    for kind in all_kinds(&config) {
        let r = run_experiment(&config, &kind, &launches(), &[]).unwrap();
        assert!(r.cycles > 0, "{}", r.rf_name);
        assert_clean(&r);
        instrs.push((r.rf_name, r.stats.instructions));
    }
    let first = instrs[0].1;
    for (name, n) in instrs {
        assert_eq!(n, first, "{name} executed a different instruction count");
    }
}

#[test]
fn energy_ordering_across_models() {
    // On a register-skewed kernel: partitioned < NTV < drowsy == STV for
    // dynamic energy per access stream.
    let config = gpu(SchedulerPolicy::Gto);
    let get = |kind: RfKind| {
        let r = run_experiment(&config, &kind, &launches(), &[]).unwrap();
        assert_clean(&r);
        r
    };
    let stv = get(RfKind::MrfStv);
    let ntv = get(RfKind::MrfNtv { latency: 3 });
    let part = get(RfKind::Partitioned(PartitionedRfConfig::paper_default(
        config.num_rf_banks,
    )));
    let drowsy = get(RfKind::Drowsy(DrowsyConfig::paper_adjacent(
        config.num_rf_banks,
        config.max_warps_per_sm,
    )));

    assert!(part.dynamic_saving() > ntv.dynamic_saving());
    assert!(ntv.dynamic_saving() > 0.40);
    assert!(
        drowsy.dynamic_saving().abs() < 1e-9,
        "drowsy saves no dynamic energy"
    );
    assert!(stv.dynamic_saving().abs() < 1e-9);
}

#[test]
fn partitioned_wins_energy_delay_product() {
    let config = gpu(SchedulerPolicy::Gto);
    let get = |kind: RfKind| run_experiment(&config, &kind, &launches(), &[]).unwrap();
    let stv = get(RfKind::MrfStv);
    let part = get(RfKind::Partitioned(PartitionedRfConfig::paper_default(
        config.num_rf_banks,
    )));
    let base_ed = EnergyDelay::from(&stv);
    let part_ed = EnergyDelay::from(&part);
    assert!(
        part_ed.edp_vs(&base_ed) < 0.85,
        "partitioned EDP ratio {:.3} should be a clear win",
        part_ed.edp_vs(&base_ed)
    );
}

#[test]
fn oracle_profiling_upper_bounds_hybrid_capture() {
    let config = gpu(SchedulerPolicy::Gto);
    let base = run_experiment(&config, &RfKind::MrfStv, &launches(), &[]).unwrap();
    let oracle_set = base.stats.reg_accesses.top_n(4);

    let frf_fraction = |r: &prf_core::ExperimentResult| {
        let pa = &r.stats.partition_accesses;
        pa.fraction(prf_sim::RfPartition::FrfHigh) + pa.fraction(prf_sim::RfPartition::FrfLow)
    };
    let hybrid = run_experiment(
        &config,
        &RfKind::Partitioned(PartitionedRfConfig::without_adaptive(config.num_rf_banks)),
        &launches(),
        &[],
    )
    .unwrap();
    let oracle = run_experiment(
        &config,
        &RfKind::Partitioned(PartitionedRfConfig {
            strategy: ProfilingStrategy::Oracle(oracle_set),
            ..PartitionedRfConfig::without_adaptive(config.num_rf_banks)
        }),
        &launches(),
        &[],
    )
    .unwrap();
    assert!(
        frf_fraction(&oracle) >= frf_fraction(&hybrid) - 0.02,
        "oracle ({:.3}) must not lose to hybrid ({:.3})",
        frf_fraction(&oracle),
        frf_fraction(&hybrid)
    );
}

#[test]
fn rfc_telemetry_consistency() {
    let config = gpu(SchedulerPolicy::TwoLevel {
        active_per_scheduler: 4,
    });
    let r = run_experiment(
        &config,
        &RfKind::Rfc(RfcConfig::paper_default(
            config.num_rf_banks,
            config.max_warps_per_sm,
        )),
        &launches(),
        &[],
    )
    .unwrap();
    assert_clean(&r);
    let t = &r.telemetry;
    // Every access is either an RFC hit or a read miss.
    assert_eq!(
        t.rfc_hits + t.rfc_misses,
        r.stats.partition_accesses.total(),
        "RFC accounting must cover every granted access"
    );
    assert!(t.rfc_read_hits <= t.rfc_hits);
    assert!(t.rfc_read_hit_rate() <= t.rfc_hit_rate());
}
