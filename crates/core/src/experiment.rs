//! High-level experiment driver: run a workload (one or more kernel
//! launches) under a chosen register-file organisation and report
//! performance plus energy.

use std::sync::Arc;
use std::time::{Duration, Instant};

use prf_finfet::array::ArraySpec;
use prf_isa::{GridConfig, Kernel};
use prf_sim::rf::{RegisterFileModel, RepairKind};
use prf_sim::{AuditReport, BaselineRf, Gpu, GpuConfig, SimError, SimResult, SmStats};

use crate::drowsy::{DrowsyConfig, DrowsyRf};
use crate::energy::{EnergyModel, LeakageModel};
use crate::faults::{FaultConfig, FaultedRf, RepairCosts, RepairPolicy};
use crate::partitioned::{PartitionedRf, PartitionedRfConfig};
use crate::rfc::{RfcConfig, RfcModel};
use crate::telemetry::{shared_telemetry, snapshot, RfTelemetry, SharedTelemetry};

/// The register-file organisation under test.
#[derive(Debug, Clone, PartialEq)]
pub enum RfKind {
    /// Monolithic MRF at STV — the power-aggressive performance baseline.
    MrfStv,
    /// Monolithic MRF at NTV with the given access latency (3 in the
    /// paper; the energy-aggressive baseline with 7.1% slowdown).
    MrfNtv {
        /// Access latency in cycles.
        latency: u32,
    },
    /// The paper's partitioned register file.
    Partitioned(PartitionedRfConfig),
    /// The RFC baseline of §V-D.
    Rfc(RfcConfig),
    /// The drowsy-register baseline from related work (ref. \[4\], HPCA 2013).
    Drowsy(DrowsyConfig),
}

impl RfKind {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            RfKind::MrfStv => "MRF@STV",
            RfKind::MrfNtv { .. } => "MRF@NTV",
            RfKind::Partitioned(_) => "partitioned",
            RfKind::Rfc(_) => "RFC",
            RfKind::Drowsy(_) => "drowsy",
        }
    }
}

/// One kernel launch of a workload.
///
/// The kernel is reference-counted so a `Launch` can be cloned — and whole
/// workloads fanned out across worker threads — without deep-copying the
/// instruction stream.
#[derive(Debug, Clone)]
pub struct Launch {
    /// The kernel.
    pub kernel: Arc<Kernel>,
    /// Its launch geometry.
    pub grid: GridConfig,
}

impl Launch {
    /// Wraps a kernel (owned or already `Arc`ed) with its launch geometry.
    pub fn new(kernel: impl Into<Arc<Kernel>>, grid: GridConfig) -> Self {
        Launch {
            kernel: kernel.into(),
            grid,
        }
    }
}

/// Wall-clock time an experiment spent in each of its phases, measured by
/// [`run_experiment_with_faults`]. Zero-valued phases mean "not measured"
/// (e.g. a hand-built result); the runner sums these across jobs and seeds
/// to show where the experiment matrix actually spends its time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// GPU construction, memory loads, and model-factory setup.
    pub setup: Duration,
    /// The cycle-level simulation itself (all launches).
    pub simulate: Duration,
    /// Energy accounting (dynamic, leakage, repair premiums).
    pub energy: Duration,
    /// Conservation-invariant audit (zero when auditing is off).
    pub audit: Duration,
}

impl PhaseTimings {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.setup + self.simulate + self.energy + self.audit
    }

    /// Accumulates another run's timings into this one.
    pub fn merge(&mut self, other: &PhaseTimings) {
        self.setup += other.setup;
        self.simulate += other.simulate;
        self.energy += other.energy;
        self.audit += other.audit;
    }
}

impl std::fmt::Display for PhaseTimings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "setup {:.1}ms, simulate {:.1}ms, energy {:.1}ms, audit {:.1}ms",
            self.setup.as_secs_f64() * 1e3,
            self.simulate.as_secs_f64() * 1e3,
            self.energy.as_secs_f64() * 1e3,
            self.audit.as_secs_f64() * 1e3,
        )
    }
}

/// Result of running a workload under one RF organisation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// RF organisation name.
    pub rf_name: &'static str,
    /// Total cycles across all launches.
    pub cycles: u64,
    /// Merged statistics across launches and SMs.
    pub stats: SmStats,
    /// Per-launch simulation results.
    pub per_launch: Vec<SimResult>,
    /// Model-internal telemetry (RFC hit rates, FRF mode epochs, hot
    /// registers, pilot completion).
    pub telemetry: RfTelemetry,
    /// Dynamic register-file energy (pJ).
    pub dynamic_energy_pj: f64,
    /// Dynamic energy the same access stream would cost on the MRF@STV
    /// baseline (pJ) — the Fig. 11 denominator.
    pub baseline_dynamic_energy_pj: f64,
    /// Leakage energy of this organisation over the run (pJ).
    pub leakage_energy_pj: f64,
    /// Leakage energy of the MRF@STV baseline over the same cycles (pJ).
    pub baseline_leakage_energy_pj: f64,
    /// Energy premium paid repairing accesses to faulty rows (pJ), already
    /// included in `dynamic_energy_pj`. Zero for fault-free runs.
    pub repair_energy_pj: f64,
    /// Wall-clock phase profile of this run (setup/simulate/energy/audit).
    pub phases: PhaseTimings,
    /// Conservation-invariant audit, merged over launches and extended
    /// with the cross-crate checks (telemetry vs model evict events,
    /// energy recomputed from raw events). Present iff `GpuConfig::audit`.
    pub audit: Option<AuditReport>,
}

impl ExperimentResult {
    /// Fractional dynamic-energy saving vs the MRF@STV baseline
    /// (Fig. 11's y-axis is `1 - saving`).
    pub fn dynamic_saving(&self) -> f64 {
        if self.baseline_dynamic_energy_pj == 0.0 {
            0.0
        } else {
            1.0 - self.dynamic_energy_pj / self.baseline_dynamic_energy_pj
        }
    }

    /// Fractional leakage saving vs the MRF@STV baseline.
    pub fn leakage_saving(&self) -> f64 {
        if self.baseline_leakage_energy_pj == 0.0 {
            0.0
        } else {
            1.0 - self.leakage_energy_pj / self.baseline_leakage_energy_pj
        }
    }

    /// Execution time normalised to a reference run (Fig. 12's y-axis).
    pub fn normalized_time(&self, baseline: &ExperimentResult) -> f64 {
        self.cycles as f64 / baseline.cycles.max(1) as f64
    }
}

impl std::fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} cycles, {} instructions (IPC {:.2}, SIMD eff {:.0}%)",
            self.rf_name,
            self.cycles,
            self.stats.instructions,
            self.stats.instructions as f64 / self.cycles.max(1) as f64,
            100.0 * self.stats.simd_efficiency(),
        )?;
        writeln!(
            f,
            "  dynamic RF energy {:.1} nJ ({:.1}% vs MRF@STV), leakage {:.1} nJ ({:.1}%)",
            self.dynamic_energy_pj / 1000.0,
            100.0 * self.dynamic_saving(),
            self.leakage_energy_pj / 1000.0,
            100.0 * self.leakage_saving(),
        )?;
        // Only degraded runs print the repair line, so fault-free output
        // stays byte-identical to a run without any fault map attached.
        if self.telemetry.total_fault_repairs() > 0 {
            writeln!(
                f,
                "  fault repairs: {} remapped, {} spilled, {} escalated ({:.2} nJ premium)",
                self.telemetry.fault_remaps,
                self.telemetry.fault_spills,
                self.telemetry.fault_escalations,
                self.repair_energy_pj / 1000.0,
            )?;
        }
        Ok(())
    }
}

/// Builds the per-SM register-file model factory for an [`RfKind`].
///
/// The returned closure is `Send + Sync` so a whole experiment — factory
/// included — can run on a worker thread of the parallel experiment engine.
/// Models report into `telemetry`, which the caller snapshots after the run.
pub fn rf_model_factory(
    rf: &RfKind,
    banks: usize,
    telemetry: &SharedTelemetry,
) -> impl Fn(usize) -> Box<dyn RegisterFileModel> + Send + Sync + 'static {
    let rf_kind = rf.clone();
    let t = Arc::clone(telemetry);
    move |sm: usize| -> Box<dyn RegisterFileModel> {
        match &rf_kind {
            RfKind::MrfStv => Box::new(BaselineRf::stv(banks)),
            RfKind::MrfNtv { latency } => Box::new(BaselineRf::ntv(banks, *latency)),
            RfKind::Partitioned(cfg) => {
                Box::new(PartitionedRf::new(sm, cfg.clone(), Arc::clone(&t)))
            }
            RfKind::Rfc(cfg) => Box::new(RfcModel::new(*cfg, Arc::clone(&t))),
            RfKind::Drowsy(cfg) => Box::new(DrowsyRf::new(*cfg, Arc::clone(&t))),
        }
    }
}

/// Like [`rf_model_factory`], but when `faults` is present every model is
/// wrapped in a [`FaultedRf`] that injects the map's faults and repairs
/// them. `None` builds the bare models — exactly [`rf_model_factory`] —
/// so fault-free runs stay bit-identical to runs predating fault support.
pub fn faulted_rf_model_factory(
    rf: &RfKind,
    banks: usize,
    telemetry: &SharedTelemetry,
    faults: Option<FaultConfig>,
) -> impl Fn(usize) -> Box<dyn RegisterFileModel> + Send + Sync + 'static {
    let base = rf_model_factory(rf, banks, telemetry);
    let t = Arc::clone(telemetry);
    move |sm: usize| -> Box<dyn RegisterFileModel> {
        let inner = base(sm);
        match &faults {
            Some(fc) => Box::new(FaultedRf::new(inner, fc.clone(), Arc::clone(&t))),
            None => inner,
        }
    }
}

/// Validates everything an experiment is about to feed the simulator —
/// configuration, every launch, and the optional fault campaign — without
/// building any machine state.
///
/// [`run_experiment_with_faults`] calls this first, so a malformed input
/// fails fast with a typed [`prf_sim::ValidationError`] (wrapped in
/// [`SimError::Invalid`]) before memory is allocated or models are built.
/// Job runners call it directly to reject hostile jobs without spawning a
/// worker thread or arming a watchdog.
///
/// # Errors
///
/// The first failing check, in order: config, launches (in order), faults.
pub fn validate_experiment_inputs(
    gpu_config: &GpuConfig,
    launches: &[Launch],
    faults: Option<&FaultConfig>,
) -> Result<(), prf_sim::ValidationError> {
    prf_sim::check_config(gpu_config)?;
    if launches.is_empty() {
        return Err(prf_sim::ValidationError::Launch {
            kernel: "<none>".into(),
            reason: "experiment has no launches".into(),
        });
    }
    for launch in launches {
        prf_sim::check_launch(gpu_config, &launch.kernel, launch.grid)?;
    }
    if let Some(fc) = faults {
        let fault_err = |reason: String| prf_sim::ValidationError::Fault { reason };
        let g = fc.map.geometry;
        // An empty dimension would be a mod-by-zero in FaultedRf's
        // row-address fold (maps built by FaultMap::from_montecarlo can't
        // be empty, but maps parsed from text artifacts can declare
        // anything).
        if g.banks == 0 || g.rows_per_bank == 0 || g.cells_per_row == 0 {
            return Err(fault_err(format!(
                "fault-map geometry {}x{}x{} has an empty dimension",
                g.banks, g.rows_per_bank, g.cells_per_row
            )));
        }
        if let RepairPolicy::SpareRow { spares_per_bank } = fc.policy {
            if spares_per_bank > g.rows_per_bank {
                return Err(fault_err(format!(
                    "{spares_per_bank} spares per bank exceed the bank's {} rows",
                    g.rows_per_bank
                )));
            }
        }
    }
    Ok(())
}

/// Runs `launches` back-to-back (sharing global memory, like a real
/// multi-kernel workload) under the given RF organisation.
///
/// `mem_init` is a list of `(base_word_address, words)` blocks loaded into
/// global memory before the first launch.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulator (cycle-limit overruns).
pub fn run_experiment(
    gpu_config: &GpuConfig,
    rf: &RfKind,
    launches: &[Launch],
    mem_init: &[(u32, Vec<u32>)],
) -> Result<ExperimentResult, SimError> {
    run_experiment_with_faults(gpu_config, rf, launches, mem_init, None)
}

/// [`run_experiment`] with an optional fault campaign: when `faults` is
/// set, every SM's model runs behind a [`FaultedRf`] and the result carries
/// the repair telemetry and energy premium ([`RepairCosts::finfet_default`]
/// rates). The audit (when enabled) additionally balances the repair
/// telemetry against the per-access `RfRepair` trace events and folds the
/// premium into the energy recomputation.
///
/// # Errors
///
/// [`SimError::Invalid`] when [`validate_experiment_inputs`] rejects the
/// config, a launch, or the fault campaign; otherwise propagates
/// [`SimError`] from the simulator (cycle-limit overruns).
pub fn run_experiment_with_faults(
    gpu_config: &GpuConfig,
    rf: &RfKind,
    launches: &[Launch],
    mem_init: &[(u32, Vec<u32>)],
    faults: Option<&FaultConfig>,
) -> Result<ExperimentResult, SimError> {
    validate_experiment_inputs(gpu_config, launches, faults)?;
    let mut phases = PhaseTimings::default();
    let phase_start = Instant::now();
    let telemetry = shared_telemetry();
    let mut gpu = Gpu::try_new(gpu_config.clone())?;
    for (base, words) in mem_init {
        gpu.global_mem().load(*base, words);
    }

    let factory =
        faulted_rf_model_factory(rf, gpu_config.num_rf_banks, &telemetry, faults.cloned());
    phases.setup = phase_start.elapsed();

    let phase_start = Instant::now();
    let mut per_launch = Vec::with_capacity(launches.len());
    for launch in launches {
        // `Arc::clone`, not a deep copy of the instruction stream.
        let r = gpu.run(Arc::clone(&launch.kernel), launch.grid, &factory)?;
        per_launch.push(r);
    }
    phases.simulate = phase_start.elapsed();

    let mut stats = SmStats::new();
    let mut cycles = 0;
    for r in &per_launch {
        stats.merge(&r.stats);
        cycles += r.cycles;
    }

    // Energy accounting.
    let phase_start = Instant::now();
    let (energy_model, rfc_writebacks) = match rf {
        RfKind::Rfc(cfg) => {
            let spec = ArraySpec::rfc(
                cfg.entries_per_warp as u32,
                cfg.sized_for_warps,
                2,
                1,
                cfg.crossbar_banks,
            );
            (
                EnergyModel::new(Some(spec), cfg.mrf_at_ntv),
                snapshot(&telemetry).rfc_writebacks,
            )
        }
        _ => (EnergyModel::without_rfc(), 0),
    };
    let dynamic_energy_pj =
        energy_model.dynamic_energy_pj(&stats.partition_accesses, rfc_writebacks);
    let baseline_dynamic_energy_pj =
        energy_model.baseline_dynamic_energy_pj(&stats.partition_accesses);

    let leak = LeakageModel::from_finfet();
    let organisation_mw = match rf {
        RfKind::MrfStv => leak.mrf_stv_mw,
        RfKind::MrfNtv { .. } => leak.mrf_ntv_mw,
        RfKind::Partitioned(_) => leak.partitioned_mw(),
        // RFC keeps the full MRF plus the cache; cache leakage is small,
        // dominated by the (NTV or STV) MRF.
        RfKind::Rfc(cfg) => {
            if cfg.mrf_at_ntv {
                leak.mrf_ntv_mw
            } else {
                leak.mrf_stv_mw
            }
        }
        // Drowsy leakage depends on the fraction of time spent drowsy;
        // the model instances are owned by the simulator, so approximate
        // with a representative steady-state drowsy fraction. Callers that
        // need the exact number can drive DrowsyRf directly.
        RfKind::Drowsy(cfg) => {
            let representative_drowsy_fraction = 0.6;
            leak.mrf_stv_mw
                * ((1.0 - representative_drowsy_fraction)
                    + representative_drowsy_fraction * cfg.drowsy_leak_ratio)
        }
    };
    let per_sm_cycles = cycles; // leakage counted per SM; all SMs run the kernel's span
    let leakage_energy_pj =
        LeakageModel::leakage_energy_pj(organisation_mw, per_sm_cycles) * gpu_config.num_sms as f64;
    let baseline_leakage_energy_pj =
        LeakageModel::leakage_energy_pj(leak.mrf_stv_mw, per_sm_cycles) * gpu_config.num_sms as f64;

    let telemetry = snapshot(&telemetry);

    // Repair premiums are charged multiplicatively from integer event
    // counts, so the audit below can recompute them bit-exactly from the
    // independently counted trace events.
    let repair_costs = RepairCosts::finfet_default();
    let repair_energy_pj = repair_costs.repair_energy_pj(
        telemetry.fault_remaps,
        telemetry.fault_spills,
        telemetry.fault_escalations,
    );
    let dynamic_energy_pj = dynamic_energy_pj + repair_energy_pj;
    phases.energy = phase_start.elapsed();

    // Cross-crate conservation audit: extend the merged per-launch report
    // with the checks only this layer can make — the telemetry write-back
    // counter against the model's own evict events, the fault-repair
    // telemetry against the per-access `RfRepair` trace events, and the
    // dynamic energy recomputed from raw RF-port events against the
    // telemetry-derived value above.
    let phase_start = Instant::now();
    let audit = if gpu_config.audit {
        let mut merged = AuditReport::default();
        for r in &per_launch {
            if let Some(a) = &r.audit {
                merged.merge(a);
            }
        }
        merged.check_counts(
            "RFC write-back conservation",
            merged.rfc_evict_events,
            telemetry.rfc_writebacks,
            cycles,
            None,
        );
        for (kind, from_telemetry) in [
            (RepairKind::Remapped, telemetry.fault_remaps),
            (RepairKind::Spilled, telemetry.fault_spills),
            (RepairKind::Escalated, telemetry.fault_escalations),
        ] {
            merged.check_counts(
                "RF-repair telemetry conservation",
                merged.rf_repair_events[kind.index()],
                from_telemetry,
                cycles,
                None,
            );
        }
        let recomputed = energy_model.dynamic_energy_pj(&merged.rf_events, merged.rfc_evict_events)
            + repair_costs.repair_energy_pj(
                merged.rf_repair_events[RepairKind::Remapped.index()],
                merged.rf_repair_events[RepairKind::Spilled.index()],
                merged.rf_repair_events[RepairKind::Escalated.index()],
            );
        merged.check_close(
            "energy recomputation",
            dynamic_energy_pj,
            recomputed,
            1e-9,
            cycles,
        );
        Some(merged)
    } else {
        None
    };
    phases.audit = phase_start.elapsed();

    Ok(ExperimentResult {
        rf_name: rf.name(),
        cycles,
        stats,
        per_launch,
        telemetry,
        dynamic_energy_pj,
        baseline_dynamic_energy_pj,
        leakage_energy_pj,
        baseline_leakage_energy_pj,
        repair_energy_pj,
        phases,
        audit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_isa::{KernelBuilder, Reg, SpecialReg};
    use prf_sim::RfPartition;

    fn skewed_kernel() -> Kernel {
        // R1 and R2 are hammered in a loop; R5..R8 touched once.
        let mut kb = KernelBuilder::new("skew");
        kb.mov_special(Reg(0), SpecialReg::GlobalTid);
        kb.mov_imm(Reg(1), 0);
        kb.mov_imm(Reg(2), 0);
        kb.mov_imm(Reg(5), 1);
        kb.mov_imm(Reg(6), 2);
        kb.mov_imm(Reg(7), 3);
        kb.mov_imm(Reg(8), 4);
        let top = kb.new_label();
        kb.place_label(top);
        kb.iadd(Reg(2), Reg(2), Reg(1));
        kb.iadd_imm(Reg(1), Reg(1), 1);
        kb.setp_imm(prf_isa::PredReg(0), prf_isa::CmpOp::Lt, Reg(1), 20);
        kb.bra_if(prf_isa::PredReg(0), true, top);
        kb.stg(Reg(0), Reg(2), 0);
        kb.exit();
        kb.build().unwrap()
    }

    fn small_gpu() -> GpuConfig {
        GpuConfig {
            global_mem_words: 1 << 14,
            ..GpuConfig::kepler_single_sm()
        }
    }

    fn launches() -> Vec<Launch> {
        vec![Launch::new(skewed_kernel(), GridConfig::new(8, 128))]
    }

    /// Compile-time guarantee that whole experiments can move to worker
    /// threads: the GPU, the boxed models, the factory, and the result all
    /// have to be `Send`.
    #[test]
    fn simulator_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Gpu>();
        assert_send::<Box<dyn RegisterFileModel>>();
        assert_send::<ExperimentResult>();
        assert_send::<RfKind>();
        assert_send::<Launch>();
        fn assert_send_sync_value<T: Send + Sync>(_: &T) {}
        let telemetry = shared_telemetry();
        let factory = rf_model_factory(&RfKind::MrfStv, 8, &telemetry);
        assert_send_sync_value(&factory);
    }

    #[test]
    fn baseline_vs_partitioned_end_to_end() {
        let gpu = small_gpu();
        let base = run_experiment(&gpu, &RfKind::MrfStv, &launches(), &[]).unwrap();
        let part = run_experiment(
            &gpu,
            &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks)),
            &launches(),
            &[],
        )
        .unwrap();
        // Same work executed.
        assert_eq!(base.stats.instructions, part.stats.instructions);
        // Partitioned saves substantial dynamic energy on a skewed kernel.
        assert!(
            part.dynamic_saving() > 0.40,
            "saving {}",
            part.dynamic_saving()
        );
        // ...with bounded slowdown.
        let slowdown = part.normalized_time(&base);
        assert!(slowdown < 1.10, "slowdown {slowdown}");
        // Leakage saving ~39% by construction of the structures.
        assert!((part.leakage_saving() - 0.39).abs() < 0.02);
        // The hot registers ended up in the FRF: most accesses hit it.
        let frf = part.stats.partition_accesses.fraction(RfPartition::FrfHigh)
            + part.stats.partition_accesses.fraction(RfPartition::FrfLow);
        assert!(frf > 0.5, "FRF fraction {frf}");
    }

    #[test]
    fn ntv_baseline_is_slower_than_partitioned() {
        let gpu = small_gpu();
        let base = run_experiment(&gpu, &RfKind::MrfStv, &launches(), &[]).unwrap();
        let ntv = run_experiment(&gpu, &RfKind::MrfNtv { latency: 3 }, &launches(), &[]).unwrap();
        let part = run_experiment(
            &gpu,
            &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks)),
            &launches(),
            &[],
        )
        .unwrap();
        assert!(ntv.cycles > base.cycles);
        assert!(
            part.cycles < ntv.cycles,
            "partitioned ({}) must beat all-NTV ({})",
            part.cycles,
            ntv.cycles
        );
    }

    #[test]
    fn rfc_experiment_reports_hit_rate() {
        let gpu = GpuConfig {
            scheduler: prf_sim::SchedulerPolicy::TwoLevel {
                active_per_scheduler: 2,
            },
            ..small_gpu()
        };
        let rfc = RfcConfig::paper_default(gpu.num_rf_banks, gpu.max_warps_per_sm);
        let r = run_experiment(&gpu, &RfKind::Rfc(rfc), &launches(), &[]).unwrap();
        let t = &r.telemetry;
        assert!(t.rfc_hits + t.rfc_misses > 0);
        assert!(t.rfc_hit_rate() > 0.0 && t.rfc_hit_rate() < 1.0);
        assert!(r.dynamic_energy_pj > 0.0);
    }

    #[test]
    fn pilot_telemetry_populated_for_hybrid() {
        let gpu = small_gpu();
        let part = run_experiment(
            &gpu,
            &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks)),
            &launches(),
            &[],
        )
        .unwrap();
        let t = &part.telemetry;
        assert!(t.pilot_done_cycle.is_some(), "pilot must finish");
        assert!(!t.pilot_hot_regs.is_empty());
        assert!(!t.compiler_hot_regs.is_empty());
        // The dynamically hot registers are the loop registers R1/R2.
        assert!(t.pilot_hot_regs.contains(&Reg(1)));
        assert!(t.pilot_hot_regs.contains(&Reg(2)));
    }

    #[test]
    fn mem_init_is_visible_to_kernels() {
        let mut kb = KernelBuilder::new("copy");
        kb.mov_special(Reg(0), SpecialReg::GlobalTid);
        kb.ldg(Reg(1), Reg(0), 100);
        kb.stg(Reg(0), Reg(1), 200);
        kb.exit();
        let launches = vec![Launch::new(kb.build().unwrap(), GridConfig::new(1, 32))];
        let gpu = small_gpu();
        let r = run_experiment(
            &gpu,
            &RfKind::MrfStv,
            &launches,
            &[(100, (0..32).map(|i| i * 7).collect())],
        )
        .unwrap();
        assert!(r.cycles > 0);
    }

    #[test]
    fn audited_experiments_are_clean_for_every_rf_kind() {
        let base_gpu = GpuConfig {
            audit: true,
            ..small_gpu()
        };
        let kinds = [
            RfKind::MrfStv,
            RfKind::MrfNtv { latency: 3 },
            RfKind::Partitioned(PartitionedRfConfig::paper_default(base_gpu.num_rf_banks)),
            RfKind::Rfc(RfcConfig::paper_default(
                base_gpu.num_rf_banks,
                base_gpu.max_warps_per_sm,
            )),
            RfKind::Drowsy(DrowsyConfig::paper_adjacent(
                base_gpu.num_rf_banks,
                base_gpu.max_warps_per_sm,
            )),
        ];
        for rf in kinds {
            // The RFC lives with the two-level scheduler (its flush hook).
            let gpu = if matches!(rf, RfKind::Rfc(_)) {
                GpuConfig {
                    scheduler: prf_sim::SchedulerPolicy::TwoLevel {
                        active_per_scheduler: 2,
                    },
                    ..base_gpu.clone()
                }
            } else {
                base_gpu.clone()
            };
            let r = run_experiment(&gpu, &rf, &launches(), &[]).unwrap();
            let audit = r.audit.expect("audit enabled");
            assert!(audit.is_clean(), "{}: {audit}", r.rf_name);
            // The cross-crate checks actually ran.
            assert!(audit.checks > 0);
            assert_eq!(audit.issue_events, r.stats.instructions);
        }
    }

    #[test]
    fn audit_absent_when_disabled() {
        let r = run_experiment(&small_gpu(), &RfKind::MrfStv, &launches(), &[]).unwrap();
        assert!(r.audit.is_none());
    }

    #[test]
    fn tampered_rfc_writeback_counter_fails_the_cross_check() {
        // Mutation test for the cross-crate invariant: replay the checks
        // run_experiment performs, but with a drifted telemetry counter.
        let gpu = GpuConfig {
            audit: true,
            scheduler: prf_sim::SchedulerPolicy::TwoLevel {
                active_per_scheduler: 2,
            },
            ..small_gpu()
        };
        let rfc = RfcConfig::paper_default(gpu.num_rf_banks, gpu.max_warps_per_sm);
        let r = run_experiment(&gpu, &RfKind::Rfc(rfc), &launches(), &[]).unwrap();
        let clean = r.audit.expect("audit enabled");
        assert!(clean.is_clean(), "{clean}");
        assert!(clean.rfc_evict_events > 0, "workload must evict");

        let mut tampered = clean.clone();
        tampered.check_counts(
            "RFC write-back conservation",
            tampered.rfc_evict_events,
            r.telemetry.rfc_writebacks + 1, // the deliberate drift
            r.cycles,
            None,
        );
        assert!(!tampered.is_clean());
        assert_eq!(
            tampered.violations[0].invariant,
            "RFC write-back conservation"
        );
    }

    #[test]
    fn faulty_ntv_run_audits_clean_with_nonzero_repairs() {
        use crate::faults::RepairPolicy;
        use prf_finfet::{FaultGeometry, FaultMap, SramCell, NTV};

        let gpu = GpuConfig {
            audit: true,
            ..small_gpu()
        };
        let map = FaultMap::from_montecarlo(SramCell::T8, NTV, FaultGeometry::kepler_rf(), 42);
        let fc = FaultConfig::new(map, RepairPolicy::SpareRow { spares_per_bank: 4 });
        let r = run_experiment_with_faults(
            &gpu,
            &RfKind::MrfNtv { latency: 3 },
            &launches(),
            &[],
            Some(&fc),
        )
        .unwrap();
        let audit = r.audit.expect("audit enabled");
        assert!(audit.is_clean(), "{audit}");
        assert!(
            r.telemetry.total_fault_repairs() > 0,
            "an NTV map must trip repairs: {}",
            fc.map
        );
        assert_eq!(
            audit.total_repair_events(),
            r.telemetry.total_fault_repairs()
        );
        assert!(r.repair_energy_pj > 0.0);
        // The premium is part of the dynamic total.
        assert!(r.dynamic_energy_pj > r.repair_energy_pj);
    }

    #[test]
    fn fault_free_map_is_indistinguishable_from_no_map() {
        use crate::faults::RepairPolicy;
        use prf_finfet::{FaultGeometry, FaultMap};

        let gpu = GpuConfig {
            audit: true,
            ..small_gpu()
        };
        let rf = RfKind::MrfNtv { latency: 3 };
        let clean = FaultConfig::new(
            FaultMap::fault_free(FaultGeometry::kepler_rf()),
            RepairPolicy::DisableAndSpill,
        );
        let with = run_experiment_with_faults(&gpu, &rf, &launches(), &[], Some(&clean)).unwrap();
        let without = run_experiment(&gpu, &rf, &launches(), &[]).unwrap();
        assert_eq!(with.cycles, without.cycles);
        assert_eq!(with.stats.instructions, without.stats.instructions);
        assert_eq!(with.dynamic_energy_pj, without.dynamic_energy_pj);
        assert_eq!(with.repair_energy_pj, 0.0);
        assert_eq!(with.telemetry.total_fault_repairs(), 0);
        assert!(with.audit.as_ref().unwrap().is_clean());
        // Identical rendered reports, including the absent repair line.
        assert_eq!(with.to_string(), without.to_string());
    }

    #[test]
    fn every_policy_survives_an_audited_faulty_run() {
        use crate::faults::RepairPolicy;
        use prf_finfet::{FaultGeometry, FaultMap, SramCell, NTV};

        let gpu = GpuConfig {
            audit: true,
            ..small_gpu()
        };
        let map = FaultMap::from_montecarlo(SramCell::T8, NTV, FaultGeometry::kepler_rf(), 7);
        for policy in [
            RepairPolicy::SpareRow { spares_per_bank: 2 },
            RepairPolicy::DisableAndSpill,
            RepairPolicy::EscalateVdd,
        ] {
            let fc = FaultConfig::new(map.clone(), policy);
            let r = run_experiment_with_faults(
                &gpu,
                &RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks)),
                &launches(),
                &[],
                Some(&fc),
            )
            .unwrap();
            let audit = r.audit.expect("audit enabled");
            assert!(audit.is_clean(), "{policy:?}: {audit}");
            assert!(
                r.telemetry.total_fault_repairs() > 0,
                "{policy:?} tripped no repairs"
            );
        }
    }

    /// The full cross-product guard for the SM-parallel path: stateful RF
    /// models (telemetry, epoch detectors, drowsy wake tracking) x
    /// schedulers with different prioritize behaviour, all audited and
    /// sampled, must produce bit-identical experiment results whether the
    /// SMs step serially or on a worker pool.
    #[test]
    fn sm_parallel_experiments_are_bit_identical() {
        let schedulers = [
            prf_sim::SchedulerPolicy::Gto,
            prf_sim::SchedulerPolicy::TwoLevel {
                active_per_scheduler: 2,
            },
        ];
        for scheduler in schedulers {
            let base_gpu = GpuConfig {
                num_sms: 4,
                audit: true,
                trace_capacity: 1 << 12,
                sampling: Some(prf_sim::SamplingConfig { window: 64 }),
                scheduler,
                ..small_gpu()
            };
            let kinds = [
                RfKind::Partitioned(PartitionedRfConfig::paper_default(base_gpu.num_rf_banks)),
                RfKind::Drowsy(DrowsyConfig::paper_adjacent(
                    base_gpu.num_rf_banks,
                    base_gpu.max_warps_per_sm,
                )),
            ];
            for rf in kinds {
                let serial = run_experiment(&base_gpu, &rf, &launches(), &[]).unwrap();
                let parallel_gpu = GpuConfig {
                    sm_threads: 4,
                    ..base_gpu.clone()
                };
                let parallel = run_experiment(&parallel_gpu, &rf, &launches(), &[]).unwrap();
                let tag = format!("{} under {scheduler:?}", rf.name());
                assert_eq!(serial.cycles, parallel.cycles, "{tag}: cycles");
                assert_eq!(serial.stats, parallel.stats, "{tag}: stats");
                assert_eq!(serial.per_launch, parallel.per_launch, "{tag}: launches");
                assert_eq!(serial.audit, parallel.audit, "{tag}: audit");
                assert!(parallel.audit.as_ref().unwrap().is_clean(), "{tag}");
                assert_eq!(
                    serial.dynamic_energy_pj.to_bits(),
                    parallel.dynamic_energy_pj.to_bits(),
                    "{tag}: energy"
                );
            }
        }
    }

    /// Skip-ahead must be invisible to audited experiments: same stats,
    /// trace, samples, audit, and energy as the fully stepped run.
    #[test]
    fn skip_ahead_experiments_are_bit_identical() {
        let base_gpu = GpuConfig {
            num_sms: 2,
            audit: true,
            trace_capacity: 1 << 12,
            sampling: Some(prf_sim::SamplingConfig { window: 64 }),
            skip_ahead: false,
            ..small_gpu()
        };
        let kinds = [
            RfKind::MrfNtv { latency: 3 },
            RfKind::Partitioned(PartitionedRfConfig::paper_default(base_gpu.num_rf_banks)),
        ];
        for rf in kinds {
            let stepped = run_experiment(&base_gpu, &rf, &launches(), &[]).unwrap();
            let skipping_gpu = GpuConfig {
                skip_ahead: true,
                ..base_gpu.clone()
            };
            let skipping = run_experiment(&skipping_gpu, &rf, &launches(), &[]).unwrap();
            assert_eq!(stepped.cycles, skipping.cycles, "{}", rf.name());
            assert_eq!(stepped.stats, skipping.stats, "{}", rf.name());
            assert_eq!(stepped.per_launch, skipping.per_launch, "{}", rf.name());
            assert_eq!(stepped.audit, skipping.audit, "{}", rf.name());
            assert!(skipping.audit.as_ref().unwrap().is_clean(), "{}", rf.name());
        }
    }

    #[test]
    fn rf_kind_names() {
        assert_eq!(RfKind::MrfStv.name(), "MRF@STV");
        assert_eq!(RfKind::MrfNtv { latency: 3 }.name(), "MRF@NTV");
    }

    #[test]
    fn experiment_inputs_validate_clean_for_a_real_workload() {
        assert_eq!(
            validate_experiment_inputs(&small_gpu(), &launches(), None),
            Ok(())
        );
    }

    #[test]
    fn empty_experiment_rejected() {
        let err = validate_experiment_inputs(&small_gpu(), &[], None).unwrap_err();
        assert!(err.to_string().contains("no launches"), "{err}");
    }

    #[test]
    fn hostile_launch_rejected_before_any_machine_state() {
        // A CTA whose register demand exceeds the whole RF never
        // dispatches; pre-validation turns the silent spin into a typed
        // rejection, and run_experiment surfaces it as SimError::Invalid.
        let gpu = GpuConfig {
            rf_registers: 256,
            ..small_gpu()
        };
        let hostile = launches();
        let err = validate_experiment_inputs(&gpu, &hostile, None).unwrap_err();
        assert!(err.to_string().contains("register file"), "{err}");
        let sim_err = run_experiment(&gpu, &RfKind::MrfStv, &hostile, &[]).unwrap_err();
        assert!(matches!(sim_err, SimError::Invalid(_)), "{sim_err}");
        assert!(sim_err.is_deterministic(), "rejections must not be retried");
    }

    #[test]
    fn empty_fault_geometry_rejected() {
        // from_montecarlo can't build an empty map, but a text artifact can
        // declare one — and an empty dimension is a mod-by-zero inside
        // FaultedRf. The experiment layer must reject it up front.
        let text = "faultmap v1\ncell=8T vdd=0.3 seed=1\n\
                    banks=0 rows_per_bank=4 cells_per_row=8\n\n";
        let map = prf_finfet::FaultMap::from_text(text).unwrap();
        let fc = FaultConfig::new(map, RepairPolicy::DisableAndSpill);
        let err = validate_experiment_inputs(&small_gpu(), &launches(), Some(&fc)).unwrap_err();
        assert!(
            matches!(err, prf_sim::ValidationError::Fault { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("empty dimension"), "{err}");
        let sim_err =
            run_experiment_with_faults(&small_gpu(), &RfKind::MrfStv, &launches(), &[], Some(&fc))
                .unwrap_err();
        assert!(matches!(sim_err, SimError::Invalid(_)), "{sim_err}");
    }

    #[test]
    fn oversubscribed_spares_rejected() {
        let map = prf_finfet::FaultMap::fault_free(prf_finfet::FaultGeometry {
            banks: 2,
            rows_per_bank: 4,
            cells_per_row: 8,
        });
        let fc = FaultConfig::new(map, RepairPolicy::SpareRow { spares_per_bank: 5 });
        let err = validate_experiment_inputs(&small_gpu(), &launches(), Some(&fc)).unwrap_err();
        assert!(err.to_string().contains("spares per bank"), "{err}");
    }
}
