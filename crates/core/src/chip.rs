//! Chip-level power context.
//!
//! The paper motivates the work with GPUWattch's breakdown: "the RF
//! consumes 13.4% and 17.2% of the GTX-480 and Quadro FX5600 chips power
//! respectively" (§I). This module translates register-file-level savings
//! into whole-chip savings under those published shares, and computes the
//! usual energy–delay figures of merit.

/// A GPU chip whose register-file power share is known.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipProfile {
    /// Chip name.
    pub name: &'static str,
    /// Fraction of total chip power consumed by the register files.
    pub rf_power_share: f64,
}

impl ChipProfile {
    /// NVIDIA GTX-480 (GPUWattch): RF = 13.4 % of chip power.
    pub fn gtx480() -> Self {
        ChipProfile {
            name: "GTX-480",
            rf_power_share: 0.134,
        }
    }

    /// NVIDIA Quadro FX5600 (GPUWattch): RF = 17.2 % of chip power.
    pub fn quadro_fx5600() -> Self {
        ChipProfile {
            name: "Quadro FX5600",
            rf_power_share: 0.172,
        }
    }

    /// Whole-chip power saving implied by a register-file-level saving,
    /// with everything else unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `rf_saving` is outside `[0, 1]`.
    pub fn chip_saving(&self, rf_saving: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&rf_saving),
            "saving must be a fraction"
        );
        self.rf_power_share * rf_saving
    }
}

/// Energy–delay figures of merit for comparing design points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyDelay {
    /// Total RF energy (dynamic + leakage) in picojoules.
    pub energy_pj: f64,
    /// Execution time in cycles.
    pub cycles: u64,
}

impl EnergyDelay {
    /// Energy × delay (pJ·cycles) — lower is better.
    pub fn edp(&self) -> f64 {
        self.energy_pj * self.cycles as f64
    }

    /// Energy × delay² (pJ·cycles²) — emphasises performance.
    pub fn ed2p(&self) -> f64 {
        self.energy_pj * (self.cycles as f64).powi(2)
    }

    /// EDP of this design normalised to a baseline (values < 1 mean this
    /// design wins the energy-performance trade-off).
    pub fn edp_vs(&self, baseline: &EnergyDelay) -> f64 {
        self.edp() / baseline.edp().max(f64::MIN_POSITIVE)
    }
}

impl From<&crate::experiment::ExperimentResult> for EnergyDelay {
    fn from(r: &crate::experiment::ExperimentResult) -> Self {
        EnergyDelay {
            energy_pj: r.dynamic_energy_pj + r.leakage_energy_pj,
            cycles: r.cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_chip_shares() {
        assert!((ChipProfile::gtx480().rf_power_share - 0.134).abs() < 1e-12);
        assert!((ChipProfile::quadro_fx5600().rf_power_share - 0.172).abs() < 1e-12);
    }

    #[test]
    fn chip_saving_scales_by_share() {
        // A 54% RF saving on the GTX-480 is ~7.2% of chip power.
        let s = ChipProfile::gtx480().chip_saving(0.54);
        assert!((s - 0.07236).abs() < 1e-9);
        // ...and ~9.3% on the Quadro.
        let q = ChipProfile::quadro_fx5600().chip_saving(0.54);
        assert!((q - 0.09288).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_out_of_range_saving() {
        ChipProfile::gtx480().chip_saving(1.5);
    }

    #[test]
    fn edp_math() {
        let base = EnergyDelay {
            energy_pj: 100.0,
            cycles: 1000,
        };
        let improved = EnergyDelay {
            energy_pj: 50.0,
            cycles: 1020,
        };
        assert_eq!(base.edp(), 100_000.0);
        assert_eq!(base.ed2p(), 100_000_000.0);
        // Halving energy for 2% slowdown is a clear EDP win.
        let r = improved.edp_vs(&base);
        assert!(r < 0.52, "EDP ratio {r}");
    }
}
