//! Drowsy-register baseline, after the "Warped Register File" approach
//! the paper cites as related work (ref. \[4\], HPCA 2013: "Others explored the
//! option of power gating and drowsing unused registers").
//!
//! Registers that have not been accessed for a configurable number of
//! cycles drop into a *drowsy* state: the cell keeps its data at the
//! minimum retention voltage (leakage strongly reduced) but must be woken
//! — one extra cycle — before it can be accessed. This gives the
//! reproduction a third energy-saving design point to compare against the
//! paper's partitioned RF:
//!
//! * drowsy attacks **leakage** (proportional to the fraction of
//!   register-cycles spent drowsy) but not per-access dynamic energy;
//! * the partitioned RF attacks **both**, which is the paper's argument
//!   for partitioning over drowsing.

use prf_isa::{Kernel, Reg, MAX_ARCH_REGS};
use prf_sim::rf::{default_bank, AccessKind, RegisterFileModel, ResolvedAccess, WarpLifecycle};
use prf_sim::RfPartition;

use crate::telemetry::SharedTelemetry;

/// Drowsy register-file configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrowsyConfig {
    /// Idle cycles after which a register goes drowsy (the HPCA'13 paper
    /// uses short windows; 100 cycles is a representative setting).
    pub drowsy_after: u64,
    /// Extra cycles to wake a drowsy register before access.
    pub wake_latency: u32,
    /// Base (awake) access latency.
    pub base_latency: u32,
    /// Register-file banks.
    pub num_banks: usize,
    /// Hardware warp slots.
    pub max_warps: usize,
    /// Leakage power of a drowsy cell relative to an awake cell
    /// (retention voltage scaling; ~0.25 is typical for drowsy caches).
    pub drowsy_leak_ratio: f64,
}

impl DrowsyConfig {
    /// Representative defaults over the STV MRF.
    pub fn paper_adjacent(num_banks: usize, max_warps: usize) -> Self {
        DrowsyConfig {
            drowsy_after: 100,
            wake_latency: 1,
            base_latency: 1,
            num_banks,
            max_warps,
            drowsy_leak_ratio: 0.25,
        }
    }
}

/// Telemetry specific to the drowsy model, reported through
/// [`DrowsyRf::summary`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DrowsySummary {
    /// Accesses that hit an awake register.
    pub awake_accesses: u64,
    /// Accesses that had to wake a drowsy register first.
    pub wake_accesses: u64,
    /// Estimated fraction of register-cycles spent drowsy.
    pub drowsy_fraction: f64,
}

/// The per-SM drowsy register file model.
#[derive(Debug)]
pub struct DrowsyRf {
    config: DrowsyConfig,
    /// Last access cycle per (warp, register); `None` = never accessed
    /// (drowsy from allocation).
    last_access: Vec<[Option<u64>; MAX_ARCH_REGS]>,
    awake_accesses: u64,
    wake_accesses: u64,
    /// Integrals for the drowsy-time estimate.
    drowsy_reg_cycles: f64,
    total_reg_cycles: f64,
    last_tick: u64,
    live_regs: usize,
    regs_per_thread: usize,
    #[allow(dead_code)]
    telemetry: SharedTelemetry,
}

impl DrowsyRf {
    /// Creates the model for one SM.
    pub fn new(config: DrowsyConfig, telemetry: SharedTelemetry) -> Self {
        DrowsyRf {
            last_access: vec![[None; MAX_ARCH_REGS]; config.max_warps],
            config,
            awake_accesses: 0,
            wake_accesses: 0,
            drowsy_reg_cycles: 0.0,
            total_reg_cycles: 0.0,
            last_tick: 0,
            live_regs: 0,
            regs_per_thread: MAX_ARCH_REGS,
            telemetry,
        }
    }

    fn is_drowsy(&self, warp_slot: usize, reg: Reg, cycle: u64) -> bool {
        match self.last_access[warp_slot][reg.index()] {
            None => true,
            Some(last) => cycle.saturating_sub(last) > self.config.drowsy_after,
        }
    }

    /// Run summary for energy accounting.
    pub fn summary(&self) -> DrowsySummary {
        DrowsySummary {
            awake_accesses: self.awake_accesses,
            wake_accesses: self.wake_accesses,
            drowsy_fraction: if self.total_reg_cycles > 0.0 {
                self.drowsy_reg_cycles / self.total_reg_cycles
            } else {
                0.0
            },
        }
    }

    /// Effective leakage power (mW) given the awake leakage of the full
    /// array: drowsy fraction leaks at the retention ratio.
    pub fn effective_leakage_mw(&self, awake_leak_mw: f64) -> f64 {
        let d = self.summary().drowsy_fraction;
        awake_leak_mw * ((1.0 - d) + d * self.config.drowsy_leak_ratio)
    }
}

impl RegisterFileModel for DrowsyRf {
    fn resolve(
        &mut self,
        warp_slot: usize,
        reg: Reg,
        _kind: AccessKind,
        cycle: u64,
    ) -> ResolvedAccess {
        let drowsy = self.is_drowsy(warp_slot, reg, cycle);
        self.last_access[warp_slot][reg.index()] = Some(cycle);
        let latency = if drowsy {
            self.wake_accesses += 1;
            self.config.base_latency + self.config.wake_latency
        } else {
            self.awake_accesses += 1;
            self.config.base_latency
        };
        ResolvedAccess {
            bank: default_bank(warp_slot, reg.index(), self.config.num_banks),
            latency,
            // Dynamic energy of a drowsy MRF access ≈ the STV MRF's (the
            // array still operates at full voltage when accessed).
            partition: RfPartition::MrfStv,
            phys_reg: reg.index(),
            repair: None,
        }
    }

    fn observe_access(&mut self, _warp_slot: usize, _reg: Reg, _kind: AccessKind, _cycle: u64) {}

    fn tick(&mut self, cycle: u64, _issued: u32) {
        // Sampled integration of the drowsy fraction (every 16 cycles to
        // keep the scan cheap).
        if !cycle.is_multiple_of(16) || cycle == self.last_tick {
            return;
        }
        self.last_tick = cycle;
        if self.live_regs == 0 {
            return;
        }
        let mut drowsy = 0usize;
        let mut total = 0usize;
        for (slot, regs) in self.last_access.iter().enumerate() {
            // Only scan warps that ever touched a register.
            if regs.iter().all(|r| r.is_none()) {
                continue;
            }
            for reg_last in regs.iter().take(self.regs_per_thread) {
                total += 1;
                let d = match reg_last {
                    None => true,
                    Some(last) => cycle.saturating_sub(*last) > self.config.drowsy_after,
                };
                if d {
                    drowsy += 1;
                }
            }
            let _ = slot;
        }
        self.drowsy_reg_cycles += drowsy as f64 * 16.0;
        self.total_reg_cycles += total as f64 * 16.0;
    }

    fn on_kernel_launch(&mut self, kernel: &Kernel, _cycle: u64) {
        self.regs_per_thread = kernel.regs_per_thread().max(1) as usize;
        for regs in &mut self.last_access {
            *regs = [None; MAX_ARCH_REGS];
        }
        self.live_regs = 0;
    }

    fn on_warp_start(&mut self, warp: WarpLifecycle, _cycle: u64) {
        self.last_access[warp.slot] = [None; MAX_ARCH_REGS];
        self.live_regs += self.regs_per_thread;
    }

    fn on_warp_finish(&mut self, warp: WarpLifecycle, _cycle: u64) {
        self.last_access[warp.slot] = [None; MAX_ARCH_REGS];
        self.live_regs = self.live_regs.saturating_sub(self.regs_per_thread);
    }

    fn name(&self) -> &str {
        "drowsy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::shared_telemetry;

    fn model() -> DrowsyRf {
        DrowsyRf::new(DrowsyConfig::paper_adjacent(24, 64), shared_telemetry())
    }

    #[test]
    fn first_access_wakes() {
        let mut m = model();
        let a = m.resolve(0, Reg(3), AccessKind::Read, 10);
        assert_eq!(a.latency, 2, "base 1 + wake 1");
        assert_eq!(m.summary().wake_accesses, 1);
    }

    #[test]
    fn recent_register_stays_awake() {
        let mut m = model();
        m.resolve(0, Reg(3), AccessKind::Write, 10);
        let a = m.resolve(0, Reg(3), AccessKind::Read, 50);
        assert_eq!(a.latency, 1);
        assert_eq!(m.summary().awake_accesses, 1);
    }

    #[test]
    fn idle_register_goes_drowsy_again() {
        let mut m = model();
        m.resolve(0, Reg(3), AccessKind::Write, 10);
        let a = m.resolve(0, Reg(3), AccessKind::Read, 10 + 101);
        assert_eq!(a.latency, 2, "beyond drowsy_after -> wake again");
    }

    #[test]
    fn drowsiness_is_per_warp() {
        let mut m = model();
        m.resolve(0, Reg(3), AccessKind::Write, 10);
        let other = m.resolve(1, Reg(3), AccessKind::Read, 11);
        assert_eq!(other.latency, 2, "warp 1's R3 was never touched");
    }

    #[test]
    fn drowsy_fraction_rises_when_idle() {
        let mut m = model();
        let mut kb = prf_isa::KernelBuilder::new("k");
        kb.mov_imm(Reg(7), 0);
        kb.exit();
        m.on_kernel_launch(&kb.build().unwrap(), 0);
        m.on_warp_start(
            WarpLifecycle {
                slot: 0,
                cta: 0,
                warp_in_cta: 0,
            },
            0,
        );
        m.resolve(0, Reg(0), AccessKind::Write, 0);
        // Tick far past the drowsy window without further accesses.
        for c in 1..=512u64 {
            m.tick(c, 0);
        }
        let s = m.summary();
        assert!(s.drowsy_fraction > 0.5, "fraction {}", s.drowsy_fraction);
    }

    #[test]
    fn effective_leakage_interpolates() {
        let mut m = model();
        // Force a known drowsy fraction.
        m.drowsy_reg_cycles = 50.0;
        m.total_reg_cycles = 100.0;
        // half awake (1.0) + half at 0.25 => 0.625 of awake leakage.
        let l = m.effective_leakage_mw(33.8);
        assert!((l - 33.8 * 0.625).abs() < 1e-9);
    }
}
