//! The indexed (RAM-based) swapping-table variant.
//!
//! §III-B: "We explored both the indexed and the CAM based designs for the
//! swapping table but given its small size and access energy compared to
//! the RF the differences between the two options are negligible. …
//! Even if the indexed design is used the results are unchanged."
//!
//! Where the CAM design stores only the 2n remapped entries and searches
//! them associatively, the indexed design is a direct-mapped 63-entry RAM
//! holding the physical register id for *every* architected register.
//! Functionally the two are the same permutation; they differ in storage
//! (63 × 6 bits vs 2n × 13 bits) and in access mechanics (indexed read vs
//! match-line search). This module provides the indexed variant plus an
//! equivalence check used by the tests, reproducing the paper's
//! "results are unchanged" claim by construction.

use prf_isa::{Reg, MAX_ARCH_REGS};

use crate::swap_table::SwappingTable;

/// Bits per indexed-table entry: one 6-bit physical register id.
pub const INDEXED_ENTRY_BITS: usize = 6;

/// Direct-mapped swapping table: `table[arch] = phys` for all 63
/// architected registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexedSwapTable {
    n: usize,
    table: [u8; MAX_ARCH_REGS],
}

impl IndexedSwapTable {
    /// Creates an identity table with an `n`-register FRF.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or larger than the architected register count.
    pub fn new(n: usize) -> Self {
        assert!(n > 0 && n <= MAX_ARCH_REGS, "FRF size out of range");
        let mut table = [0u8; MAX_ARCH_REGS];
        for (i, t) in table.iter_mut().enumerate() {
            *t = i as u8;
        }
        IndexedSwapTable { n, table }
    }

    /// Builds the indexed table from a CAM-style [`SwappingTable`] — the
    /// two designs hold the same permutation.
    pub fn from_cam(cam: &SwappingTable) -> Self {
        let mut t = IndexedSwapTable::new(cam.frf_size());
        for a in 0..MAX_ARCH_REGS as u8 {
            t.table[a as usize] = cam.lookup(Reg(a)).0;
        }
        t
    }

    /// FRF capacity (registers per thread).
    pub fn frf_size(&self) -> usize {
        self.n
    }

    /// Installs a hot-register set (reset-then-apply, identical semantics
    /// to the CAM design).
    pub fn apply_hot_registers(&mut self, hot: &[Reg]) {
        let mut cam = SwappingTable::new(self.n);
        cam.apply_hot_registers(hot);
        *self = Self::from_cam(&cam);
    }

    /// Physical register for an architected register — a direct RAM read,
    /// no search.
    pub fn lookup(&self, arch: Reg) -> Reg {
        Reg(self.table[arch.index()])
    }

    /// True when the register lives in the FRF.
    pub fn is_frf(&self, arch: Reg) -> bool {
        (self.table[arch.index()] as usize) < self.n
    }

    /// Total storage bits: 63 entries × 6 bits = 378 bits, vs the CAM's
    /// 104 bits for n = 4 — the indexed design trades storage for search
    /// logic.
    pub fn storage_bits(&self) -> usize {
        MAX_ARCH_REGS * INDEXED_ENTRY_BITS
    }

    /// Checks functional equivalence with a CAM table (the paper's
    /// "results are unchanged").
    pub fn equivalent_to_cam(&self, cam: &SwappingTable) -> bool {
        (0..MAX_ARCH_REGS as u8).all(|a| self.lookup(Reg(a)) == cam.lookup(Reg(a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_by_default() {
        let t = IndexedSwapTable::new(4);
        for a in 0..MAX_ARCH_REGS as u8 {
            assert_eq!(t.lookup(Reg(a)), Reg(a));
        }
        assert!(t.is_frf(Reg(0)));
        assert!(!t.is_frf(Reg(4)));
    }

    #[test]
    fn equivalent_to_cam_for_paper_example() {
        let mut cam = SwappingTable::new(4);
        cam.apply_hot_registers(&[Reg(8), Reg(9), Reg(10), Reg(11)]);
        let idx = IndexedSwapTable::from_cam(&cam);
        assert!(idx.equivalent_to_cam(&cam));
        assert_eq!(idx.lookup(Reg(8)), Reg(0));
        assert_eq!(idx.lookup(Reg(0)), Reg(8));
        assert!(idx.is_frf(Reg(11)));
    }

    #[test]
    fn apply_matches_cam_semantics() {
        let hot = [Reg(2), Reg(0), Reg(20), Reg(33)];
        let mut cam = SwappingTable::new(4);
        cam.apply_hot_registers(&hot);
        let mut idx = IndexedSwapTable::new(4);
        idx.apply_hot_registers(&hot);
        assert!(idx.equivalent_to_cam(&cam));
    }

    #[test]
    fn storage_tradeoff() {
        // Indexed: 63 x 6 = 378 bits for any n; CAM: 2n x 13.
        let idx = IndexedSwapTable::new(4);
        let cam = SwappingTable::new(4);
        assert_eq!(idx.storage_bits(), 378);
        assert_eq!(cam.storage_bits(), 104);
        assert!(idx.storage_bits() > cam.storage_bits());
    }

    #[test]
    #[should_panic(expected = "FRF size out of range")]
    fn zero_frf_rejected() {
        IndexedSwapTable::new(0);
    }
}
