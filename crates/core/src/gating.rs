//! Power gating of provably-dead register ranges (GREENER-style).
//!
//! The paper's leakage model ([`crate::energy::LeakageModel`]) charges a
//! register-file organisation's full structure for the whole run. A
//! compiler that knows per-instruction liveness (`prf-isa::liveness`)
//! can do better: register slots whose value is provably dead at a
//! program point can be power-gated, paying only a small residual
//! leakage (the gate transistor and wake-up retention overheads keep
//! the cell from being perfectly off).
//!
//! The credit is applied at the *experiment* layer, not inside the RF
//! models: the simulator's RF organisations meter dynamic accesses and
//! structural leakage, while dead-range gating is a property of the
//! *program* that the compiler proves offline. Keeping the credit in
//! the experiment arm (see `fig_greener` in `prf-bench`) means the
//! simulated timing and access streams stay bit-identical between the
//! gated and ungated arms — exactly the semantics-preservation contract
//! the reallocation pass is tested against.
//!
//! The model is intentionally static and conservative in shape: the
//! live fraction is the mean over program points of
//! `live registers / allocated register slots`, computed on the
//! rewritten kernel but normalised to the *original* allocation so both
//! compacted-away slots (dead everywhere) and transiently-dead ranges
//! earn the credit.

/// Leakage credit for power-gating provably-dead register slots.
///
/// `residual` is the fraction of a slot's nominal leakage that still
/// flows when the slot is gated. Literature on fine-grained RF power
/// gating puts the floor around 5–15%; the default is 10%.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerGatingModel {
    /// Fraction of nominal leakage a gated slot still draws, in `[0, 1]`.
    pub residual: f64,
}

impl Default for PowerGatingModel {
    fn default() -> Self {
        PowerGatingModel { residual: 0.10 }
    }
}

impl PowerGatingModel {
    /// The default model used by the `fig_greener` experiment.
    pub fn greener_default() -> Self {
        Self::default()
    }

    /// Effective leakage power for a structure whose nominal leakage is
    /// `full_mw`, when a `live_fraction` of its register slots hold live
    /// values (and the rest are gated). Inputs are clamped to `[0, 1]`.
    pub fn effective_leakage_mw(&self, full_mw: f64, live_fraction: f64) -> f64 {
        let live = live_fraction.clamp(0.0, 1.0);
        let residual = self.residual.clamp(0.0, 1.0);
        full_mw * (live + (1.0 - live) * residual)
    }

    /// Fractional leakage saving for a given live fraction:
    /// `1 - effective/full`. Zero when everything is live; `1 - residual`
    /// when everything is gated.
    pub fn leakage_saving(&self, live_fraction: f64) -> f64 {
        1.0 - self.effective_leakage_mw(1.0, live_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_live_earns_no_credit() {
        let g = PowerGatingModel::default();
        assert_eq!(g.effective_leakage_mw(33.8, 1.0), 33.8);
        assert_eq!(g.leakage_saving(1.0), 0.0);
    }

    #[test]
    fn fully_dead_leaves_only_residual() {
        let g = PowerGatingModel { residual: 0.10 };
        let eff = g.effective_leakage_mw(100.0, 0.0);
        assert!((eff - 10.0).abs() < 1e-12);
        assert!((g.leakage_saving(0.0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn saving_is_monotone_in_dead_fraction() {
        let g = PowerGatingModel::default();
        let mut prev = -1.0;
        for i in 0..=10 {
            let dead = i as f64 / 10.0;
            let s = g.leakage_saving(1.0 - dead);
            assert!(s >= prev, "saving must grow as more slots die");
            prev = s;
        }
    }

    #[test]
    fn out_of_range_inputs_are_clamped() {
        let g = PowerGatingModel { residual: 0.10 };
        assert_eq!(
            g.effective_leakage_mw(50.0, 1.7),
            g.effective_leakage_mw(50.0, 1.0)
        );
        assert_eq!(
            g.effective_leakage_mw(50.0, -0.3),
            g.effective_leakage_mw(50.0, 0.0)
        );
    }
}
