//! The partitioned register file — the paper's proposed design (§III/§IV).
//!
//! One instance exists per SM. It routes every access through the
//! `SwappingTable`: physical registers `0..n-1` of
//! each warp live in the FRF (STV, 1 cycle in high-power mode, 2 in
//! low-power mode), the rest in the SRF (NTV, 3 cycles). The mapping is
//! driven by the configured [`ProfilingStrategy`]; the FRF power mode by
//! the [`AdaptiveFrf`] epoch detector.

use prf_isa::{Kernel, Reg};
use prf_sim::rf::{default_bank, AccessKind, RegisterFileModel, ResolvedAccess, WarpLifecycle};
use prf_sim::RfPartition;

use crate::adaptive::{AdaptiveFrf, AdaptiveFrfConfig, FrfMode};
use crate::profile::{compiler_hot_registers, PilotProfiler, ProfilingStrategy};
use crate::swap_table::SwappingTable;
use crate::telemetry::SharedTelemetry;

/// Configuration of the partitioned register file.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedRfConfig {
    /// FRF registers per thread (the paper's n; 4 in the main evaluation,
    /// giving a 32 KB FRF and 224 KB SRF).
    pub frf_regs: usize,
    /// FRF access latency in high-power mode (cycles).
    pub frf_high_latency: u32,
    /// FRF access latency in low-power mode (cycles).
    pub frf_low_latency: u32,
    /// SRF access latency (3 in the main evaluation; 4 and 5 in the §V-C
    /// sensitivity study).
    pub srf_latency: u32,
    /// Register-file banks.
    pub num_banks: usize,
    /// How hot registers are identified.
    pub strategy: ProfilingStrategy,
    /// Adaptive FRF epoch detection; `None` pins the FRF in high-power
    /// mode (the plain "partitioned RF" bars of Fig. 11).
    pub adaptive: Option<AdaptiveFrfConfig>,
    /// Conservative swap-table pipelining: the paper integrates the
    /// 55–105 ps CAM search into the register access, but also evaluates
    /// the case where it "adds one cycle to the register access pipeline"
    /// and reports <1% overhead (§III-B). Set to add that cycle.
    pub swap_table_extra_cycle: bool,
}

impl PartitionedRfConfig {
    /// The paper's preferred design: n = 4, 1/2/3-cycle latencies, hybrid
    /// profiling, adaptive FRF on.
    pub fn paper_default(num_banks: usize) -> Self {
        PartitionedRfConfig {
            frf_regs: 4,
            frf_high_latency: 1,
            frf_low_latency: 2,
            srf_latency: 3,
            num_banks,
            strategy: ProfilingStrategy::Hybrid,
            adaptive: Some(AdaptiveFrfConfig::paper_default()),
            swap_table_extra_cycle: false,
        }
    }

    /// Same design without the adaptive FRF (always high-power).
    pub fn without_adaptive(num_banks: usize) -> Self {
        PartitionedRfConfig {
            adaptive: None,
            ..Self::paper_default(num_banks)
        }
    }
}

/// The per-SM partitioned register file model.
#[derive(Debug)]
pub struct PartitionedRf {
    config: PartitionedRfConfig,
    swap: SwappingTable,
    pilot: PilotProfiler,
    adaptive: AdaptiveFrf,
    telemetry: SharedTelemetry,
    /// Only SM 0 writes the hot-register telemetry to avoid cross-SM
    /// clobbering (all SMs converge to the same sets anyway).
    is_reporting_sm: bool,
    launch_cycle: u64,
}

impl PartitionedRf {
    /// Creates the model for one SM.
    pub fn new(sm_id: usize, config: PartitionedRfConfig, telemetry: SharedTelemetry) -> Self {
        let swap = SwappingTable::new(config.frf_regs);
        let adaptive = AdaptiveFrf::new(config.adaptive.unwrap_or_default());
        PartitionedRf {
            config,
            swap,
            pilot: PilotProfiler::new(),
            adaptive,
            telemetry,
            is_reporting_sm: sm_id == 0,
            launch_cycle: 0,
        }
    }

    /// Current architected→physical mapping (for inspection/tests).
    pub fn swap_table(&self) -> &SwappingTable {
        &self.swap
    }

    /// Current FRF power mode.
    pub fn frf_mode(&self) -> FrfMode {
        if self.config.adaptive.is_some() {
            self.adaptive.mode()
        } else {
            FrfMode::High
        }
    }
}

impl RegisterFileModel for PartitionedRf {
    fn resolve(
        &mut self,
        warp_slot: usize,
        reg: Reg,
        _kind: AccessKind,
        _cycle: u64,
    ) -> ResolvedAccess {
        let phys = self.swap.lookup(reg);
        let (mut latency, partition) = if phys.index() < self.config.frf_regs {
            match self.frf_mode() {
                FrfMode::High => (self.config.frf_high_latency, RfPartition::FrfHigh),
                FrfMode::Low => (self.config.frf_low_latency, RfPartition::FrfLow),
            }
        } else {
            (self.config.srf_latency, RfPartition::Srf)
        };
        if self.config.swap_table_extra_cycle {
            latency += 1;
        }
        ResolvedAccess {
            bank: default_bank(warp_slot, phys.index(), self.config.num_banks),
            latency,
            partition,
            phys_reg: phys.index(),
            repair: None,
        }
    }

    fn observe_access(&mut self, warp_slot: usize, reg: Reg, _kind: AccessKind, _cycle: u64) {
        if self.config.strategy.uses_pilot() {
            self.pilot.observe(warp_slot, reg);
        }
    }

    fn frf_low_mode(&self) -> Option<bool> {
        self.config
            .adaptive
            .is_some()
            .then(|| self.frf_mode() == FrfMode::Low)
    }

    fn tick(&mut self, _cycle: u64, issued: u32) {
        if self.config.adaptive.is_some() {
            self.adaptive.tick(issued);
            if self.is_reporting_sm {
                let mut t = self.telemetry.lock().unwrap();
                t.frf_high_epochs = self.adaptive.high_epochs;
                t.frf_low_epochs = self.adaptive.low_epochs;
            }
        }
    }

    fn on_kernel_launch(&mut self, kernel: &Kernel, cycle: u64) {
        self.launch_cycle = cycle;
        self.adaptive.reset();
        self.swap.reset();
        match &self.config.strategy {
            ProfilingStrategy::StaticFirstN => {}
            ProfilingStrategy::Oracle(hot) => {
                let hot = hot.clone();
                self.swap.apply_hot_registers(&hot);
            }
            strategy => {
                if strategy.uses_compiler() {
                    let hot = compiler_hot_registers(kernel, self.config.frf_regs);
                    if self.is_reporting_sm {
                        self.telemetry.lock().unwrap().compiler_hot_regs = hot.clone();
                    }
                    self.swap.apply_hot_registers(&hot);
                }
            }
        }
        if self.config.strategy.uses_pilot() {
            self.pilot.on_kernel_launch();
        }
    }

    fn on_warp_start(&mut self, warp: WarpLifecycle, _cycle: u64) {
        if self.config.strategy.uses_pilot() {
            self.pilot.on_warp_start(warp.slot);
        }
    }

    fn on_warp_finish(&mut self, warp: WarpLifecycle, cycle: u64) {
        if !self.config.strategy.uses_pilot() {
            return;
        }
        if let Some(hot) = self.pilot.on_warp_finish(warp.slot, self.config.frf_regs) {
            // Reset-then-apply, as in Fig. 6c.
            self.swap.apply_hot_registers(&hot);
            if self.is_reporting_sm {
                let mut t = self.telemetry.lock().unwrap();
                t.pilot_hot_regs = hot;
                t.pilot_done_cycle = Some(cycle - self.launch_cycle);
            }
        }
    }

    fn name(&self) -> &str {
        "partitioned-rf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::shared_telemetry;
    use prf_isa::KernelBuilder;

    fn test_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("k");
        // R10 dominates statically.
        kb.mov_imm(Reg(10), 1);
        kb.iadd(Reg(10), Reg(10), Reg(10));
        kb.iadd(Reg(5), Reg(10), Reg(10));
        kb.exit();
        kb.build().unwrap()
    }

    fn hybrid_rf() -> (PartitionedRf, SharedTelemetry) {
        let t = shared_telemetry();
        let rf = PartitionedRf::new(
            0,
            PartitionedRfConfig::paper_default(24),
            std::sync::Arc::clone(&t),
        );
        (rf, t)
    }

    #[test]
    fn static_first_n_routes_low_regs_to_frf() {
        let t = shared_telemetry();
        let cfg = PartitionedRfConfig {
            strategy: ProfilingStrategy::StaticFirstN,
            adaptive: None,
            ..PartitionedRfConfig::paper_default(24)
        };
        let mut rf = PartitionedRf::new(0, cfg, t);
        rf.on_kernel_launch(&test_kernel(), 0);
        let a = rf.resolve(0, Reg(3), AccessKind::Read, 0);
        assert_eq!(a.partition, RfPartition::FrfHigh);
        assert_eq!(a.latency, 1);
        let b = rf.resolve(0, Reg(4), AccessKind::Read, 0);
        assert_eq!(b.partition, RfPartition::Srf);
        assert_eq!(b.latency, 3);
    }

    #[test]
    fn compiler_strategy_moves_hot_reg_to_frf_at_launch() {
        let (mut rf, t) = hybrid_rf();
        rf.on_kernel_launch(&test_kernel(), 0);
        // R10 is statically hottest -> FRF immediately (hybrid seeds from
        // the compiler while the pilot runs).
        let a = rf.resolve(0, Reg(10), AccessKind::Read, 0);
        assert_eq!(a.partition, RfPartition::FrfHigh);
        assert_eq!(t.lock().unwrap().compiler_hot_regs[0], Reg(10));
    }

    #[test]
    fn pilot_completion_remaps() {
        let (mut rf, t) = hybrid_rf();
        rf.on_kernel_launch(&test_kernel(), 0);
        let w = WarpLifecycle {
            slot: 2,
            cta: 0,
            warp_in_cta: 0,
        };
        rf.on_warp_start(w, 5);
        // Pilot accesses R20 far more than anything else.
        for _ in 0..50 {
            rf.observe_access(2, Reg(20), AccessKind::Read, 6);
        }
        rf.observe_access(2, Reg(10), AccessKind::Read, 6);
        // Before the pilot completes, R20 is still in the SRF.
        assert_eq!(
            rf.resolve(0, Reg(20), AccessKind::Read, 7).partition,
            RfPartition::Srf
        );
        rf.on_warp_finish(w, 100);
        // After: R20 in FRF, and telemetry recorded it.
        assert_eq!(
            rf.resolve(0, Reg(20), AccessKind::Read, 101).partition,
            RfPartition::FrfHigh
        );
        assert_eq!(t.lock().unwrap().pilot_hot_regs[0], Reg(20));
        assert_eq!(t.lock().unwrap().pilot_done_cycle, Some(100));
    }

    #[test]
    fn non_pilot_accesses_do_not_pollute_counters() {
        let (mut rf, _) = hybrid_rf();
        rf.on_kernel_launch(&test_kernel(), 0);
        rf.on_warp_start(
            WarpLifecycle {
                slot: 0,
                cta: 0,
                warp_in_cta: 0,
            },
            0,
        );
        rf.on_warp_start(
            WarpLifecycle {
                slot: 1,
                cta: 0,
                warp_in_cta: 1,
            },
            0,
        );
        // Slot 1 (not the pilot) hammers R30.
        for _ in 0..100 {
            rf.observe_access(1, Reg(30), AccessKind::Read, 1);
        }
        rf.observe_access(0, Reg(7), AccessKind::Write, 1);
        rf.on_warp_finish(
            WarpLifecycle {
                slot: 0,
                cta: 0,
                warp_in_cta: 0,
            },
            10,
        );
        // Pilot saw only R7.
        assert_eq!(
            rf.resolve(0, Reg(7), AccessKind::Read, 11).partition,
            RfPartition::FrfHigh
        );
        assert_eq!(
            rf.resolve(0, Reg(30), AccessKind::Read, 11).partition,
            RfPartition::Srf
        );
    }

    #[test]
    fn adaptive_mode_changes_latency_and_partition() {
        let (mut rf, _) = hybrid_rf();
        rf.on_kernel_launch(&test_kernel(), 0);
        // 50 idle cycles -> next epoch low-power.
        for _ in 0..50 {
            rf.tick(0, 0);
        }
        // R10 is the compiler-hot register, so it sits in the FRF.
        let a = rf.resolve(0, Reg(10), AccessKind::Read, 51);
        assert_eq!(a.partition, RfPartition::FrfLow);
        assert_eq!(a.latency, 2);
        // SRF is unaffected by the FRF mode.
        let b = rf.resolve(0, Reg(40), AccessKind::Read, 51);
        assert_eq!(b.partition, RfPartition::Srf);
    }

    #[test]
    fn srf_latency_sensitivity_config() {
        let t = shared_telemetry();
        let cfg = PartitionedRfConfig {
            srf_latency: 5,
            ..PartitionedRfConfig::without_adaptive(24)
        };
        let mut rf = PartitionedRf::new(0, cfg, t);
        rf.on_kernel_launch(&test_kernel(), 0);
        assert_eq!(rf.resolve(0, Reg(50), AccessKind::Read, 0).latency, 5);
    }

    #[test]
    fn oracle_strategy_applies_given_set() {
        let t = shared_telemetry();
        let cfg = PartitionedRfConfig {
            strategy: ProfilingStrategy::Oracle(vec![Reg(33), Reg(44)]),
            adaptive: None,
            ..PartitionedRfConfig::paper_default(24)
        };
        let mut rf = PartitionedRf::new(0, cfg, t);
        rf.on_kernel_launch(&test_kernel(), 0);
        assert!(rf.swap_table().is_frf(Reg(33)));
        assert!(rf.swap_table().is_frf(Reg(44)));
    }

    #[test]
    fn banks_follow_physical_register() {
        let (mut rf, _) = hybrid_rf();
        rf.on_kernel_launch(&test_kernel(), 0);
        // R10 -> phys 0 (hot), so bank = warp_slot % 24.
        let a = rf.resolve(7, Reg(10), AccessKind::Read, 0);
        assert_eq!(a.bank, 7);
    }

    #[test]
    fn second_kernel_relaunch_resets_mapping() {
        let (mut rf, _) = hybrid_rf();
        rf.on_kernel_launch(&test_kernel(), 0);
        let w = WarpLifecycle {
            slot: 0,
            cta: 0,
            warp_in_cta: 0,
        };
        rf.on_warp_start(w, 0);
        for _ in 0..10 {
            rf.observe_access(0, Reg(60), AccessKind::Read, 1);
        }
        rf.on_warp_finish(w, 50);
        assert!(rf.swap_table().is_frf(Reg(60)));
        // backprop-style second kernel with a different static profile.
        let mut kb = KernelBuilder::new("k2");
        kb.mov_imm(Reg(40), 1);
        kb.iadd(Reg(40), Reg(40), Reg(40));
        kb.exit();
        rf.on_kernel_launch(&kb.build().unwrap(), 1000);
        assert!(
            !rf.swap_table().is_frf(Reg(60)),
            "old pilot mapping cleared"
        );
        assert!(rf.swap_table().is_frf(Reg(40)), "new compiler seed applied");
    }
}
