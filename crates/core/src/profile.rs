//! Hot-register profiling: compiler-based, pilot-warp, and hybrid
//! (§III-A), plus the architectural support of §III-B.

use prf_isa::{Kernel, Reg, StaticRegisterProfile, MAX_ARCH_REGS};

/// Which profiling technique drives the FRF allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfilingStrategy {
    /// No profiling: the first `n` architected registers stay in the FRF
    /// (the naive static allocation the paper rejects in §III — only 25%
    /// of sgemm's accesses would hit the FRF).
    StaticFirstN,
    /// Compiler-based: static occurrence counts from the kernel binary.
    Compiler,
    /// Pilot-warp only: identity mapping until the pilot warp completes,
    /// then its dynamic counts pick the hot set.
    PilotOnly,
    /// Hybrid: compiler counts seed the mapping at launch; the pilot
    /// warp's dynamic counts replace them when it finishes — the paper's
    /// preferred design.
    Hybrid,
    /// Oracle: an externally supplied hot set (the "optimal" bar of
    /// Fig. 4, computed from a completed run's histogram).
    Oracle(Vec<Reg>),
}

impl ProfilingStrategy {
    /// Whether this strategy runs the pilot-warp machinery.
    pub fn uses_pilot(&self) -> bool {
        matches!(
            self,
            ProfilingStrategy::PilotOnly | ProfilingStrategy::Hybrid
        )
    }

    /// Whether this strategy seeds the mapping from the compiler profile
    /// at kernel launch.
    pub fn uses_compiler(&self) -> bool {
        matches!(
            self,
            ProfilingStrategy::Compiler | ProfilingStrategy::Hybrid
        )
    }

    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ProfilingStrategy::StaticFirstN => "static",
            ProfilingStrategy::Compiler => "compiler",
            ProfilingStrategy::PilotOnly => "pilot",
            ProfilingStrategy::Hybrid => "hybrid",
            ProfilingStrategy::Oracle(_) => "optimal",
        }
    }
}

/// Compiler-based profiling (§III-A1): the `n` registers that appear most
/// often in the kernel binary.
pub fn compiler_hot_registers(kernel: &Kernel, n: usize) -> Vec<Reg> {
    StaticRegisterProfile::analyze(kernel).top_n(n)
}

/// The per-SM pilot-warp profiling hardware (§III-B): 63 two-byte
/// saturating access counters, a one-byte pilot-warp-id register, and the
/// profile mask bit.
#[derive(Debug, Clone)]
pub struct PilotProfiler {
    /// The 63 × 2-byte counters.
    counters: [u16; MAX_ARCH_REGS],
    /// The pilot-warp-id register (hardware warp slot); `None` until a
    /// pilot is selected.
    pilot_slot: Option<usize>,
    /// The profile mask bit: set while the pilot is collecting counts.
    mask: bool,
}

impl PilotProfiler {
    /// Creates an idle profiler (mask clear — set on kernel launch).
    pub fn new() -> Self {
        PilotProfiler {
            counters: [0; MAX_ARCH_REGS],
            pilot_slot: None,
            mask: false,
        }
    }

    /// Kernel launch: clear the counters, set the mask bit, forget the
    /// previous pilot.
    pub fn on_kernel_launch(&mut self) {
        self.counters = [0; MAX_ARCH_REGS];
        self.pilot_slot = None;
        self.mask = true;
    }

    /// A warp became resident. The first warp to start while the mask is
    /// set becomes the pilot ("one of the first running warps", §III-A2).
    pub fn on_warp_start(&mut self, slot: usize) {
        if self.mask && self.pilot_slot.is_none() {
            self.pilot_slot = Some(slot);
        }
    }

    /// A register access was scheduled by warp `slot`: count it if the
    /// mask is set and the slot matches the pilot-warp-id register.
    pub fn observe(&mut self, slot: usize, reg: Reg) {
        if self.mask && self.pilot_slot == Some(slot) {
            let c = &mut self.counters[reg.index()];
            *c = c.saturating_add(1);
        }
    }

    /// A warp finished. If it was the pilot: reset the mask bit and return
    /// the sorted hot-register list (most accessed first); otherwise
    /// `None`.
    pub fn on_warp_finish(&mut self, slot: usize, n: usize) -> Option<Vec<Reg>> {
        if !(self.mask && self.pilot_slot == Some(slot)) {
            return None;
        }
        self.mask = false;
        Some(self.top_n(n))
    }

    /// True while the pilot is still profiling.
    pub fn profiling(&self) -> bool {
        self.mask
    }

    /// The current pilot warp slot, if selected.
    pub fn pilot_slot(&self) -> Option<usize> {
        self.pilot_slot
    }

    /// The `n` most-counted registers (ties toward lower index; zero
    /// counts excluded). The paper sorts with the Kepler `SHFL`-based GPU
    /// sort; functionally identical.
    pub fn top_n(&self, n: usize) -> Vec<Reg> {
        let mut v: Vec<(u16, usize)> = self
            .counters
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (c, i))
            .collect();
        v.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        v.into_iter().take(n).map(|(_, i)| Reg(i as u8)).collect()
    }

    /// Raw counter values.
    pub fn counters(&self) -> &[u16; MAX_ARCH_REGS] {
        &self.counters
    }
}

impl Default for PilotProfiler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_isa::KernelBuilder;

    #[test]
    fn strategy_flags() {
        assert!(ProfilingStrategy::Hybrid.uses_pilot());
        assert!(ProfilingStrategy::Hybrid.uses_compiler());
        assert!(ProfilingStrategy::PilotOnly.uses_pilot());
        assert!(!ProfilingStrategy::PilotOnly.uses_compiler());
        assert!(!ProfilingStrategy::Compiler.uses_pilot());
        assert!(!ProfilingStrategy::StaticFirstN.uses_compiler());
        assert_eq!(ProfilingStrategy::Oracle(vec![]).name(), "optimal");
    }

    #[test]
    fn compiler_hot_registers_from_binary() {
        let mut kb = KernelBuilder::new("k");
        kb.mov_imm(Reg(7), 1);
        kb.iadd(Reg(7), Reg(7), Reg(2));
        kb.mov_imm(Reg(2), 0);
        kb.exit();
        assert_eq!(
            compiler_hot_registers(&kb.build().unwrap(), 2),
            vec![Reg(7), Reg(2)]
        );
    }

    #[test]
    fn first_starting_warp_becomes_pilot() {
        let mut p = PilotProfiler::new();
        p.on_kernel_launch();
        p.on_warp_start(5);
        p.on_warp_start(6);
        assert_eq!(p.pilot_slot(), Some(5));
        assert!(p.profiling());
    }

    #[test]
    fn only_pilot_accesses_are_counted() {
        let mut p = PilotProfiler::new();
        p.on_kernel_launch();
        p.on_warp_start(3);
        p.observe(3, Reg(10));
        p.observe(3, Reg(10));
        p.observe(7, Reg(10)); // not the pilot
        p.observe(7, Reg(11));
        assert_eq!(p.counters()[10], 2);
        assert_eq!(p.counters()[11], 0);
    }

    #[test]
    fn pilot_finish_resets_mask_and_reports_top_n() {
        let mut p = PilotProfiler::new();
        p.on_kernel_launch();
        p.on_warp_start(0);
        for _ in 0..5 {
            p.observe(0, Reg(9));
        }
        for _ in 0..3 {
            p.observe(0, Reg(4));
        }
        p.observe(0, Reg(1));
        assert_eq!(p.on_warp_finish(2, 2), None, "non-pilot finish is ignored");
        let hot = p.on_warp_finish(0, 2).unwrap();
        assert_eq!(hot, vec![Reg(9), Reg(4)]);
        assert!(!p.profiling(), "mask bit cleared");
        // Post-pilot accesses are not counted.
        p.observe(0, Reg(9));
        assert_eq!(p.counters()[9], 5);
    }

    #[test]
    fn counters_saturate_at_u16() {
        let mut p = PilotProfiler::new();
        p.on_kernel_launch();
        p.on_warp_start(0);
        for _ in 0..70_000 {
            p.observe(0, Reg(0));
        }
        assert_eq!(p.counters()[0], u16::MAX);
    }

    #[test]
    fn relaunch_selects_new_pilot() {
        let mut p = PilotProfiler::new();
        p.on_kernel_launch();
        p.on_warp_start(0);
        p.observe(0, Reg(5));
        p.on_warp_finish(0, 4);
        // Second kernel of the workload (e.g. backprop's second kernel).
        p.on_kernel_launch();
        assert!(p.profiling());
        assert_eq!(p.pilot_slot(), None);
        p.on_warp_start(9);
        assert_eq!(p.pilot_slot(), Some(9));
        assert_eq!(p.counters()[5], 0, "counters cleared at launch");
    }

    #[test]
    fn top_n_excludes_untouched_registers() {
        let mut p = PilotProfiler::new();
        p.on_kernel_launch();
        p.on_warp_start(0);
        p.observe(0, Reg(2));
        assert_eq!(p.top_n(4), vec![Reg(2)]);
    }
}
