//! Shared telemetry sink for register-file models.
//!
//! The simulator owns the per-SM model instances and drops them when a run
//! finishes, so models report their internal statistics into a shared
//! [`RfTelemetry`] cell that the experiment driver keeps.

use std::cell::RefCell;
use std::rc::Rc;

use prf_isa::Reg;

/// Aggregated model-internal statistics across all SMs of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RfTelemetry {
    /// RFC accesses served by the cache (reads + writes; writes always
    /// allocate and therefore always "hit").
    pub rfc_hits: u64,
    /// RFC *read* hits only — the quantity the paper quotes as "the RFC
    /// hit rate" in §V-D.
    pub rfc_read_hits: u64,
    /// RFC read misses (served by the backing MRF).
    pub rfc_misses: u64,
    /// Dirty RFC entries written back to the MRF (evictions + flushes).
    pub rfc_writebacks: u64,
    /// Epochs the adaptive FRF spent in high-power mode (all SMs).
    pub frf_high_epochs: u64,
    /// Epochs the adaptive FRF spent in low-power mode (all SMs).
    pub frf_low_epochs: u64,
    /// Hot registers last installed from the *compiler* profile (SM 0).
    pub compiler_hot_regs: Vec<Reg>,
    /// Hot registers last installed from the *pilot* profile (SM 0).
    pub pilot_hot_regs: Vec<Reg>,
    /// Cycle at which SM 0's pilot warp finished profiling, if it did.
    pub pilot_done_cycle: Option<u64>,
}

impl RfTelemetry {
    /// RFC hit rate over reads+writes that consulted the cache.
    pub fn rfc_hit_rate(&self) -> f64 {
        let total = self.rfc_hits + self.rfc_misses;
        if total == 0 {
            0.0
        } else {
            self.rfc_hits as f64 / total as f64
        }
    }

    /// RFC *read* hit rate — the §V-D metric (writes always allocate, so
    /// including them flatters the cache).
    pub fn rfc_read_hit_rate(&self) -> f64 {
        let total = self.rfc_read_hits + self.rfc_misses;
        if total == 0 {
            0.0
        } else {
            self.rfc_read_hits as f64 / total as f64
        }
    }

    /// Fraction of adaptive-FRF epochs spent in low-power mode.
    pub fn frf_low_fraction(&self) -> f64 {
        let total = self.frf_high_epochs + self.frf_low_epochs;
        if total == 0 {
            0.0
        } else {
            self.frf_low_epochs as f64 / total as f64
        }
    }
}

/// Shared handle to a telemetry sink.
pub type SharedTelemetry = Rc<RefCell<RfTelemetry>>;

/// Creates a fresh shared telemetry sink.
pub fn shared_telemetry() -> SharedTelemetry {
    Rc::new(RefCell::new(RfTelemetry::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_math() {
        let mut t = RfTelemetry::default();
        assert_eq!(t.rfc_hit_rate(), 0.0);
        t.rfc_hits = 3;
        t.rfc_misses = 1;
        assert!((t.rfc_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn low_fraction_math() {
        let mut t = RfTelemetry::default();
        assert_eq!(t.frf_low_fraction(), 0.0);
        t.frf_high_epochs = 8;
        t.frf_low_epochs = 2;
        assert!((t.frf_low_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn shared_cell_is_shared() {
        let t = shared_telemetry();
        let t2 = Rc::clone(&t);
        t.borrow_mut().rfc_hits = 7;
        assert_eq!(t2.borrow().rfc_hits, 7);
    }
}
