//! Shared telemetry sink for register-file models.
//!
//! The simulator owns the per-SM model instances and drops them when a run
//! finishes, so models report their internal statistics into a shared
//! [`RfTelemetry`] cell that the experiment driver keeps.
//!
//! The handle is `Arc<Mutex<..>>` rather than `Rc<RefCell<..>>`: each
//! experiment run owns its *own* telemetry instance (nothing is shared
//! between runs), but the handle must be [`Send`] so whole simulations can
//! be fanned out across worker threads by the parallel experiment engine.
//! Within one run the mutex is uncontended — all SMs of a run are stepped
//! by one thread — so the locking cost is a bare atomic.

use std::sync::{Arc, Mutex};

use prf_isa::Reg;

/// Aggregated model-internal statistics across all SMs of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RfTelemetry {
    /// RFC accesses served by the cache (reads + writes; writes always
    /// allocate and therefore always "hit").
    pub rfc_hits: u64,
    /// RFC *read* hits only — the quantity the paper quotes as "the RFC
    /// hit rate" in §V-D.
    pub rfc_read_hits: u64,
    /// RFC read misses (served by the backing MRF).
    pub rfc_misses: u64,
    /// Dirty RFC entries written back to the MRF (evictions + flushes).
    pub rfc_writebacks: u64,
    /// Epochs the adaptive FRF spent in high-power mode (all SMs).
    pub frf_high_epochs: u64,
    /// Epochs the adaptive FRF spent in low-power mode (all SMs).
    pub frf_low_epochs: u64,
    /// Accesses redirected to a spare row by the fault-repair layer.
    pub fault_remaps: u64,
    /// Accesses spilled to the slow partition because the faulty row had
    /// no spare (or the policy is disable-and-spill).
    pub fault_spills: u64,
    /// Accesses served at an escalated Vdd to mask a weak row.
    pub fault_escalations: u64,
    /// Hot registers last installed from the *compiler* profile (SM 0).
    pub compiler_hot_regs: Vec<Reg>,
    /// Hot registers last installed from the *pilot* profile (SM 0).
    pub pilot_hot_regs: Vec<Reg>,
    /// Cycle at which SM 0's pilot warp finished profiling, if it did.
    pub pilot_done_cycle: Option<u64>,
}

impl RfTelemetry {
    /// RFC hit rate over reads+writes that consulted the cache.
    pub fn rfc_hit_rate(&self) -> f64 {
        let total = self.rfc_hits + self.rfc_misses;
        if total == 0 {
            0.0
        } else {
            self.rfc_hits as f64 / total as f64
        }
    }

    /// RFC *read* hit rate — the §V-D metric (writes always allocate, so
    /// including them flatters the cache).
    pub fn rfc_read_hit_rate(&self) -> f64 {
        let total = self.rfc_read_hits + self.rfc_misses;
        if total == 0 {
            0.0
        } else {
            self.rfc_read_hits as f64 / total as f64
        }
    }

    /// Fraction of adaptive-FRF epochs spent in low-power mode.
    pub fn frf_low_fraction(&self) -> f64 {
        let total = self.frf_high_epochs + self.frf_low_epochs;
        if total == 0 {
            0.0
        } else {
            self.frf_low_epochs as f64 / total as f64
        }
    }

    /// Accumulates another run's (or seed's) counters into this one. Vector
    /// and option fields keep the first non-empty value — they describe the
    /// run's structure (hot sets, pilot completion), which repeats across
    /// seeds, rather than accumulate.
    pub fn merge(&mut self, other: &RfTelemetry) {
        self.rfc_hits += other.rfc_hits;
        self.rfc_read_hits += other.rfc_read_hits;
        self.rfc_misses += other.rfc_misses;
        self.rfc_writebacks += other.rfc_writebacks;
        self.frf_high_epochs += other.frf_high_epochs;
        self.frf_low_epochs += other.frf_low_epochs;
        self.fault_remaps += other.fault_remaps;
        self.fault_spills += other.fault_spills;
        self.fault_escalations += other.fault_escalations;
        if self.compiler_hot_regs.is_empty() {
            self.compiler_hot_regs = other.compiler_hot_regs.clone();
        }
        if self.pilot_hot_regs.is_empty() {
            self.pilot_hot_regs = other.pilot_hot_regs.clone();
        }
        if self.pilot_done_cycle.is_none() {
            self.pilot_done_cycle = other.pilot_done_cycle;
        }
    }

    /// Divides the accumulated counters by `n` (rounding to nearest),
    /// turning a [`merge`] of `n` per-seed telemetries into a per-seed
    /// mean. Rounding rather than truncating makes merge → scale_down of
    /// identical runs lossless.
    ///
    /// [`merge`]: RfTelemetry::merge
    pub fn scale_down(&mut self, n: u64) {
        use prf_sim::stats::div_round_nearest;
        self.rfc_hits = div_round_nearest(self.rfc_hits, n);
        self.rfc_read_hits = div_round_nearest(self.rfc_read_hits, n);
        self.rfc_misses = div_round_nearest(self.rfc_misses, n);
        self.rfc_writebacks = div_round_nearest(self.rfc_writebacks, n);
        self.frf_high_epochs = div_round_nearest(self.frf_high_epochs, n);
        self.frf_low_epochs = div_round_nearest(self.frf_low_epochs, n);
        self.fault_remaps = div_round_nearest(self.fault_remaps, n);
        self.fault_spills = div_round_nearest(self.fault_spills, n);
        self.fault_escalations = div_round_nearest(self.fault_escalations, n);
    }

    /// Total fault-repair events across all repair kinds.
    pub fn total_fault_repairs(&self) -> u64 {
        self.fault_remaps + self.fault_spills + self.fault_escalations
    }
}

/// Shared handle to a telemetry sink.
///
/// `Send + Sync`: whole simulation runs move across threads in the parallel
/// experiment engine. See the module docs for why this is a mutex and why
/// it is uncontended in practice.
pub type SharedTelemetry = Arc<Mutex<RfTelemetry>>;

/// Creates a fresh shared telemetry sink.
pub fn shared_telemetry() -> SharedTelemetry {
    Arc::new(Mutex::new(RfTelemetry::default()))
}

/// Clones the current telemetry out of a shared handle.
pub fn snapshot(t: &SharedTelemetry) -> RfTelemetry {
    t.lock().expect("telemetry mutex poisoned").clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_math() {
        let mut t = RfTelemetry::default();
        assert_eq!(t.rfc_hit_rate(), 0.0);
        t.rfc_hits = 3;
        t.rfc_misses = 1;
        assert!((t.rfc_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn low_fraction_math() {
        let mut t = RfTelemetry::default();
        assert_eq!(t.frf_low_fraction(), 0.0);
        t.frf_high_epochs = 8;
        t.frf_low_epochs = 2;
        assert!((t.frf_low_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn shared_cell_is_shared() {
        let t = shared_telemetry();
        let t2 = Arc::clone(&t);
        t.lock().unwrap().rfc_hits = 7;
        assert_eq!(t2.lock().unwrap().rfc_hits, 7);
        assert_eq!(snapshot(&t2).rfc_hits, 7);
    }

    #[test]
    fn shared_handle_crosses_threads() {
        let t = shared_telemetry();
        let t2 = Arc::clone(&t);
        std::thread::spawn(move || {
            t2.lock().unwrap().rfc_misses = 3;
        })
        .join()
        .unwrap();
        assert_eq!(t.lock().unwrap().rfc_misses, 3);
    }

    #[test]
    fn merge_and_scale_down_average_counters() {
        let mut a = RfTelemetry {
            rfc_hits: 10,
            rfc_misses: 2,
            pilot_done_cycle: Some(5),
            pilot_hot_regs: vec![Reg(1)],
            ..RfTelemetry::default()
        };
        let b = RfTelemetry {
            rfc_hits: 14,
            rfc_misses: 4,
            pilot_done_cycle: Some(9),
            pilot_hot_regs: vec![Reg(2)],
            ..RfTelemetry::default()
        };
        a.merge(&b);
        assert_eq!(a.rfc_hits, 24);
        // Structural fields keep the first run's values.
        assert_eq!(a.pilot_done_cycle, Some(5));
        assert_eq!(a.pilot_hot_regs, vec![Reg(1)]);
        a.scale_down(2);
        assert_eq!(a.rfc_hits, 12);
        assert_eq!(a.rfc_misses, 3);
    }

    #[test]
    fn merge_then_scale_down_of_identical_runs_is_lossless() {
        // Truncating division loses up to n-1 counts per counter once the
        // merged sum is not an exact multiple of n; rounding keeps the
        // identical-runs case exact and minimises error otherwise.
        let one = RfTelemetry {
            rfc_hits: 101,
            rfc_read_hits: 55,
            rfc_misses: 7,
            rfc_writebacks: 13,
            frf_high_epochs: 3,
            frf_low_epochs: 1,
            fault_remaps: 17,
            fault_spills: 5,
            fault_escalations: 2,
            ..RfTelemetry::default()
        };
        let mut merged = RfTelemetry::default();
        for _ in 0..3 {
            merged.merge(&one);
        }
        merged.scale_down(3);
        assert_eq!(merged, one);
    }
}
