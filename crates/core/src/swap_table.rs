//! The register swapping table (§III-B).
//!
//! The paper allocates the highly-accessed registers into the FRF with a
//! *swapping* scheme: if `R_{n+2}` (physically in the SRF) is hot and `R_0`
//! (physically in the FRF) is not, the two swap physical locations. The
//! mapping is held in a small CAM — 2n entries of 13 bits (6-bit original
//! id, 6-bit mapped id, valid bit), 104 bits for n = 4 — replicated per
//! scheduler and rewritten once per kernel when the pilot warp completes.
//!
//! This module models the table *functionally*: an architected→physical
//! permutation that differs from identity in at most 2n places. The timing
//! and energy of the CAM itself are modelled in
//! `prf_finfet::cam`.

use prf_isa::{Reg, MAX_ARCH_REGS};

/// Bits per CAM entry (6 + 6 + 1), as in §III-B.
pub const ENTRY_BITS: usize = 13;

/// The architected→physical register mapping.
///
/// Invariants (property-tested): the mapping is always a permutation of
/// `0..MAX_ARCH_REGS`, and at most `2n` entries differ from identity.
///
/// # Example
///
/// ```rust
/// use prf_core::SwappingTable;
/// use prf_isa::Reg;
///
/// let mut t = SwappingTable::new(4);
/// t.apply_hot_registers(&[Reg(8), Reg(9), Reg(10), Reg(11)]);
/// // R8 now lives in the FRF (physical slot 0), R0 took R8's old home.
/// assert_eq!(t.lookup(Reg(8)).index(), 0);
/// assert_eq!(t.lookup(Reg(0)).index(), 8);
/// assert!(t.is_frf(Reg(8)));
/// assert!(!t.is_frf(Reg(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwappingTable {
    /// FRF capacity in registers per thread (the paper's `n`, default 4).
    n: usize,
    /// `map[arch] = phys`.
    map: [u8; MAX_ARCH_REGS],
}

impl SwappingTable {
    /// Creates an identity table with an `n`-register FRF.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or larger than the architected register count.
    pub fn new(n: usize) -> Self {
        assert!(n > 0 && n <= MAX_ARCH_REGS, "FRF size out of range");
        let mut map = [0u8; MAX_ARCH_REGS];
        for (i, m) in map.iter_mut().enumerate() {
            *m = i as u8;
        }
        SwappingTable { n, map }
    }

    /// FRF capacity (registers per thread).
    pub fn frf_size(&self) -> usize {
        self.n
    }

    /// Resets the mapping to identity — the paper does this before applying
    /// the pilot warp's result "to simplify the design of the swapping
    /// table" (§III-B).
    pub fn reset(&mut self) {
        for (i, m) in self.map.iter_mut().enumerate() {
            *m = i as u8;
        }
    }

    /// Maps the given hot registers into the FRF: the i-th hot register
    /// swaps physical locations with whatever architected register
    /// currently occupies FRF slot `i`. Resets to identity first
    /// (reset-then-apply, as in Fig. 6/7).
    ///
    /// Duplicates are ignored (each register occupies one FRF slot at
    /// most); at most the first `n` distinct hot registers are honoured.
    pub fn apply_hot_registers(&mut self, hot: &[Reg]) {
        self.reset();
        let mut seen: Vec<Reg> = Vec::with_capacity(self.n);
        for &h in hot {
            if !seen.contains(&h) {
                seen.push(h);
            }
            if seen.len() == self.n {
                break;
            }
        }
        for (slot, &h) in seen.iter().enumerate() {
            let h = h.index();
            // Find the architected register currently mapped to FRF slot
            // `slot` and swap it with `h`.
            let occupant = self
                .map
                .iter()
                .position(|&p| p as usize == slot)
                .expect("permutation always covers every physical slot");
            self.map.swap(h, occupant);
        }
    }

    /// Physical register for an architected register.
    pub fn lookup(&self, arch: Reg) -> Reg {
        Reg(self.map[arch.index()])
    }

    /// True when the architected register currently lives in the FRF
    /// partition (physical slot `< n`).
    pub fn is_frf(&self, arch: Reg) -> bool {
        (self.map[arch.index()] as usize) < self.n
    }

    /// The non-identity mappings, as (architected, physical) pairs sorted
    /// by architected index — the CAM's live entries (Fig. 7).
    pub fn entries(&self) -> Vec<(Reg, Reg)> {
        self.map
            .iter()
            .enumerate()
            .filter(|&(a, &p)| a != p as usize)
            .map(|(a, &p)| (Reg(a as u8), Reg(p)))
            .collect()
    }

    /// Total storage bits of the CAM: 2n entries × 13 bits (104 bits for
    /// n = 4, §III-B).
    pub fn storage_bits(&self) -> usize {
        2 * self.n * ENTRY_BITS
    }

    /// Verifies the permutation invariant (used by tests).
    pub fn is_permutation(&self) -> bool {
        let mut seen = [false; MAX_ARCH_REGS];
        for &p in &self.map {
            let p = p as usize;
            if p >= MAX_ARCH_REGS || seen[p] {
                return false;
            }
            seen[p] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_by_default() {
        let t = SwappingTable::new(4);
        for i in 0..MAX_ARCH_REGS as u8 {
            assert_eq!(t.lookup(Reg(i)), Reg(i));
        }
        assert!(t.entries().is_empty());
        assert!(t.is_permutation());
        assert!(t.is_frf(Reg(0)));
        assert!(t.is_frf(Reg(3)));
        assert!(!t.is_frf(Reg(4)));
    }

    #[test]
    fn paper_example_fig7() {
        // Pilot identifies R8, R9, R10, R11: each swaps with R0..R3.
        let mut t = SwappingTable::new(4);
        t.apply_hot_registers(&[Reg(8), Reg(9), Reg(10), Reg(11)]);
        assert_eq!(t.lookup(Reg(8)), Reg(0));
        assert_eq!(t.lookup(Reg(0)), Reg(8));
        assert_eq!(t.lookup(Reg(9)), Reg(1));
        assert_eq!(t.lookup(Reg(1)), Reg(9));
        assert_eq!(t.lookup(Reg(11)), Reg(3));
        assert_eq!(t.lookup(Reg(3)), Reg(11));
        // Exactly 2n = 8 CAM entries.
        assert_eq!(t.entries().len(), 8);
        assert!(t.is_permutation());
    }

    #[test]
    fn hot_register_already_in_frf_stays() {
        // hot = [R2, R0, R8, R9]: R2 takes slot 0, R0 slot 1, etc.
        let mut t = SwappingTable::new(4);
        t.apply_hot_registers(&[Reg(2), Reg(0), Reg(8), Reg(9)]);
        assert_eq!(t.lookup(Reg(2)), Reg(0));
        assert_eq!(t.lookup(Reg(0)), Reg(1));
        assert_eq!(t.lookup(Reg(8)), Reg(2));
        assert_eq!(t.lookup(Reg(9)), Reg(3));
        assert!(t.is_frf(Reg(2)) && t.is_frf(Reg(0)) && t.is_frf(Reg(8)) && t.is_frf(Reg(9)));
        // R1 was displaced out of the FRF.
        assert!(!t.is_frf(Reg(1)));
        assert!(t.is_permutation());
    }

    #[test]
    fn fewer_hot_regs_than_frf_slots() {
        let mut t = SwappingTable::new(4);
        t.apply_hot_registers(&[Reg(10)]);
        assert_eq!(t.lookup(Reg(10)), Reg(0));
        assert_eq!(t.lookup(Reg(0)), Reg(10));
        // Slots 1..3 keep identity.
        assert_eq!(t.lookup(Reg(1)), Reg(1));
        assert!(t.is_frf(Reg(3)));
    }

    #[test]
    fn more_hot_regs_than_slots_truncates() {
        let mut t = SwappingTable::new(2);
        t.apply_hot_registers(&[Reg(5), Reg(6), Reg(7)]);
        assert!(t.is_frf(Reg(5)));
        assert!(t.is_frf(Reg(6)));
        assert!(!t.is_frf(Reg(7)), "third hot register does not fit");
    }

    #[test]
    fn reapply_resets_first() {
        let mut t = SwappingTable::new(4);
        t.apply_hot_registers(&[Reg(8), Reg(9), Reg(10), Reg(11)]);
        // New kernel phase: different hot set.
        t.apply_hot_registers(&[Reg(20), Reg(21), Reg(22), Reg(23)]);
        assert_eq!(t.lookup(Reg(8)), Reg(8), "old mapping cleared");
        assert_eq!(t.lookup(Reg(20)), Reg(0));
        assert!(t.is_permutation());
        assert_eq!(t.entries().len(), 8);
    }

    #[test]
    fn storage_is_104_bits_for_n4() {
        assert_eq!(SwappingTable::new(4).storage_bits(), 104);
        assert_eq!(SwappingTable::new(6).storage_bits(), 156);
    }

    #[test]
    #[should_panic(expected = "FRF size out of range")]
    fn zero_frf_rejected() {
        SwappingTable::new(0);
    }

    #[test]
    fn duplicate_hot_registers_are_deduplicated() {
        // A degenerate profiler output must not corrupt the table or
        // waste FRF slots.
        let mut t = SwappingTable::new(4);
        t.apply_hot_registers(&[Reg(8), Reg(8), Reg(9), Reg(9), Reg(10)]);
        assert!(t.is_permutation());
        assert!(t.is_frf(Reg(8)));
        assert!(t.is_frf(Reg(9)));
        assert!(t.is_frf(Reg(10)), "duplicates must not consume FRF slots");
    }
}
