//! The register file cache (RFC) baseline, after Gebhart et al.
//! (ISCA 2011), used for the paper's §V-D comparison (Fig. 13).
//!
//! Each warp gets a small cache of register entries (6 in the paper's
//! configuration). Reads that hit are served by the RFC SRAM in one cycle;
//! misses go to the backing MRF and fill an entry (FIFO replacement);
//! writes allocate in the RFC and are written back to the MRF only on
//! eviction of a dirty entry. With the two-level scheduler, a warp demoted
//! from the active pool flushes its RFC entries — the mechanism that keeps
//! the RFC small in the original design.

use std::collections::VecDeque;

use prf_isa::{Kernel, Reg};
use prf_sim::rf::{default_bank, AccessKind, RegisterFileModel, ResolvedAccess, WarpLifecycle};
use prf_sim::RfPartition;

use crate::telemetry::SharedTelemetry;

/// RFC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RfcConfig {
    /// Cache entries per warp (6 in the paper's comparison).
    pub entries_per_warp: usize,
    /// Latency of an RFC hit (cycles).
    pub hit_latency: u32,
    /// Latency of a backing-MRF access (1 at STV, 3 at NTV).
    pub mrf_latency: u32,
    /// Whether the backing MRF runs at NTV (energy accounting + Fig. 13's
    /// fourth configuration runs it at STV).
    pub mrf_at_ntv: bool,
    /// Register-file banks (for the backing MRF).
    pub num_banks: usize,
    /// Hardware warp slots (sizing of the per-warp cache array).
    pub max_warps: usize,
    /// Warps the RFC SRAM is physically sized for (the *active* warp
    /// count under two-level scheduling — Fig. 13 grows this 8 → 16 → 32).
    pub sized_for_warps: u32,
    /// Crossbar banking of the RFC array (Fig. 13's banked-multiport
    /// alternative; 1 = plain).
    pub crossbar_banks: u32,
}

impl RfcConfig {
    /// The paper's Fig. 13 RFC: 6 entries/warp over an NTV MRF.
    pub fn paper_default(num_banks: usize, max_warps: usize) -> Self {
        RfcConfig {
            entries_per_warp: 6,
            hit_latency: 1,
            mrf_latency: 3,
            mrf_at_ntv: true,
            num_banks,
            max_warps,
            sized_for_warps: 8,
            crossbar_banks: 1,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct WarpCache {
    /// FIFO of (register, dirty).
    entries: VecDeque<(Reg, bool)>,
}

impl WarpCache {
    fn find(&self, reg: Reg) -> Option<usize> {
        self.entries.iter().position(|&(r, _)| r == reg)
    }
}

/// The per-SM RFC model.
#[derive(Debug)]
pub struct RfcModel {
    config: RfcConfig,
    caches: Vec<WarpCache>,
    telemetry: SharedTelemetry,
    /// Model-local dirty-evict count, kept in lock-step with the
    /// `rfc_writebacks` telemetry counter so the conservation auditor can
    /// cross-check the two independently maintained paths.
    evictions: u64,
}

impl RfcModel {
    /// Creates the model for one SM.
    pub fn new(config: RfcConfig, telemetry: SharedTelemetry) -> Self {
        RfcModel {
            caches: vec![WarpCache::default(); config.max_warps],
            config,
            telemetry,
            evictions: 0,
        }
    }

    /// The partition of the backing MRF (diagnostics; energy for misses
    /// is accounted via `RfPartition::RfcMiss` in the energy model).
    pub fn mrf_partition(&self) -> RfPartition {
        if self.config.mrf_at_ntv {
            RfPartition::MrfNtv
        } else {
            RfPartition::MrfStv
        }
    }

    /// Inserts `reg` into the warp's cache, evicting FIFO-oldest if full.
    /// Returns `true` if a dirty entry was written back.
    fn fill(&mut self, warp_slot: usize, reg: Reg, dirty: bool) -> bool {
        let cap = self.config.entries_per_warp;
        let cache = &mut self.caches[warp_slot];
        let mut wrote_back = false;
        if cache.entries.len() >= cap {
            if let Some((_, was_dirty)) = cache.entries.pop_front() {
                if was_dirty {
                    wrote_back = true;
                }
            }
        }
        cache.entries.push_back((reg, dirty));
        if wrote_back {
            self.evictions += 1;
            self.telemetry.lock().unwrap().rfc_writebacks += 1;
        }
        wrote_back
    }

    /// Flushes one warp's cache entries (deactivation or completion).
    fn flush(&mut self, warp_slot: usize) {
        let dirty = self.caches[warp_slot]
            .entries
            .iter()
            .filter(|&&(_, d)| d)
            .count() as u64;
        self.caches[warp_slot].entries.clear();
        if dirty > 0 {
            self.evictions += dirty;
            self.telemetry.lock().unwrap().rfc_writebacks += dirty;
        }
    }

    /// Test hook: entries currently cached for a warp.
    pub fn cached_registers(&self, warp_slot: usize) -> Vec<Reg> {
        self.caches[warp_slot]
            .entries
            .iter()
            .map(|&(r, _)| r)
            .collect()
    }
}

impl RegisterFileModel for RfcModel {
    fn resolve(
        &mut self,
        warp_slot: usize,
        reg: Reg,
        kind: AccessKind,
        _cycle: u64,
    ) -> ResolvedAccess {
        let bank = default_bank(warp_slot, reg.index(), self.config.num_banks);
        match kind {
            AccessKind::Read => {
                if let Some(i) = self.caches[warp_slot].find(reg) {
                    // Refresh nothing: FIFO, not LRU, as in the RFC paper.
                    let _ = i;
                    let mut t = self.telemetry.lock().unwrap();
                    t.rfc_hits += 1;
                    t.rfc_read_hits += 1;
                    ResolvedAccess {
                        bank,
                        latency: self.config.hit_latency,
                        partition: RfPartition::RfcHit,
                        phys_reg: reg.index(),
                        repair: None,
                    }
                } else {
                    self.telemetry.lock().unwrap().rfc_misses += 1;
                    self.fill(warp_slot, reg, false);
                    ResolvedAccess {
                        bank,
                        latency: self.config.mrf_latency,
                        partition: RfPartition::RfcMiss,
                        phys_reg: reg.index(),
                        repair: None,
                    }
                }
            }
            AccessKind::Write => {
                // Write-allocate into the RFC; dirty until evicted.
                if let Some(i) = self.caches[warp_slot].find(reg) {
                    self.caches[warp_slot].entries[i].1 = true;
                    self.telemetry.lock().unwrap().rfc_hits += 1;
                } else {
                    self.telemetry.lock().unwrap().rfc_hits += 1;
                    self.fill(warp_slot, reg, true);
                }
                ResolvedAccess {
                    bank,
                    latency: self.config.hit_latency,
                    partition: RfPartition::RfcHit,
                    phys_reg: reg.index(),
                    repair: None,
                }
            }
        }
    }

    fn observe_access(&mut self, _warp_slot: usize, _reg: Reg, _kind: AccessKind, _cycle: u64) {}

    fn tick(&mut self, _cycle: u64, _issued: u32) {}

    fn on_kernel_launch(&mut self, _kernel: &Kernel, _cycle: u64) {
        for c in &mut self.caches {
            c.entries.clear();
        }
    }

    fn on_warp_start(&mut self, warp: WarpLifecycle, _cycle: u64) {
        self.caches[warp.slot].entries.clear();
    }

    fn on_warp_finish(&mut self, warp: WarpLifecycle, _cycle: u64) {
        self.flush(warp.slot);
    }

    fn on_warp_deactivated(&mut self, warp_slot: usize, _cycle: u64) {
        // The two-level scheduler demoted this warp: its RFC entries are
        // released (Gebhart et al.'s active-pool contract).
        self.flush(warp_slot);
    }

    fn rfc_evictions(&self) -> u64 {
        self.evictions
    }

    fn name(&self) -> &str {
        "rfc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::shared_telemetry;

    fn model() -> (RfcModel, SharedTelemetry) {
        let t = shared_telemetry();
        let m = RfcModel::new(RfcConfig::paper_default(24, 64), std::sync::Arc::clone(&t));
        (m, t)
    }

    #[test]
    fn read_miss_then_hit() {
        let (mut m, t) = model();
        let a = m.resolve(0, Reg(5), AccessKind::Read, 0);
        assert_eq!(a.partition, RfPartition::RfcMiss);
        assert_eq!(a.latency, 3);
        let b = m.resolve(0, Reg(5), AccessKind::Read, 1);
        assert_eq!(b.partition, RfPartition::RfcHit);
        assert_eq!(b.latency, 1);
        assert_eq!(t.lock().unwrap().rfc_hits, 1);
        assert_eq!(t.lock().unwrap().rfc_misses, 1);
    }

    #[test]
    fn write_allocates_and_hits() {
        let (mut m, t) = model();
        let a = m.resolve(0, Reg(7), AccessKind::Write, 0);
        assert_eq!(a.partition, RfPartition::RfcHit);
        let b = m.resolve(0, Reg(7), AccessKind::Read, 1);
        assert_eq!(b.partition, RfPartition::RfcHit);
        assert_eq!(t.lock().unwrap().rfc_misses, 0);
    }

    #[test]
    fn fifo_eviction_after_capacity() {
        let (mut m, _) = model();
        for r in 0..6u8 {
            m.resolve(0, Reg(r), AccessKind::Read, 0);
        }
        assert_eq!(m.cached_registers(0).len(), 6);
        // Seventh register evicts R0 (FIFO).
        m.resolve(0, Reg(10), AccessKind::Read, 1);
        assert!(!m.cached_registers(0).contains(&Reg(0)));
        let again = m.resolve(0, Reg(0), AccessKind::Read, 2);
        assert_eq!(again.partition, RfPartition::RfcMiss);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let (mut m, t) = model();
        m.resolve(0, Reg(0), AccessKind::Write, 0); // dirty
        for r in 1..=6u8 {
            m.resolve(0, Reg(r), AccessKind::Read, 0);
        }
        assert_eq!(
            t.lock().unwrap().rfc_writebacks,
            1,
            "dirty R0 written back on eviction"
        );
    }

    #[test]
    fn caches_are_per_warp() {
        let (mut m, _) = model();
        m.resolve(0, Reg(5), AccessKind::Read, 0);
        let other_warp = m.resolve(1, Reg(5), AccessKind::Read, 1);
        assert_eq!(other_warp.partition, RfPartition::RfcMiss);
    }

    #[test]
    fn deactivation_flushes_and_writes_back_dirty() {
        let (mut m, t) = model();
        m.resolve(3, Reg(1), AccessKind::Write, 0);
        m.resolve(3, Reg(2), AccessKind::Read, 0);
        m.on_warp_deactivated(3, 5);
        assert!(m.cached_registers(3).is_empty());
        assert_eq!(t.lock().unwrap().rfc_writebacks, 1);
        // Re-activation misses again — the TL/RFC interplay that limits
        // hit rate as warp counts grow.
        let a = m.resolve(3, Reg(1), AccessKind::Read, 6);
        assert_eq!(a.partition, RfPartition::RfcMiss);
    }

    #[test]
    fn warp_finish_flushes() {
        let (mut m, t) = model();
        m.resolve(2, Reg(9), AccessKind::Write, 0);
        m.on_warp_finish(
            WarpLifecycle {
                slot: 2,
                cta: 0,
                warp_in_cta: 0,
            },
            9,
        );
        assert!(m.cached_registers(2).is_empty());
        assert_eq!(t.lock().unwrap().rfc_writebacks, 1);
    }

    #[test]
    fn kernel_launch_clears_all() {
        let (mut m, _) = model();
        m.resolve(0, Reg(1), AccessKind::Read, 0);
        m.resolve(5, Reg(2), AccessKind::Read, 0);
        let mut kb = prf_isa::KernelBuilder::new("k");
        kb.exit();
        m.on_kernel_launch(&kb.build().unwrap(), 10);
        assert!(m.cached_registers(0).is_empty());
        assert!(m.cached_registers(5).is_empty());
    }

    #[test]
    fn model_local_evictions_track_telemetry_writebacks() {
        // The audit cross-check depends on these two counters moving in
        // lock-step through both write-back paths (capacity evict + flush).
        let (mut m, t) = model();
        m.resolve(0, Reg(0), AccessKind::Write, 0); // dirty
        for r in 1..=6u8 {
            m.resolve(0, Reg(r), AccessKind::Read, 0); // evicts dirty R0
        }
        m.resolve(1, Reg(9), AccessKind::Write, 1);
        m.on_warp_deactivated(1, 2); // flushes dirty R9
        assert_eq!(m.rfc_evictions(), 2);
        assert_eq!(t.lock().unwrap().rfc_writebacks, m.rfc_evictions());
    }

    #[test]
    fn hit_rate_telemetry() {
        let (mut m, t) = model();
        m.resolve(0, Reg(0), AccessKind::Read, 0); // miss
        m.resolve(0, Reg(0), AccessKind::Read, 1); // hit
        m.resolve(0, Reg(0), AccessKind::Read, 2); // hit
        assert!((t.lock().unwrap().rfc_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
