//! # prf-core — the Pilot Register File
//!
//! The primary contribution of *"Pilot Register File: Energy Efficient
//! Partitioned Register File for GPUs"* (HPCA 2017), reproduced in Rust:
//!
//! * [`SwappingTable`] — the 2n-entry CAM that remaps hot architected
//!   registers into the fast RF partition (§III-B),
//! * [`profile`] — compiler-based, pilot-warp, and hybrid hot-register
//!   profiling (§III-A), including the per-SM 63×2-byte counter hardware,
//! * [`PartitionedRf`] — the FRF/SRF register-file model plugged into the
//!   `prf-sim` pipeline (§III/§IV),
//! * [`AdaptiveFrf`] — the epoch-based phase detector driving the FinFET
//!   back-gate mode signal (§IV-C),
//! * [`RfcModel`] — the register-file-cache baseline (Gebhart et al.,
//!   ISCA 2011) used in the §V-D comparison,
//! * [`energy`] — dynamic + leakage energy accounting on top of the
//!   FinCACTI-like array model (§V-B),
//! * [`FaultedRf`] — variation-aware fault injection over any RF model,
//!   repairing stuck/weak rows by spare-row remap, disable-and-spill, or
//!   Vdd escalation, with the premium charged into the energy accounts,
//! * [`experiment`] — one-call experiment driver producing performance and
//!   energy for any workload × RF-organisation pair.
//!
//! # Example
//!
//! ```rust
//! use prf_core::{run_experiment, Launch, PartitionedRfConfig, RfKind};
//! use prf_isa::{GridConfig, KernelBuilder, Reg, SpecialReg};
//! use prf_sim::GpuConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut kb = KernelBuilder::new("demo");
//! kb.mov_special(Reg(0), SpecialReg::GlobalTid);
//! kb.iadd_imm(Reg(1), Reg(0), 1);
//! kb.stg(Reg(0), Reg(1), 0);
//! kb.exit();
//! let launches = [Launch::new(kb.build()?, GridConfig::new(4, 64))];
//!
//! let gpu = GpuConfig::kepler_single_sm();
//! let rf = RfKind::Partitioned(PartitionedRfConfig::paper_default(gpu.num_rf_banks));
//! let result = run_experiment(&gpu, &rf, &launches, &[])?;
//! assert!(result.dynamic_energy_pj > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod adaptive;
pub mod chip;
pub mod drowsy;
pub mod energy;
pub mod experiment;
pub mod faults;
pub mod gating;
pub mod indexed_table;
pub mod partitioned;
pub mod profile;
pub mod rfc;
pub mod swap_table;
pub mod telemetry;

pub use adaptive::{AdaptiveFrf, AdaptiveFrfConfig, FrfMode};
pub use chip::{ChipProfile, EnergyDelay};
pub use drowsy::{DrowsyConfig, DrowsyRf, DrowsySummary};
pub use energy::{EnergyModel, LeakageModel, GPU_CLOCK_GHZ};
pub use experiment::{
    faulted_rf_model_factory, rf_model_factory, run_experiment, run_experiment_with_faults,
    validate_experiment_inputs, ExperimentResult, Launch, PhaseTimings, RfKind,
};
pub use faults::{FaultConfig, FaultedRf, RepairCosts, RepairPolicy, SpareRemapTable};
pub use gating::PowerGatingModel;
pub use indexed_table::IndexedSwapTable;
pub use partitioned::{PartitionedRf, PartitionedRfConfig};
pub use profile::{compiler_hot_registers, PilotProfiler, ProfilingStrategy};
pub use rfc::{RfcConfig, RfcModel};
pub use swap_table::SwappingTable;
pub use telemetry::{shared_telemetry, snapshot, RfTelemetry, SharedTelemetry};
