//! Variation-aware fault injection with graceful degradation.
//!
//! [`FaultedRf`] wraps any [`RegisterFileModel`] and consults a
//! [`prf_finfet::FaultMap`] on every resolved access: stuck rows always
//! trip, weak rows trip only when the access is served by a low-voltage
//! partition (MRF@NTV, FRF in low-power mode, SRF). A tripped access is
//! kept architecturally correct by the configured [`RepairPolicy`]:
//!
//! * **spare rows** — the access is redirected to a per-bank spare through
//!   a remap CAM (one extra indirection cycle); when a bank's spares run
//!   out, the row falls back to spilling,
//! * **disable and spill** — the faulty row is disabled and its registers
//!   served by the slow STV-safe partition (SRF latency and energy),
//! * **escalate Vdd** — weak rows are read/written with a temporary
//!   supply boost (energy premium, no latency change); stuck rows cannot
//!   be fixed by voltage and spill instead.
//!
//! Every repair charges its premium through [`RepairCosts`] and is
//! reported three ways so the conservation auditor can cross-check them:
//! on the returned access (`ResolvedAccess::repair`, which the SM turns
//! into `TraceEvent::RfRepair` events and `SmStats::rf_repairs` counters)
//! and in the run's [`crate::RfTelemetry`] (`fault_remaps` / `fault_spills` /
//! `fault_escalations`).

use std::collections::HashMap;
use std::sync::Arc;

use prf_finfet::{CellHealth, FaultMap};
use prf_isa::{Kernel, Reg, MAX_ARCH_REGS};
use prf_sim::rf::{AccessKind, RegisterFileModel, RepairKind, ResolvedAccess, WarpLifecycle};
use prf_sim::RfPartition;

use crate::telemetry::SharedTelemetry;

/// Latency floor (cycles) of an access spilled to the slow partition —
/// the SRF access time of the paper's main configuration.
pub const SPILL_LATENCY: u32 = 3;

/// How accesses to faulty rows are kept usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairPolicy {
    /// Remap each faulty row to a per-bank spare row (allocated on first
    /// touch, stable thereafter); spills once a bank's spares run out.
    SpareRow {
        /// Spare rows available in each bank.
        spares_per_bank: usize,
    },
    /// Disable faulty rows and serve their registers from the slow
    /// STV-safe partition.
    DisableAndSpill,
    /// Boost the supply for weak rows (energy premium only); stuck rows
    /// cannot be fixed by voltage and spill instead.
    EscalateVdd,
}

/// A fault map plus the repair policy applied to it — one immutable
/// artifact shared by every SM of a run.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Which rows are stuck/weak (shared, immutable).
    pub map: Arc<FaultMap>,
    /// How tripped accesses are repaired.
    pub policy: RepairPolicy,
}

impl FaultConfig {
    /// Wraps a map with a policy.
    pub fn new(map: FaultMap, policy: RepairPolicy) -> Self {
        FaultConfig {
            map: Arc::new(map),
            policy,
        }
    }
}

/// Energy premiums charged per repair event (pJ), kept deliberately
/// multiplicative — `count × per-event` — so the auditor can recompute
/// the total from raw event counts with zero rounding slack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairCosts {
    /// Remap CAM search + spare-wordline drive per remapped access.
    pub remap_pj: f64,
    /// Crossbar detour into the slow partition per spilled access (the
    /// SRF access energy itself is charged via the access's partition).
    pub spill_pj: f64,
    /// Supply-boost premium per escalated access: roughly the STV−NTV
    /// dynamic-energy gap of an MRF access.
    pub escalate_pj: f64,
}

impl RepairCosts {
    /// Premiums consistent with the Table IV array characterisations.
    pub fn finfet_default() -> Self {
        RepairCosts {
            remap_pj: 1.2,
            spill_pj: 0.9,
            escalate_pj: 7.0,
        }
    }

    /// Total repair energy (pJ) for a run's event counts.
    pub fn repair_energy_pj(&self, remaps: u64, spills: u64, escalations: u64) -> f64 {
        remaps as f64 * self.remap_pj
            + spills as f64 * self.spill_pj
            + escalations as f64 * self.escalate_pj
    }
}

impl Default for RepairCosts {
    fn default() -> Self {
        Self::finfet_default()
    }
}

/// Per-bank spare-row allocator: faulty rows get a stable, injective
/// mapping onto spare indices, first-touch order.
#[derive(Debug, Clone)]
pub struct SpareRemapTable {
    /// Assigned spare per faulty `(bank, row)`.
    assigned: HashMap<(usize, usize), usize>,
    /// Next free spare index per bank.
    next_spare: Vec<usize>,
    spares_per_bank: usize,
}

impl SpareRemapTable {
    /// An empty table for `banks` banks with `spares_per_bank` spares each.
    pub fn new(banks: usize, spares_per_bank: usize) -> Self {
        SpareRemapTable {
            assigned: HashMap::new(),
            next_spare: vec![0; banks],
            spares_per_bank,
        }
    }

    /// The spare index serving `(bank, row)`: the existing assignment if
    /// the row was remapped before, else the bank's next free spare.
    /// `None` when the bank's spares are exhausted.
    pub fn remap(&mut self, bank: usize, row: usize) -> Option<usize> {
        if let Some(&spare) = self.assigned.get(&(bank, row)) {
            return Some(spare);
        }
        let next = self.next_spare[bank];
        if next >= self.spares_per_bank {
            return None;
        }
        self.next_spare[bank] = next + 1;
        self.assigned.insert((bank, row), next);
        Some(next)
    }

    /// Spares currently assigned in `bank`.
    pub fn used_spares(&self, bank: usize) -> usize {
        self.next_spare[bank]
    }
}

/// True when the partition runs at a reduced supply, where weak rows
/// have no noise margin left.
fn low_voltage(p: RfPartition) -> bool {
    matches!(
        p,
        RfPartition::MrfNtv | RfPartition::FrfLow | RfPartition::Srf
    )
}

/// Rewrites an access as a spill into the slow STV-safe partition.
fn spill(access: &mut ResolvedAccess) {
    access.partition = RfPartition::Srf;
    access.latency = access.latency.max(SPILL_LATENCY);
}

/// A [`RegisterFileModel`] decorator that injects the faults of a
/// [`FaultMap`] into any inner model and repairs them per the configured
/// [`RepairPolicy`]. See the module docs for the repair semantics.
pub struct FaultedRf {
    inner: Box<dyn RegisterFileModel>,
    config: FaultConfig,
    spares: SpareRemapTable,
    telemetry: SharedTelemetry,
    name: String,
}

impl FaultedRf {
    /// Wraps `inner` with the fault map and policy in `config`.
    pub fn new(
        inner: Box<dyn RegisterFileModel>,
        config: FaultConfig,
        telemetry: SharedTelemetry,
    ) -> Self {
        let spares_per_bank = match config.policy {
            RepairPolicy::SpareRow { spares_per_bank } => spares_per_bank,
            _ => 0,
        };
        let name = format!("{}+faults", inner.name());
        let banks = config.map.geometry.banks;
        FaultedRf {
            inner,
            config,
            spares: SpareRemapTable::new(banks, spares_per_bank),
            telemetry,
            name,
        }
    }

    /// The row of the fault-map geometry an access lands on: a static
    /// address hash of the warp slot and physical register, folded into
    /// the map's shape (the physical array is smaller than the
    /// architectural namespace).
    fn fault_row(&self, warp_slot: usize, access: &ResolvedAccess) -> (usize, usize) {
        let g = self.config.map.geometry;
        let bank = access.bank % g.banks;
        let row = (warp_slot * MAX_ARCH_REGS + access.phys_reg) % g.rows_per_bank;
        (bank, row)
    }
}

impl std::fmt::Debug for FaultedRf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultedRf")
            .field("inner", &self.inner.name())
            .field("policy", &self.config.policy)
            .field("map", &format_args!("{}", self.config.map))
            .finish()
    }
}

impl RegisterFileModel for FaultedRf {
    fn resolve(
        &mut self,
        warp_slot: usize,
        reg: Reg,
        kind: AccessKind,
        cycle: u64,
    ) -> ResolvedAccess {
        let mut access = self.inner.resolve(warp_slot, reg, kind, cycle);
        let (bank, row) = self.fault_row(warp_slot, &access);
        let health = self.config.map.health(bank, row);
        let trips = match health {
            CellHealth::Healthy => false,
            CellHealth::Stuck => true,
            CellHealth::Weak => low_voltage(access.partition),
        };
        if !trips {
            return access;
        }
        let repair = match self.config.policy {
            RepairPolicy::SpareRow { .. } => {
                if self.spares.remap(bank, row).is_some() {
                    // One extra cycle through the remap CAM indirection.
                    access.latency += 1;
                    RepairKind::Remapped
                } else {
                    spill(&mut access);
                    RepairKind::Spilled
                }
            }
            RepairPolicy::DisableAndSpill => {
                spill(&mut access);
                RepairKind::Spilled
            }
            RepairPolicy::EscalateVdd => {
                if health == CellHealth::Stuck {
                    spill(&mut access);
                    RepairKind::Spilled
                } else {
                    RepairKind::Escalated
                }
            }
        };
        access.repair = Some(repair);
        let mut t = self.telemetry.lock().unwrap();
        match repair {
            RepairKind::Remapped => t.fault_remaps += 1,
            RepairKind::Spilled => t.fault_spills += 1,
            RepairKind::Escalated => t.fault_escalations += 1,
        }
        access
    }

    fn observe_access(&mut self, warp_slot: usize, reg: Reg, kind: AccessKind, cycle: u64) {
        self.inner.observe_access(warp_slot, reg, kind, cycle);
    }

    fn tick(&mut self, cycle: u64, issued: u32) {
        self.inner.tick(cycle, issued);
    }

    fn on_kernel_launch(&mut self, kernel: &Kernel, cycle: u64) {
        // Spare assignments survive kernel launches: repair is a physical
        // property of the chip, not of the running workload.
        self.inner.on_kernel_launch(kernel, cycle);
    }

    fn on_warp_start(&mut self, warp: WarpLifecycle, cycle: u64) {
        self.inner.on_warp_start(warp, cycle);
    }

    fn on_warp_finish(&mut self, warp: WarpLifecycle, cycle: u64) {
        self.inner.on_warp_finish(warp, cycle);
    }

    fn on_warp_deactivated(&mut self, warp_slot: usize, cycle: u64) {
        self.inner.on_warp_deactivated(warp_slot, cycle);
    }

    fn rfc_evictions(&self) -> u64 {
        self.inner.rfc_evictions()
    }

    fn frf_low_mode(&self) -> Option<bool> {
        self.inner.frf_low_mode()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{shared_telemetry, snapshot};
    use prf_sim::BaselineRf;

    /// A 2-bank × 4-row map with the given RLE body (8 rows total).
    fn tiny_map(body: &str) -> FaultMap {
        let text = format!(
            "faultmap v1\ncell=8T vdd=0.3 seed=7\n\
             banks=2 rows_per_bank=4 cells_per_row=8\n{body}\n"
        );
        FaultMap::from_text(&text).unwrap()
    }

    /// Baseline MRF@NTV (3-cycle, low-voltage partition) over `map`.
    fn faulted_ntv(map: FaultMap, policy: RepairPolicy) -> (FaultedRf, SharedTelemetry) {
        let t = shared_telemetry();
        let inner = Box::new(BaselineRf::ntv(24, 3));
        let rf = FaultedRf::new(inner, FaultConfig::new(map, policy), Arc::clone(&t));
        (rf, t)
    }

    /// Resolves architected register 0 of warp slot 0 — bank 0, row 0 of
    /// the tiny geometry.
    fn probe(rf: &mut FaultedRf) -> ResolvedAccess {
        rf.resolve(0, Reg(0), AccessKind::Read, 0)
    }

    #[test]
    fn healthy_rows_pass_through_untouched() {
        let (mut rf, t) = faulted_ntv(
            tiny_map("H8"),
            RepairPolicy::SpareRow { spares_per_bank: 2 },
        );
        let a = probe(&mut rf);
        assert_eq!(a.repair, None);
        assert_eq!(a.latency, 3);
        assert_eq!(snapshot(&t).total_fault_repairs(), 0);
    }

    #[test]
    fn spare_row_remap_costs_one_cycle_and_is_stable() {
        let (mut rf, t) = faulted_ntv(
            tiny_map("S1 H7"),
            RepairPolicy::SpareRow { spares_per_bank: 2 },
        );
        let a = probe(&mut rf);
        assert_eq!(a.repair, Some(RepairKind::Remapped));
        assert_eq!(a.latency, 4, "base 3 + remap indirection 1");
        // Second touch reuses the same spare (no new allocation).
        probe(&mut rf);
        assert_eq!(rf.spares.used_spares(0), 1);
        assert_eq!(snapshot(&t).fault_remaps, 2);
    }

    #[test]
    fn exhausted_spares_fall_back_to_spill() {
        // All four rows of bank 0 stuck, but only one spare.
        let (mut rf, t) = faulted_ntv(
            tiny_map("S4 H4"),
            RepairPolicy::SpareRow { spares_per_bank: 1 },
        );
        // Warp 0's reg 0 and reg 2 both fold onto map bank 0 (RF banks 0
        // and 2) with distinct rows 0 and 2 — the first takes the spare,
        // the second finds the bank out of spares.
        let first = rf.resolve(0, Reg(0), AccessKind::Read, 0);
        assert_eq!(first.repair, Some(RepairKind::Remapped));
        let second = rf.resolve(0, Reg(2), AccessKind::Read, 0);
        assert_eq!(second.repair, Some(RepairKind::Spilled));
        assert_eq!(second.partition, RfPartition::Srf);
        let t = snapshot(&t);
        assert_eq!((t.fault_remaps, t.fault_spills), (1, 1));
    }

    #[test]
    fn disable_and_spill_redirects_to_srf() {
        let (mut rf, t) = faulted_ntv(tiny_map("S1 H7"), RepairPolicy::DisableAndSpill);
        let a = probe(&mut rf);
        assert_eq!(a.repair, Some(RepairKind::Spilled));
        assert_eq!(a.partition, RfPartition::Srf);
        assert_eq!(a.latency, SPILL_LATENCY);
        assert_eq!(snapshot(&t).fault_spills, 1);
    }

    #[test]
    fn escalate_vdd_boosts_weak_but_spills_stuck() {
        // Map bank 0 entirely weak, map bank 1 entirely stuck.
        let (mut rf, t) = faulted_ntv(tiny_map("W4 S4"), RepairPolicy::EscalateVdd);
        // Weak -> escalated, same latency and partition.
        let weak = rf.resolve(0, Reg(0), AccessKind::Read, 0);
        assert_eq!(weak.repair, Some(RepairKind::Escalated));
        assert_eq!(weak.latency, 3);
        assert_eq!(weak.partition, RfPartition::MrfNtv);
        // Stuck -> voltage cannot help, spill.
        let stuck = rf.resolve(0, Reg(1), AccessKind::Read, 0);
        assert_eq!(stuck.repair, Some(RepairKind::Spilled));
        let t = snapshot(&t);
        assert_eq!((t.fault_escalations, t.fault_spills), (1, 1));
    }

    #[test]
    fn weak_rows_do_not_trip_at_stv() {
        // Same map, but the inner model is the STV baseline (1-cycle,
        // high-voltage partition): weak rows keep full margin.
        let t = shared_telemetry();
        let inner = Box::new(BaselineRf::stv(24));
        let mut rf = FaultedRf::new(
            inner,
            FaultConfig::new(tiny_map("W8"), RepairPolicy::DisableAndSpill),
            Arc::clone(&t),
        );
        let a = probe(&mut rf);
        assert_eq!(a.repair, None);
        assert_eq!(a.partition, RfPartition::MrfStv);
        assert_eq!(snapshot(&t).total_fault_repairs(), 0);
    }

    #[test]
    fn stuck_rows_trip_even_at_stv() {
        let t = shared_telemetry();
        let inner = Box::new(BaselineRf::stv(24));
        let mut rf = FaultedRf::new(
            inner,
            FaultConfig::new(tiny_map("S8"), RepairPolicy::DisableAndSpill),
            Arc::clone(&t),
        );
        let a = probe(&mut rf);
        assert_eq!(a.repair, Some(RepairKind::Spilled));
    }

    #[test]
    fn repair_costs_are_multiplicative() {
        let c = RepairCosts::finfet_default();
        let e = c.repair_energy_pj(3, 2, 1);
        let expect = 3.0 * c.remap_pj + 2.0 * c.spill_pj + c.escalate_pj;
        assert_eq!(e, expect, "integer-count arithmetic must be exact");
        assert_eq!(c.repair_energy_pj(0, 0, 0), 0.0);
    }

    #[test]
    fn spare_table_is_injective_and_stable() {
        let mut s = SpareRemapTable::new(2, 3);
        let a = s.remap(0, 10).unwrap();
        let b = s.remap(0, 11).unwrap();
        let c = s.remap(1, 10).unwrap();
        assert_ne!(a, b, "distinct rows of a bank get distinct spares");
        assert_eq!(c, 0, "banks allocate independently");
        assert_eq!(s.remap(0, 10).unwrap(), a, "stable on re-touch");
        s.remap(0, 12).unwrap();
        assert_eq!(s.remap(0, 13), None, "exhausted after 3 spares");
        assert_eq!(s.used_spares(0), 3);
    }

    #[test]
    fn wrapper_forwards_name_and_hooks() {
        let (mut rf, _) = faulted_ntv(tiny_map("H8"), RepairPolicy::DisableAndSpill);
        assert_eq!(rf.name(), "MRF@NTV(3cy)+faults");
        assert_eq!(rf.rfc_evictions(), 0);
        // Lifecycle hooks must not panic and must reach the inner model.
        let mut kb = prf_isa::KernelBuilder::new("k");
        kb.exit();
        rf.on_kernel_launch(&kb.build().unwrap(), 0);
        rf.on_warp_start(
            WarpLifecycle {
                slot: 0,
                cta: 0,
                warp_in_cta: 0,
            },
            0,
        );
        rf.on_warp_deactivated(0, 1);
        rf.on_warp_finish(
            WarpLifecycle {
                slot: 0,
                cta: 0,
                warp_in_cta: 0,
            },
            2,
        );
        rf.tick(3, 1);
    }
}
