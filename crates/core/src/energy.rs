//! Register-file energy accounting (§V-B): turns the simulator's
//! per-partition access counts into dynamic energy, and structure leakage
//! powers into leakage energy over the run.
//!
//! Per-access energies and leakage powers come from the FinCACTI-like
//! array model in [`prf_finfet::array`], so Table IV numbers flow directly
//! into Figs. 10/11/13.

use prf_finfet::array::{characterize, ArraySpec};
use prf_sim::{AccessKind, PartitionAccessCounts, RfPartition};

/// Simulated GPU core clock (GHz); the paper cites 900 MHz as a typical
/// GPU clock (§III-B).
pub const GPU_CLOCK_GHZ: f64 = 0.9;

/// Converts cycles to nanoseconds at the GPU clock.
pub fn cycles_to_ns(cycles: u64) -> f64 {
    cycles as f64 / GPU_CLOCK_GHZ
}

/// Per-access energies for every partition kind (pJ).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    per_access_pj: [f64; 8],
    /// Extra energy charged per RFC dirty write-back (MRF write + RFC
    /// read), on top of the regular access counts.
    rfc_writeback_pj: f64,
}

impl EnergyModel {
    /// Builds the model from the FinFET array characterisations, with the
    /// RFC sized for `rfc_entries` registers × `rfc_warps` warps at the
    /// given port/bank configuration (only relevant when an RFC is in
    /// play; harmless otherwise).
    pub fn new(rfc_spec: Option<ArraySpec>, rfc_mrf_at_ntv: bool) -> Self {
        let mrf_stv = characterize(&ArraySpec::mrf_stv()).access_energy_pj;
        // §V-B anchors the all-NTV monolithic RF at a 47% dynamic saving
        // ("when the monolithic RF operates at NTV it saves 47% of the RF
        // energy") — slightly worse than pure V² scaling of the array
        // model, because the full-size NTV array needs stronger upsizing.
        // Calibrate to the paper's number directly (DESIGN.md §2.3).
        let mrf_ntv = characterize(&ArraySpec::mrf_ntv())
            .access_energy_pj
            .max(mrf_stv * 0.53);
        let frf_high = characterize(&ArraySpec::frf_high()).access_energy_pj;
        let frf_low = characterize(&ArraySpec::frf_low()).access_energy_pj;
        let srf = characterize(&ArraySpec::srf()).access_energy_pj;
        let rfc = rfc_spec
            .map(|s| characterize(&s).access_energy_pj)
            .unwrap_or(0.0);
        let rfc_mrf = if rfc_mrf_at_ntv { mrf_ntv } else { mrf_stv };

        let mut per_access_pj = [0.0; 8];
        per_access_pj[RfPartition::MrfStv.index()] = mrf_stv;
        per_access_pj[RfPartition::MrfNtv.index()] = mrf_ntv;
        per_access_pj[RfPartition::FrfHigh.index()] = frf_high;
        per_access_pj[RfPartition::FrfLow.index()] = frf_low;
        per_access_pj[RfPartition::Srf.index()] = srf;
        per_access_pj[RfPartition::RfcHit.index()] = rfc;
        // A read miss costs the backing MRF read plus the RFC fill write.
        per_access_pj[RfPartition::RfcMiss.index()] = rfc_mrf + rfc;
        per_access_pj[RfPartition::RfcWriteback.index()] = rfc_mrf + rfc;

        EnergyModel {
            per_access_pj,
            rfc_writeback_pj: rfc_mrf + rfc,
        }
    }

    /// A model without an RFC (the common case).
    pub fn without_rfc() -> Self {
        Self::new(None, false)
    }

    /// Per-access energy for one partition (pJ).
    pub fn access_energy_pj(&self, p: RfPartition) -> f64 {
        self.per_access_pj[p.index()]
    }

    /// Total dynamic energy (pJ) for a run's access counts, plus
    /// `rfc_writebacks` buffered write-backs that never appear in the
    /// granted-access counts.
    pub fn dynamic_energy_pj(&self, counts: &PartitionAccessCounts, rfc_writebacks: u64) -> f64 {
        let mut e = 0.0;
        for p in RfPartition::ALL {
            e += counts.accesses(p) as f64 * self.per_access_pj[p.index()];
        }
        e + rfc_writebacks as f64 * self.rfc_writeback_pj
    }

    /// Dynamic energy (pJ) the *same access stream* would have cost on the
    /// monolithic MRF baseline at STV — the Fig. 11 denominator.
    pub fn baseline_dynamic_energy_pj(&self, counts: &PartitionAccessCounts) -> f64 {
        counts.total() as f64 * self.per_access_pj[RfPartition::MrfStv.index()]
    }

    /// Per-partition energy breakdown (pJ), skipping zero rows.
    pub fn breakdown_pj(&self, counts: &PartitionAccessCounts) -> Vec<(RfPartition, f64)> {
        RfPartition::ALL
            .iter()
            .filter_map(|&p| {
                let n = counts.accesses(p);
                if n == 0 {
                    None
                } else {
                    Some((p, n as f64 * self.per_access_pj[p.index()]))
                }
            })
            .collect()
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::without_rfc()
    }
}

/// Leakage powers of the candidate register-file organisations (mW) and
/// the leakage energy over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageModel {
    /// Monolithic MRF at STV (the baseline's 33.8 mW).
    pub mrf_stv_mw: f64,
    /// Monolithic MRF at NTV.
    pub mrf_ntv_mw: f64,
    /// FRF partition (both modes leak the same per Table IV).
    pub frf_mw: f64,
    /// SRF partition.
    pub srf_mw: f64,
}

impl LeakageModel {
    /// Builds the model from the array characterisations.
    pub fn from_finfet() -> Self {
        LeakageModel {
            mrf_stv_mw: characterize(&ArraySpec::mrf_stv()).leakage_mw,
            mrf_ntv_mw: characterize(&ArraySpec::mrf_ntv()).leakage_mw,
            frf_mw: characterize(&ArraySpec::frf_high()).leakage_mw,
            srf_mw: characterize(&ArraySpec::srf()).leakage_mw,
        }
    }

    /// Leakage power of the partitioned organisation (FRF + SRF).
    pub fn partitioned_mw(&self) -> f64 {
        self.frf_mw + self.srf_mw
    }

    /// Fractional leakage saving of the partitioned RF vs the STV MRF —
    /// the paper's 39% (§V-B).
    pub fn partitioned_saving(&self) -> f64 {
        1.0 - self.partitioned_mw() / self.mrf_stv_mw
    }

    /// Leakage energy (pJ) of a structure leaking `power_mw` over
    /// `cycles` GPU cycles (1 mW × 1 ns = 1 pJ).
    pub fn leakage_energy_pj(power_mw: f64, cycles: u64) -> f64 {
        power_mw * cycles_to_ns(cycles)
    }
}

impl Default for LeakageModel {
    fn default() -> Self {
        Self::from_finfet()
    }
}

/// Records one access into a counts structure — convenience for tests.
pub fn record_n(counts: &mut PartitionAccessCounts, p: RfPartition, kind: AccessKind, n: u64) {
    for _ in 0..n {
        counts.record(p, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_access_energies_match_table4() {
        let m = EnergyModel::without_rfc();
        assert!((m.access_energy_pj(RfPartition::MrfStv) - 14.9).abs() < 0.1);
        assert!((m.access_energy_pj(RfPartition::FrfHigh) - 7.65).abs() < 0.1);
        assert!((m.access_energy_pj(RfPartition::FrfLow) - 5.25).abs() < 0.1);
        assert!((m.access_energy_pj(RfPartition::Srf) - 7.03).abs() < 0.1);
    }

    #[test]
    fn dynamic_energy_weights_partitions() {
        let m = EnergyModel::without_rfc();
        let mut c = PartitionAccessCounts::new();
        record_n(&mut c, RfPartition::FrfHigh, AccessKind::Read, 10);
        record_n(&mut c, RfPartition::Srf, AccessKind::Write, 5);
        let e = m.dynamic_energy_pj(&c, 0);
        let expect = 10.0 * m.access_energy_pj(RfPartition::FrfHigh)
            + 5.0 * m.access_energy_pj(RfPartition::Srf);
        assert!((e - expect).abs() < 1e-9);
        // The same 15 accesses on the STV baseline.
        let b = m.baseline_dynamic_energy_pj(&c);
        assert!((b - 15.0 * 14.9).abs() < 1.0);
        assert!(e < b, "partitioned accesses must be cheaper");
    }

    #[test]
    fn paper_energy_split_yields_about_54_percent_saving() {
        // Fig. 10/11 arithmetic: with 62% of accesses in the FRF (of which
        // 22% in low mode) and 38% in the SRF, dynamic saving ≈ 54%.
        let m = EnergyModel::without_rfc();
        let mut c = PartitionAccessCounts::new();
        record_n(&mut c, RfPartition::FrfHigh, AccessKind::Read, 4836); // 62% * 78%
        record_n(&mut c, RfPartition::FrfLow, AccessKind::Read, 1364); // 62% * 22%
        record_n(&mut c, RfPartition::Srf, AccessKind::Read, 3800);
        let saving = 1.0 - m.dynamic_energy_pj(&c, 0) / m.baseline_dynamic_energy_pj(&c);
        assert!((saving - 0.54).abs() < 0.03, "saving {saving}");
    }

    #[test]
    fn mrf_ntv_saves_about_47_percent() {
        // §V-B: "when the monolithic RF operates at NTV it saves 47% of
        // the RF energy".
        let m = EnergyModel::without_rfc();
        let saving =
            1.0 - m.access_energy_pj(RfPartition::MrfNtv) / m.access_energy_pj(RfPartition::MrfStv);
        assert!((saving - 0.47).abs() < 0.06, "saving {saving}");
    }

    #[test]
    fn rfc_miss_costs_mrf_plus_fill() {
        let spec = ArraySpec::rfc(6, 8, 2, 1, 1);
        let m = EnergyModel::new(Some(spec), true);
        let hit = m.access_energy_pj(RfPartition::RfcHit);
        let miss = m.access_energy_pj(RfPartition::RfcMiss);
        let mrf_ntv = m.access_energy_pj(RfPartition::MrfNtv);
        assert!((miss - (mrf_ntv + hit)).abs() < 1e-9);
        assert!(hit < m.access_energy_pj(RfPartition::MrfStv));
    }

    #[test]
    fn rfc_writebacks_add_energy() {
        let spec = ArraySpec::rfc(6, 8, 2, 1, 1);
        let m = EnergyModel::new(Some(spec), true);
        let c = PartitionAccessCounts::new();
        assert_eq!(m.dynamic_energy_pj(&c, 0), 0.0);
        assert!(m.dynamic_energy_pj(&c, 10) > 0.0);
    }

    #[test]
    fn leakage_matches_section_vb() {
        let l = LeakageModel::from_finfet();
        assert!((l.mrf_stv_mw - 33.8).abs() < 0.2);
        assert!((l.frf_mw - 7.28).abs() < 0.1);
        assert!((l.srf_mw - 13.4).abs() < 0.2);
        // "our proposed RF is able to save 39% of the RF leakage power".
        assert!(
            (l.partitioned_saving() - 0.39).abs() < 0.02,
            "{}",
            l.partitioned_saving()
        );
    }

    #[test]
    fn leakage_energy_units() {
        // 33.8 mW over 900 cycles at 0.9 GHz = 33.8 mW * 1000 ns = 33800 pJ.
        let e = LeakageModel::leakage_energy_pj(33.8, 900);
        assert!((e - 33_800.0).abs() < 1.0);
    }

    #[test]
    fn breakdown_skips_zero_rows() {
        let m = EnergyModel::without_rfc();
        let mut c = PartitionAccessCounts::new();
        record_n(&mut c, RfPartition::Srf, AccessKind::Read, 2);
        let b = m.breakdown_pj(&c);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].0, RfPartition::Srf);
    }
}
