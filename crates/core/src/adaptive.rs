//! The adaptive FRF controller: epoch-based phase detection driving the
//! FinFET back-gate mode signal (§IV-C).
//!
//! Every 50 cycles a 9-bit counter of issued instructions is compared
//! against a threshold (85 of the 400 possible issue slots ≈ 20%); when the
//! SM is in a low-compute phase, the *next* epoch runs the FRF in low-power
//! mode (back gate grounded, 2-cycle access, 5.25 pJ) instead of high-power
//! mode (1-cycle, 7.65 pJ).

/// FRF power mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FrfMode {
    /// Back gate at Vdd: 1-cycle access.
    #[default]
    High,
    /// Back gate grounded: 2-cycle access, reduced dynamic energy.
    Low,
}

impl std::fmt::Display for FrfMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FrfMode::High => "FRF_high",
            FrfMode::Low => "FRF_low",
        })
    }
}

/// Configuration of the epoch detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveFrfConfig {
    /// Epoch length in cycles (the paper uses 50 and shows insensitivity
    /// in §V-C).
    pub epoch_length: u64,
    /// Low-compute threshold in issued instructions per epoch (85 for a
    /// 50-cycle epoch on an 8-issue SM — 20% of the 400 issue slots).
    pub threshold: u32,
}

impl AdaptiveFrfConfig {
    /// The paper's design point: 50-cycle epochs, threshold 85.
    pub fn paper_default() -> Self {
        AdaptiveFrfConfig {
            epoch_length: 50,
            threshold: 85,
        }
    }

    /// A config with the same 20% threshold *ratio* at a different epoch
    /// length (used by the epoch-length sensitivity study, §V-C).
    ///
    /// # Panics
    ///
    /// Panics if `epoch_length` is zero, or if the epoch's issue-slot
    /// count (`epoch_length * issue_width`) does not fit the u32 hardware
    /// threshold counter — `epoch_length as u32` used to truncate here
    /// silently, deriving a nonsense threshold for large sweep points.
    pub fn with_epoch(epoch_length: u64, issue_width: u32) -> Self {
        assert!(epoch_length > 0, "epoch length must be positive");
        let slots = epoch_length
            .checked_mul(u64::from(issue_width))
            .expect("epoch_length * issue_width overflows u64");
        // slots/5 + slots*5/400, with the second term reduced to slots/80
        // (identical for integers) so the intermediate cannot overflow.
        let threshold = slots / 5 + slots / 80;
        let threshold = u32::try_from(threshold).unwrap_or_else(|_| {
            panic!(
                "epoch of {epoch_length} cycles x {issue_width}-issue gives a \
                 threshold of {threshold} slots, which exceeds the u32 \
                 threshold counter"
            )
        });
        AdaptiveFrfConfig {
            epoch_length,
            threshold,
        }
    }
}

impl Default for AdaptiveFrfConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The runtime controller. One per SM, as in the paper.
#[derive(Debug, Clone)]
pub struct AdaptiveFrf {
    config: AdaptiveFrfConfig,
    /// 9-bit issue counter (saturates at 511, like the hardware counter).
    count: u32,
    cycles_in_epoch: u64,
    mode: FrfMode,
    /// Epochs spent in each mode (telemetry).
    pub high_epochs: u64,
    /// Epochs spent in low mode (telemetry).
    pub low_epochs: u64,
}

/// Saturation limit of the 9-bit hardware counter.
const COUNTER_MAX: u32 = 511;

impl AdaptiveFrf {
    /// Creates a controller starting in high-power mode.
    pub fn new(config: AdaptiveFrfConfig) -> Self {
        AdaptiveFrf {
            config,
            count: 0,
            cycles_in_epoch: 0,
            mode: FrfMode::High,
            high_epochs: 0,
            low_epochs: 0,
        }
    }

    /// Current FRF mode.
    pub fn mode(&self) -> FrfMode {
        self.mode
    }

    /// Advances one cycle in which `issued` instructions were issued.
    /// At an epoch boundary the mode for the next epoch is chosen.
    pub fn tick(&mut self, issued: u32) {
        self.count = (self.count + issued).min(COUNTER_MAX);
        self.cycles_in_epoch += 1;
        if self.cycles_in_epoch >= self.config.epoch_length {
            match self.mode {
                FrfMode::High => self.high_epochs += 1,
                FrfMode::Low => self.low_epochs += 1,
            }
            self.mode = if self.count < self.config.threshold {
                FrfMode::Low
            } else {
                FrfMode::High
            };
            self.count = 0;
            self.cycles_in_epoch = 0;
        }
    }

    /// Restarts phase detection (kernel launch).
    pub fn reset(&mut self) {
        self.count = 0;
        self.cycles_in_epoch = 0;
        self.mode = FrfMode::High;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_85_of_400() {
        let c = AdaptiveFrfConfig::paper_default();
        assert_eq!(c.epoch_length, 50);
        assert_eq!(c.threshold, 85);
    }

    #[test]
    fn with_epoch_preserves_ratio() {
        // 100-cycle epoch, 8-issue: 800 slots -> 20% + the same 85/400
        // rounding the paper uses: 160 + 10 = 170.
        let c = AdaptiveFrfConfig::with_epoch(100, 8);
        assert_eq!(c.epoch_length, 100);
        assert_eq!(c.threshold, 170);
        // 50-cycle epoch recovers the paper threshold.
        assert_eq!(AdaptiveFrfConfig::with_epoch(50, 8).threshold, 85);
    }

    #[test]
    fn with_epoch_handles_large_epochs_without_truncation() {
        // Regression: `epoch_length as u32 * issue_width` truncated the
        // epoch length, so epochs beyond u32::MAX slots got tiny (or
        // wrapped) thresholds. 2^29 cycles x 8-issue = 2^32 slots is
        // exactly the first point the old arithmetic destroyed.
        let epoch = 1u64 << 29;
        let c = AdaptiveFrfConfig::with_epoch(epoch, 8);
        let slots = epoch * 8;
        assert_eq!(u64::from(c.threshold), slots / 5 + slots / 80);
    }

    #[test]
    #[should_panic(expected = "u32 threshold counter")]
    fn with_epoch_rejects_epochs_beyond_the_hardware_counter() {
        // 2^32 cycles x 8-issue wants a ~915M-slot threshold x 8 — over
        // u32::MAX; the old code silently truncated instead of panicking.
        AdaptiveFrfConfig::with_epoch(1u64 << 34, 8);
    }

    #[test]
    fn busy_epochs_stay_high() {
        let mut a = AdaptiveFrf::new(AdaptiveFrfConfig::paper_default());
        for _ in 0..50 {
            a.tick(4); // 200 issued >= 85
        }
        assert_eq!(a.mode(), FrfMode::High);
        assert_eq!(a.high_epochs, 1);
        assert_eq!(a.low_epochs, 0);
    }

    #[test]
    fn idle_epoch_switches_to_low_next_epoch() {
        let mut a = AdaptiveFrf::new(AdaptiveFrfConfig::paper_default());
        for i in 0..49 {
            a.tick(1);
            assert_eq!(
                a.mode(),
                FrfMode::High,
                "mode holds within epoch (cycle {i})"
            );
        }
        a.tick(1); // epoch ends with 50 < 85
        assert_eq!(a.mode(), FrfMode::Low, "next epoch runs in low mode");
    }

    #[test]
    fn recovers_to_high_when_busy_resumes() {
        let mut a = AdaptiveFrf::new(AdaptiveFrfConfig::paper_default());
        for _ in 0..50 {
            a.tick(0);
        }
        assert_eq!(a.mode(), FrfMode::Low);
        for _ in 0..50 {
            a.tick(8);
        }
        assert_eq!(a.mode(), FrfMode::High);
        assert_eq!(a.low_epochs, 1);
        assert_eq!(a.high_epochs, 1);
    }

    #[test]
    fn counter_saturates_at_9_bits() {
        let mut a = AdaptiveFrf::new(AdaptiveFrfConfig {
            epoch_length: 100,
            threshold: 600,
        });
        for _ in 0..100 {
            a.tick(8); // raw total 800, saturates at 511
        }
        // 511 < 600 -> low: proves saturation happened (800 would be high).
        assert_eq!(a.mode(), FrfMode::Low);
    }

    #[test]
    fn reset_restores_high_mode() {
        let mut a = AdaptiveFrf::new(AdaptiveFrfConfig::paper_default());
        for _ in 0..50 {
            a.tick(0);
        }
        assert_eq!(a.mode(), FrfMode::Low);
        a.reset();
        assert_eq!(a.mode(), FrfMode::High);
    }

    #[test]
    fn display_names() {
        assert_eq!(FrfMode::High.to_string(), "FRF_high");
        assert_eq!(FrfMode::Low.to_string(), "FRF_low");
    }
}
