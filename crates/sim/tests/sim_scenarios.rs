//! Simulator-level integration scenarios: cross-checks between the
//! occupancy model and the live pipeline, scheduler end-to-end behaviour,
//! and the unpipelined-bank ablation mode.

use prf_isa::{CmpOp, GridConfig, KernelBuilder, PredReg, Reg, SpecialReg};
use prf_sim::{BaselineRf, Gpu, GpuConfig, Occupancy, OccupancyLimiter, SchedulerPolicy};

fn alu_kernel(trips: u32) -> prf_isa::Kernel {
    let mut kb = KernelBuilder::new("alu");
    kb.mov_special(Reg(0), SpecialReg::GlobalTid);
    kb.mov_imm(Reg(1), 0);
    kb.mov_imm(Reg(2), 3);
    let top = kb.new_label();
    kb.place_label(top);
    kb.imad(Reg(2), Reg(2), Reg(2), Reg(2));
    kb.iadd_imm(Reg(1), Reg(1), 1);
    kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(1), trips);
    kb.bra_if(PredReg(0), true, top);
    kb.stg(Reg(0), Reg(2), 0);
    kb.exit();
    kb.build().unwrap()
}

fn small_config(policy: SchedulerPolicy) -> GpuConfig {
    GpuConfig {
        scheduler: policy,
        global_mem_words: 1 << 14,
        // Every scenario in this file doubles as a conservation audit.
        audit: true,
        ..GpuConfig::kepler_single_sm()
    }
}

/// Asserts the run's conservation audit came back clean.
fn assert_clean(r: &prf_sim::SimResult) {
    let audit = r.audit.as_ref().expect("audit enabled by small_config");
    assert!(audit.is_clean(), "{}: {audit}", r.kernel);
}

#[test]
fn every_scheduler_completes_the_alu_kernel() {
    let grid = GridConfig::new(8, 256);
    let mut counts = Vec::new();
    for policy in [
        SchedulerPolicy::Gto,
        SchedulerPolicy::Lrr,
        SchedulerPolicy::TwoLevel {
            active_per_scheduler: 4,
        },
        SchedulerPolicy::FetchGroup { group_size: 4 },
    ] {
        let mut gpu = Gpu::new(small_config(policy));
        let r = gpu
            .run(alu_kernel(12), grid, &|_| Box::new(BaselineRf::stv(24)))
            .unwrap();
        assert_clean(&r);
        counts.push(r.stats.instructions);
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}

#[test]
fn unpipelined_banks_slow_ntv_much_more_than_stv() {
    let grid = GridConfig::new(8, 256);
    let run = |pipelined: bool, latency: u32| -> u64 {
        let config = GpuConfig {
            rf_pipelined: pipelined,
            ..small_config(SchedulerPolicy::Gto)
        };
        let mut gpu = Gpu::new(config);
        let rf_factory = move |_: usize| -> Box<dyn prf_sim::RegisterFileModel> {
            if latency == 1 {
                Box::new(BaselineRf::stv(24))
            } else {
                Box::new(BaselineRf::ntv(24, latency))
            }
        };
        let r = gpu.run(alu_kernel(12), grid, &rf_factory).unwrap();
        assert_clean(&r);
        r.cycles
    };
    let stv_piped = run(true, 1);
    let ntv_piped = run(true, 3);
    let ntv_unpiped = run(false, 3);
    // Pipelined: NTV costs latency only. Unpipelined: NTV also costs 3x
    // bank throughput, which must hurt distinctly more.
    assert!(ntv_piped >= stv_piped);
    assert!(
        ntv_unpiped as f64 > ntv_piped as f64 * 1.2,
        "unpipelined NTV ({ntv_unpiped}) should be well beyond pipelined NTV ({ntv_piped})"
    );
}

#[test]
fn live_residency_respects_hardware_limits() {
    // The steady-state occupancy bound holds for the initial dispatch
    // burst; afterwards a *draining* CTA can free warp slots before its
    // CTA slot, so the live CTA count may transiently exceed the
    // steady-state figure (as on real GPUs). The hard hardware limits —
    // warp slots, CTA slots — must hold at every cycle.
    let config = small_config(SchedulerPolicy::Gto);
    let grid = GridConfig::new(32, 256);
    let kernel = alu_kernel(6);
    let occ = Occupancy::compute(&config, &grid, kernel.regs_per_thread());
    assert_eq!(occ.limiter, OccupancyLimiter::WarpSlots);

    // Instrument by stepping the SM manually.
    use prf_isa::CtaId;
    use prf_sim::{GlobalMemory, KernelImage, Sm};
    use std::sync::Arc;
    let image = Arc::new(KernelImage::new(kernel, grid));
    let mut sm = Sm::new(
        0,
        &config,
        Arc::clone(&image),
        Box::new(BaselineRf::stv(24)),
    );
    sm.notify_kernel_launch(0);
    let global = GlobalMemory::new(config.global_mem_words);
    let mut next = 0u32;
    let mut peak_warps = 0usize;
    for cycle in 0..200_000u64 {
        while next < grid.num_ctas && sm.try_dispatch_cta(CtaId(next), cycle) {
            next += 1;
        }
        if cycle == 0 {
            // First-burst residency cannot exceed the occupancy model
            // (dispatch staggering may make it smaller).
            assert!(sm.resident_ctas() <= occ.resident_ctas);
        }
        assert!(sm.resident_warps() <= config.max_warps_per_sm);
        assert!(sm.resident_ctas() <= config.max_ctas_per_sm);
        peak_warps = peak_warps.max(sm.resident_warps());
        sm.cycle(cycle, &global);
        if next == grid.num_ctas && sm.is_idle() {
            // The pipeline should have reached the occupancy model's
            // steady-state warp count at some point.
            assert_eq!(peak_warps, occ.resident_warps);
            return;
        }
    }
    panic!("kernel did not finish");
}

#[test]
fn jitter_seeds_change_timing_but_not_results() {
    let grid = GridConfig::new(4, 128);
    let run = |seed: u64| {
        let config = GpuConfig {
            jitter_seed: seed,
            ..small_config(SchedulerPolicy::Gto)
        };
        let mut gpu = Gpu::new(config);
        let r = gpu
            .run(alu_kernel(10), grid, &|_| Box::new(BaselineRf::stv(24)))
            .unwrap();
        assert_clean(&r);
        let out: Vec<u32> = (0..512).map(|i| gpu.global_mem_ref().read(i)).collect();
        (r.cycles, r.stats.instructions, out)
    };
    let (c0, i0, out0) = run(0);
    let (c1, i1, out1) = run(1);
    assert_eq!(i0, i1, "same instructions regardless of jitter");
    assert_eq!(
        out0, out1,
        "same architectural results regardless of jitter"
    );
    // Timing generally differs (not strictly guaranteed, but these seeds do).
    assert_ne!(c0, c1, "jitter seeds should perturb timing");
}

#[test]
fn per_warp_stats_sum_to_global_histogram() {
    let config = GpuConfig {
        per_warp_stats: true,
        ..small_config(SchedulerPolicy::Gto)
    };
    let mut gpu = Gpu::new(config);
    let r = gpu
        .run(alu_kernel(8), GridConfig::new(4, 128), &|_| {
            Box::new(BaselineRf::stv(24))
        })
        .unwrap();
    assert_clean(&r);
    let mut summed = [0u64; prf_isa::MAX_ARCH_REGS];
    for h in r.stats.per_warp.values() {
        for (i, &c) in h.counts().iter().enumerate() {
            summed[i] += c;
        }
    }
    assert_eq!(&summed, r.stats.reg_accesses.counts());
    assert_eq!(r.stats.per_warp.len(), 16, "4 CTAs x 4 warps tracked");
}
