//! End-to-end conservation-invariant audits: every scheduler and kernel
//! shape must produce a clean [`prf_sim::AuditReport`], and a deliberately
//! broken counter must be caught with provenance (the mutation test).

use std::sync::Arc;

use prf_isa::{CmpOp, CtaId, GridConfig, Kernel, KernelBuilder, PredReg, Reg, SpecialReg};
use prf_sim::{BaselineRf, GlobalMemory, Gpu, GpuConfig, KernelImage, SchedulerPolicy, Sm};

fn audited_config(policy: SchedulerPolicy) -> GpuConfig {
    GpuConfig {
        scheduler: policy,
        global_mem_words: 1 << 14,
        audit: true,
        ..GpuConfig::kepler_single_sm()
    }
}

fn alu_loop_kernel(trips: u32) -> Kernel {
    let mut kb = KernelBuilder::new("alu");
    kb.mov_special(Reg(0), SpecialReg::GlobalTid);
    kb.mov_imm(Reg(1), 0);
    kb.mov_imm(Reg(2), 3);
    let top = kb.new_label();
    kb.place_label(top);
    kb.imad(Reg(2), Reg(2), Reg(2), Reg(2));
    kb.iadd_imm(Reg(1), Reg(1), 1);
    kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(1), trips);
    kb.bra_if(PredReg(0), true, top);
    kb.stg(Reg(0), Reg(2), 0);
    kb.exit();
    kb.build().unwrap()
}

fn memory_heavy_kernel() -> Kernel {
    // Loads, stores, shared memory, and a barrier: exercises the LSU, the
    // shared-memory unit, and predicate scoreboarding together.
    let mut kb = KernelBuilder::new("mem");
    kb.mov_special(Reg(0), SpecialReg::TidX);
    kb.ldg(Reg(1), Reg(0), 0);
    kb.sts(Reg(0), Reg(1), 0);
    kb.bar();
    kb.iand_imm(Reg(2), Reg(0), 31);
    kb.lds(Reg(3), Reg(2), 0);
    kb.iadd(Reg(4), Reg(3), Reg(1));
    kb.stg(Reg(0), Reg(4), 256);
    kb.exit();
    kb.build().unwrap()
}

fn divergent_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("div");
    kb.mov_special(Reg(0), SpecialReg::LaneId);
    kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(0), 16);
    let else_ = kb.new_label();
    let join = kb.new_label();
    kb.bra_if(PredReg(0), false, else_);
    kb.mov_imm(Reg(1), 1);
    kb.bra(join);
    kb.place_label(else_);
    kb.mov_imm(Reg(1), 2);
    kb.place_label(join);
    kb.stg(Reg(0), Reg(1), 0);
    kb.exit();
    kb.build().unwrap()
}

#[test]
fn every_scheduler_passes_the_audit_on_an_alu_kernel() {
    for policy in [
        SchedulerPolicy::Gto,
        SchedulerPolicy::Lrr,
        SchedulerPolicy::TwoLevel {
            active_per_scheduler: 4,
        },
        SchedulerPolicy::FetchGroup { group_size: 4 },
    ] {
        let mut gpu = Gpu::new(audited_config(policy));
        let r = gpu
            .run(alu_loop_kernel(12), GridConfig::new(8, 256), &|_| {
                Box::new(BaselineRf::stv(24))
            })
            .unwrap();
        let audit = r.audit.expect("audit enabled");
        assert!(audit.is_clean(), "{policy}: {audit}");
        assert_eq!(audit.issue_events, r.stats.instructions);
        assert!(audit.checks > 0);
    }
}

#[test]
fn memory_and_divergent_kernels_pass_the_audit() {
    for kernel in [memory_heavy_kernel(), divergent_kernel()] {
        let mut gpu = Gpu::new(audited_config(SchedulerPolicy::Gto));
        let r = gpu
            .run(kernel, GridConfig::new(4, 128), &|_| {
                Box::new(BaselineRf::stv(24))
            })
            .unwrap();
        let audit = r.audit.expect("audit enabled");
        assert!(audit.is_clean(), "{}: {audit}", r.kernel);
        // Memory pipeline really ran and balanced.
        assert_eq!(audit.lsu_complete_events, r.stats.mem_instructions);
    }
}

#[test]
fn multi_sm_ntv_run_passes_the_audit() {
    let config = GpuConfig {
        num_sms: 4,
        scheduler: SchedulerPolicy::Gto,
        global_mem_words: 1 << 14,
        audit: true,
        ..GpuConfig::kepler_gtx780()
    };
    let mut gpu = Gpu::new(config);
    let r = gpu
        .run(alu_loop_kernel(8), GridConfig::new(16, 128), &|_| {
            Box::new(BaselineRf::ntv(24, 3))
        })
        .unwrap();
    let audit = r.audit.expect("audit enabled");
    assert!(audit.is_clean(), "{audit}");
    assert_eq!(audit.rf_events, r.stats.partition_accesses);
}

#[test]
fn audit_is_absent_when_disabled() {
    let config = GpuConfig {
        audit: false,
        global_mem_words: 1 << 14,
        ..GpuConfig::kepler_single_sm()
    };
    let mut gpu = Gpu::new(config);
    let r = gpu
        .run(alu_loop_kernel(4), GridConfig::new(2, 64), &|_| {
            Box::new(BaselineRf::stv(24))
        })
        .unwrap();
    assert!(r.audit.is_none());
}

#[test]
fn tampered_sm_counter_is_caught_with_cycle_and_sm_provenance() {
    // Drive one SM by hand, corrupt a statistics counter the way a silent
    // accounting bug would, and check the audit names the damage.
    let config = audited_config(SchedulerPolicy::Gto);
    let grid = GridConfig::new(2, 64);
    let image = Arc::new(KernelImage::new(alu_loop_kernel(6), grid));
    let mut sm = Sm::new(
        0,
        &config,
        Arc::clone(&image),
        Box::new(BaselineRf::stv(24)),
    );
    sm.notify_kernel_launch(0);
    let global = GlobalMemory::new(config.global_mem_words);
    let mut next_cta = 0u32;
    let mut cycle = 0u64;
    loop {
        while next_cta < grid.num_ctas && sm.try_dispatch_cta(CtaId(next_cta), cycle) {
            next_cta += 1;
        }
        sm.cycle(cycle, &global);
        cycle += 1;
        if next_cta == grid.num_ctas && sm.is_idle() {
            break;
        }
        assert!(cycle < config.max_cycles);
    }

    sm.stats.instructions += 3; // the deliberate drift
    let report = sm.finish_audit(cycle).expect("audit enabled");
    assert!(!report.is_clean());
    let v = &report.violations[0];
    assert_eq!(v.invariant, "issue conservation");
    assert_eq!(v.cycle, cycle);
    assert_eq!(v.sm, Some(0));
    assert!(v.detail.contains("expected"), "{v}");
}
