//! Sampled time-series telemetry: cycle-windowed counter deltas per SM.
//!
//! When `GpuConfig::sampling` is set, every SM carries an [`SmSampler`]
//! that snapshots its [`SmStats`] counters once per `window` cycles and
//! records the *delta* since the previous boundary into a preallocated
//! buffer. Because each window stores deltas of the very counters the SM
//! already maintains, the series is conservative by construction: summing
//! any counter over all windows (the last one may be partial) reproduces
//! the run's final `SmStats` value exactly — an invariant the audit layer
//! checks via [`check_series_conservation`].
//!
//! Sampling off (`sampling: None`) costs one branch per SM per cycle and
//! changes nothing else; simulation results are bit-identical either way.

use crate::audit::AuditReport;
use crate::rf::RfPartition;
use crate::stats::SmStats;

/// Sampling knob for [`crate::GpuConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Window length in cycles (must be ≥ 1). Every `window` cycles the
    /// SM closes one [`SampleWindow`].
    pub window: u64,
}

impl SamplingConfig {
    /// A sampling configuration with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn every(window: u64) -> Self {
        assert!(window >= 1, "sampling window must be at least one cycle");
        SamplingConfig { window }
    }
}

/// The monotone counters a window tracks, snapshotted at each boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct CounterSnapshot {
    instructions: u64,
    issue_cycles: u64,
    active_cycles: u64,
    stall_mem: u64,
    stall_barrier: u64,
    stall_collector: u64,
    stall_alu_dep: u64,
    rf_reads: [u64; 8],
    rf_writes: [u64; 8],
}

impl CounterSnapshot {
    fn of(stats: &SmStats) -> Self {
        let mut rf_reads = [0u64; 8];
        let mut rf_writes = [0u64; 8];
        for p in RfPartition::ALL {
            rf_reads[p.index()] = stats.partition_accesses.reads(p);
            rf_writes[p.index()] = stats.partition_accesses.writes(p);
        }
        CounterSnapshot {
            instructions: stats.instructions,
            issue_cycles: stats.issue_cycles,
            active_cycles: stats.active_cycles,
            stall_mem: stats.stall_mem,
            stall_barrier: stats.stall_barrier,
            stall_collector: stats.stall_collector,
            stall_alu_dep: stats.stall_alu_dep,
            rf_reads,
            rf_writes,
        }
    }
}

/// One closed sampling window: counter deltas over `cycles` cycles plus
/// instantaneous gauges read at the window boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleWindow {
    /// First cycle covered by the window (global cycle numbering).
    pub start_cycle: u64,
    /// Cycles covered (equals the configured window except for a partial
    /// final window).
    pub cycles: u64,
    /// Warp-instructions issued within the window.
    pub instructions: u64,
    /// Cycles within the window in which at least one instruction issued.
    pub issue_cycles: u64,
    /// Cycles within the window the SM had at least one resident warp.
    pub active_cycles: u64,
    /// Zero-issue cycles dominated by the memory shadow.
    pub stall_mem: u64,
    /// Zero-issue cycles dominated by barrier waits.
    pub stall_barrier: u64,
    /// Zero-issue cycles dominated by collector starvation.
    pub stall_collector: u64,
    /// Zero-issue cycles dominated by ALU-latency dependences.
    pub stall_alu_dep: u64,
    /// RF reads granted within the window, dense by
    /// [`RfPartition::index`].
    pub rf_reads: [u64; 8],
    /// RF writes granted within the window, dense by
    /// [`RfPartition::index`].
    pub rf_writes: [u64; 8],
    /// Resident warps at the cycle the window closed (gauge).
    pub active_warps: usize,
    /// FRF power mode at the cycle the window closed: `Some(true)` when
    /// the model ran its FRF in low-power mode, `None` for models without
    /// an adaptive FRF (gauge).
    pub frf_low: Option<bool>,
}

impl SampleWindow {
    /// Instructions per cycle within the window.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// RF reads + writes within the window, over all partitions.
    pub fn rf_accesses(&self) -> u64 {
        self.rf_reads.iter().sum::<u64>() + self.rf_writes.iter().sum::<u64>()
    }
}

/// The windowed series recorded by one SM over one kernel launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleSeries {
    /// SM index the series belongs to.
    pub sm: usize,
    /// Configured window length in cycles.
    pub window: u64,
    /// Closed windows, oldest first; the last may be partial.
    pub windows: Vec<SampleWindow>,
}

impl SampleSeries {
    /// Sums one counter over all windows (the conservation primitive).
    pub fn total(&self, f: impl Fn(&SampleWindow) -> u64) -> u64 {
        self.windows.iter().map(f).sum()
    }
}

/// Per-SM sampling engine: owned by the SM, fed once per cycle, flushed at
/// end of run.
#[derive(Debug, Clone)]
pub struct SmSampler {
    window: u64,
    /// Counter values at the last window boundary.
    prev: CounterSnapshot,
    /// First cycle of the currently open window (`None` before the first
    /// `on_cycle` call).
    window_start: Option<u64>,
    /// Cycles accumulated in the open window.
    open_cycles: u64,
    windows: Vec<SampleWindow>,
}

/// Initial buffer capacity: enough for most figure workloads without a
/// single reallocation, tiny compared to simulator state otherwise.
const PREALLOCATED_WINDOWS: usize = 1024;

impl SmSampler {
    /// A sampler with the given configuration.
    pub fn new(config: SamplingConfig) -> Self {
        assert!(config.window >= 1, "sampling window must be positive");
        SmSampler {
            window: config.window,
            prev: CounterSnapshot::default(),
            window_start: None,
            open_cycles: 0,
            windows: Vec::with_capacity(PREALLOCATED_WINDOWS),
        }
    }

    /// Advances the sampler by one simulated cycle. `stats` is the SM's
    /// cumulative statistics *after* the cycle executed; `active_warps`
    /// and `frf_low` are instantaneous gauges.
    pub fn on_cycle(
        &mut self,
        cycle: u64,
        stats: &SmStats,
        active_warps: usize,
        frf_low: Option<bool>,
    ) {
        if self.window_start.is_none() {
            self.window_start = Some(cycle);
        }
        self.open_cycles += 1;
        if self.open_cycles >= self.window {
            self.close_window(stats, active_warps, frf_low);
        }
    }

    /// Closes the partial final window (if any cycles are pending) and
    /// returns the recorded series. Call exactly once, after the run.
    pub fn finish(mut self, sm: usize, stats: &SmStats, active_warps: usize) -> SampleSeries {
        if self.open_cycles > 0 {
            self.close_window(stats, active_warps, None);
        }
        SampleSeries {
            sm,
            window: self.window,
            windows: self.windows,
        }
    }

    fn close_window(&mut self, stats: &SmStats, active_warps: usize, frf_low: Option<bool>) {
        let now = CounterSnapshot::of(stats);
        let p = &self.prev;
        let mut rf_reads = [0u64; 8];
        let mut rf_writes = [0u64; 8];
        for i in 0..8 {
            rf_reads[i] = now.rf_reads[i] - p.rf_reads[i];
            rf_writes[i] = now.rf_writes[i] - p.rf_writes[i];
        }
        let start_cycle = self
            .window_start
            .expect("an open window always has a start");
        self.windows.push(SampleWindow {
            start_cycle,
            cycles: self.open_cycles,
            instructions: now.instructions - p.instructions,
            issue_cycles: now.issue_cycles - p.issue_cycles,
            active_cycles: now.active_cycles - p.active_cycles,
            stall_mem: now.stall_mem - p.stall_mem,
            stall_barrier: now.stall_barrier - p.stall_barrier,
            stall_collector: now.stall_collector - p.stall_collector,
            stall_alu_dep: now.stall_alu_dep - p.stall_alu_dep,
            rf_reads,
            rf_writes,
            active_warps,
            frf_low,
        });
        self.prev = now;
        self.window_start = Some(start_cycle + self.open_cycles);
        self.open_cycles = 0;
    }
}

/// Audits one SM's sampled series against its final statistics: every
/// windowed counter, summed over the whole series, must equal the
/// cumulative `SmStats` value — windows are deltas of those counters, so
/// any drift means a window was dropped, double-counted, or mis-sliced.
pub fn check_series_conservation(
    report: &mut AuditReport,
    series: &SampleSeries,
    stats: &SmStats,
    final_cycle: u64,
    sm: usize,
) {
    let checks: [(&'static str, u64, u64); 7] = [
        (
            "sampling: instruction conservation",
            series.total(|w| w.instructions),
            stats.instructions,
        ),
        (
            "sampling: issue-cycle conservation",
            series.total(|w| w.issue_cycles),
            stats.issue_cycles,
        ),
        (
            "sampling: active-cycle conservation",
            series.total(|w| w.active_cycles),
            stats.active_cycles,
        ),
        (
            "sampling: mem-stall conservation",
            series.total(|w| w.stall_mem),
            stats.stall_mem,
        ),
        (
            "sampling: barrier-stall conservation",
            series.total(|w| w.stall_barrier),
            stats.stall_barrier,
        ),
        (
            "sampling: collector-stall conservation",
            series.total(|w| w.stall_collector),
            stats.stall_collector,
        ),
        (
            "sampling: alu-stall conservation",
            series.total(|w| w.stall_alu_dep),
            stats.stall_alu_dep,
        ),
    ];
    for (invariant, observed, expected) in checks {
        report.check_counts(invariant, expected, observed, final_cycle, Some(sm));
    }
    for p in RfPartition::ALL {
        report.check_counts(
            "sampling: RF-read conservation",
            stats.partition_accesses.reads(p),
            series.total(|w| w.rf_reads[p.index()]),
            final_cycle,
            Some(sm),
        );
        report.check_counts(
            "sampling: RF-write conservation",
            stats.partition_accesses.writes(p),
            series.total(|w| w.rf_writes[p.index()]),
            final_cycle,
            Some(sm),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rf::AccessKind;

    fn stats_at(instructions: u64, reads: u64) -> SmStats {
        let mut s = SmStats::new();
        s.instructions = instructions;
        for _ in 0..reads {
            s.partition_accesses
                .record(RfPartition::MrfStv, AccessKind::Read);
        }
        s
    }

    #[test]
    fn windows_carry_deltas_not_totals() {
        let mut sampler = SmSampler::new(SamplingConfig::every(2));
        let s1 = stats_at(3, 2);
        sampler.on_cycle(0, &s1, 4, None);
        sampler.on_cycle(1, &s1, 4, None); // closes window 1: 3 instrs
        let s2 = stats_at(10, 5);
        sampler.on_cycle(2, &s2, 2, Some(true));
        sampler.on_cycle(3, &s2, 2, Some(true)); // closes window 2: 7 instrs
        let series = sampler.finish(0, &s2, 2);
        assert_eq!(series.windows.len(), 2);
        assert_eq!(series.windows[0].instructions, 3);
        assert_eq!(series.windows[0].start_cycle, 0);
        assert_eq!(series.windows[1].instructions, 7);
        assert_eq!(series.windows[1].start_cycle, 2);
        assert_eq!(series.windows[1].frf_low, Some(true));
        assert_eq!(series.windows[1].rf_reads[RfPartition::MrfStv.index()], 3);
        assert_eq!(series.total(|w| w.instructions), 10);
    }

    #[test]
    fn partial_final_window_is_flushed() {
        let mut sampler = SmSampler::new(SamplingConfig::every(10));
        let s = stats_at(5, 0);
        for c in 0..3 {
            sampler.on_cycle(c, &s, 1, None);
        }
        let series = sampler.finish(7, &s, 1);
        assert_eq!(series.sm, 7);
        assert_eq!(series.windows.len(), 1);
        assert_eq!(series.windows[0].cycles, 3);
        assert_eq!(series.windows[0].instructions, 5);
        assert!((series.windows[0].ipc() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_produces_no_windows() {
        let sampler = SmSampler::new(SamplingConfig::every(4));
        let series = sampler.finish(0, &SmStats::new(), 0);
        assert!(series.windows.is_empty());
    }

    #[test]
    fn conservation_check_passes_for_honest_series_and_fails_for_tampered() {
        let mut sampler = SmSampler::new(SamplingConfig::every(2));
        let s1 = stats_at(4, 3);
        sampler.on_cycle(0, &s1, 1, None);
        sampler.on_cycle(1, &s1, 1, None);
        let s2 = stats_at(9, 8);
        sampler.on_cycle(2, &s2, 1, None);
        let mut series = sampler.finish(0, &s2, 1);

        let mut clean = AuditReport::default();
        check_series_conservation(&mut clean, &series, &s2, 3, 0);
        assert!(clean.is_clean(), "{clean}");
        assert!(clean.checks >= 7 + 16);

        series.windows[0].instructions += 1; // the deliberate drift
        let mut tampered = AuditReport::default();
        check_series_conservation(&mut tampered, &series, &s2, 3, 0);
        assert!(!tampered.is_clean());
        assert_eq!(
            tampered.violations[0].invariant,
            "sampling: instruction conservation"
        );
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_window_is_rejected() {
        SamplingConfig::every(0);
    }
}
