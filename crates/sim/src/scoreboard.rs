//! Per-warp scoreboard: tracks registers and predicates with in-flight
//! writes so dependent instructions stall at issue.

use prf_isa::{Instruction, PredReg, Reg, MAX_ARCH_REGS, NUM_PRED_REGS};

/// Scoreboard for one warp.
///
/// A bit per architected register and predicate. An instruction may issue
/// only when none of its sources or destinations collide with a pending
/// write (RAW and WAW hazards; WAR is safe because operands are captured by
/// the operand collector at issue order).
#[derive(Debug, Clone, Default)]
pub struct Scoreboard {
    reg_pending: u64,
    pred_pending: u8,
}

impl Scoreboard {
    /// New, empty scoreboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if the instruction's operands collide with a pending write.
    pub fn blocked(&self, instr: &Instruction) -> bool {
        for r in instr.reg_reads() {
            if self.reg_pending & (1u64 << r.index()) != 0 {
                return true;
            }
        }
        if let Some(r) = instr.reg_write() {
            if self.reg_pending & (1u64 << r.index()) != 0 {
                return true;
            }
        }
        if let prf_isa::Dst::Pred(p) = instr.dst {
            if self.pred_pending & (1u8 << p.index()) != 0 {
                return true;
            }
        }
        if let Some(g) = &instr.guard {
            if self.pred_pending & (1u8 << g.pred.index()) != 0 {
                return true;
            }
        }
        false
    }

    /// Reserves the instruction's destinations at issue.
    pub fn reserve(&mut self, instr: &Instruction) {
        if let Some(r) = instr.reg_write() {
            self.reg_pending |= 1u64 << r.index();
        }
        if let prf_isa::Dst::Pred(p) = instr.dst {
            self.pred_pending |= 1u8 << p.index();
        }
    }

    /// Releases a register at writeback.
    pub fn release_reg(&mut self, reg: Reg) {
        debug_assert!(reg.index() < MAX_ARCH_REGS);
        self.reg_pending &= !(1u64 << reg.index());
    }

    /// Releases a predicate at writeback.
    pub fn release_pred(&mut self, pred: PredReg) {
        debug_assert!(pred.index() < NUM_PRED_REGS);
        self.pred_pending &= !(1u8 << pred.index());
    }

    /// True when no writes are outstanding.
    pub fn is_clear(&self) -> bool {
        self.reg_pending == 0 && self.pred_pending == 0
    }

    /// Number of pending register + predicate writes (audit diagnostics).
    pub fn pending_count(&self) -> u32 {
        self.reg_pending.count_ones() + self.pred_pending.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_isa::{CmpOp, Dst, Opcode, Operand, PredGuard};

    fn iadd(dst: u8, a: u8, b: u8) -> Instruction {
        Instruction::new(Opcode::IAdd)
            .with_dst(Dst::Reg(Reg(dst)))
            .with_srcs(&[Operand::Reg(Reg(a)), Operand::Reg(Reg(b))])
    }

    #[test]
    fn raw_hazard_blocks() {
        let mut sb = Scoreboard::new();
        let producer = iadd(1, 2, 3);
        sb.reserve(&producer);
        let consumer = iadd(4, 1, 5);
        assert!(sb.blocked(&consumer));
        sb.release_reg(Reg(1));
        assert!(!sb.blocked(&consumer));
        assert!(sb.is_clear());
    }

    #[test]
    fn waw_hazard_blocks() {
        let mut sb = Scoreboard::new();
        sb.reserve(&iadd(1, 2, 3));
        let second_writer = iadd(1, 6, 7);
        assert!(sb.blocked(&second_writer));
    }

    #[test]
    fn independent_instruction_not_blocked() {
        let mut sb = Scoreboard::new();
        sb.reserve(&iadd(1, 2, 3));
        assert!(!sb.blocked(&iadd(4, 5, 6)));
    }

    #[test]
    fn predicate_hazards() {
        let mut sb = Scoreboard::new();
        let setp = Instruction::new(Opcode::Setp(CmpOp::Lt))
            .with_dst(Dst::Pred(PredReg(0)))
            .with_srcs(&[Operand::Reg(Reg(0)), Operand::Imm(10)]);
        sb.reserve(&setp);
        // A guarded branch on P0 must wait.
        let bra = Instruction::new(Opcode::Bra)
            .with_guard(PredGuard {
                pred: PredReg(0),
                expected: true,
            })
            .with_target(0);
        assert!(sb.blocked(&bra));
        // A branch on P1 is free.
        let bra2 = Instruction::new(Opcode::Bra)
            .with_guard(PredGuard {
                pred: PredReg(1),
                expected: true,
            })
            .with_target(0);
        assert!(!sb.blocked(&bra2));
        sb.release_pred(PredReg(0));
        assert!(!sb.blocked(&bra));
        assert!(sb.is_clear());
    }

    #[test]
    fn setp_waw_blocks() {
        let mut sb = Scoreboard::new();
        let setp = Instruction::new(Opcode::Setp(CmpOp::Lt))
            .with_dst(Dst::Pred(PredReg(2)))
            .with_srcs(&[Operand::Reg(Reg(0)), Operand::Imm(1)]);
        sb.reserve(&setp);
        assert!(sb.blocked(&setp));
    }
}
