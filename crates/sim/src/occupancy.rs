//! Occupancy analysis: how many CTAs/warps of a kernel fit on an SM, and
//! what limits them — the CUDA-occupancy-calculator equivalent for this
//! simulator's resource model.
//!
//! Occupancy matters to this paper twice: it bounds the thread-level
//! parallelism available to hide FRF/SRF latency, and the register file is
//! itself one of the limiting resources (Table I's register counts times
//! Table II's 256 KB capacity).

use std::fmt;

use prf_isa::GridConfig;

use crate::config::GpuConfig;

/// Which resource caps residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupancyLimiter {
    /// The per-SM CTA-slot count.
    CtaSlots,
    /// The hardware warp slots.
    WarpSlots,
    /// Register-file capacity.
    Registers,
}

impl fmt::Display for OccupancyLimiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OccupancyLimiter::CtaSlots => "CTA slots",
            OccupancyLimiter::WarpSlots => "warp slots",
            OccupancyLimiter::Registers => "registers",
        })
    }
}

/// Occupancy report for one kernel shape on one GPU configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident CTAs per SM.
    pub resident_ctas: usize,
    /// Resident warps per SM.
    pub resident_warps: usize,
    /// Fraction of the SM's warp slots occupied.
    pub warp_occupancy: f64,
    /// Registers allocated per SM.
    pub registers_used: usize,
    /// Fraction of the register file allocated.
    pub rf_utilization: f64,
    /// The binding resource.
    pub limiter: OccupancyLimiter,
}

impl Occupancy {
    /// Computes occupancy for a kernel using `regs_per_thread` registers
    /// with the given launch geometry.
    ///
    /// # Panics
    ///
    /// Panics if the CTA cannot fit on the SM at all (more warps than the
    /// SM has slots).
    pub fn compute(config: &GpuConfig, grid: &GridConfig, regs_per_thread: u8) -> Self {
        let warps_per_cta = grid.warps_per_cta() as usize;
        assert!(
            warps_per_cta <= config.max_warps_per_sm,
            "a single CTA ({warps_per_cta} warps) exceeds the SM's {} warp slots",
            config.max_warps_per_sm
        );
        let regs_per_cta = grid.threads_per_cta as usize * regs_per_thread.max(1) as usize;

        let by_ctas = config.max_ctas_per_sm;
        let by_warps = config.max_warps_per_sm / warps_per_cta;
        let by_regs = config.rf_registers / regs_per_cta.max(1);

        let resident = by_ctas
            .min(by_warps)
            .min(by_regs)
            .min(grid.num_ctas as usize);
        let limiter = if resident == by_regs && by_regs <= by_warps && by_regs <= by_ctas {
            OccupancyLimiter::Registers
        } else if resident == by_warps && by_warps <= by_ctas {
            OccupancyLimiter::WarpSlots
        } else {
            OccupancyLimiter::CtaSlots
        };

        let resident_warps = resident * warps_per_cta;
        Occupancy {
            resident_ctas: resident,
            resident_warps,
            warp_occupancy: resident_warps as f64 / config.max_warps_per_sm as f64,
            registers_used: resident * regs_per_cta,
            rf_utilization: (resident * regs_per_cta) as f64 / config.rf_registers as f64,
            limiter,
        }
    }
}

impl fmt::Display for Occupancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} CTAs / {} warps ({:.0}% occupancy), RF {:.0}% used, limited by {}",
            self.resident_ctas,
            self.resident_warps,
            100.0 * self.warp_occupancy,
            100.0 * self.rf_utilization,
            self.limiter
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kepler() -> GpuConfig {
        GpuConfig::kepler_gtx780()
    }

    #[test]
    fn warp_limited_backprop_shape() {
        // 256 threads x 13 regs: 8 warps/CTA -> 8 CTAs by warps;
        // registers would allow 19.
        let o = Occupancy::compute(&kepler(), &GridConfig::new(100, 256), 13);
        assert_eq!(o.resident_ctas, 8);
        assert_eq!(o.resident_warps, 64);
        assert_eq!(o.limiter, OccupancyLimiter::WarpSlots);
        assert!((o.warp_occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn register_limited_fat_kernel() {
        // 512 threads x 63 regs = 32256 regs/CTA -> 65536/32256 = 2 CTAs
        // (warps would allow 4).
        let o = Occupancy::compute(&kepler(), &GridConfig::new(100, 512), 63);
        assert_eq!(o.resident_ctas, 2);
        assert_eq!(o.limiter, OccupancyLimiter::Registers);
        assert!(o.rf_utilization > 0.9);
    }

    #[test]
    fn cta_slot_limited_tiny_ctas() {
        // nw-like 16-thread CTAs: 1 warp each, 16-CTA slot limit binds.
        let o = Occupancy::compute(&kepler(), &GridConfig::new(100, 16), 21);
        assert_eq!(o.resident_ctas, 16);
        assert_eq!(o.resident_warps, 16);
        assert_eq!(o.limiter, OccupancyLimiter::CtaSlots);
        assert!((o.warp_occupancy - 0.25).abs() < 1e-12);
    }

    #[test]
    fn small_grids_cap_residency() {
        let o = Occupancy::compute(&kepler(), &GridConfig::new(3, 256), 13);
        assert_eq!(o.resident_ctas, 3);
    }

    #[test]
    fn matches_config_resident_limit() {
        // Occupancy::compute and GpuConfig::max_resident_ctas agree
        // whenever the grid is large enough.
        let c = kepler();
        for (threads, regs) in [(256u32, 13u8), (1024, 15), (61, 29), (128, 27)] {
            let o = Occupancy::compute(&c, &GridConfig::new(1000, threads), regs);
            assert_eq!(
                o.resident_ctas,
                c.max_resident_ctas(threads, regs),
                "{threads}x{regs}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the SM")]
    fn oversized_cta_rejected() {
        let c = GpuConfig {
            max_warps_per_sm: 8,
            ..kepler()
        };
        Occupancy::compute(&c, &GridConfig::new(1, 1024), 8);
    }

    #[test]
    fn display_is_informative() {
        let o = Occupancy::compute(&kepler(), &GridConfig::new(100, 256), 13);
        let s = o.to_string();
        assert!(s.contains("8 CTAs"));
        assert!(s.contains("warp slots"));
    }
}
