//! The whole-GPU simulation driver: CTA dispatch across SMs and the main
//! cycle loop.

use std::sync::Arc;

use prf_isa::{CtaId, GridConfig, Kernel};

use crate::config::GpuConfig;
use crate::mem::GlobalMemory;
use crate::rf::RegisterFileModel;
use crate::sm::{KernelImage, Sm};
use crate::stats::{SimResult, SmStats};

/// Errors from running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The kernel exceeded `GpuConfig::max_cycles` — almost always an
    /// infinite loop in the kernel under test.
    CycleLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "simulation exceeded the {limit}-cycle safety limit")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A GPU: a set of SMs sharing global memory, plus the CTA dispatcher.
///
/// # Example
///
/// ```rust
/// use prf_isa::{GridConfig, KernelBuilder, Reg, SpecialReg};
/// use prf_sim::{Gpu, GpuConfig, BaselineRf};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut kb = KernelBuilder::new("quick");
/// kb.mov_special(Reg(0), SpecialReg::GlobalTid);
/// kb.iadd_imm(Reg(1), Reg(0), 1);
/// kb.stg(Reg(0), Reg(1), 0);
/// kb.exit();
/// let kernel = kb.build()?;
///
/// let config = GpuConfig::kepler_single_sm();
/// let banks = config.num_rf_banks;
/// let mut gpu = Gpu::new(config);
/// let result = gpu.run(
///     kernel,
///     GridConfig::new(4, 64),
///     &|_sm| Box::new(BaselineRf::stv(banks)),
/// )?;
/// assert!(result.cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Gpu {
    config: GpuConfig,
    global: GlobalMemory,
    /// Cycle counter carried across kernel launches (a workload may launch
    /// several kernels back to back, as backprop does).
    pub cycle: u64,
}

impl Gpu {
    /// Creates a GPU with zeroed global memory.
    pub fn new(config: GpuConfig) -> Self {
        config.validate();
        let global = GlobalMemory::new(config.global_mem_words);
        Gpu {
            config,
            global,
            cycle: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Functional global memory (initialise workload inputs here).
    pub fn global_mem(&mut self) -> &mut GlobalMemory {
        &mut self.global
    }

    /// Read-only view of global memory (check workload outputs here).
    pub fn global_mem_ref(&self) -> &GlobalMemory {
        &self.global
    }

    /// Runs one kernel to completion.
    ///
    /// `rf_factory` builds the per-SM register-file model; it is invoked
    /// once per SM with the SM index. The pilot warp is warp 0 of CTA 0.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimitExceeded`] if the kernel does not
    /// finish within `GpuConfig::max_cycles` cycles.
    pub fn run(
        &mut self,
        kernel: impl Into<Arc<Kernel>>,
        grid: GridConfig,
        rf_factory: &dyn Fn(usize) -> Box<dyn RegisterFileModel>,
    ) -> Result<SimResult, SimError> {
        let kernel = kernel.into();
        let name = kernel.name().to_string();
        let image = Arc::new(KernelImage::new(kernel, grid));
        let mut sms: Vec<Sm> = (0..self.config.num_sms)
            .map(|i| Sm::new(i, &self.config, Arc::clone(&image), rf_factory(i)))
            .collect();
        let start_cycle = self.cycle;
        for sm in &mut sms {
            sm.notify_kernel_launch(start_cycle);
        }

        let mut next_cta = 0u32;
        let mut pilot_finish: Option<u64> = None;
        let limit = start_cycle + self.config.max_cycles;

        loop {
            // CTA dispatch: round-robin over SMs, as many as fit.
            'dispatch: loop {
                if next_cta >= grid.num_ctas {
                    break;
                }
                let mut dispatched = false;
                for sm in sms.iter_mut() {
                    if next_cta >= grid.num_ctas {
                        break 'dispatch;
                    }
                    if sm.try_dispatch_cta(CtaId(next_cta), self.cycle) {
                        next_cta += 1;
                        dispatched = true;
                    }
                }
                if !dispatched {
                    break;
                }
            }

            for sm in sms.iter_mut() {
                sm.cycle(self.cycle, &mut self.global);
                for &(cta, warp, at) in &sm.finished_warps {
                    if cta == 0 && warp == 0 && pilot_finish.is_none() {
                        pilot_finish = Some(at - start_cycle);
                    }
                    let _ = at;
                }
                sm.finished_warps.clear();
            }
            self.cycle += 1;

            if next_cta >= grid.num_ctas && sms.iter().all(|sm| sm.is_idle()) {
                break;
            }
            if self.cycle >= limit {
                return Err(SimError::CycleLimitExceeded {
                    limit: self.config.max_cycles,
                });
            }
        }

        let mut stats = SmStats::new();
        let mut per_sm_instructions = Vec::with_capacity(sms.len());
        let mut trace = Vec::new();
        let mut samples = Vec::new();
        let mut audit = self.config.audit.then(crate::audit::AuditReport::default);
        for sm in &mut sms {
            stats.merge(&sm.stats);
            per_sm_instructions.push(sm.stats.instructions);
            trace.extend(sm.trace.drain());
            // Close the sampler before the audit so the conservation check
            // sees the flushed partial window.
            sm.finish_sampling();
            if let Some(merged) = audit.as_mut() {
                if let Some(report) = sm.finish_audit(self.cycle) {
                    merged.merge(&report);
                }
            }
            samples.extend(sm.take_samples());
        }
        trace.sort_by_key(|e| e.cycle());
        Ok(SimResult {
            kernel: name,
            cycles: self.cycle - start_cycle,
            stats,
            pilot_warp_finish: pilot_finish,
            per_sm_instructions,
            trace,
            samples,
            audit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rf::BaselineRf;
    use prf_isa::{KernelBuilder, Reg, SpecialReg};

    fn store_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("store");
        kb.mov_special(Reg(0), SpecialReg::GlobalTid);
        kb.iadd_imm(Reg(1), Reg(0), 100);
        kb.stg(Reg(0), Reg(1), 0);
        kb.exit();
        kb.build().unwrap()
    }

    #[test]
    fn single_sm_run_completes() {
        let mut gpu = Gpu::new(GpuConfig {
            global_mem_words: 1 << 14,
            ..GpuConfig::kepler_single_sm()
        });
        let r = gpu
            .run(store_kernel(), GridConfig::new(8, 128), &|_| {
                Box::new(BaselineRf::stv(24))
            })
            .unwrap();
        assert_eq!(r.stats.instructions, 4 * 8 * 4);
        assert!(r.pilot_warp_finish.is_some());
        assert!(r.ipc() > 0.0);
        assert_eq!(gpu.global_mem_ref().read(500), 600);
    }

    #[test]
    fn multi_sm_distributes_ctas() {
        let config = GpuConfig {
            num_sms: 4,
            global_mem_words: 1 << 14,
            ..GpuConfig::kepler_gtx780()
        };
        let mut gpu = Gpu::new(config);
        let r = gpu
            .run(store_kernel(), GridConfig::new(16, 64), &|_| {
                Box::new(BaselineRf::stv(24))
            })
            .unwrap();
        assert_eq!(r.per_sm_instructions.len(), 4);
        assert!(
            r.per_sm_instructions.iter().all(|&i| i > 0),
            "all SMs should get work: {:?}",
            r.per_sm_instructions
        );
        // All 1024 threads stored.
        assert_eq!(gpu.global_mem_ref().read(1023), 1123);
    }

    #[test]
    fn cycle_limit_catches_infinite_loops() {
        let mut kb = KernelBuilder::new("hang");
        let top = kb.new_label();
        kb.place_label(top);
        kb.iadd_imm(Reg(0), Reg(0), 1);
        kb.bra(top);
        kb.exit();
        let k = kb.build().unwrap();
        let mut gpu = Gpu::new(GpuConfig {
            max_cycles: 5_000,
            global_mem_words: 1 << 12,
            ..GpuConfig::kepler_single_sm()
        });
        let err = gpu
            .run(k, GridConfig::new(1, 32), &|_| {
                Box::new(BaselineRf::stv(24))
            })
            .unwrap_err();
        assert_eq!(err, SimError::CycleLimitExceeded { limit: 5_000 });
    }

    #[test]
    fn back_to_back_kernels_accumulate_cycles() {
        let mut gpu = Gpu::new(GpuConfig {
            global_mem_words: 1 << 14,
            ..GpuConfig::kepler_single_sm()
        });
        let r1 = gpu
            .run(store_kernel(), GridConfig::new(2, 64), &|_| {
                Box::new(BaselineRf::stv(24))
            })
            .unwrap();
        let c1 = gpu.cycle;
        let r2 = gpu
            .run(store_kernel(), GridConfig::new(2, 64), &|_| {
                Box::new(BaselineRf::stv(24))
            })
            .unwrap();
        assert!(gpu.cycle > c1);
        assert_eq!(r1.stats.instructions, r2.stats.instructions);
    }

    #[test]
    fn pilot_fraction_small_for_many_ctas() {
        let mut gpu = Gpu::new(GpuConfig {
            global_mem_words: 1 << 16,
            ..GpuConfig::kepler_single_sm()
        });
        let r = gpu
            .run(store_kernel(), GridConfig::new(64, 256), &|_| {
                Box::new(BaselineRf::stv(24))
            })
            .unwrap();
        let frac = r.pilot_runtime_fraction().unwrap();
        assert!(frac < 0.5, "pilot fraction should be small, got {frac}");
    }
}
