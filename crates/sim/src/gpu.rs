//! The whole-GPU simulation driver: CTA dispatch across SMs and the main
//! cycle loop.
//!
//! # Determinism under SM-parallel stepping
//!
//! Every cycle is a barrier: all SMs step cycle `c` before any SM sees
//! cycle `c + 1`. Within the cycle, SMs only *read* global memory (their
//! stores are staged in a per-SM log, see [`crate::GmemView`]); the driver
//! then commits the logs in ascending SM order. Both the serial and the
//! SM-parallel paths follow this exact schedule, so a parallel run is
//! bit-for-bit identical to a serial one — same stats, trace, samples, and
//! audit — regardless of worker count or thread interleaving.
//!
//! # Skip-ahead
//!
//! After a cycle in which no SM issued an instruction, the driver asks
//! every SM for its next-event horizon ([`Sm::next_event`]) and, while
//! CTAs remain undispatched, the dispatch-interval horizon. If the
//! earliest interesting cycle is more than one ahead, the intervening
//! provably-idle cycles are replayed with the cheap [`Sm::idle_advance`]
//! bookkeeping instead of the full pipeline. The horizons are conservative
//! (they may wake early, never late) and `idle_advance` mirrors every
//! counter a stalled [`Sm::cycle`] advances, so skipping is exact.
//! Schedulers that mutate state inside `prioritize` (two-level,
//! fetch-group) veto skip-ahead via
//! [`crate::scheduler::WarpScheduler::idle_prioritize_is_noop`].

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use prf_isa::{CtaId, GridConfig, Kernel};

use crate::config::GpuConfig;
use crate::mem::GlobalMemory;
use crate::rf::RegisterFileModel;
use crate::scheduler::build_scheduler;
use crate::sm::{KernelImage, Sm};
use crate::stats::{SimResult, SmStats};

/// Records the pilot warp's finish cycle (warp 0 of CTA 0) from an SM's
/// drained finish list, translated to kernel-relative cycles. No-op once
/// the pilot has been seen.
fn note_pilot_finish(pilot: &mut Option<u64>, finished: &[(u32, u32, u64)], start_cycle: u64) {
    if pilot.is_some() {
        return;
    }
    for &(cta, warp, at) in finished {
        if cta == 0 && warp == 0 {
            *pilot = Some(at - start_cycle);
            return;
        }
    }
}

/// A sense-reversing spin-then-block barrier for the SM-parallel cycle
/// loop.
///
/// The loop synchronises twice per simulated cycle, so barrier cost is on
/// the critical path. When each thread has its own core, waits almost
/// always resolve in the bounded spin phase (~100ns, no syscall) — far
/// cheaper than the mutex + condvar handoff of `std::sync::Barrier`, whose
/// ~µs per wait dwarfed the per-SM work and made parallel stepping slower
/// than serial. When threads outnumber cores, spinning burns the
/// timeslice the *other* threads need, so the barrier detects
/// oversubscription at construction and blocks on a condvar immediately,
/// matching `std::sync::Barrier` behaviour.
struct SpinBarrier {
    total: usize,
    spin_limit: u32,
    count: AtomicUsize,
    generation: AtomicUsize,
    lock: Mutex<()>,
    condvar: std::sync::Condvar,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        // `total` counts the driver thread too; it parks between barriers,
        // so workers only need cores for themselves most of the time.
        let spin_limit = if cores >= total { 1 << 14 } else { 0 };
        SpinBarrier {
            total,
            spin_limit,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            lock: Mutex::new(()),
            condvar: std::sync::Condvar::new(),
        }
    }

    /// Blocks until `total` threads have called `wait` for this generation.
    ///
    /// The last arrival resets the count *before* publishing the new
    /// generation, so a thread that races ahead into the next `wait`
    /// starts the next generation from zero; a spinning thread can never
    /// miss a generation because advancing again requires its own arrival.
    /// The generation bump happens under `lock`, which a blocking waiter
    /// holds between its re-check and `condvar.wait`, so wakeups are never
    /// lost.
    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.count.store(0, Ordering::Relaxed);
            let guard = self.lock.lock().expect("barrier lock");
            self.generation.fetch_add(1, Ordering::Release);
            drop(guard);
            self.condvar.notify_all();
            return;
        }
        for _ in 0..self.spin_limit {
            if self.generation.load(Ordering::Acquire) != generation {
                return;
            }
            std::hint::spin_loop();
        }
        let mut guard = self.lock.lock().expect("barrier lock");
        while self.generation.load(Ordering::Acquire) == generation {
            guard = self.condvar.wait(guard).expect("barrier condvar");
        }
    }
}

/// Errors from running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The kernel exceeded `GpuConfig::max_cycles` — almost always an
    /// infinite loop in the kernel under test.
    CycleLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
    /// An input (config, kernel, launch geometry, fault setup) was
    /// rejected before simulation started. Deterministic: retrying the
    /// same input can never succeed.
    Invalid(crate::validate::ValidationError),
}

impl SimError {
    /// True for errors that are a pure function of the inputs — rerunning
    /// the same job will fail the same way, so callers should fail fast
    /// rather than retry. (Every current variant is deterministic; the
    /// distinction matters to retry policies that also see panics and
    /// timeouts.)
    pub fn is_deterministic(&self) -> bool {
        match self {
            SimError::CycleLimitExceeded { .. } | SimError::Invalid(_) => true,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "simulation exceeded the {limit}-cycle safety limit")
            }
            SimError::Invalid(e) => write!(f, "rejected input: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<crate::validate::ValidationError> for SimError {
    fn from(e: crate::validate::ValidationError) -> Self {
        SimError::Invalid(e)
    }
}

/// A GPU: a set of SMs sharing global memory, plus the CTA dispatcher.
///
/// # Example
///
/// ```rust
/// use prf_isa::{GridConfig, KernelBuilder, Reg, SpecialReg};
/// use prf_sim::{Gpu, GpuConfig, BaselineRf};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut kb = KernelBuilder::new("quick");
/// kb.mov_special(Reg(0), SpecialReg::GlobalTid);
/// kb.iadd_imm(Reg(1), Reg(0), 1);
/// kb.stg(Reg(0), Reg(1), 0);
/// kb.exit();
/// let kernel = kb.build()?;
///
/// let config = GpuConfig::kepler_single_sm();
/// let banks = config.num_rf_banks;
/// let mut gpu = Gpu::new(config);
/// let result = gpu.run(
///     kernel,
///     GridConfig::new(4, 64),
///     &|_sm| Box::new(BaselineRf::stv(banks)),
/// )?;
/// assert!(result.cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Gpu {
    config: GpuConfig,
    global: GlobalMemory,
    /// Cycle counter carried across kernel launches (a workload may launch
    /// several kernels back to back, as backprop does).
    pub cycle: u64,
    /// Cycles fast-forwarded by skip-ahead (accumulated across launches).
    /// Diagnostic only — deliberately not part of [`SimResult`], which
    /// stays bit-identical whether or not skipping is enabled.
    pub skipped_cycles: u64,
    /// Warp contexts recycled across kernel launches: each launch seeds
    /// its SMs from this pool and reclaims it afterwards, so multi-launch
    /// workloads allocate register storage once. Never affects results.
    warp_pool: Vec<crate::warp::WarpContext>,
}

impl Gpu {
    /// Creates a GPU with zeroed global memory.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; [`Gpu::try_new`] is the
    /// non-panicking form for untrusted configs.
    pub fn new(config: GpuConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a GPU with zeroed global memory, rejecting an unusable
    /// configuration as [`SimError::Invalid`] instead of panicking.
    pub fn try_new(config: GpuConfig) -> Result<Self, SimError> {
        config.check()?;
        let global = GlobalMemory::new(config.global_mem_words);
        Ok(Gpu {
            config,
            global,
            cycle: 0,
            skipped_cycles: 0,
            warp_pool: Vec::new(),
        })
    }

    /// Moves recycled warp contexts into this GPU's cross-launch pool
    /// (e.g. from [`Gpu::take_warp_pool`] of a finished instance). Purely
    /// an allocation optimisation; simulation results are unaffected.
    pub fn adopt_warp_pool(&mut self, pool: Vec<crate::warp::WarpContext>) {
        self.warp_pool.extend(pool);
    }

    /// Takes the recycled warp contexts accumulated by previous runs.
    pub fn take_warp_pool(&mut self) -> Vec<crate::warp::WarpContext> {
        std::mem::take(&mut self.warp_pool)
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Functional global memory (initialise workload inputs here).
    pub fn global_mem(&mut self) -> &mut GlobalMemory {
        &mut self.global
    }

    /// Read-only view of global memory (check workload outputs here).
    pub fn global_mem_ref(&self) -> &GlobalMemory {
        &self.global
    }

    /// Runs one kernel to completion.
    ///
    /// `rf_factory` builds the per-SM register-file model; it is invoked
    /// once per SM with the SM index. The pilot warp is warp 0 of CTA 0.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimitExceeded`] if the kernel does not
    /// finish within `GpuConfig::max_cycles` cycles, and
    /// [`SimError::Invalid`] — before any machine state is built — if the
    /// kernel fails semantic validation ([`prf_isa::KernelValidator`]) or
    /// the launch could never dispatch a CTA on this configuration.
    pub fn run(
        &mut self,
        kernel: impl Into<Arc<Kernel>>,
        grid: GridConfig,
        rf_factory: &dyn Fn(usize) -> Box<dyn RegisterFileModel>,
    ) -> Result<SimResult, SimError> {
        let kernel = kernel.into();
        crate::validate::check_launch(&self.config, &kernel, grid)?;
        let name = kernel.name().to_string();
        let image = Arc::new(KernelImage::new(kernel, grid));
        let mut sms: Vec<Sm> = (0..self.config.num_sms)
            .map(|i| Sm::new(i, &self.config, Arc::clone(&image), rf_factory(i)))
            .collect();
        let start_cycle = self.cycle;
        // Seed SMs with recycled warp contexts from earlier launches
        // (spread evenly; pool contents never affect results).
        let n = sms.len();
        let mut pool = std::mem::take(&mut self.warp_pool);
        for (i, sm) in sms.iter_mut().enumerate() {
            let keep = pool.len() * (n - i - 1) / (n - i);
            let mut chunk = pool.split_off(keep);
            sm.donate_warp_contexts(&mut chunk);
        }
        for sm in &mut sms {
            sm.notify_kernel_launch(start_cycle);
        }

        let mut next_cta = 0u32;
        let mut pilot_finish: Option<u64> = None;
        let limit = start_cycle + self.config.max_cycles;
        // Skip-ahead is exact only when an idle `prioritize` call leaves
        // the scheduler untouched; probe a throwaway instance.
        let skip_ok = self.config.skip_ahead
            && build_scheduler(self.config.scheduler).idle_prioritize_is_noop();
        let threads = self.config.sm_threads.min(sms.len());

        if threads > 1 {
            self.run_parallel(
                &mut sms,
                grid,
                &mut next_cta,
                &mut pilot_finish,
                start_cycle,
                limit,
                skip_ok,
                threads,
            )?;
        } else {
            self.run_serial(
                &mut sms,
                grid,
                &mut next_cta,
                &mut pilot_finish,
                start_cycle,
                limit,
                skip_ok,
            )?;
        }

        let mut stats = SmStats::new();
        let mut per_sm_instructions = Vec::with_capacity(sms.len());
        let mut trace = Vec::new();
        let mut samples = Vec::new();
        let mut audit = self.config.audit.then(crate::audit::AuditReport::default);
        for sm in &mut sms {
            stats.merge(&sm.stats);
            per_sm_instructions.push(sm.stats.instructions);
            trace.extend(sm.trace.drain());
            // Close the sampler before the audit so the conservation check
            // sees the flushed partial window.
            sm.finish_sampling();
            if let Some(merged) = audit.as_mut() {
                if let Some(report) = sm.finish_audit(self.cycle) {
                    merged.merge(&report);
                }
            }
            samples.extend(sm.take_samples());
            self.warp_pool.append(&mut sm.reclaim_warp_contexts());
        }
        crate::trace::normalize_trace(&mut trace);
        Ok(SimResult {
            kernel: name,
            cycles: self.cycle - start_cycle,
            stats,
            pilot_warp_finish: pilot_finish,
            per_sm_instructions,
            trace,
            samples,
            audit,
        })
    }

    /// Round-robin CTA dispatch over SMs, as many as fit this cycle.
    fn dispatch_ctas(&self, sms: &mut [Sm], grid: GridConfig, next_cta: &mut u32, cycle: u64) {
        'dispatch: loop {
            if *next_cta >= grid.num_ctas {
                break;
            }
            let mut dispatched = false;
            for sm in sms.iter_mut() {
                if *next_cta >= grid.num_ctas {
                    break 'dispatch;
                }
                if sm.try_dispatch_cta(CtaId(*next_cta), cycle) {
                    *next_cta += 1;
                    dispatched = true;
                }
            }
            if !dispatched {
                break;
            }
        }
    }

    /// After a zero-issue cycle, fast-forwards `self.cycle` (clamped to
    /// `limit`) to the earliest cycle any SM or the CTA dispatcher could
    /// make progress, replaying the skipped span with [`Sm::idle_advance`].
    /// `self.cycle` is the not-yet-stepped cycle; horizons are computed
    /// relative to the cycle just stepped (`self.cycle - 1`).
    fn skip_idle_span(&mut self, sms: &mut [Sm], grid: GridConfig, next_cta: u32, limit: u64) {
        let stepped = self.cycle - 1;
        let mut target: Option<u64> = None;
        let mut merge = |c: u64| target = Some(target.map_or(c, |t| t.min(c)));
        for sm in sms.iter() {
            if let Some(c) = sm.next_event(stepped) {
                merge(c);
            }
        }
        if next_cta < grid.num_ctas {
            for sm in sms.iter() {
                merge(sm.next_dispatch_ready(stepped));
            }
        }
        let Some(target) = target else { return };
        let target = target.min(limit);
        while self.cycle < target {
            for sm in sms.iter_mut() {
                sm.idle_advance(self.cycle);
            }
            self.cycle += 1;
            self.skipped_cycles += 1;
        }
    }

    /// The single-threaded cycle loop (also used when `sm_threads <= 1` or
    /// only one SM exists).
    #[allow(clippy::too_many_arguments)]
    fn run_serial(
        &mut self,
        sms: &mut [Sm],
        grid: GridConfig,
        next_cta: &mut u32,
        pilot_finish: &mut Option<u64>,
        start_cycle: u64,
        limit: u64,
        skip_ok: bool,
    ) -> Result<(), SimError> {
        loop {
            self.dispatch_ctas(sms, grid, next_cta, self.cycle);

            // Execute: every SM steps the cycle against the frozen memory
            // image, staging its stores.
            let mut issued = 0u64;
            for sm in sms.iter_mut() {
                issued += u64::from(sm.cycle(self.cycle, &self.global));
            }
            // Commit: apply staged stores in SM order, drain finishes.
            for sm in sms.iter_mut() {
                sm.commit_global_writes(&mut self.global);
                note_pilot_finish(pilot_finish, &sm.finished_warps, start_cycle);
                sm.finished_warps.clear();
            }
            self.cycle += 1;

            if *next_cta >= grid.num_ctas && sms.iter().all(|sm| sm.is_idle()) {
                return Ok(());
            }
            if skip_ok && issued == 0 {
                self.skip_idle_span(sms, grid, *next_cta, limit);
            }
            if self.cycle >= limit {
                return Err(SimError::CycleLimitExceeded {
                    limit: self.config.max_cycles,
                });
            }
        }
    }

    /// The SM-parallel cycle loop: a persistent pool of `threads` scoped
    /// workers steps the SMs of each cycle concurrently (strided
    /// assignment), separated from the driver's dispatch/commit work by a
    /// pair of barriers. The schedule — and therefore every stat, trace
    /// event, sample, and audit counter — is identical to
    /// [`Gpu::run_serial`].
    #[allow(clippy::too_many_arguments)]
    fn run_parallel(
        &mut self,
        sms: &mut [Sm],
        grid: GridConfig,
        next_cta: &mut u32,
        pilot_finish: &mut Option<u64>,
        start_cycle: u64,
        limit: u64,
        skip_ok: bool,
        threads: usize,
    ) -> Result<(), SimError> {
        let start = SpinBarrier::new(threads + 1);
        let done = SpinBarrier::new(threads + 1);
        let cycle_now = AtomicU64::new(self.cycle);
        let issued_now = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        // Workers take shared read access during the execute phase; the
        // driver takes exclusive access for the commit phase. The barriers
        // keep the phases disjoint, so the locks never contend.
        let global = RwLock::new(&mut self.global);
        let cells: Vec<Mutex<&mut Sm>> = sms.iter_mut().map(Mutex::new).collect();
        let cycle_ref = &mut self.cycle;
        let max_cycles = self.config.max_cycles;
        let mut skipped = 0u64;

        let mut outcome = Ok(());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (start, done) = (&start, &done);
                let (cycle_now, issued_now, stop) = (&cycle_now, &issued_now, &stop);
                let (global, cells) = (&global, &cells);
                scope.spawn(move || loop {
                    start.wait();
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    let cycle = cycle_now.load(Ordering::Acquire);
                    let mut issued = 0u64;
                    {
                        let mem = global.read().expect("gmem lock");
                        for cell in cells.iter().skip(t).step_by(threads) {
                            let sm = &mut *cell.lock().expect("sm lock");
                            issued += u64::from(sm.cycle(cycle, &mem));
                        }
                    }
                    issued_now.fetch_add(issued, Ordering::AcqRel);
                    done.wait();
                });
            }

            loop {
                // Dispatch + commit run on the driver thread, between the
                // `done` barrier of the previous cycle and the `start`
                // barrier of the next, so the uncontended locks are exact.
                {
                    'dispatch: loop {
                        if *next_cta >= grid.num_ctas {
                            break;
                        }
                        let mut dispatched = false;
                        for cell in cells.iter() {
                            if *next_cta >= grid.num_ctas {
                                break 'dispatch;
                            }
                            let sm = &mut *cell.lock().expect("sm lock");
                            if sm.try_dispatch_cta(CtaId(*next_cta), *cycle_ref) {
                                *next_cta += 1;
                                dispatched = true;
                            }
                        }
                        if !dispatched {
                            break;
                        }
                    }
                }

                issued_now.store(0, Ordering::Release);
                cycle_now.store(*cycle_ref, Ordering::Release);
                start.wait();
                // Workers execute the cycle here.
                done.wait();

                let mut all_idle = true;
                {
                    let mem = &mut **global.write().expect("gmem lock");
                    for cell in cells.iter() {
                        let sm = &mut *cell.lock().expect("sm lock");
                        sm.commit_global_writes(mem);
                        note_pilot_finish(pilot_finish, &sm.finished_warps, start_cycle);
                        sm.finished_warps.clear();
                        all_idle &= sm.is_idle();
                    }
                }
                *cycle_ref += 1;

                if *next_cta >= grid.num_ctas && all_idle {
                    break;
                }
                if skip_ok && issued_now.load(Ordering::Acquire) == 0 {
                    let stepped = *cycle_ref - 1;
                    let mut target: Option<u64> = None;
                    let mut merge = |c: u64| target = Some(target.map_or(c, |t| t.min(c)));
                    for cell in cells.iter() {
                        let sm = &*cell.lock().expect("sm lock");
                        if let Some(c) = sm.next_event(stepped) {
                            merge(c);
                        }
                        if *next_cta < grid.num_ctas {
                            merge(sm.next_dispatch_ready(stepped));
                        }
                    }
                    if let Some(target) = target {
                        let target = target.min(limit);
                        while *cycle_ref < target {
                            for cell in cells.iter() {
                                cell.lock().expect("sm lock").idle_advance(*cycle_ref);
                            }
                            *cycle_ref += 1;
                            skipped += 1;
                        }
                    }
                }
                if *cycle_ref >= limit {
                    outcome = Err(SimError::CycleLimitExceeded { limit: max_cycles });
                    break;
                }
            }
            stop.store(true, Ordering::Release);
            start.wait();
        });
        self.skipped_cycles += skipped;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerPolicy;
    use crate::rf::BaselineRf;
    use crate::sampling::SamplingConfig;
    use prf_isa::{CmpOp, KernelBuilder, PredReg, Reg, SpecialReg};

    fn store_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("store");
        kb.mov_special(Reg(0), SpecialReg::GlobalTid);
        kb.iadd_imm(Reg(1), Reg(0), 100);
        kb.stg(Reg(0), Reg(1), 0);
        kb.exit();
        kb.build().unwrap()
    }

    /// A kernel that exercises every wake source skip-ahead must model:
    /// L1-missing loads (LSU horizon), dependent ALU chains (exec-pipe
    /// horizon), a barrier (release edge), and a loop (repeated issue).
    fn varied_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("varied");
        kb.mov_special(Reg(0), SpecialReg::GlobalTid);
        kb.mov_imm(Reg(4), 0);
        let top = kb.new_label();
        kb.place_label(top);
        kb.ldg(Reg(1), Reg(0), 0);
        kb.iadd(Reg(2), Reg(1), Reg(0));
        kb.imul_imm(Reg(2), Reg(2), 3);
        kb.stg(Reg(0), Reg(2), 0);
        kb.bar();
        kb.iadd_imm(Reg(4), Reg(4), 1);
        kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(4), 3);
        kb.bra_if(PredReg(0), true, top);
        kb.exit();
        kb.build().unwrap()
    }

    /// Runs `varied_kernel` on `config` and returns the result plus a
    /// global-memory fingerprint.
    fn run_varied(config: GpuConfig) -> (SimResult, u64, Vec<u32>) {
        let mut gpu = Gpu::new(config);
        let r = gpu
            .run(varied_kernel(), GridConfig::new(24, 128), &|_| {
                Box::new(BaselineRf::stv(24))
            })
            .unwrap();
        let mem: Vec<u32> = (0..24 * 128)
            .map(|a| gpu.global_mem_ref().read(a))
            .collect();
        (r, gpu.skipped_cycles, mem)
    }

    fn observed_config(num_sms: usize) -> GpuConfig {
        GpuConfig {
            num_sms,
            global_mem_words: 1 << 14,
            trace_capacity: 1 << 14,
            audit: true,
            sampling: Some(SamplingConfig { window: 64 }),
            skip_ahead: false,
            ..GpuConfig::kepler_gtx780()
        }
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let (serial, _, serial_mem) = run_varied(observed_config(4));
        for threads in [2, 3, 4, 7] {
            let config = GpuConfig {
                sm_threads: threads,
                ..observed_config(4)
            };
            let (parallel, _, parallel_mem) = run_varied(config);
            assert_eq!(
                serial, parallel,
                "SM-parallel run ({threads} threads) diverged from serial"
            );
            assert_eq!(
                serial_mem, parallel_mem,
                "memory diverged ({threads} threads)"
            );
            assert!(parallel.audit.as_ref().unwrap().is_clean());
        }
    }

    #[test]
    fn parallel_identity_holds_for_every_scheduler() {
        for policy in [
            SchedulerPolicy::Gto,
            SchedulerPolicy::Lrr,
            SchedulerPolicy::TwoLevel {
                active_per_scheduler: 4,
            },
            SchedulerPolicy::FetchGroup { group_size: 4 },
        ] {
            let base = GpuConfig {
                scheduler: policy,
                ..observed_config(4)
            };
            let (serial, _, serial_mem) = run_varied(base.clone());
            let (parallel, _, parallel_mem) = run_varied(GpuConfig {
                sm_threads: 4,
                ..base
            });
            assert_eq!(serial, parallel, "{policy:?} diverged under SM-parallelism");
            assert_eq!(serial_mem, parallel_mem);
        }
    }

    #[test]
    fn skip_ahead_is_bit_identical_and_actually_skips() {
        let (stepped, stepped_skips, stepped_mem) = run_varied(observed_config(2));
        assert_eq!(stepped_skips, 0);
        let (skipping, skips, skipping_mem) = run_varied(GpuConfig {
            skip_ahead: true,
            ..observed_config(2)
        });
        assert_eq!(stepped, skipping, "skip-ahead changed observable results");
        assert_eq!(stepped_mem, skipping_mem);
        assert!(
            skips > 0,
            "memory-bound kernel should produce skippable idle spans"
        );
        assert!(skipping.audit.as_ref().unwrap().is_clean());
    }

    #[test]
    fn skip_ahead_is_vetoed_for_impure_schedulers() {
        for policy in [
            SchedulerPolicy::TwoLevel {
                active_per_scheduler: 4,
            },
            SchedulerPolicy::FetchGroup { group_size: 4 },
        ] {
            let (_, skips, _) = run_varied(GpuConfig {
                scheduler: policy,
                skip_ahead: true,
                ..observed_config(2)
            });
            assert_eq!(skips, 0, "{policy:?} must veto skip-ahead");
        }
    }

    #[test]
    fn parallel_skip_ahead_matches_serial_stepped() {
        let (serial, _, serial_mem) = run_varied(observed_config(4));
        let (fast, skips, fast_mem) = run_varied(GpuConfig {
            sm_threads: 4,
            skip_ahead: true,
            ..observed_config(4)
        });
        assert_eq!(serial, fast);
        assert_eq!(serial_mem, fast_mem);
        assert!(skips > 0);
    }

    #[test]
    fn single_sm_run_completes() {
        let mut gpu = Gpu::new(GpuConfig {
            global_mem_words: 1 << 14,
            ..GpuConfig::kepler_single_sm()
        });
        let r = gpu
            .run(store_kernel(), GridConfig::new(8, 128), &|_| {
                Box::new(BaselineRf::stv(24))
            })
            .unwrap();
        assert_eq!(r.stats.instructions, 4 * 8 * 4);
        assert!(r.pilot_warp_finish.is_some());
        assert!(r.ipc() > 0.0);
        assert_eq!(gpu.global_mem_ref().read(500), 600);
    }

    #[test]
    fn multi_sm_distributes_ctas() {
        let config = GpuConfig {
            num_sms: 4,
            global_mem_words: 1 << 14,
            ..GpuConfig::kepler_gtx780()
        };
        let mut gpu = Gpu::new(config);
        let r = gpu
            .run(store_kernel(), GridConfig::new(16, 64), &|_| {
                Box::new(BaselineRf::stv(24))
            })
            .unwrap();
        assert_eq!(r.per_sm_instructions.len(), 4);
        assert!(
            r.per_sm_instructions.iter().all(|&i| i > 0),
            "all SMs should get work: {:?}",
            r.per_sm_instructions
        );
        // All 1024 threads stored.
        assert_eq!(gpu.global_mem_ref().read(1023), 1123);
    }

    #[test]
    fn cycle_limit_catches_infinite_loops() {
        let mut kb = KernelBuilder::new("hang");
        let top = kb.new_label();
        kb.place_label(top);
        kb.iadd_imm(Reg(0), Reg(0), 1);
        kb.bra(top);
        kb.exit();
        let k = kb.build().unwrap();
        let mut gpu = Gpu::new(GpuConfig {
            max_cycles: 5_000,
            global_mem_words: 1 << 12,
            ..GpuConfig::kepler_single_sm()
        });
        let err = gpu
            .run(k, GridConfig::new(1, 32), &|_| {
                Box::new(BaselineRf::stv(24))
            })
            .unwrap_err();
        assert_eq!(err, SimError::CycleLimitExceeded { limit: 5_000 });
    }

    #[test]
    fn back_to_back_kernels_accumulate_cycles() {
        let mut gpu = Gpu::new(GpuConfig {
            global_mem_words: 1 << 14,
            ..GpuConfig::kepler_single_sm()
        });
        let r1 = gpu
            .run(store_kernel(), GridConfig::new(2, 64), &|_| {
                Box::new(BaselineRf::stv(24))
            })
            .unwrap();
        let c1 = gpu.cycle;
        let r2 = gpu
            .run(store_kernel(), GridConfig::new(2, 64), &|_| {
                Box::new(BaselineRf::stv(24))
            })
            .unwrap();
        assert!(gpu.cycle > c1);
        assert_eq!(r1.stats.instructions, r2.stats.instructions);
    }

    #[test]
    fn pilot_fraction_small_for_many_ctas() {
        let mut gpu = Gpu::new(GpuConfig {
            global_mem_words: 1 << 16,
            ..GpuConfig::kepler_single_sm()
        });
        let r = gpu
            .run(store_kernel(), GridConfig::new(64, 256), &|_| {
                Box::new(BaselineRf::stv(24))
            })
            .unwrap();
        let frac = r.pilot_runtime_fraction().unwrap();
        assert!(frac < 0.5, "pilot fraction should be small, got {frac}");
    }
}
