//! Memory system: functional global/shared memory, a small L1 model, and
//! the load/store unit with warp-level coalescing.

use std::collections::{HashMap, VecDeque};

/// Functional global memory: a flat array of 32-bit words with wrapping
/// addressing (addresses are word indices masked to the array size).
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    words: Vec<u32>,
    mask: usize,
}

impl GlobalMemory {
    /// Allocates `num_words` (must be a power of two) zeroed words.
    ///
    /// # Panics
    ///
    /// Panics if `num_words` is not a power of two.
    pub fn new(num_words: usize) -> Self {
        assert!(
            num_words.is_power_of_two(),
            "memory size must be a power of two"
        );
        GlobalMemory {
            words: vec![0; num_words],
            mask: num_words - 1,
        }
    }

    /// Reads the word at `addr` (word address, wraps).
    pub fn read(&self, addr: u32) -> u32 {
        self.words[addr as usize & self.mask]
    }

    /// Writes the word at `addr` (word address, wraps).
    pub fn write(&mut self, addr: u32, value: u32) {
        self.words[addr as usize & self.mask] = value;
    }

    /// Bulk-initialises memory starting at `base` from `data`.
    pub fn load(&mut self, base: u32, data: &[u32]) {
        for (i, &v) in data.iter().enumerate() {
            self.write(base.wrapping_add(i as u32), v);
        }
    }

    /// Size in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the memory holds zero words — never the case in practice,
    /// since [`GlobalMemory::new`] rejects sizes that are not a power of
    /// two (and zero is not one); kept alongside [`len`] for API
    /// completeness.
    ///
    /// [`len`]: GlobalMemory::len
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// A per-SM, per-cycle view of global memory: reads see the cycle-start
/// state plus this SM's own earlier writes of the same cycle; writes are
/// buffered and committed by the GPU driver in SM-id order at the cycle
/// barrier.
///
/// This two-phase execute/commit scheme is what makes SM-parallel stepping
/// bit-identical to the serial loop: an SM's view of memory depends only on
/// the committed state and its own write log, never on how far the other
/// SMs have progressed within the cycle. The one semantic difference from
/// stepping SMs in-place is that an SM no longer observes a *same-cycle*
/// write from a lower-numbered SM; cross-SM communication at single-cycle
/// granularity is not representable in the CTA programming model (there is
/// no inter-CTA barrier), so no workload can depend on it.
#[derive(Debug)]
pub struct GmemView<'a> {
    base: &'a GlobalMemory,
    /// Masked (address, value) writes in program order.
    writes: &'a mut Vec<(u32, u32)>,
}

impl<'a> GmemView<'a> {
    /// A view over `base` logging writes into `writes` (not cleared here:
    /// the log accumulates for the cycle and is drained at commit).
    pub fn new(base: &'a GlobalMemory, writes: &'a mut Vec<(u32, u32)>) -> Self {
        GmemView { base, writes }
    }

    /// Reads the word at `addr`, observing this view's own earlier writes.
    pub fn read(&self, addr: u32) -> u32 {
        let key = (addr as usize & self.base.mask) as u32;
        // The log is short (at most one cycle's stores); scan newest-first.
        for &(a, v) in self.writes.iter().rev() {
            if a == key {
                return v;
            }
        }
        self.base.words[key as usize]
    }

    /// Buffers a write of `value` to `addr`.
    pub fn write(&mut self, addr: u32, value: u32) {
        let key = (addr as usize & self.base.mask) as u32;
        self.writes.push((key, value));
    }
}

/// Per-CTA shared memory (word-addressed, wraps).
#[derive(Debug, Clone)]
pub struct SharedMemory {
    words: Vec<u32>,
}

impl SharedMemory {
    /// Allocates `num_words` zeroed words.
    pub fn new(num_words: usize) -> Self {
        SharedMemory {
            words: vec![0; num_words.max(1)],
        }
    }

    /// Zeroes the memory in place, resizing to `num_words` if the CTA's
    /// requirement changed. Equivalent to `*self = SharedMemory::new(..)`
    /// without giving up the existing buffer.
    pub fn reset(&mut self, num_words: usize) {
        let n = num_words.max(1);
        self.words.clear();
        self.words.resize(n, 0);
    }

    /// Reads the word at `addr` (wraps).
    pub fn read(&self, addr: u32) -> u32 {
        let n = self.words.len();
        self.words[addr as usize % n]
    }

    /// Writes the word at `addr` (wraps).
    pub fn write(&mut self, addr: u32, value: u32) {
        let n = self.words.len();
        self.words[addr as usize % n] = value;
    }
}

/// Words per coalescing segment / cache line (128 bytes).
pub const LINE_WORDS: u32 = 32;

/// A tiny fully-associative LRU cache over 128-byte lines, standing in for
/// the per-SM L1.
///
/// Lookups are indexed by a line→stamp map; recency order lives in a lazy
/// queue whose stale entries (a line re-accessed after the entry was
/// pushed) are skipped at eviction time and swept once the queue grows to
/// twice the live set. The old implementation scanned a `VecDeque` on
/// every access — O(capacity), 256 entries at the default `l1_lines`, on
/// the hot path of every global-memory instruction; the index makes the
/// access amortised O(1). End-to-end fig12 wall clock (before/after in
/// EXPERIMENTS.md) is parity-or-better under heavy run-to-run noise, and
/// figure output is bit-identical; the equivalence test below pins the
/// exact hit/miss behaviour to the naive scan.
#[derive(Debug, Clone)]
pub struct L1Cache {
    /// Resident lines, each mapped to the stamp of its latest access.
    stamps: HashMap<u32, u64>,
    /// (stamp, line) in access order, oldest first. An entry is live only
    /// if its stamp matches `stamps[line]`.
    order: VecDeque<(u64, u32)>,
    next_stamp: u64,
    capacity: usize,
    /// Hits observed.
    pub hits: u64,
    /// Misses observed.
    pub misses: u64,
}

impl L1Cache {
    /// Creates a cache with `capacity` lines.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        L1Cache {
            stamps: HashMap::with_capacity(capacity),
            order: VecDeque::with_capacity(2 * capacity),
            next_stamp: 0,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses the line containing word address `addr`; returns `true` on
    /// hit. Misses allocate (LRU eviction).
    pub fn access(&mut self, addr: u32) -> bool {
        let line = addr / LINE_WORDS;
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let hit = if let Some(s) = self.stamps.get_mut(&line) {
            *s = stamp;
            self.hits += 1;
            true
        } else {
            if self.stamps.len() == self.capacity {
                self.evict_lru();
            }
            self.stamps.insert(line, stamp);
            self.misses += 1;
            false
        };
        self.order.push_back((stamp, line));
        // Each hit strands one stale queue entry; sweep them before the
        // queue outgrows twice the live set so eviction stays amortised
        // O(1) and memory stays bounded.
        if self.order.len() > 2 * self.capacity {
            let stamps = &self.stamps;
            self.order.retain(|&(s, l)| stamps.get(&l) == Some(&s));
        }
        hit
    }

    /// Removes the least-recently-used resident line, skipping queue
    /// entries superseded by a later access to the same line.
    fn evict_lru(&mut self) {
        while let Some((s, l)) = self.order.pop_front() {
            if self.stamps.get(&l) == Some(&s) {
                self.stamps.remove(&l);
                return;
            }
        }
        unreachable!("a resident line must have a live queue entry");
    }
}

/// A memory request being processed by the LSU.
#[derive(Debug, Clone, Copy)]
struct LsuOp {
    token: u64,
    finish_at: u64,
}

/// The load/store unit for one SM.
///
/// Accepts one warp memory instruction per cycle; each instruction's
/// latency is `base latency + (transactions - 1)` cycles, where
/// transactions is the number of distinct 128-byte segments touched by the
/// active lanes (coalescing). Completion tokens are returned to the SM,
/// which performs the register writeback via the operand collector.
#[derive(Debug)]
pub struct LoadStoreUnit {
    inflight: Vec<LsuOp>,
    accept_queue: VecDeque<(u64, u32)>, // (token, latency)
    /// Total coalesced transactions issued.
    pub transactions: u64,
    /// Warp-level memory instructions processed.
    pub instructions: u64,
}

impl LoadStoreUnit {
    /// New, idle LSU.
    pub fn new() -> Self {
        LoadStoreUnit {
            inflight: Vec::new(),
            accept_queue: VecDeque::new(),
            transactions: 0,
            instructions: 0,
        }
    }

    /// Counts coalesced transactions for a set of word addresses.
    pub fn coalesce(addrs: &[u32]) -> u32 {
        let mut segs = Vec::new();
        Self::coalesce_into(addrs, &mut segs);
        segs.len() as u32
    }

    /// Fills `segs` with the sorted, deduplicated 128-byte segments touched
    /// by `addrs` (the allocation-free form of [`LoadStoreUnit::coalesce`];
    /// the hot path reuses one scratch buffer across instructions).
    pub fn coalesce_into(addrs: &[u32], segs: &mut Vec<u32>) {
        segs.clear();
        segs.extend(addrs.iter().map(|a| a / LINE_WORDS));
        segs.sort_unstable();
        segs.dedup();
    }

    /// Submits a warp memory instruction. `latency` is the full service
    /// latency (hit/miss decided by the caller via the L1 model);
    /// `transactions` adds serialisation cycles.
    pub fn submit(&mut self, token: u64, latency: u32, transactions: u32) {
        self.transactions += u64::from(transactions);
        self.instructions += 1;
        let serialised = latency + transactions.saturating_sub(1);
        self.accept_queue.push_back((token, serialised));
    }

    /// Advances one cycle; returns tokens of completed operations.
    pub fn tick(&mut self, cycle: u64) -> Vec<u64> {
        let mut done = Vec::new();
        self.tick_into(cycle, &mut done);
        done
    }

    /// Advances one cycle, appending tokens of completed operations to
    /// `done` (the allocation-free form of [`LoadStoreUnit::tick`]).
    pub fn tick_into(&mut self, cycle: u64, done: &mut Vec<u64>) {
        // One instruction enters service per cycle.
        if let Some((token, lat)) = self.accept_queue.pop_front() {
            self.inflight.push(LsuOp {
                token,
                finish_at: cycle + u64::from(lat),
            });
        }
        self.inflight.retain(|op| {
            if op.finish_at <= cycle {
                done.push(op.token);
                false
            } else {
                true
            }
        });
    }

    /// The next cycle (strictly after `cycle`) at which ticking this unit
    /// could have an observable effect, or `None` when idle. A queued
    /// instruction enters service on the very next tick, so a non-empty
    /// accept queue pins the horizon to `cycle + 1`.
    pub fn next_event(&self, cycle: u64) -> Option<u64> {
        if !self.accept_queue.is_empty() {
            return Some(cycle + 1);
        }
        self.inflight
            .iter()
            .map(|op| op.finish_at.max(cycle + 1))
            .min()
    }

    /// True when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.inflight.is_empty() && self.accept_queue.is_empty()
    }
}

impl Default for LoadStoreUnit {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_memory_wraps() {
        let mut m = GlobalMemory::new(1024);
        m.write(5, 42);
        assert_eq!(m.read(5), 42);
        m.write(1024 + 5, 7); // wraps to 5
        assert_eq!(m.read(5), 7);
        assert_eq!(m.len(), 1024);
        assert!(!m.is_empty());
    }

    #[test]
    fn global_memory_bulk_load() {
        let mut m = GlobalMemory::new(256);
        m.load(10, &[1, 2, 3]);
        assert_eq!(m.read(10), 1);
        assert_eq!(m.read(12), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn global_memory_requires_pow2() {
        GlobalMemory::new(1000);
    }

    #[test]
    fn shared_memory_read_write() {
        let mut s = SharedMemory::new(128);
        s.write(3, 9);
        assert_eq!(s.read(3), 9);
        s.write(128 + 3, 11);
        assert_eq!(s.read(3), 11);
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut c = L1Cache::new(4);
        assert!(!c.access(0));
        assert!(c.access(5)); // same 32-word line
        assert!(!c.access(32)); // next line
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn l1_lru_eviction() {
        let mut c = L1Cache::new(2);
        c.access(0); // line 0
        c.access(32); // line 1
        c.access(64); // line 2, evicts line 0
        assert!(!c.access(0), "line 0 was evicted");
        assert!(c.access(64));
    }

    #[test]
    fn l1_hit_refreshes_recency() {
        let mut c = L1Cache::new(2);
        c.access(0); // line 0
        c.access(32); // line 1
        assert!(c.access(0)); // line 0 now MRU
        c.access(64); // evicts line 1, not line 0
        assert!(c.access(0), "refreshed line must survive");
        assert!(!c.access(32), "line 1 was the LRU victim");
    }

    #[test]
    fn l1_indexed_lru_matches_naive_scan_reference() {
        // The lazy stamp queue must be observationally identical to the
        // textbook scan-and-reorder LRU it replaced, including across many
        // sweeps of the stale-entry compaction.
        let mut fast = L1Cache::new(4);
        let mut naive: VecDeque<u32> = VecDeque::new();
        let mut state = 0x2468_ace1u32;
        for _ in 0..10_000 {
            // Deterministic xorshift over a footprint ~3x the capacity.
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            let addr = state % (12 * LINE_WORDS);
            let line = addr / LINE_WORDS;
            let expect_hit = if let Some(pos) = naive.iter().position(|&l| l == line) {
                naive.remove(pos);
                naive.push_back(line);
                true
            } else {
                if naive.len() == 4 {
                    naive.pop_front();
                }
                naive.push_back(line);
                false
            };
            assert_eq!(fast.access(addr), expect_hit, "addr {addr}");
        }
        assert!(fast.hits > 0 && fast.misses > 0);
    }

    #[test]
    fn coalescing_counts_segments() {
        // All 32 lanes in one segment.
        let addrs: Vec<u32> = (0..32).collect();
        assert_eq!(LoadStoreUnit::coalesce(&addrs), 1);
        // Stride-32: every lane its own segment.
        let addrs: Vec<u32> = (0..32).map(|i| i * 32).collect();
        assert_eq!(LoadStoreUnit::coalesce(&addrs), 32);
        // Two segments.
        let addrs = vec![0, 1, 40, 41];
        assert_eq!(LoadStoreUnit::coalesce(&addrs), 2);
    }

    #[test]
    fn lsu_completes_after_latency() {
        let mut lsu = LoadStoreUnit::new();
        lsu.submit(1, 10, 1);
        let mut done = Vec::new();
        for cyc in 0..=10 {
            done.extend(lsu.tick(cyc));
        }
        assert_eq!(done, vec![1]);
        assert!(lsu.is_idle());
        assert_eq!(lsu.instructions, 1);
    }

    #[test]
    fn lsu_serialises_extra_transactions() {
        let mut lsu = LoadStoreUnit::new();
        lsu.submit(1, 10, 4); // +3 cycles
        let mut finish = None;
        for cyc in 0..=20 {
            if lsu.tick(cyc).contains(&1) {
                finish = Some(cyc);
                break;
            }
        }
        assert_eq!(finish, Some(13));
        assert_eq!(lsu.transactions, 4);
    }

    #[test]
    fn coalesce_ignores_inactive_lanes() {
        // exec.rs only pushes addresses for lanes set in the exec mask, so
        // transaction counts must follow the *active* footprint. Model a
        // stride-32 access (worst case: one segment per lane) under a
        // divergent mask with only lanes 0..4 active.
        let all_lanes: Vec<u32> = (0..32u32).map(|lane| lane * 32).collect();
        assert_eq!(LoadStoreUnit::coalesce(&all_lanes), 32);
        let mask: u32 = 0b1111;
        let active: Vec<u32> = all_lanes
            .iter()
            .enumerate()
            .filter(|&(lane, _)| mask & (1 << lane) != 0)
            .map(|(_, &a)| a)
            .collect();
        assert_eq!(LoadStoreUnit::coalesce(&active), 4);
        // Masked unit-stride lanes still coalesce into one segment.
        let unit: Vec<u32> = (0..32u32).filter(|l| mask & (1 << l) != 0).collect();
        assert_eq!(LoadStoreUnit::coalesce(&unit), 1);
    }

    #[test]
    fn inverted_latencies_complete_out_of_order_and_release_cleanly() {
        // Two in-flight ops with inverted latencies: the younger, faster op
        // completes first. The SM releases each destination register only
        // when its own token completes, so the scoreboard must stay
        // coherent through the out-of-order writeback.
        use crate::scoreboard::Scoreboard;
        use prf_isa::{KernelBuilder, Reg};

        let mut kb = KernelBuilder::new("two-loads");
        kb.ldg(Reg(1), Reg(0), 0); // token 1, slow
        kb.ldg(Reg(2), Reg(0), 4); // token 2, fast
        kb.iadd(Reg(3), Reg(1), Reg(2)); // consumer of both
        kb.exit();
        let k = kb.build().unwrap();
        let (slow, fast, consumer) = (k.fetch(0), k.fetch(1), k.fetch(2));

        let mut lsu = LoadStoreUnit::new();
        let mut sb = Scoreboard::new();
        let mut token_reg = std::collections::HashMap::new();
        sb.reserve(slow);
        lsu.submit(1, 20, 1);
        token_reg.insert(1u64, Reg(1));
        sb.reserve(fast);
        lsu.submit(2, 3, 1);
        token_reg.insert(2u64, Reg(2));
        assert_eq!(sb.pending_count(), 2);

        let mut completions = Vec::new();
        for cycle in 0..=30u64 {
            for token in lsu.tick(cycle) {
                sb.release_reg(token_reg[&token]);
                completions.push(token);
                // Release order is completion order: after the fast op
                // alone, only the slow op's destination still blocks.
                if completions == [2] {
                    assert_eq!(sb.pending_count(), 1);
                    assert!(sb.blocked(consumer), "r1 still pending");
                }
            }
        }
        assert_eq!(
            completions,
            vec![2, 1],
            "inverted latencies invert completion"
        );
        assert!(sb.is_clear(), "every reserve matched by a release");
        assert!(!sb.blocked(consumer));
        assert!(lsu.is_idle());
    }

    #[test]
    fn gmem_view_buffers_writes_and_serves_own_reads() {
        let mut base = GlobalMemory::new(1024);
        base.write(7, 70);
        let mut log = Vec::new();
        {
            let mut v = GmemView::new(&base, &mut log);
            assert_eq!(v.read(7), 70, "reads fall through to base");
            v.write(7, 71);
            v.write(9, 90);
            assert_eq!(v.read(7), 71, "own write visible");
            v.write(7, 72);
            assert_eq!(v.read(7), 72, "newest own write wins");
            // Wrapping: 1024+9 aliases 9.
            assert_eq!(v.read(1024 + 9), 90);
            v.write(1024 + 5, 55);
            assert_eq!(v.read(5), 55);
        }
        assert_eq!(base.read(7), 70, "base untouched until commit");
        for (a, val) in log {
            base.write(a, val);
        }
        assert_eq!(base.read(7), 72);
        assert_eq!(base.read(9), 90);
        assert_eq!(base.read(5), 55);
    }

    #[test]
    fn coalesce_into_matches_coalesce() {
        let addrs = vec![0, 1, 40, 41, 999];
        let mut segs = vec![123, 456]; // stale scratch must be cleared
        LoadStoreUnit::coalesce_into(&addrs, &mut segs);
        assert_eq!(segs.len() as u32, LoadStoreUnit::coalesce(&addrs));
        assert_eq!(segs, vec![0, 1, 31]);
    }

    #[test]
    fn lsu_next_event_tracks_queue_and_inflight() {
        let mut lsu = LoadStoreUnit::new();
        assert_eq!(lsu.next_event(10), None);
        lsu.submit(1, 20, 1);
        // Queued: next tick enters service.
        assert_eq!(lsu.next_event(10), Some(11));
        lsu.tick(11); // enters service, finishes at 31
        assert_eq!(lsu.next_event(11), Some(31));
        assert_eq!(lsu.tick(31), vec![1]);
        assert_eq!(lsu.next_event(31), None);
    }

    #[test]
    fn lsu_accepts_one_per_cycle() {
        let mut lsu = LoadStoreUnit::new();
        lsu.submit(1, 5, 1);
        lsu.submit(2, 5, 1);
        // token 1 enters at cycle 0 (done 5), token 2 at cycle 1 (done 6).
        let mut done = Vec::new();
        for cyc in 0..=6 {
            done.extend(lsu.tick(cyc));
        }
        assert_eq!(done, vec![1, 2]);
    }
}
