//! Memory system: functional global/shared memory, a small L1 model, and
//! the load/store unit with warp-level coalescing.

use std::collections::VecDeque;

/// Functional global memory: a flat array of 32-bit words with wrapping
/// addressing (addresses are word indices masked to the array size).
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    words: Vec<u32>,
    mask: usize,
}

impl GlobalMemory {
    /// Allocates `num_words` (must be a power of two) zeroed words.
    ///
    /// # Panics
    ///
    /// Panics if `num_words` is not a power of two.
    pub fn new(num_words: usize) -> Self {
        assert!(
            num_words.is_power_of_two(),
            "memory size must be a power of two"
        );
        GlobalMemory {
            words: vec![0; num_words],
            mask: num_words - 1,
        }
    }

    /// Reads the word at `addr` (word address, wraps).
    pub fn read(&self, addr: u32) -> u32 {
        self.words[addr as usize & self.mask]
    }

    /// Writes the word at `addr` (word address, wraps).
    pub fn write(&mut self, addr: u32, value: u32) {
        self.words[addr as usize & self.mask] = value;
    }

    /// Bulk-initialises memory starting at `base` from `data`.
    pub fn load(&mut self, base: u32, data: &[u32]) {
        for (i, &v) in data.iter().enumerate() {
            self.write(base.wrapping_add(i as u32), v);
        }
    }

    /// Size in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Always false (memory always has at least one word).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Per-CTA shared memory (word-addressed, wraps).
#[derive(Debug, Clone)]
pub struct SharedMemory {
    words: Vec<u32>,
}

impl SharedMemory {
    /// Allocates `num_words` zeroed words.
    pub fn new(num_words: usize) -> Self {
        SharedMemory {
            words: vec![0; num_words.max(1)],
        }
    }

    /// Reads the word at `addr` (wraps).
    pub fn read(&self, addr: u32) -> u32 {
        let n = self.words.len();
        self.words[addr as usize % n]
    }

    /// Writes the word at `addr` (wraps).
    pub fn write(&mut self, addr: u32, value: u32) {
        let n = self.words.len();
        self.words[addr as usize % n] = value;
    }
}

/// Words per coalescing segment / cache line (128 bytes).
pub const LINE_WORDS: u32 = 32;

/// A tiny fully-associative LRU cache over 128-byte lines, standing in for
/// the per-SM L1.
#[derive(Debug, Clone)]
pub struct L1Cache {
    lines: VecDeque<u32>,
    capacity: usize,
    /// Hits observed.
    pub hits: u64,
    /// Misses observed.
    pub misses: u64,
}

impl L1Cache {
    /// Creates a cache with `capacity` lines.
    pub fn new(capacity: usize) -> Self {
        L1Cache {
            lines: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses the line containing word address `addr`; returns `true` on
    /// hit. Misses allocate (LRU eviction).
    pub fn access(&mut self, addr: u32) -> bool {
        let line = addr / LINE_WORDS;
        if let Some(pos) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(pos);
            self.lines.push_back(line);
            self.hits += 1;
            true
        } else {
            if self.lines.len() == self.capacity {
                self.lines.pop_front();
            }
            self.lines.push_back(line);
            self.misses += 1;
            false
        }
    }
}

/// A memory request being processed by the LSU.
#[derive(Debug, Clone, Copy)]
struct LsuOp {
    token: u64,
    finish_at: u64,
}

/// The load/store unit for one SM.
///
/// Accepts one warp memory instruction per cycle; each instruction's
/// latency is `base latency + (transactions - 1)` cycles, where
/// transactions is the number of distinct 128-byte segments touched by the
/// active lanes (coalescing). Completion tokens are returned to the SM,
/// which performs the register writeback via the operand collector.
#[derive(Debug)]
pub struct LoadStoreUnit {
    inflight: Vec<LsuOp>,
    accept_queue: VecDeque<(u64, u32)>, // (token, latency)
    /// Total coalesced transactions issued.
    pub transactions: u64,
    /// Warp-level memory instructions processed.
    pub instructions: u64,
}

impl LoadStoreUnit {
    /// New, idle LSU.
    pub fn new() -> Self {
        LoadStoreUnit {
            inflight: Vec::new(),
            accept_queue: VecDeque::new(),
            transactions: 0,
            instructions: 0,
        }
    }

    /// Counts coalesced transactions for a set of word addresses.
    pub fn coalesce(addrs: &[u32]) -> u32 {
        let mut segs: Vec<u32> = addrs.iter().map(|a| a / LINE_WORDS).collect();
        segs.sort_unstable();
        segs.dedup();
        segs.len() as u32
    }

    /// Submits a warp memory instruction. `latency` is the full service
    /// latency (hit/miss decided by the caller via the L1 model);
    /// `transactions` adds serialisation cycles.
    pub fn submit(&mut self, token: u64, latency: u32, transactions: u32) {
        self.transactions += u64::from(transactions);
        self.instructions += 1;
        let serialised = latency + transactions.saturating_sub(1);
        self.accept_queue.push_back((token, serialised));
    }

    /// Advances one cycle; returns tokens of completed operations.
    pub fn tick(&mut self, cycle: u64) -> Vec<u64> {
        // One instruction enters service per cycle.
        if let Some((token, lat)) = self.accept_queue.pop_front() {
            self.inflight.push(LsuOp {
                token,
                finish_at: cycle + u64::from(lat),
            });
        }
        let mut done = Vec::new();
        self.inflight.retain(|op| {
            if op.finish_at <= cycle {
                done.push(op.token);
                false
            } else {
                true
            }
        });
        done
    }

    /// True when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.inflight.is_empty() && self.accept_queue.is_empty()
    }
}

impl Default for LoadStoreUnit {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_memory_wraps() {
        let mut m = GlobalMemory::new(1024);
        m.write(5, 42);
        assert_eq!(m.read(5), 42);
        m.write(1024 + 5, 7); // wraps to 5
        assert_eq!(m.read(5), 7);
        assert_eq!(m.len(), 1024);
        assert!(!m.is_empty());
    }

    #[test]
    fn global_memory_bulk_load() {
        let mut m = GlobalMemory::new(256);
        m.load(10, &[1, 2, 3]);
        assert_eq!(m.read(10), 1);
        assert_eq!(m.read(12), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn global_memory_requires_pow2() {
        GlobalMemory::new(1000);
    }

    #[test]
    fn shared_memory_read_write() {
        let mut s = SharedMemory::new(128);
        s.write(3, 9);
        assert_eq!(s.read(3), 9);
        s.write(128 + 3, 11);
        assert_eq!(s.read(3), 11);
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut c = L1Cache::new(4);
        assert!(!c.access(0));
        assert!(c.access(5)); // same 32-word line
        assert!(!c.access(32)); // next line
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn l1_lru_eviction() {
        let mut c = L1Cache::new(2);
        c.access(0); // line 0
        c.access(32); // line 1
        c.access(64); // line 2, evicts line 0
        assert!(!c.access(0), "line 0 was evicted");
        assert!(c.access(64));
    }

    #[test]
    fn coalescing_counts_segments() {
        // All 32 lanes in one segment.
        let addrs: Vec<u32> = (0..32).collect();
        assert_eq!(LoadStoreUnit::coalesce(&addrs), 1);
        // Stride-32: every lane its own segment.
        let addrs: Vec<u32> = (0..32).map(|i| i * 32).collect();
        assert_eq!(LoadStoreUnit::coalesce(&addrs), 32);
        // Two segments.
        let addrs = vec![0, 1, 40, 41];
        assert_eq!(LoadStoreUnit::coalesce(&addrs), 2);
    }

    #[test]
    fn lsu_completes_after_latency() {
        let mut lsu = LoadStoreUnit::new();
        lsu.submit(1, 10, 1);
        let mut done = Vec::new();
        for cyc in 0..=10 {
            done.extend(lsu.tick(cyc));
        }
        assert_eq!(done, vec![1]);
        assert!(lsu.is_idle());
        assert_eq!(lsu.instructions, 1);
    }

    #[test]
    fn lsu_serialises_extra_transactions() {
        let mut lsu = LoadStoreUnit::new();
        lsu.submit(1, 10, 4); // +3 cycles
        let mut finish = None;
        for cyc in 0..=20 {
            if lsu.tick(cyc).contains(&1) {
                finish = Some(cyc);
                break;
            }
        }
        assert_eq!(finish, Some(13));
        assert_eq!(lsu.transactions, 4);
    }

    #[test]
    fn lsu_accepts_one_per_cycle() {
        let mut lsu = LoadStoreUnit::new();
        lsu.submit(1, 5, 1);
        lsu.submit(2, 5, 1);
        // token 1 enters at cycle 0 (done 5), token 2 at cycle 1 (done 6).
        let mut done = Vec::new();
        for cyc in 0..=6 {
            done.extend(lsu.tick(cyc));
        }
        assert_eq!(done, vec![1, 2]);
    }
}
