//! Simulation statistics: cycles, instructions, and — centrally for this
//! paper — register-file access accounting.

use std::collections::HashMap;
use std::fmt;

use prf_isa::{Reg, MAX_ARCH_REGS};

use crate::rf::{AccessKind, RepairKind, RfPartition};

/// Integer division rounded to the nearest integer (half away from zero).
///
/// Seed-averaged counters use this instead of truncating division so a
/// merge of `n` identical runs scales back down losslessly; plain `/`
/// would silently drop up to `n - 1` counts per counter.
#[must_use]
pub fn div_round_nearest(x: u64, n: u64) -> u64 {
    assert!(n >= 1);
    // `(x + n / 2) / n` would wrap for x near u64::MAX; round by looking
    // at the remainder instead, which cannot overflow.
    x / n + u64::from(x % n >= n.div_ceil(2))
}

/// Per-register dynamic access counts (reads + writes), the raw material of
/// the paper's Fig. 2 ("percentage of accesses to the top N highly accessed
/// registers") and of the *optimal* profiling bar in Fig. 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterAccessHistogram {
    counts: [u64; MAX_ARCH_REGS],
}

impl Default for RegisterAccessHistogram {
    fn default() -> Self {
        RegisterAccessHistogram {
            counts: [0; MAX_ARCH_REGS],
        }
    }
}

impl RegisterAccessHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access to `reg`.
    pub fn record(&mut self, reg: Reg) {
        self.counts[reg.index()] += 1;
    }

    /// Records `n` accesses to `reg`.
    pub fn record_n(&mut self, reg: Reg, n: u64) {
        self.counts[reg.index()] += n;
    }

    /// Accesses to one register.
    pub fn count(&self, reg: Reg) -> u64 {
        self.counts[reg.index()]
    }

    /// Total accesses across all registers.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `n` most accessed registers, most-accessed first; ties break to
    /// the lower register index. Zero-count registers are excluded.
    pub fn top_n(&self, n: usize) -> Vec<Reg> {
        let mut v: Vec<(u64, usize)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (c, i))
            .collect();
        v.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        v.into_iter().take(n).map(|(_, i)| Reg(i as u8)).collect()
    }

    /// Fraction of all accesses that went to `regs` — e.g.
    /// `top_share(3)` reproduces one bar of Fig. 2.
    pub fn coverage(&self, regs: &[Reg]) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        regs.iter().map(|r| self.count(*r)).sum::<u64>() as f64 / t as f64
    }

    /// Fraction of accesses captured by the top `n` registers.
    pub fn top_share(&self, n: usize) -> f64 {
        self.coverage(&self.top_n(n))
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64; MAX_ARCH_REGS] {
        &self.counts
    }

    /// Rebuilds a histogram from raw counts — the inverse of [`counts`](Self::counts),
    /// used by the bench result cache to round-trip results through disk.
    pub fn from_counts(counts: [u64; MAX_ARCH_REGS]) -> Self {
        RegisterAccessHistogram { counts }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &RegisterAccessHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Divides every count by `n` (rounding to nearest), turning a merge
    /// of `n` runs into a per-run mean.
    pub fn scale_down(&mut self, n: u64) {
        for c in self.counts.iter_mut() {
            *c = div_round_nearest(*c, n);
        }
    }
}

/// Access counts per physical partition and access kind — the energy
/// accounting input (Figs. 10, 11, 13).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionAccessCounts {
    reads: [u64; 8],
    writes: [u64; 8],
}

impl PartitionAccessCounts {
    /// Empty counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access.
    pub fn record(&mut self, partition: RfPartition, kind: AccessKind) {
        match kind {
            AccessKind::Read => self.reads[partition.index()] += 1,
            AccessKind::Write => self.writes[partition.index()] += 1,
        }
    }

    /// Reads serviced by `partition`.
    pub fn reads(&self, partition: RfPartition) -> u64 {
        self.reads[partition.index()]
    }

    /// Writes serviced by `partition`.
    pub fn writes(&self, partition: RfPartition) -> u64 {
        self.writes[partition.index()]
    }

    /// Reads + writes for `partition`.
    pub fn accesses(&self, partition: RfPartition) -> u64 {
        self.reads(partition) + self.writes(partition)
    }

    /// Total reads over all partitions.
    pub fn total_reads(&self) -> u64 {
        self.reads.iter().sum()
    }

    /// Total writes over all partitions.
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }

    /// Total accesses over all partitions.
    pub fn total(&self) -> u64 {
        self.total_reads() + self.total_writes()
    }

    /// Fraction of all accesses serviced by `partition` (Fig. 10).
    pub fn fraction(&self, partition: RfPartition) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.accesses(partition) as f64 / t as f64
        }
    }

    /// Raw (reads, writes) counter arrays, dense by
    /// [`RfPartition::index`] — for serialisation.
    pub fn raw(&self) -> (&[u64; 8], &[u64; 8]) {
        (&self.reads, &self.writes)
    }

    /// Rebuilds counters from raw arrays (dense by [`RfPartition::index`])
    /// — the inverse of [`raw`](Self::raw), used by the bench result cache.
    pub fn from_raw(reads: [u64; 8], writes: [u64; 8]) -> Self {
        PartitionAccessCounts { reads, writes }
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &PartitionAccessCounts) {
        for i in 0..8 {
            self.reads[i] += other.reads[i];
            self.writes[i] += other.writes[i];
        }
    }

    /// Divides every count by `n` (rounding to nearest), turning a merge
    /// of `n` runs into a per-run mean.
    pub fn scale_down(&mut self, n: u64) {
        for i in 0..8 {
            self.reads[i] = div_round_nearest(self.reads[i], n);
            self.writes[i] = div_round_nearest(self.writes[i], n);
        }
    }
}

impl fmt::Display for PartitionAccessCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in RfPartition::ALL {
            let a = self.accesses(p);
            if a > 0 {
                writeln!(f, "  {p:10} {a:>12} ({:.1}%)", 100.0 * self.fraction(p))?;
            }
        }
        Ok(())
    }
}

/// Statistics for one SM.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SmStats {
    /// Instructions issued (warp-instructions).
    pub instructions: u64,
    /// Cycles this SM was active (had at least one resident warp).
    pub active_cycles: u64,
    /// Cycles in which at least one instruction issued.
    pub issue_cycles: u64,
    /// Dynamic per-register access histogram (reads + writes).
    pub reg_accesses: RegisterAccessHistogram,
    /// Accesses per physical partition.
    pub partition_accesses: PartitionAccessCounts,
    /// Bank-conflict stalls: granted-cycle requests that had to wait because
    /// their bank was busy.
    pub bank_conflict_waits: u64,
    /// Issue stalls because no operand collector was free.
    pub collector_stalls: u64,
    /// Per-warp per-register histograms, keyed by (cta, warp-in-cta); only
    /// populated when `GpuConfig::per_warp_stats` is set.
    pub per_warp: HashMap<(u32, u32), RegisterAccessHistogram>,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// Coalesced global-memory transactions.
    pub mem_transactions: u64,
    /// Warp-level memory instructions processed by the LSU.
    pub mem_instructions: u64,
    /// Zero-issue cycles where every resident warp was scoreboard-blocked
    /// with loads outstanding (memory shadow).
    pub stall_mem: u64,
    /// Zero-issue cycles dominated by barrier waits.
    pub stall_barrier: u64,
    /// Zero-issue cycles where warps were ready but no collector was free.
    pub stall_collector: u64,
    /// Zero-issue cycles blocked on non-memory scoreboard dependences
    /// (ALU latency).
    pub stall_alu_dep: u64,
    /// Branches executed that actually diverged (both paths taken).
    pub divergent_branches: u64,
    /// Branches executed in total.
    pub total_branches: u64,
    /// Sum of active lanes over all issued instructions (for SIMD
    /// efficiency: divide by `32 * instructions`).
    pub active_lane_sum: u64,
    /// Granted accesses that landed on a faulty row and were repaired,
    /// dense by [`RepairKind::index`] (remapped, spilled, escalated).
    pub rf_repairs: [u64; 3],
}

impl SmStats {
    /// Empty stats block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another SM's stats into this one.
    pub fn merge(&mut self, other: &SmStats) {
        self.instructions += other.instructions;
        self.active_cycles += other.active_cycles;
        self.issue_cycles += other.issue_cycles;
        self.reg_accesses.merge(&other.reg_accesses);
        self.partition_accesses.merge(&other.partition_accesses);
        self.bank_conflict_waits += other.bank_conflict_waits;
        self.collector_stalls += other.collector_stalls;
        for (k, v) in &other.per_warp {
            self.per_warp.entry(*k).or_default().merge(v);
        }
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.mem_transactions += other.mem_transactions;
        self.mem_instructions += other.mem_instructions;
        self.stall_mem += other.stall_mem;
        self.stall_barrier += other.stall_barrier;
        self.stall_collector += other.stall_collector;
        self.stall_alu_dep += other.stall_alu_dep;
        self.divergent_branches += other.divergent_branches;
        self.total_branches += other.total_branches;
        self.active_lane_sum += other.active_lane_sum;
        for (a, b) in self.rf_repairs.iter_mut().zip(other.rf_repairs.iter()) {
            *a += b;
        }
    }

    /// Divides every counter by `n` (rounding to nearest), turning a merge
    /// of `n` runs into a per-run mean. Per-warp histograms are scaled
    /// element-wise.
    pub fn scale_down(&mut self, n: u64) {
        self.instructions = div_round_nearest(self.instructions, n);
        self.active_cycles = div_round_nearest(self.active_cycles, n);
        self.issue_cycles = div_round_nearest(self.issue_cycles, n);
        self.reg_accesses.scale_down(n);
        self.partition_accesses.scale_down(n);
        self.bank_conflict_waits = div_round_nearest(self.bank_conflict_waits, n);
        self.collector_stalls = div_round_nearest(self.collector_stalls, n);
        for h in self.per_warp.values_mut() {
            h.scale_down(n);
        }
        self.l1_hits = div_round_nearest(self.l1_hits, n);
        self.l1_misses = div_round_nearest(self.l1_misses, n);
        self.mem_transactions = div_round_nearest(self.mem_transactions, n);
        self.mem_instructions = div_round_nearest(self.mem_instructions, n);
        self.stall_mem = div_round_nearest(self.stall_mem, n);
        self.stall_barrier = div_round_nearest(self.stall_barrier, n);
        self.stall_collector = div_round_nearest(self.stall_collector, n);
        self.stall_alu_dep = div_round_nearest(self.stall_alu_dep, n);
        self.divergent_branches = div_round_nearest(self.divergent_branches, n);
        self.total_branches = div_round_nearest(self.total_branches, n);
        self.active_lane_sum = div_round_nearest(self.active_lane_sum, n);
        for c in self.rf_repairs.iter_mut() {
            *c = div_round_nearest(*c, n);
        }
    }

    /// Records one repaired access.
    pub fn record_repair(&mut self, kind: RepairKind) {
        self.rf_repairs[kind.index()] += 1;
    }

    /// Repaired accesses of one kind.
    pub fn repairs(&self, kind: RepairKind) -> u64 {
        self.rf_repairs[kind.index()]
    }

    /// Repaired accesses of any kind.
    pub fn total_repairs(&self) -> u64 {
        self.rf_repairs.iter().sum()
    }

    /// Mean SIMD efficiency: active lanes per issued instruction over the
    /// warp width.
    pub fn simd_efficiency(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.active_lane_sum as f64 / (32.0 * self.instructions as f64)
        }
    }

    /// Fraction of executed branches that diverged.
    pub fn divergence_rate(&self) -> f64 {
        if self.total_branches == 0 {
            0.0
        } else {
            self.divergent_branches as f64 / self.total_branches as f64
        }
    }
}

/// The result of simulating one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Kernel name.
    pub kernel: String,
    /// Total GPU cycles from launch to completion.
    pub cycles: u64,
    /// Aggregated statistics over all SMs.
    pub stats: SmStats,
    /// Cycle at which the *pilot warp* (first warp of the first CTA on
    /// SM 0) finished, if it did — used for Table I's "Pilot CTA %" column.
    pub pilot_warp_finish: Option<u64>,
    /// Per-SM instruction counts (for load-balance sanity checks).
    pub per_sm_instructions: Vec<u64>,
    /// Merged pipeline trace (empty unless `GpuConfig::trace_capacity` is
    /// set), sorted by cycle.
    pub trace: Vec<crate::trace::TraceEvent>,
    /// Per-SM sampled time series (empty unless `GpuConfig::sampling` is
    /// set), one series per SM.
    pub samples: Vec<crate::sampling::SampleSeries>,
    /// Conservation-invariant audit report (present iff `GpuConfig::audit`
    /// was set); merged over all SMs.
    pub audit: Option<crate::audit::AuditReport>,
}

impl SimResult {
    /// Instructions per cycle across the whole GPU.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stats.instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of total execution time the pilot warp was running
    /// (Table I, last column).
    pub fn pilot_runtime_fraction(&self) -> Option<f64> {
        self.pilot_warp_finish
            .map(|f| f as f64 / self.cycles.max(1) as f64)
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} cycles, {} instrs, IPC {:.2}",
            self.kernel,
            self.cycles,
            self.stats.instructions,
            self.ipc()
        )?;
        write!(f, "{}", self.stats.partition_accesses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_top_n_and_share() {
        let mut h = RegisterAccessHistogram::new();
        h.record_n(Reg(0), 60);
        h.record_n(Reg(5), 30);
        h.record_n(Reg(9), 10);
        assert_eq!(h.total(), 100);
        assert_eq!(h.top_n(2), vec![Reg(0), Reg(5)]);
        assert!((h.top_share(2) - 0.9).abs() < 1e-12);
        assert!((h.coverage(&[Reg(9)]) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn histogram_tie_breaks_to_lower_index() {
        let mut h = RegisterAccessHistogram::new();
        h.record_n(Reg(7), 5);
        h.record_n(Reg(2), 5);
        assert_eq!(h.top_n(1), vec![Reg(2)]);
    }

    #[test]
    fn histogram_merge() {
        let mut a = RegisterAccessHistogram::new();
        let mut b = RegisterAccessHistogram::new();
        a.record(Reg(1));
        b.record_n(Reg(1), 2);
        b.record(Reg(3));
        a.merge(&b);
        assert_eq!(a.count(Reg(1)), 3);
        assert_eq!(a.count(Reg(3)), 1);
    }

    #[test]
    fn empty_histogram_shares_are_zero() {
        let h = RegisterAccessHistogram::new();
        assert_eq!(h.top_share(3), 0.0);
        assert!(h.top_n(3).is_empty());
    }

    #[test]
    fn partition_counts_fractions() {
        let mut p = PartitionAccessCounts::new();
        p.record(RfPartition::FrfHigh, AccessKind::Read);
        p.record(RfPartition::FrfHigh, AccessKind::Write);
        p.record(RfPartition::Srf, AccessKind::Read);
        p.record(RfPartition::Srf, AccessKind::Read);
        assert_eq!(p.total(), 4);
        assert_eq!(p.accesses(RfPartition::FrfHigh), 2);
        assert_eq!(p.reads(RfPartition::Srf), 2);
        assert_eq!(p.writes(RfPartition::Srf), 0);
        assert!((p.fraction(RfPartition::FrfHigh) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sim_result_ipc() {
        let r = SimResult {
            kernel: "k".into(),
            cycles: 100,
            stats: SmStats {
                instructions: 250,
                ..SmStats::new()
            },
            pilot_warp_finish: Some(30),
            per_sm_instructions: vec![250],
            trace: Vec::new(),
            samples: Vec::new(),
            audit: None,
        };
        assert!((r.ipc() - 2.5).abs() < 1e-12);
        assert!((r.pilot_runtime_fraction().unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn div_round_nearest_rounds_half_up() {
        assert_eq!(div_round_nearest(0, 3), 0);
        assert_eq!(div_round_nearest(1, 3), 0);
        assert_eq!(div_round_nearest(2, 3), 1);
        assert_eq!(div_round_nearest(3, 3), 1);
        assert_eq!(div_round_nearest(5, 2), 3);
        assert_eq!(div_round_nearest(7, 1), 7);
    }

    #[test]
    fn div_round_nearest_survives_the_u64_boundary() {
        // Regression: `(x + n / 2) / n` wrapped here and returned ~0.
        assert_eq!(div_round_nearest(u64::MAX, 1), u64::MAX);
        assert_eq!(div_round_nearest(u64::MAX, 2), 1 << 63);
        assert_eq!(div_round_nearest(u64::MAX - 1, 2), (1 << 63) - 1);
        assert_eq!(div_round_nearest(u64::MAX, u64::MAX), 1);
        assert_eq!(div_round_nearest(u64::MAX - 1, u64::MAX), 1);
        assert_eq!(div_round_nearest(u64::MAX / 2, u64::MAX), 0);
        // Half-way cases still round up (away from zero).
        assert_eq!(div_round_nearest(3, 6), 1);
        assert_eq!(div_round_nearest(2, 6), 0);
        // Odd divisors: remainder of (n-1)/2 rounds down, (n+1)/2 up.
        assert_eq!(div_round_nearest(1, 3), 0);
        assert_eq!(div_round_nearest(2, 3), 1);
    }

    #[test]
    fn merge_then_scale_down_of_identical_runs_is_lossless() {
        // Satellite: truncating division used to lose up to n-1 counts per
        // counter when averaging identical seeds.
        let mut one = SmStats::new();
        one.instructions = 101;
        one.active_cycles = 7;
        one.mem_transactions = 13;
        one.reg_accesses.record_n(Reg(3), 999);
        one.partition_accesses
            .record(RfPartition::Srf, AccessKind::Read);
        one.per_warp.entry((0, 1)).or_default().record_n(Reg(2), 55);
        one.record_repair(RepairKind::Spilled);
        one.record_repair(RepairKind::Remapped);
        one.record_repair(RepairKind::Remapped);

        let mut merged = SmStats::new();
        for _ in 0..3 {
            merged.merge(&one);
        }
        merged.scale_down(3);
        assert_eq!(merged.instructions, one.instructions);
        assert_eq!(merged.rf_repairs, one.rf_repairs);
        assert_eq!(merged.total_repairs(), 3);
        assert_eq!(merged.repairs(RepairKind::Remapped), 2);
        assert_eq!(merged.active_cycles, one.active_cycles);
        assert_eq!(merged.mem_transactions, one.mem_transactions);
        assert_eq!(merged.reg_accesses, one.reg_accesses);
        assert_eq!(merged.partition_accesses, one.partition_accesses);
        assert_eq!(
            merged.per_warp[&(0, 1)].count(Reg(2)),
            one.per_warp[&(0, 1)].count(Reg(2))
        );
    }

    #[test]
    fn scale_down_rounds_to_nearest() {
        let mut p = PartitionAccessCounts::new();
        p.record(RfPartition::MrfStv, AccessKind::Read);
        p.record(RfPartition::MrfStv, AccessKind::Read);
        // 2 reads / 3 runs -> rounds to 1, not truncates to 0.
        p.scale_down(3);
        assert_eq!(p.reads(RfPartition::MrfStv), 1);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = SmStats::new();
        a.instructions = 10;
        let mut b = SmStats::new();
        b.instructions = 5;
        b.partition_accesses
            .record(RfPartition::MrfStv, AccessKind::Read);
        b.per_warp.entry((0, 0)).or_default().record(Reg(0));
        a.merge(&b);
        assert_eq!(a.instructions, 15);
        assert_eq!(a.partition_accesses.total(), 1);
        assert_eq!(a.per_warp[&(0, 0)].count(Reg(0)), 1);
    }
}
