//! Execution tracing: a bounded ring of pipeline events for debugging and
//! for driving visualisations.
//!
//! Tracing is off by default (`GpuConfig::trace_capacity == 0`). When
//! enabled, each SM records its last `trace_capacity` events and
//! [`crate::SimResult`] carries them merged, sorted by cycle.
//!
//! The same event stream also feeds the conservation-invariant auditor
//! ([`crate::audit`]) when `GpuConfig::audit` is set: every emission point
//! in the SM pipeline sends its event both to the ring (bounded, for
//! display) and to the auditor (unbounded counters, for end-of-run
//! invariant checks).

use std::fmt;

use prf_isa::Reg;

use crate::rf::{RepairKind, RfPartition};

/// One pipeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A CTA became resident.
    CtaDispatch {
        /// Cycle of the event.
        cycle: u64,
        /// SM index.
        sm: usize,
        /// Flattened CTA id.
        cta: u32,
    },
    /// A warp issued an instruction.
    Issue {
        /// Cycle of the event.
        cycle: u64,
        /// SM index.
        sm: usize,
        /// Warp slot.
        warp: usize,
        /// Program counter of the issued instruction.
        pc: usize,
    },
    /// A warp blocked at a CTA barrier.
    BarrierWait {
        /// Cycle of the event.
        cycle: u64,
        /// SM index.
        sm: usize,
        /// Warp slot.
        warp: usize,
    },
    /// A warp finished execution.
    WarpFinish {
        /// Cycle of the event.
        cycle: u64,
        /// SM index.
        sm: usize,
        /// Warp slot.
        warp: usize,
    },
    /// An instruction finished gathering its operands in a collector unit.
    Collect {
        /// Cycle of the event.
        cycle: u64,
        /// SM index.
        sm: usize,
        /// Warp slot.
        warp: usize,
        /// True when the instruction dispatches to the memory pipeline
        /// (LSU or shared-memory unit) rather than an execution pipe.
        mem: bool,
    },
    /// A register-file read was granted an RF bank port by the arbiter —
    /// the energy-accounting event for reads.
    RfRead {
        /// Cycle of the event.
        cycle: u64,
        /// SM index.
        sm: usize,
        /// Physical partition that serviced the read.
        partition: RfPartition,
    },
    /// A register-file write was granted an RF bank port by the arbiter —
    /// the energy-accounting event for writes.
    RfWrite {
        /// Cycle of the event.
        cycle: u64,
        /// SM index.
        sm: usize,
        /// Physical partition that serviced the write.
        partition: RfPartition,
    },
    /// A granted register-file access landed on a faulty row and was kept
    /// usable by a repair policy — the energy-accounting event for repair
    /// premiums, emitted alongside the access's `RfRead`/`RfWrite`.
    RfRepair {
        /// Cycle of the event.
        cycle: u64,
        /// SM index.
        sm: usize,
        /// How the faulty row was repaired.
        repair: RepairKind,
    },
    /// A destination-register write completed in the register file and the
    /// owning instruction retired.
    Writeback {
        /// Cycle of the event.
        cycle: u64,
        /// SM index.
        sm: usize,
        /// Warp slot.
        warp: usize,
        /// Architected destination register.
        reg: Reg,
    },
    /// The LSU or shared-memory unit completed a warp memory instruction.
    LsuComplete {
        /// Cycle of the event.
        cycle: u64,
        /// SM index.
        sm: usize,
        /// Warp slot.
        warp: usize,
    },
    /// A scoreboard reservation was taken at issue (one event per reserved
    /// destination register or predicate).
    ScoreboardReserve {
        /// Cycle of the event.
        cycle: u64,
        /// SM index.
        sm: usize,
        /// Warp slot.
        warp: usize,
    },
    /// A scoreboard entry was released at result forwarding or retire.
    ScoreboardRelease {
        /// Cycle of the event.
        cycle: u64,
        /// SM index.
        sm: usize,
        /// Warp slot.
        warp: usize,
    },
}

impl TraceEvent {
    /// The cycle the event occurred.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::CtaDispatch { cycle, .. }
            | TraceEvent::Issue { cycle, .. }
            | TraceEvent::BarrierWait { cycle, .. }
            | TraceEvent::WarpFinish { cycle, .. }
            | TraceEvent::Collect { cycle, .. }
            | TraceEvent::RfRead { cycle, .. }
            | TraceEvent::RfWrite { cycle, .. }
            | TraceEvent::RfRepair { cycle, .. }
            | TraceEvent::Writeback { cycle, .. }
            | TraceEvent::LsuComplete { cycle, .. }
            | TraceEvent::ScoreboardReserve { cycle, .. }
            | TraceEvent::ScoreboardRelease { cycle, .. } => *cycle,
        }
    }

    /// The SM the event occurred on.
    pub fn sm(&self) -> usize {
        match self {
            TraceEvent::CtaDispatch { sm, .. }
            | TraceEvent::Issue { sm, .. }
            | TraceEvent::BarrierWait { sm, .. }
            | TraceEvent::WarpFinish { sm, .. }
            | TraceEvent::Collect { sm, .. }
            | TraceEvent::RfRead { sm, .. }
            | TraceEvent::RfWrite { sm, .. }
            | TraceEvent::RfRepair { sm, .. }
            | TraceEvent::Writeback { sm, .. }
            | TraceEvent::LsuComplete { sm, .. }
            | TraceEvent::ScoreboardReserve { sm, .. }
            | TraceEvent::ScoreboardRelease { sm, .. } => *sm,
        }
    }
}

/// Canonical ordering for a merged multi-SM trace: stable-sorts by
/// `(cycle, sm)`, so events keep their intra-SM emission order while the
/// interleaving across SMs becomes deterministic — the same no matter the
/// order the per-SM rings were concatenated in (serial or SM-parallel
/// stepping, any worker assignment).
pub fn normalize_trace(events: &mut [TraceEvent]) {
    events.sort_by_key(|e| (e.cycle(), e.sm()));
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::CtaDispatch { cycle, sm, cta } => {
                write!(f, "[{cycle:>8}] sm{sm} dispatch cta{cta}")
            }
            TraceEvent::Issue {
                cycle,
                sm,
                warp,
                pc,
            } => {
                write!(f, "[{cycle:>8}] sm{sm} w{warp:<2} issue #{pc}")
            }
            TraceEvent::BarrierWait { cycle, sm, warp } => {
                write!(f, "[{cycle:>8}] sm{sm} w{warp:<2} barrier")
            }
            TraceEvent::WarpFinish { cycle, sm, warp } => {
                write!(f, "[{cycle:>8}] sm{sm} w{warp:<2} finish")
            }
            TraceEvent::Collect {
                cycle,
                sm,
                warp,
                mem,
            } => {
                let dest = if *mem { "mem" } else { "exec" };
                write!(f, "[{cycle:>8}] sm{sm} w{warp:<2} collect->{dest}")
            }
            TraceEvent::RfRead {
                cycle,
                sm,
                partition,
            } => {
                write!(f, "[{cycle:>8}] sm{sm} rf-read {partition}")
            }
            TraceEvent::RfWrite {
                cycle,
                sm,
                partition,
            } => {
                write!(f, "[{cycle:>8}] sm{sm} rf-write {partition}")
            }
            TraceEvent::RfRepair { cycle, sm, repair } => {
                write!(f, "[{cycle:>8}] sm{sm} rf-repair {repair}")
            }
            TraceEvent::Writeback {
                cycle,
                sm,
                warp,
                reg,
            } => {
                write!(
                    f,
                    "[{cycle:>8}] sm{sm} w{warp:<2} writeback r{}",
                    reg.index()
                )
            }
            TraceEvent::LsuComplete { cycle, sm, warp } => {
                write!(f, "[{cycle:>8}] sm{sm} w{warp:<2} lsu-complete")
            }
            TraceEvent::ScoreboardReserve { cycle, sm, warp } => {
                write!(f, "[{cycle:>8}] sm{sm} w{warp:<2} sb-reserve")
            }
            TraceEvent::ScoreboardRelease { cycle, sm, warp } => {
                write!(f, "[{cycle:>8}] sm{sm} w{warp:<2} sb-release")
            }
        }
    }
}

/// A bounded ring buffer of trace events (keeps the most recent
/// `capacity`).
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    /// Total events ever recorded (including evicted ones).
    pub recorded: u64,
}

impl TraceRing {
    /// A ring with the given capacity; 0 disables recording.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            events: std::collections::VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            recorded: 0,
        }
    }

    /// True when recording is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one event (drops the oldest at capacity).
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        self.recorded += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Drains the retained events out of the ring.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue(cycle: u64) -> TraceEvent {
        TraceEvent::Issue {
            cycle,
            sm: 0,
            warp: 1,
            pc: 2,
        }
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut r = TraceRing::new(0);
        assert!(!r.enabled());
        r.record(issue(1));
        assert_eq!(r.recorded, 0);
        assert_eq!(r.events().count(), 0);
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut r = TraceRing::new(3);
        for c in 0..5 {
            r.record(issue(c));
        }
        assert_eq!(r.recorded, 5);
        let cycles: Vec<u64> = r.events().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn drain_empties_ring() {
        let mut r = TraceRing::new(4);
        r.record(issue(7));
        let drained = r.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(r.events().count(), 0);
    }

    #[test]
    fn normalize_is_independent_of_merge_order() {
        let ev = |cycle: u64, sm: usize, warp: usize| TraceEvent::Issue {
            cycle,
            sm,
            warp,
            pc: 0,
        };
        // Two per-SM streams; intra-SM order is the emission order and must
        // survive normalisation.
        let sm0 = [ev(1, 0, 0), ev(1, 0, 1), ev(3, 0, 2)];
        let sm1 = [ev(1, 1, 7), ev(2, 1, 8)];

        let mut merged_a: Vec<TraceEvent> = sm0.iter().chain(sm1.iter()).copied().collect();
        let mut merged_b: Vec<TraceEvent> = sm1.iter().chain(sm0.iter()).copied().collect();
        normalize_trace(&mut merged_a);
        normalize_trace(&mut merged_b);
        assert_eq!(merged_a, merged_b);
        // (cycle, sm) blocks, intra-SM order preserved.
        let key: Vec<(u64, usize)> = merged_a.iter().map(|e| (e.cycle(), e.sm())).collect();
        assert_eq!(key, vec![(1, 0), (1, 0), (1, 1), (2, 1), (3, 0)]);
        let warps: Vec<usize> = merged_a
            .iter()
            .map(|e| match e {
                TraceEvent::Issue { warp, .. } => *warp,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(warps, vec![0, 1, 7, 8, 2]);
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent::CtaDispatch {
            cycle: 12,
            sm: 0,
            cta: 3,
        };
        assert!(e.to_string().contains("dispatch cta3"));
        assert!(issue(9).to_string().contains("issue #2"));
        let b = TraceEvent::BarrierWait {
            cycle: 1,
            sm: 0,
            warp: 5,
        };
        assert!(b.to_string().contains("barrier"));
        let w = TraceEvent::WarpFinish {
            cycle: 1,
            sm: 0,
            warp: 5,
        };
        assert!(w.to_string().contains("finish"));
    }

    #[test]
    fn audit_event_cycles_and_formats() {
        let events = [
            TraceEvent::Collect {
                cycle: 3,
                sm: 0,
                warp: 1,
                mem: true,
            },
            TraceEvent::RfRead {
                cycle: 4,
                sm: 0,
                partition: RfPartition::Srf,
            },
            TraceEvent::RfWrite {
                cycle: 5,
                sm: 0,
                partition: RfPartition::FrfHigh,
            },
            TraceEvent::RfRepair {
                cycle: 6,
                sm: 0,
                repair: RepairKind::Spilled,
            },
            TraceEvent::Writeback {
                cycle: 7,
                sm: 0,
                warp: 2,
                reg: Reg(7),
            },
            TraceEvent::LsuComplete {
                cycle: 8,
                sm: 0,
                warp: 2,
            },
            TraceEvent::ScoreboardReserve {
                cycle: 9,
                sm: 0,
                warp: 2,
            },
            TraceEvent::ScoreboardRelease {
                cycle: 10,
                sm: 0,
                warp: 2,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.cycle(), 3 + i as u64);
        }
        assert!(events[0].to_string().contains("collect->mem"));
        assert!(events[1].to_string().contains("rf-read SRF"));
        assert!(events[2].to_string().contains("rf-write FRF_high"));
        assert!(events[3].to_string().contains("rf-repair spilled"));
        assert!(events[4].to_string().contains("writeback r7"));
        assert!(events[5].to_string().contains("lsu-complete"));
        assert!(events[6].to_string().contains("sb-reserve"));
        assert!(events[7].to_string().contains("sb-release"));
    }
}
