//! Execution tracing: a bounded ring of pipeline events for debugging and
//! for driving visualisations.
//!
//! Tracing is off by default (`GpuConfig::trace_capacity == 0`). When
//! enabled, each SM records its last `trace_capacity` events and
//! [`crate::SimResult`] carries them merged, sorted by cycle.

use std::fmt;

/// One pipeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A CTA became resident.
    CtaDispatch {
        /// Cycle of the event.
        cycle: u64,
        /// SM index.
        sm: usize,
        /// Flattened CTA id.
        cta: u32,
    },
    /// A warp issued an instruction.
    Issue {
        /// Cycle of the event.
        cycle: u64,
        /// SM index.
        sm: usize,
        /// Warp slot.
        warp: usize,
        /// Program counter of the issued instruction.
        pc: usize,
    },
    /// A warp blocked at a CTA barrier.
    BarrierWait {
        /// Cycle of the event.
        cycle: u64,
        /// SM index.
        sm: usize,
        /// Warp slot.
        warp: usize,
    },
    /// A warp finished execution.
    WarpFinish {
        /// Cycle of the event.
        cycle: u64,
        /// SM index.
        sm: usize,
        /// Warp slot.
        warp: usize,
    },
}

impl TraceEvent {
    /// The cycle the event occurred.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::CtaDispatch { cycle, .. }
            | TraceEvent::Issue { cycle, .. }
            | TraceEvent::BarrierWait { cycle, .. }
            | TraceEvent::WarpFinish { cycle, .. } => *cycle,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::CtaDispatch { cycle, sm, cta } => {
                write!(f, "[{cycle:>8}] sm{sm} dispatch cta{cta}")
            }
            TraceEvent::Issue {
                cycle,
                sm,
                warp,
                pc,
            } => {
                write!(f, "[{cycle:>8}] sm{sm} w{warp:<2} issue #{pc}")
            }
            TraceEvent::BarrierWait { cycle, sm, warp } => {
                write!(f, "[{cycle:>8}] sm{sm} w{warp:<2} barrier")
            }
            TraceEvent::WarpFinish { cycle, sm, warp } => {
                write!(f, "[{cycle:>8}] sm{sm} w{warp:<2} finish")
            }
        }
    }
}

/// A bounded ring buffer of trace events (keeps the most recent
/// `capacity`).
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    /// Total events ever recorded (including evicted ones).
    pub recorded: u64,
}

impl TraceRing {
    /// A ring with the given capacity; 0 disables recording.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            events: std::collections::VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            recorded: 0,
        }
    }

    /// True when recording is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one event (drops the oldest at capacity).
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        self.recorded += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Drains the retained events out of the ring.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue(cycle: u64) -> TraceEvent {
        TraceEvent::Issue {
            cycle,
            sm: 0,
            warp: 1,
            pc: 2,
        }
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut r = TraceRing::new(0);
        assert!(!r.enabled());
        r.record(issue(1));
        assert_eq!(r.recorded, 0);
        assert_eq!(r.events().count(), 0);
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut r = TraceRing::new(3);
        for c in 0..5 {
            r.record(issue(c));
        }
        assert_eq!(r.recorded, 5);
        let cycles: Vec<u64> = r.events().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn drain_empties_ring() {
        let mut r = TraceRing::new(4);
        r.record(issue(7));
        let drained = r.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(r.events().count(), 0);
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent::CtaDispatch {
            cycle: 12,
            sm: 0,
            cta: 3,
        };
        assert!(e.to_string().contains("dispatch cta3"));
        assert!(issue(9).to_string().contains("issue #2"));
        let b = TraceEvent::BarrierWait {
            cycle: 1,
            sm: 0,
            warp: 5,
        };
        assert!(b.to_string().contains("barrier"));
        let w = TraceEvent::WarpFinish {
            cycle: 1,
            sm: 0,
            warp: 5,
        };
        assert!(w.to_string().contains("finish"));
    }
}
