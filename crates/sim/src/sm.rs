//! The streaming multiprocessor (SM) pipeline.
//!
//! Per cycle, in order: (1) retire completed loads/stores and execution
//! results, (2) advance the operand collectors and bank arbiter, (3) let
//! each warp scheduler issue up to its width, executing issued instructions
//! functionally and allocating collector entries for their register
//! operands, (4) drive the register-file model's per-cycle hook (the
//! adaptive-FRF epoch detector counts issued instructions here).

use std::collections::HashMap;
use std::sync::Arc;

use prf_isa::{CtaId, GridConfig, Kernel, PredReg, ReconvergenceTable, Reg};

use crate::audit::{AuditReport, Auditor};
use crate::collector::{CollectDest, CollectedInstr, CompletedWrite, OperandCollector};
use crate::config::GpuConfig;
use crate::exec::{execute_warp_instruction_into, ExecEnv, ExecOutcome};
use crate::mem::{GlobalMemory, GmemView, L1Cache, LoadStoreUnit, SharedMemory};
use crate::rf::{AccessKind, RegisterFileModel, ResolvedAccess, WarpLifecycle};
use crate::sampling::{SampleSeries, SmSampler};
use crate::scheduler::{build_scheduler, SchedulerEvent, WarpScheduler, WarpView};
use crate::scoreboard::Scoreboard;
use crate::stats::SmStats;
use crate::trace::{TraceEvent, TraceRing};
use crate::warp::{WarpBlock, WarpContext};

/// Everything the SM needs to know about the running kernel.
///
/// The kernel is held behind an [`Arc`] so a launch never deep-copies the
/// instruction stream: all SMs of a run — and all concurrent runs of a
/// parallel experiment matrix — share one immutable image.
#[derive(Debug)]
pub struct KernelImage {
    /// The kernel itself.
    pub kernel: Arc<Kernel>,
    /// IPDOM reconvergence table.
    pub rt: ReconvergenceTable,
    /// Launch geometry.
    pub grid: GridConfig,
}

impl KernelImage {
    /// Prepares a kernel for execution (computes the reconvergence table).
    /// Accepts an owned [`Kernel`] or an existing `Arc<Kernel>`.
    pub fn new(kernel: impl Into<Arc<Kernel>>, grid: GridConfig) -> Self {
        let kernel = kernel.into();
        let rt = ReconvergenceTable::compute(&kernel);
        KernelImage { kernel, rt, grid }
    }

    fn env(&self) -> ExecEnv {
        ExecEnv {
            threads_per_cta: self.grid.threads_per_cta,
            num_ctas: self.grid.num_ctas,
        }
    }
}

#[derive(Debug)]
struct CtaState {
    warp_slots: Vec<usize>,
}

#[derive(Debug)]
struct InflightInstr {
    warp_slot: usize,
    dst_reg: Option<Reg>,
    pred_dst: Option<PredReg>,
    is_load: bool,
    global_addrs: Vec<u32>,
    shared_access: bool,
}

/// One streaming multiprocessor.
pub struct Sm {
    /// SM index (0-based).
    pub id: usize,
    config: GpuConfig,
    image: Arc<KernelImage>,
    warps: Vec<Option<WarpContext>>,
    scoreboards: Vec<Scoreboard>,
    pending_loads: Vec<u32>,
    schedulers: Vec<Box<dyn WarpScheduler>>,
    collector: OperandCollector,
    lsu: LoadStoreUnit,
    shared_unit: LoadStoreUnit,
    l1: L1Cache,
    rf: Box<dyn RegisterFileModel>,
    cta_slots: Vec<Option<CtaState>>,
    shared_mem: Vec<SharedMemory>,
    inflight: HashMap<u64, InflightInstr>,
    next_token: u64,
    exec_completions: Vec<(u64, u64)>, // (cycle, token)
    /// Statistics for this SM.
    pub stats: SmStats,
    /// (cta, warp_in_cta, finish_cycle) of finished warps, drained by the GPU.
    pub finished_warps: Vec<(u32, u32, u64)>,
    sched_events: Vec<SchedulerEvent>,
    next_dispatch_allowed: u64,
    /// Pipeline-event trace ring (enabled via `GpuConfig::trace_capacity`).
    pub trace: TraceRing,
    /// Conservation-invariant auditor (enabled via `GpuConfig::audit`);
    /// consumed by [`Sm::finish_audit`].
    audit: Option<Auditor>,
    /// Windowed time-series sampler (enabled via `GpuConfig::sampling`);
    /// consumed by [`Sm::finish_sampling`].
    sampler: Option<SmSampler>,
    /// The closed series, parked between [`Sm::finish_sampling`] and
    /// [`Sm::take_samples`] so [`Sm::finish_audit`] can cross-check it.
    samples: Option<SampleSeries>,
    // Reusable per-cycle scratch buffers (allocation-free hot path): each
    // is taken out of `self` for the duration of one phase and put back,
    // so steady-state cycles perform no heap allocation.
    mem_done_scratch: Vec<u64>,
    due_scratch: Vec<u64>,
    collected_scratch: Vec<CollectedInstr>,
    writes_done_scratch: Vec<CompletedWrite>,
    segs_scratch: Vec<u32>,
    views_scratch: Vec<WarpView>,
    order_scratch: Vec<usize>,
    reads_scratch: Vec<Reg>,
    resolved_scratch: Vec<ResolvedAccess>,
    /// Recycled address buffers for [`ExecOutcome::with_buffer`]; in-flight
    /// memory instructions return theirs on retire.
    addr_pool: Vec<Vec<u32>>,
    /// Retired warp contexts kept for reuse: dispatching a warp reinits a
    /// pooled context instead of allocating ~`WARP_SIZE` register vectors.
    /// Pool contents never affect results ([`WarpContext::reinit`]).
    warp_pool: Vec<WarpContext>,
    /// Scratch for the free-slot scan in [`Sm::try_dispatch_cta`].
    dispatch_slots_scratch: Vec<usize>,
    /// Global-memory writes staged by this SM during the current cycle,
    /// applied by [`Sm::commit_global_writes`] in SM-id order (two-phase
    /// execute/commit, identical under serial and SM-parallel stepping).
    global_writes: Vec<(u32, u32)>,
}

impl std::fmt::Debug for Sm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sm")
            .field("id", &self.id)
            .field(
                "resident_warps",
                &self.warps.iter().filter(|w| w.is_some()).count(),
            )
            .finish_non_exhaustive()
    }
}

impl Sm {
    /// Creates an SM running `image` with the given register-file model.
    pub fn new(
        id: usize,
        config: &GpuConfig,
        image: Arc<KernelImage>,
        rf: Box<dyn RegisterFileModel>,
    ) -> Self {
        let schedulers = (0..config.num_schedulers)
            .map(|_| build_scheduler(config.scheduler))
            .collect();
        Sm {
            id,
            config: config.clone(),
            warps: (0..config.max_warps_per_sm).map(|_| None).collect(),
            scoreboards: (0..config.max_warps_per_sm)
                .map(|_| Scoreboard::new())
                .collect(),
            pending_loads: vec![0; config.max_warps_per_sm],
            schedulers,
            collector: OperandCollector::new(
                config.num_collectors,
                config.num_rf_banks,
                config.rf_pipelined,
            ),
            lsu: LoadStoreUnit::new(),
            shared_unit: LoadStoreUnit::new(),
            l1: L1Cache::new(config.l1_lines),
            rf,
            cta_slots: (0..config.max_ctas_per_sm).map(|_| None).collect(),
            shared_mem: (0..config.max_ctas_per_sm)
                .map(|_| SharedMemory::new(config.shared_mem_words))
                .collect(),
            inflight: HashMap::new(),
            next_token: 0,
            exec_completions: Vec::new(),
            stats: SmStats::new(),
            finished_warps: Vec::new(),
            sched_events: Vec::new(),
            next_dispatch_allowed: 0,
            trace: TraceRing::new(config.trace_capacity),
            audit: config
                .audit
                .then(|| Auditor::new(id, config.max_warps_per_sm)),
            sampler: config.sampling.map(SmSampler::new),
            samples: None,
            mem_done_scratch: Vec::new(),
            due_scratch: Vec::new(),
            collected_scratch: Vec::new(),
            writes_done_scratch: Vec::new(),
            segs_scratch: Vec::new(),
            views_scratch: Vec::new(),
            order_scratch: Vec::new(),
            reads_scratch: Vec::new(),
            resolved_scratch: Vec::new(),
            addr_pool: Vec::new(),
            warp_pool: Vec::new(),
            dispatch_slots_scratch: Vec::new(),
            global_writes: Vec::new(),
            image,
        }
    }

    /// Records one pipeline event into the trace ring and, when auditing,
    /// into the auditor's counters. Both sinks see the same stream.
    fn emit(&mut self, ev: TraceEvent) {
        if let Some(a) = self.audit.as_mut() {
            a.observe(&ev);
        }
        self.trace.record(ev);
    }

    /// True when at least one event sink (trace ring or auditor) is live —
    /// the guard for event construction on the hot issue path.
    fn observing(&self) -> bool {
        self.trace.enabled() || self.audit.is_some()
    }

    /// Closes the time-series sampler (flushing the partial final window);
    /// call once after the run, *before* [`Sm::finish_audit`] so the audit
    /// can cross-check the series. No-op without `GpuConfig::sampling`.
    pub fn finish_sampling(&mut self) {
        if let Some(sampler) = self.sampler.take() {
            self.samples = Some(sampler.finish(self.id, &self.stats, self.resident_warps()));
        }
    }

    /// Takes the closed sampled series out of the SM (drained into
    /// [`crate::SimResult`] by the GPU driver).
    pub fn take_samples(&mut self) -> Option<SampleSeries> {
        self.samples.take()
    }

    /// Finalises the auditor against this SM's statistics; `None` unless
    /// `GpuConfig::audit` was set. Call once, after the run completes (and
    /// after [`Sm::finish_sampling`], whose series is audited here too).
    pub fn finish_audit(&mut self, final_cycle: u64) -> Option<AuditReport> {
        let auditor = self.audit.take()?;
        let mut report = auditor.finish(&self.stats, self.rf.rfc_evictions(), final_cycle);
        if let Some(series) = &self.samples {
            crate::sampling::check_series_conservation(
                &mut report,
                series,
                &self.stats,
                final_cycle,
                self.id,
            );
        }
        Some(report)
    }

    /// Notifies the register-file model that a new kernel begins.
    pub fn notify_kernel_launch(&mut self, cycle: u64) {
        self.rf.on_kernel_launch(&self.image.kernel, cycle);
    }

    /// Number of CTAs currently resident.
    pub fn resident_ctas(&self) -> usize {
        self.cta_slots.iter().filter(|c| c.is_some()).count()
    }

    /// Number of warps currently resident.
    pub fn resident_warps(&self) -> usize {
        self.warps.iter().filter(|w| w.is_some()).count()
    }

    /// True when no warp is resident and no instruction is in flight.
    pub fn is_idle(&self) -> bool {
        self.resident_warps() == 0
            && self.inflight.is_empty()
            && self.collector.is_idle()
            && self.lsu.is_idle()
            && self.shared_unit.is_idle()
    }

    /// Tries to make `cta` resident; returns `false` when out of CTA slots,
    /// warp slots, register capacity, or still within the dispatch
    /// interval after the previous CTA launch.
    pub fn try_dispatch_cta(&mut self, cta: CtaId, cycle: u64) -> bool {
        let grid = &self.image.grid;
        let regs = self.image.kernel.regs_per_thread().max(1) as usize;
        let warps_needed = grid.warps_per_cta() as usize;

        if cycle < self.next_dispatch_allowed {
            return false;
        }
        if self.resident_ctas() >= self.config.max_ctas_per_sm {
            return false;
        }
        // Register-capacity limit.
        let regs_in_use: usize = self.warps.iter().flatten().count() * 32 * regs;
        if regs_in_use + warps_needed * 32 * regs > self.config.rf_registers {
            return false;
        }
        let mut free_slots = std::mem::take(&mut self.dispatch_slots_scratch);
        free_slots.clear();
        free_slots.extend(
            (0..self.warps.len())
                .filter(|&i| self.warps[i].is_none())
                .take(warps_needed),
        );
        if free_slots.len() < warps_needed {
            self.dispatch_slots_scratch = free_slots;
            return false;
        }
        let Some(cta_slot) = self.cta_slots.iter().position(|c| c.is_none()) else {
            self.dispatch_slots_scratch = free_slots;
            return false;
        };

        for (w, &slot) in free_slots.iter().enumerate() {
            let mask = grid.active_mask(w as u32);
            let warp = match self.warp_pool.pop() {
                Some(mut ctx) => {
                    ctx.reinit(slot, cta_slot, cta, w as u32, mask, regs, cycle);
                    ctx
                }
                None => WarpContext::new(slot, cta_slot, cta, w as u32, mask, regs, cycle),
            };
            self.scoreboards[slot] = Scoreboard::new();
            self.pending_loads[slot] = 0;
            let nsched = self.schedulers.len();
            self.schedulers[slot % nsched].on_warp_start(slot);
            self.rf.on_warp_start(
                WarpLifecycle {
                    slot,
                    cta: cta.0,
                    warp_in_cta: w as u32,
                },
                cycle,
            );
            self.warps[slot] = Some(warp);
        }
        self.cta_slots[cta_slot] = Some(CtaState {
            warp_slots: free_slots,
        });
        // Fresh shared memory for the CTA (zeroed in place).
        self.shared_mem[cta_slot].reset(self.config.shared_mem_words);
        self.next_dispatch_allowed = cycle + self.config.cta_dispatch_interval;
        self.emit(TraceEvent::CtaDispatch {
            cycle,
            sm: self.id,
            cta: cta.0,
        });
        true
    }

    fn alloc_token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn retire(&mut self, token: u64, cycle: u64) {
        let Some(info) = self.inflight.remove(&token) else {
            return;
        };
        if let Some(p) = info.pred_dst {
            self.scoreboards[info.warp_slot].release_pred(p);
            if self.observing() {
                self.emit(TraceEvent::ScoreboardRelease {
                    cycle,
                    sm: self.id,
                    warp: info.warp_slot,
                });
            }
        }
        if info.is_load {
            self.pending_loads[info.warp_slot] =
                self.pending_loads[info.warp_slot].saturating_sub(1);
        }
        if let Some(w) = self.warps[info.warp_slot].as_mut() {
            w.inflight = w.inflight.saturating_sub(1);
        }
        let mut buf = info.global_addrs;
        buf.clear();
        self.addr_pool.push(buf);
        self.maybe_finish_warp(info.warp_slot, cycle);
    }

    fn maybe_finish_warp(&mut self, slot: usize, cycle: u64) {
        let done = match self.warps[slot].as_ref() {
            Some(w) => w.exited() && w.inflight == 0,
            None => false,
        };
        if !done {
            return;
        }
        let w = self.warps[slot].take().expect("checked above");
        if let Some(a) = self.audit.as_mut() {
            // A finished warp must hold no scoreboard reservations; a
            // pending bit here means a lost release somewhere upstream.
            let pending = self.scoreboards[slot].pending_count();
            if pending != 0 {
                a.note_unclear_scoreboard(slot, pending, cycle);
            }
        }
        self.emit(TraceEvent::WarpFinish {
            cycle,
            sm: self.id,
            warp: slot,
        });
        let nsched = self.schedulers.len();
        self.schedulers[slot % nsched].on_warp_finish(slot);
        self.rf.on_warp_finish(
            WarpLifecycle {
                slot,
                cta: w.cta.0,
                warp_in_cta: w.warp_in_cta,
            },
            cycle,
        );
        self.finished_warps.push((w.cta.0, w.warp_in_cta, cycle));
        // CTA completion check.
        let cta_slot = w.cta_slot;
        self.warp_pool.push(w);
        let cta_done = self.cta_slots[cta_slot]
            .as_ref()
            .is_some_and(|c| c.warp_slots.iter().all(|&s| self.warps[s].is_none()));
        if cta_done {
            self.cta_slots[cta_slot] = None;
        }
    }

    /// Seeds the warp-context pool with recycled contexts from an earlier
    /// run (see [`crate::Gpu`]'s cross-launch pool). Purely an allocation
    /// optimisation; never changes results.
    pub fn donate_warp_contexts(&mut self, pool: &mut Vec<WarpContext>) {
        self.warp_pool.append(pool);
    }

    /// Returns the pooled warp contexts so a later run can reuse them.
    pub fn reclaim_warp_contexts(&mut self) -> Vec<WarpContext> {
        std::mem::take(&mut self.warp_pool)
    }

    fn release_barriers(&mut self) {
        for cta_slot in 0..self.cta_slots.len() {
            let Some(c) = self.cta_slots[cta_slot].as_ref() else {
                continue;
            };
            let mut waiting = 0usize;
            let mut live = 0usize;
            for &s in &c.warp_slots {
                if let Some(w) = self.warps[s].as_ref() {
                    if !w.exited() {
                        live += 1;
                        if w.block == WarpBlock::Barrier {
                            waiting += 1;
                        }
                    }
                }
            }
            if live > 0 && waiting == live {
                // Borrow dance: take the slot list so releasing warps does
                // not alias the CTA entry (and does not clone the list).
                let slots = std::mem::take(
                    &mut self.cta_slots[cta_slot]
                        .as_mut()
                        .expect("checked above")
                        .warp_slots,
                );
                for &s in &slots {
                    if let Some(w) = self.warps[s].as_mut() {
                        if w.block == WarpBlock::Barrier {
                            w.block = WarpBlock::None;
                        }
                    }
                }
                self.cta_slots[cta_slot]
                    .as_mut()
                    .expect("still resident")
                    .warp_slots = slots;
            }
        }
    }

    fn warp_views_into(&self, sched: usize, views: &mut Vec<WarpView>) {
        views.clear();
        for slot in (sched..self.warps.len()).step_by(self.schedulers.len()) {
            if let Some(w) = self.warps[slot].as_ref() {
                if w.exited() {
                    continue;
                }
                // "Long latency pending" = the warp's next instruction is
                // blocked by the scoreboard while it has loads outstanding —
                // the two-level scheduler's demotion trigger.
                let long = self.pending_loads[slot] > 0 && {
                    match w.stack.pc() {
                        Some(pc) => self.scoreboards[slot].blocked(self.image.kernel.fetch(pc)),
                        None => false,
                    }
                };
                views.push(WarpView {
                    slot,
                    dispatch_cycle: w.dispatch_cycle,
                    resident: true,
                    long_latency_pending: long,
                    barrier_waiting: w.block == WarpBlock::Barrier,
                });
            }
        }
    }

    /// Returns true when the warp at `slot` can issue its next instruction.
    fn can_issue(&self, slot: usize) -> bool {
        let Some(w) = self.warps[slot].as_ref() else {
            return false;
        };
        if w.exited() || w.block != WarpBlock::None {
            return false;
        }
        let Some(pc) = w.stack.pc() else { return false };
        let instr = self.image.kernel.fetch(pc);
        if self.scoreboards[slot].blocked(instr) {
            return false;
        }
        // Needs a collector unit unless it touches no registers at all.
        let needs_collector = instr.num_reg_src_operands() > 0 || instr.reg_write().is_some();
        if needs_collector && !self.collector.has_free_unit() {
            return false;
        }
        true
    }

    /// Issues the next instruction of warp `slot`. Caller must have checked
    /// [`Sm::can_issue`].
    fn issue(&mut self, slot: usize, cycle: u64, global: &mut GmemView<'_>) {
        let image = Arc::clone(&self.image);
        let w = self.warps[slot]
            .as_mut()
            .expect("can_issue checked residency");
        let pc = w.stack.pc().expect("can_issue checked pc");
        let instr = image.kernel.fetch(pc).clone();
        let env = image.env();

        // Functional execution (updates pc / SIMT stack / registers /
        // predicates / memory).
        let cta_slot = w.cta_slot;
        let trace_pc = pc;
        let mut outcome = ExecOutcome::with_buffer(self.addr_pool.pop().unwrap_or_default());
        execute_warp_instruction_into(
            w,
            &instr,
            &image.rt,
            &env,
            global,
            &mut self.shared_mem[cta_slot],
            &mut outcome,
        );
        if outcome.hit_barrier {
            w.block = WarpBlock::Barrier;
        }
        let cta = w.cta.0;
        let warp_in_cta = w.warp_in_cta;
        self.stats.active_lane_sum += u64::from(outcome.active_lanes);
        if let Some(diverged) = outcome.branch {
            self.stats.total_branches += 1;
            if diverged {
                self.stats.divergent_branches += 1;
            }
        }
        if self.observing() {
            self.emit(TraceEvent::Issue {
                cycle,
                sm: self.id,
                warp: slot,
                pc: trace_pc,
            });
            if outcome.hit_barrier {
                self.emit(TraceEvent::BarrierWait {
                    cycle,
                    sm: self.id,
                    warp: slot,
                });
            }
        }

        // Register-file bookkeeping. Reads are resolved here, exactly once
        // per access (stateful models depend on this).
        let mut reads = std::mem::take(&mut self.reads_scratch);
        reads.clear();
        reads.extend(instr.reg_reads());
        let dst_reg = instr.reg_write();
        let mut resolved_reads = std::mem::take(&mut self.resolved_scratch);
        resolved_reads.clear();
        for &r in &reads {
            self.rf.observe_access(slot, r, AccessKind::Read, cycle);
            resolved_reads.push(self.rf.resolve(slot, r, AccessKind::Read, cycle));
            self.stats.reg_accesses.record(r);
        }
        if let Some(r) = dst_reg {
            self.rf.observe_access(slot, r, AccessKind::Write, cycle);
            self.stats.reg_accesses.record(r);
        }
        if self.config.per_warp_stats {
            let h = self.stats.per_warp.entry((cta, warp_in_cta)).or_default();
            for &r in &reads {
                h.record(r);
            }
            if let Some(r) = dst_reg {
                h.record(r);
            }
        }

        let pred_dst = match instr.dst {
            prf_isa::Dst::Pred(p) => Some(p),
            _ => None,
        };
        let needs_collector = !reads.is_empty() || dst_reg.is_some();

        if needs_collector {
            self.scoreboards[slot].reserve(&instr);
            if (dst_reg.is_some() || pred_dst.is_some()) && self.observing() {
                // `reserve` set exactly one pending bit (Dst is exclusive).
                self.emit(TraceEvent::ScoreboardReserve {
                    cycle,
                    sm: self.id,
                    warp: slot,
                });
            }
            let token = self.alloc_token();
            let is_load = instr.opcode.is_load();
            if is_load {
                self.pending_loads[slot] += 1;
            }
            let dest = if instr.opcode.exec_class() == prf_isa::ExecClass::Mem {
                CollectDest::Memory
            } else {
                let latency = match instr.opcode.exec_class() {
                    prf_isa::ExecClass::Fp => self.config.fp_latency,
                    prf_isa::ExecClass::Sfu => self.config.sfu_latency,
                    _ => self.config.alu_latency,
                };
                CollectDest::Execute {
                    latency,
                    writeback: dst_reg,
                }
            };
            let ok = self.collector.allocate(slot, &resolved_reads, dest, token);
            debug_assert!(ok, "can_issue checked for a free unit");
            if let Some(a) = self.audit.as_mut() {
                a.note_collector_alloc();
            }
            self.inflight.insert(
                token,
                InflightInstr {
                    warp_slot: slot,
                    dst_reg,
                    pred_dst,
                    is_load,
                    global_addrs: outcome.global_addrs,
                    shared_access: outcome.shared_access,
                },
            );
            if let Some(w) = self.warps[slot].as_mut() {
                w.inflight += 1;
            }
        } else {
            // Control instructions (Bra/Exit/Bar/Nop) retire at issue;
            // their address buffer goes straight back to the pool.
            let mut buf = outcome.global_addrs;
            buf.clear();
            self.addr_pool.push(buf);
        }
        self.reads_scratch = reads;
        self.resolved_scratch = resolved_reads;

        self.stats.instructions += 1;
        self.maybe_finish_warp(slot, cycle);
    }

    /// Advances the SM by one cycle. Returns the number of instructions
    /// issued.
    ///
    /// Global-memory writes are *staged*, not applied: the driver must call
    /// [`Sm::commit_global_writes`] (in ascending SM order) after every SM
    /// of the cycle has stepped. Reads through the [`GmemView`] still see
    /// this SM's own same-cycle stores, in program order.
    pub fn cycle(&mut self, cycle: u64, global: &GlobalMemory) -> u32 {
        if self.resident_warps() > 0 {
            self.stats.active_cycles += 1;
        }

        // 1. LSU + shared-memory-unit completions -> writeback (loads) or
        // retire (stores).
        let mut mem_done = std::mem::take(&mut self.mem_done_scratch);
        mem_done.clear();
        self.lsu.tick_into(cycle, &mut mem_done);
        self.shared_unit.tick_into(cycle, &mut mem_done);
        for &token in &mem_done {
            let (slot, dst) = match self.inflight.get(&token) {
                Some(i) => (i.warp_slot, i.dst_reg),
                None => continue,
            };
            if self.observing() {
                self.emit(TraceEvent::LsuComplete {
                    cycle,
                    sm: self.id,
                    warp: slot,
                });
            }
            match dst {
                Some(reg) => {
                    // Result forwarding: dependents see the value as soon
                    // as it returns; the RF write itself is overlapped.
                    self.scoreboards[slot].release_reg(reg);
                    if self.observing() {
                        self.emit(TraceEvent::ScoreboardRelease {
                            cycle,
                            sm: self.id,
                            warp: slot,
                        });
                    }
                    let access = self.rf.resolve(slot, reg, AccessKind::Write, cycle);
                    self.collector.request_writeback(slot, reg, access, token);
                }
                None => self.retire(token, cycle),
            }
        }
        self.mem_done_scratch = mem_done;

        // 2. Execution-pipe completions -> writeback or retire.
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        self.exec_completions.retain(|&(at, token)| {
            if at <= cycle {
                due.push(token);
                false
            } else {
                true
            }
        });
        for &token in &due {
            let (slot, dst) = match self.inflight.get(&token) {
                Some(i) => (i.warp_slot, i.dst_reg),
                None => continue,
            };
            match dst {
                Some(reg) => {
                    // Result forwarding (as above).
                    self.scoreboards[slot].release_reg(reg);
                    if self.observing() {
                        self.emit(TraceEvent::ScoreboardRelease {
                            cycle,
                            sm: self.id,
                            warp: slot,
                        });
                    }
                    let access = self.rf.resolve(slot, reg, AccessKind::Write, cycle);
                    self.collector.request_writeback(slot, reg, access, token);
                }
                None => self.retire(token, cycle),
            }
        }
        self.due_scratch = due;

        // 3. Operand collectors + bank arbiter. The RF-port callback feeds
        // the stats counters and (disjoint borrows) the event sinks, so the
        // audit's independent copy sees exactly the granted accesses —
        // including the repair premium of accesses that landed on faulty
        // rows.
        let stats_pa = &mut self.stats.partition_accesses;
        let stats_repairs = &mut self.stats.rf_repairs;
        let trace = &mut self.trace;
        let mut audit = self.audit.as_mut();
        let sm_id = self.id;
        let observing = trace.enabled() || audit.is_some();
        let mut collected = std::mem::take(&mut self.collected_scratch);
        let mut completed_writes = std::mem::take(&mut self.writes_done_scratch);
        let collector = &mut self.collector;
        collector.tick_into(
            cycle,
            |access, k| {
                stats_pa.record(access.partition, k);
                if let Some(repair) = access.repair {
                    stats_repairs[repair.index()] += 1;
                }
                if observing {
                    let ev = match k {
                        AccessKind::Read => TraceEvent::RfRead {
                            cycle,
                            sm: sm_id,
                            partition: access.partition,
                        },
                        AccessKind::Write => TraceEvent::RfWrite {
                            cycle,
                            sm: sm_id,
                            partition: access.partition,
                        },
                    };
                    if let Some(a) = audit.as_deref_mut() {
                        a.observe(&ev);
                    }
                    trace.record(ev);
                    if let Some(repair) = access.repair {
                        let rev = TraceEvent::RfRepair {
                            cycle,
                            sm: sm_id,
                            repair,
                        };
                        if let Some(a) = audit.as_deref_mut() {
                            a.observe(&rev);
                        }
                        trace.record(rev);
                    }
                }
            },
            &mut collected,
            &mut completed_writes,
        );
        for c in collected.drain(..) {
            if self.observing() {
                self.emit(TraceEvent::Collect {
                    cycle,
                    sm: self.id,
                    warp: c.warp_slot,
                    mem: matches!(c.dest, CollectDest::Memory),
                });
            }
            match c.dest {
                CollectDest::Execute { latency, writeback } => {
                    if writeback.is_some() || self.inflight.contains_key(&c.token) {
                        self.exec_completions
                            .push((cycle + u64::from(latency), c.token));
                    }
                }
                CollectDest::Memory => {
                    let info = self.inflight.get(&c.token).expect("mem op is in flight");
                    if info.shared_access {
                        // Shared memory has its own pipeline, separate from
                        // the global-memory LSU (as on real SMs).
                        self.shared_unit
                            .submit(c.token, self.config.shared_mem_latency, 1);
                        continue;
                    }
                    let (latency, transactions) = {
                        let mut segs = std::mem::take(&mut self.segs_scratch);
                        LoadStoreUnit::coalesce_into(&info.global_addrs, &mut segs);
                        let txns = (segs.len() as u32).max(1);
                        let mut any_miss = false;
                        for &s in &segs {
                            if !self.l1.access(s * crate::mem::LINE_WORDS) {
                                any_miss = true;
                            }
                        }
                        self.segs_scratch = segs;
                        let lat = if any_miss {
                            self.config.l1_miss_latency
                        } else {
                            self.config.l1_hit_latency
                        };
                        (lat, txns)
                    };
                    self.lsu.submit(c.token, latency, transactions);
                }
            }
        }
        for &wdone in &completed_writes {
            // Scoreboard was already released at result forwarding; the
            // completed write just retires the instruction.
            if self.observing() {
                self.emit(TraceEvent::Writeback {
                    cycle,
                    sm: self.id,
                    warp: wdone.warp_slot,
                    reg: wdone.reg,
                });
            }
            self.retire(wdone.token, cycle);
        }
        self.collected_scratch = collected;
        self.writes_done_scratch = completed_writes;
        self.stats.bank_conflict_waits = self.collector.bank_conflict_waits;
        self.stats.l1_hits = self.l1.hits;
        self.stats.l1_misses = self.l1.misses;
        self.stats.mem_transactions = self.lsu.transactions;
        self.stats.mem_instructions = self.lsu.instructions + self.shared_unit.instructions;

        // 4. Barrier release.
        self.release_barriers();

        // 5. Issue. Global writes are staged into `global_writes` through a
        // GmemView; the driver commits them in SM-id order after all SMs
        // have stepped this cycle.
        let mut issued_total = 0u32;
        let mut views = std::mem::take(&mut self.views_scratch);
        let mut order = std::mem::take(&mut self.order_scratch);
        let mut staged = std::mem::take(&mut self.global_writes);
        let mut gmem = GmemView::new(global, &mut staged);
        for sched in 0..self.schedulers.len() {
            self.warp_views_into(sched, &mut views);
            order.clear();
            self.schedulers[sched].prioritize(&views, cycle, &mut order);
            let mut issued = 0usize;
            for &slot in &order {
                if issued >= self.config.issue_per_scheduler {
                    break;
                }
                // Deterministic issue jitter: skip this warp this cycle
                // with probability 1/issue_jitter (see GpuConfig).
                if self.config.issue_jitter > 0 {
                    let h = cycle
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((slot as u64) << 32)
                        .wrapping_add(self.id as u64)
                        .wrapping_add(self.config.jitter_seed.wrapping_mul(0xD6E8_FEB8_6659_FD93))
                        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    if (h >> 33).is_multiple_of(u64::from(self.config.issue_jitter)) {
                        continue;
                    }
                }
                // GTO greediness: a warp may issue both slots of its
                // scheduler in one cycle if it stays ready.
                while issued < self.config.issue_per_scheduler && self.can_issue(slot) {
                    self.issue(slot, cycle, &mut gmem);
                    self.schedulers[sched].on_issue(slot, cycle);
                    issued += 1;
                }
                if issued > 0 && !self.collector.has_free_unit() {
                    self.stats.collector_stalls += 1;
                    break;
                }
            }
            issued_total += issued as u32;
            // Export scheduler pool demotions to the RF model (RFC flush).
            self.schedulers[sched].drain_events(&mut self.sched_events);
        }
        self.global_writes = staged;
        self.views_scratch = views;
        self.order_scratch = order;
        for ev in self.sched_events.drain(..) {
            match ev {
                SchedulerEvent::Deactivated { slot } => {
                    self.rf.on_warp_deactivated(slot, cycle);
                }
            }
        }

        if issued_total > 0 {
            self.stats.issue_cycles += 1;
        } else if self.resident_warps() > 0 {
            self.classify_zero_issue_stall();
        }

        // 6. RF model per-cycle hook (adaptive FRF epoch counting).
        self.rf.tick(cycle, issued_total);

        // 7. Time-series sampling (window close is amortised; off = one
        // branch). Runs after the RF tick so the FRF-mode gauge reflects
        // this cycle's epoch decision.
        if let Some(sampler) = self.sampler.as_mut() {
            let active_warps = self.warps.iter().filter(|w| w.is_some()).count();
            sampler.on_cycle(cycle, &self.stats, active_warps, self.rf.frf_low_mode());
        }

        issued_total
    }

    /// Classifies a zero-issue cycle with resident warps by its dominant
    /// blocker. Shared by [`Sm::cycle`] and [`Sm::idle_advance`] so skipped
    /// idle spans account stalls identically to stepped ones.
    fn classify_zero_issue_stall(&mut self) {
        let (mut mem, mut barrier, mut coll, mut alu) = (0u32, 0u32, 0u32, 0u32);
        for slot in 0..self.warps.len() {
            let Some(w) = self.warps[slot].as_ref() else {
                continue;
            };
            if w.exited() {
                continue;
            }
            if w.block == WarpBlock::Barrier {
                barrier += 1;
                continue;
            }
            let Some(pc) = w.stack.pc() else { continue };
            let instr = self.image.kernel.fetch(pc);
            if self.scoreboards[slot].blocked(instr) {
                if self.pending_loads[slot] > 0 {
                    mem += 1;
                } else {
                    alu += 1;
                }
            } else {
                coll += 1; // ready but starved (collector / width)
            }
        }
        let max = mem.max(barrier).max(coll).max(alu);
        if max > 0 {
            if max == mem {
                self.stats.stall_mem += 1;
            } else if max == barrier {
                self.stats.stall_barrier += 1;
            } else if max == alu {
                self.stats.stall_alu_dep += 1;
            } else {
                self.stats.stall_collector += 1;
            }
        }
    }

    /// Applies the global-memory writes staged during [`Sm::cycle`]. The
    /// driver calls this once per stepped cycle, in ascending SM order, so
    /// serial and SM-parallel schedules commit identical memory states.
    pub fn commit_global_writes(&mut self, global: &mut GlobalMemory) {
        for (addr, value) in self.global_writes.drain(..) {
            global.write(addr, value);
        }
    }

    /// Replays the per-cycle bookkeeping of a provably idle cycle — one
    /// where [`Sm::next_event`] guarantees no unit, scoreboard, barrier, or
    /// issue slot can make progress — without running the heavy pipeline
    /// phases. Mirrors [`Sm::cycle`] for every counter that advances on a
    /// stalled cycle (active cycles, stall classification, the RF model's
    /// per-cycle hook, sampling), so a skip-ahead run is bit-identical to a
    /// stepped one.
    pub fn idle_advance(&mut self, cycle: u64) {
        if self.resident_warps() > 0 {
            self.stats.active_cycles += 1;
            self.classify_zero_issue_stall();
        }
        self.rf.tick(cycle, 0);
        if let Some(sampler) = self.sampler.as_mut() {
            let active_warps = self.warps.iter().filter(|w| w.is_some()).count();
            sampler.on_cycle(cycle, &self.stats, active_warps, self.rf.frf_low_mode());
        }
    }

    /// The next cycle, strictly after `cycle`, at which stepping this SM
    /// could have an observable effect: a warp can issue, a fully arrived
    /// barrier releases, a load/store or execution pipe completes, or the
    /// operand collector makes progress. `None` when the SM is completely
    /// idle. Conservative by construction — it may wake the driver early,
    /// never late — which keeps skip-ahead exact.
    pub fn next_event(&self, cycle: u64) -> Option<u64> {
        let mut horizon: Option<u64> = None;
        let mut merge = |c: u64| {
            let c = c.max(cycle + 1);
            horizon = Some(horizon.map_or(c, |h| h.min(c)));
        };
        if (0..self.warps.len()).any(|slot| self.can_issue(slot)) {
            merge(cycle + 1);
        }
        // A fully arrived barrier releases on the next cycle (phase 4).
        for c in self.cta_slots.iter().flatten() {
            let mut waiting = 0usize;
            let mut live = 0usize;
            for &s in &c.warp_slots {
                if let Some(w) = self.warps[s].as_ref() {
                    if !w.exited() {
                        live += 1;
                        if w.block == WarpBlock::Barrier {
                            waiting += 1;
                        }
                    }
                }
            }
            if live > 0 && waiting == live {
                merge(cycle + 1);
            }
        }
        if let Some(c) = self.lsu.next_event(cycle) {
            merge(c);
        }
        if let Some(c) = self.shared_unit.next_event(cycle) {
            merge(c);
        }
        if let Some(c) = self.collector.next_event(cycle) {
            merge(c);
        }
        for &(at, _) in &self.exec_completions {
            merge(at);
        }
        if horizon.is_none() && self.resident_warps() > 0 {
            // Resident warps without any pending event would mean a hang;
            // step normally rather than skipping so the cycle limit and
            // audit see it.
            return Some(cycle + 1);
        }
        horizon
    }

    /// The earliest cycle, strictly after `cycle`, at which the CTA
    /// dispatch interval permits this SM to accept another CTA (capacity
    /// permitting). Used for the skip-ahead dispatch horizon while
    /// undispatched CTAs remain.
    pub fn next_dispatch_ready(&self, cycle: u64) -> u64 {
        self.next_dispatch_allowed.max(cycle + 1)
    }

    /// Access to the register-file model (for tests and reports).
    pub fn rf_model(&self) -> &dyn RegisterFileModel {
        self.rf.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rf::BaselineRf;
    use prf_isa::{CmpOp, KernelBuilder, PredReg, SpecialReg};

    fn simple_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("simple");
        kb.mov_special(Reg(0), SpecialReg::GlobalTid);
        kb.iadd_imm(Reg(1), Reg(0), 5);
        kb.imul_imm(Reg(2), Reg(1), 3);
        kb.stg(Reg(0), Reg(2), 0);
        kb.exit();
        kb.build().unwrap()
    }

    fn run_sm(kernel: Kernel, grid: GridConfig, config: &GpuConfig) -> (Sm, u64, GlobalMemory) {
        let image = Arc::new(KernelImage::new(kernel, grid));
        let mut sm = Sm::new(
            0,
            config,
            Arc::clone(&image),
            Box::new(BaselineRf::stv(config.num_rf_banks)),
        );
        sm.notify_kernel_launch(0);
        let mut global = GlobalMemory::new(config.global_mem_words);
        let mut next_cta = 0u32;
        let mut cycle = 0u64;
        loop {
            while next_cta < grid.num_ctas && sm.try_dispatch_cta(CtaId(next_cta), cycle) {
                next_cta += 1;
            }
            sm.cycle(cycle, &global);
            sm.commit_global_writes(&mut global);
            cycle += 1;
            if next_cta == grid.num_ctas && sm.is_idle() {
                break;
            }
            assert!(cycle < config.max_cycles, "SM test did not terminate");
        }
        (sm, cycle, global)
    }

    #[test]
    fn single_warp_kernel_completes_with_correct_memory() {
        let config = GpuConfig {
            global_mem_words: 1 << 12,
            ..GpuConfig::kepler_single_sm()
        };
        let grid = GridConfig::new(1, 32);
        let (sm, cycles, global) = run_sm(simple_kernel(), grid, &config);
        assert!(cycles > 0);
        assert_eq!(sm.stats.instructions, 5); // 5 instrs x 1 warp
                                              // tid 7: (7+5)*3 = 36 at address 7.
        assert_eq!(global.read(7), 36);
        assert_eq!(global.read(31), (31 + 5) * 3);
    }

    #[test]
    fn multi_cta_kernel_all_ctas_complete() {
        let config = GpuConfig {
            global_mem_words: 1 << 14,
            ..GpuConfig::kepler_single_sm()
        };
        let grid = GridConfig::new(6, 64);
        let (sm, _, global) = run_sm(simple_kernel(), grid, &config);
        assert_eq!(sm.stats.instructions, 5 * 6 * 2); // 6 CTAs x 2 warps
                                                      // Last thread: tid = 6*64-1 = 383 -> (383+5)*3.
        assert_eq!(global.read(383), (383 + 5) * 3);
        assert_eq!(sm.finished_warps.len(), 12);
    }

    #[test]
    fn rf_access_counts_match_instruction_mix() {
        let config = GpuConfig {
            global_mem_words: 1 << 12,
            ..GpuConfig::kepler_single_sm()
        };
        let grid = GridConfig::new(1, 32);
        let (sm, _, _) = run_sm(simple_kernel(), grid, &config);
        // Per warp: mov (W R0), iadd (R R0, W R1), imul (R R1, W R2),
        // stg (R R0, R R2) -> R0: 3, R1: 2, R2: 2.
        assert_eq!(sm.stats.reg_accesses.count(Reg(0)), 3);
        assert_eq!(sm.stats.reg_accesses.count(Reg(1)), 2);
        assert_eq!(sm.stats.reg_accesses.count(Reg(2)), 2);
        // Every architectural access eventually hits a bank.
        assert_eq!(sm.stats.partition_accesses.total(), 7);
    }

    #[test]
    fn barrier_synchronises_cta() {
        // Warp 0 writes shared, all warps barrier, then read back.
        let mut kb = KernelBuilder::new("bar");
        kb.mov_special(Reg(0), SpecialReg::TidX);
        kb.mov_imm(Reg(1), 123);
        // Only warp 0 (tids 0..32) stores.
        kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(0), 32);
        let skip = kb.new_label();
        kb.bra_if(PredReg(0), false, skip);
        kb.sts(Reg(0), Reg(1), 0);
        kb.place_label(skip);
        kb.bar();
        // Everyone loads tid%32 from shared.
        kb.iand_imm(Reg(2), Reg(0), 31);
        kb.lds(Reg(3), Reg(2), 0);
        kb.stg(Reg(0), Reg(3), 0);
        kb.exit();
        let k = kb.build().unwrap();
        let config = GpuConfig {
            global_mem_words: 1 << 12,
            ..GpuConfig::kepler_single_sm()
        };
        let grid = GridConfig::new(1, 128);
        let (_, _, global) = run_sm(k, grid, &config);
        for tid in [0u32, 33, 127] {
            assert_eq!(
                global.read(tid),
                123,
                "tid {tid} must observe warp 0's store"
            );
        }
    }

    #[test]
    fn looped_kernel_issues_dynamic_instructions() {
        // 10-iteration loop: dynamic instruction count >> static length.
        let mut kb = KernelBuilder::new("loop");
        kb.mov_imm(Reg(0), 0);
        let top = kb.new_label();
        kb.place_label(top);
        kb.iadd_imm(Reg(0), Reg(0), 1);
        kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(0), 10);
        kb.bra_if(PredReg(0), true, top);
        kb.exit();
        let k = kb.build().unwrap();
        let config = GpuConfig {
            global_mem_words: 1 << 12,
            ..GpuConfig::kepler_single_sm()
        };
        let (sm, _, _) = run_sm(k, GridConfig::new(1, 32), &config);
        // 1 + 10*3 + 1 = 32 dynamic instructions.
        assert_eq!(sm.stats.instructions, 32);
        // R0 dynamic accesses: mov W(1) + per iter iadd R+W (2) + setp R(1) = 31.
        assert_eq!(sm.stats.reg_accesses.count(Reg(0)), 1 + 10 * 3);
    }

    #[test]
    fn ntv_rf_slows_execution() {
        let config = GpuConfig {
            global_mem_words: 1 << 14,
            ..GpuConfig::kepler_single_sm()
        };
        let grid = GridConfig::new(4, 256);
        let kernel = || {
            let mut kb = KernelBuilder::new("alu");
            kb.mov_special(Reg(0), SpecialReg::GlobalTid);
            for _ in 0..20 {
                kb.imad(Reg(1), Reg(0), Reg(0), Reg(1));
                kb.iadd(Reg(2), Reg(1), Reg(0));
            }
            kb.stg(Reg(0), Reg(2), 0);
            kb.exit();
            kb.build().unwrap()
        };
        let image = Arc::new(KernelImage::new(kernel(), grid));
        let run = |rf: Box<dyn RegisterFileModel>| -> u64 {
            let mut sm = Sm::new(0, &config, Arc::clone(&image), rf);
            let mut global = GlobalMemory::new(config.global_mem_words);
            let mut next_cta = 0u32;
            let mut cycle = 0u64;
            loop {
                while next_cta < grid.num_ctas && sm.try_dispatch_cta(CtaId(next_cta), cycle) {
                    next_cta += 1;
                }
                sm.cycle(cycle, &global);
                sm.commit_global_writes(&mut global);
                cycle += 1;
                if next_cta == grid.num_ctas && sm.is_idle() {
                    return cycle;
                }
                assert!(cycle < 1_000_000);
            }
        };
        let stv = run(Box::new(BaselineRf::stv(config.num_rf_banks)));
        let ntv = run(Box::new(BaselineRf::ntv(config.num_rf_banks, 3)));
        assert!(
            ntv > stv,
            "NTV RF ({ntv} cycles) must be slower than STV ({stv} cycles)"
        );
    }

    #[test]
    fn dispatch_respects_register_capacity() {
        // 63 regs x 1024 threads = 64512 regs per CTA; capacity 65536 ->
        // only one CTA fits.
        let mut kb = KernelBuilder::new("fat");
        kb.mov_imm(Reg(62), 1);
        kb.exit();
        let k = kb.build().unwrap();
        let config = GpuConfig::kepler_single_sm();
        let grid = GridConfig::new(4, 1024);
        let image = Arc::new(KernelImage::new(k, grid));
        let mut sm = Sm::new(0, &config, image, Box::new(BaselineRf::stv(24)));
        assert!(sm.try_dispatch_cta(CtaId(0), 0));
        assert!(
            !sm.try_dispatch_cta(CtaId(1), 0),
            "register capacity exceeded"
        );
    }

    #[test]
    fn divergence_stats_track_branches() {
        // Divergent diamond on lane id: one divergent branch per warp,
        // plus the uniform loop-free fallthrough.
        let mut kb = KernelBuilder::new("div");
        kb.mov_special(Reg(0), SpecialReg::LaneId);
        kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(0), 16);
        let else_ = kb.new_label();
        let join = kb.new_label();
        kb.bra_if(PredReg(0), false, else_); // divergent
        kb.mov_imm(Reg(1), 1);
        kb.bra(join); // uniform
        kb.place_label(else_);
        kb.mov_imm(Reg(1), 2);
        kb.place_label(join);
        kb.exit();
        let k = kb.build().unwrap();
        let config = GpuConfig {
            global_mem_words: 1 << 12,
            ..GpuConfig::kepler_single_sm()
        };
        let (sm, _, _) = run_sm(k, GridConfig::new(1, 64), &config);
        assert_eq!(sm.stats.total_branches, 4, "2 warps x 2 branches");
        assert_eq!(
            sm.stats.divergent_branches, 2,
            "only the guarded branch diverges"
        );
        assert!((sm.stats.divergence_rate() - 0.5).abs() < 1e-12);
        // SIMD efficiency below 1 because the diamond halves the masks.
        let eff = sm.stats.simd_efficiency();
        assert!(eff < 1.0 && eff > 0.5, "efficiency {eff}");
    }

    #[test]
    fn uniform_kernel_has_full_simd_efficiency() {
        let config = GpuConfig {
            global_mem_words: 1 << 12,
            ..GpuConfig::kepler_single_sm()
        };
        let (sm, _, _) = run_sm(simple_kernel(), GridConfig::new(1, 64), &config);
        assert!((sm.stats.simd_efficiency() - 1.0).abs() < 1e-12);
        assert_eq!(sm.stats.divergence_rate(), 0.0);
    }

    #[test]
    fn partial_warp_cta_completes() {
        let config = GpuConfig {
            global_mem_words: 1 << 12,
            ..GpuConfig::kepler_single_sm()
        };
        let grid = GridConfig::new(1, 61); // sad-like
        let (sm, _, global) = run_sm(simple_kernel(), grid, &config);
        assert_eq!(sm.finished_warps.len(), 2);
        assert_eq!(global.read(60), (60 + 5) * 3);
        // Thread 61 does not exist; its slot in memory must stay zero.
        assert_eq!(global.read(61), 0);
    }
}
