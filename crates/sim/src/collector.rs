//! Operand collectors and the register-file bank arbiter.
//!
//! An issued instruction allocates a collector unit, which then competes —
//! operand by operand — for RF banks. A bank services one access per grant
//! and stays busy for the access latency that the
//! [`crate::rf::RegisterFileModel`] resolved for the access; this is how
//! the FRF/SRF latency difference turns into pipeline back-pressure.
//! Writebacks go through the same arbiter with priority over reads, as in
//! GPGPU-Sim.
//!
//! Accesses arrive *pre-resolved*: the SM calls
//! [`RegisterFileModel::resolve`](crate::rf::RegisterFileModel::resolve)
//! exactly once per access (reads at issue, writes when the writeback is
//! requested), so stateful models — the RFC allocates and evicts cache
//! entries inside `resolve` — observe each access exactly once.

use std::collections::VecDeque;

use prf_isa::Reg;

use crate::rf::{AccessKind, ResolvedAccess, RfPartition};

/// A pending source-operand read inside a collector.
#[derive(Debug, Clone, Copy)]
struct PendingRead {
    access: ResolvedAccess,
    /// Cycle the data arrives, once granted; `None` while waiting for a
    /// bank grant.
    ready_at: Option<u64>,
}

/// What should happen when the collector finishes gathering operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectDest {
    /// Dispatch to an execution pipeline with the given result latency;
    /// `writeback` tells whether a destination register write follows.
    Execute {
        /// Result latency in cycles.
        latency: u32,
        /// Destination register to write at completion, if any.
        writeback: Option<Reg>,
    },
    /// Hand to the load/store unit (memory instructions).
    Memory,
}

/// An instruction resident in a collector unit.
#[derive(Debug, Clone)]
pub struct CollectorEntry {
    /// Warp slot that issued the instruction.
    pub warp_slot: usize,
    /// Pending and completed source reads.
    reads: Vec<PendingRead>,
    /// Where the instruction goes after collection.
    pub dest: CollectDest,
    /// Monotonic sequence number for age-ordered arbitration.
    pub seq: u64,
    /// Opaque token the SM uses to track the instruction.
    pub token: u64,
}

/// A writeback request waiting for its bank.
#[derive(Debug, Clone, Copy)]
pub struct WritebackRequest {
    /// Warp slot whose register is written.
    pub warp_slot: usize,
    /// Destination (architected) register, for scoreboard release.
    pub reg: Reg,
    /// The resolved physical access.
    pub access: ResolvedAccess,
    /// Sequence number (age priority).
    pub seq: u64,
    /// Token returned to the SM when the write completes.
    pub token: u64,
}

/// A completed writeback notification.
#[derive(Debug, Clone, Copy)]
pub struct CompletedWrite {
    /// Warp slot whose register was written.
    pub warp_slot: usize,
    /// Architected register written.
    pub reg: Reg,
    /// Token from the originating request.
    pub token: u64,
    /// Partition that serviced the write.
    pub partition: RfPartition,
}

/// An instruction that finished collecting operands this cycle.
#[derive(Debug, Clone)]
pub struct CollectedInstr {
    /// Warp slot.
    pub warp_slot: usize,
    /// Dispatch destination.
    pub dest: CollectDest,
    /// Token.
    pub token: u64,
}

/// The operand-collector array plus bank arbiter for one SM.
#[derive(Debug)]
pub struct OperandCollector {
    units: Vec<Option<CollectorEntry>>,
    /// Cycle until which each bank is busy (exclusive).
    bank_busy_until: Vec<u64>,
    writeback_queue: VecDeque<WritebackRequest>,
    /// Writes in flight: (completion cycle, completed-write record).
    inflight_writes: Vec<(u64, CompletedWrite)>,
    next_seq: u64,
    /// Stat: grants denied because the bank was busy or already granted.
    pub bank_conflict_waits: u64,
    pipelined: bool,
    /// Scratch reused across ticks: per-bank granted flags.
    granted_scratch: Vec<bool>,
    /// Scratch reused across ticks: occupied units in age order.
    order_scratch: Vec<usize>,
    /// Scratch reused across ticks: writebacks denied this cycle.
    wb_scratch: VecDeque<WritebackRequest>,
    /// Recycled `reads` vectors of released entries, so steady-state
    /// allocation performs no heap allocation.
    reads_pool: Vec<Vec<PendingRead>>,
}

impl OperandCollector {
    /// Creates a collector array with `num_units` units over `num_banks`
    /// banks.
    ///
    /// With `pipelined` set (the default configuration), a bank accepts a
    /// new request every cycle and a multi-cycle access only delays its
    /// *data* — the GPGPU-Sim-style model under which the paper's 3-cycle
    /// SRF costs latency, not throughput. With `pipelined` clear, a bank
    /// stays busy for the access's full latency (an ablation that shows
    /// why an unpipelined NTV array would be catastrophic).
    pub fn new(num_units: usize, num_banks: usize, pipelined: bool) -> Self {
        OperandCollector {
            units: (0..num_units).map(|_| None).collect(),
            bank_busy_until: vec![0; num_banks],
            writeback_queue: VecDeque::new(),
            inflight_writes: Vec::new(),
            next_seq: 0,
            bank_conflict_waits: 0,
            pipelined,
            granted_scratch: vec![false; num_banks],
            order_scratch: Vec::with_capacity(num_units),
            wb_scratch: VecDeque::new(),
            reads_pool: Vec::with_capacity(num_units),
        }
    }

    fn occupancy(&self, latency: u32) -> u64 {
        if self.pipelined {
            1
        } else {
            u64::from(latency.max(1))
        }
    }

    /// Number of free collector units.
    pub fn free_units(&self) -> usize {
        self.units.iter().filter(|u| u.is_none()).count()
    }

    /// True if at least one unit is free.
    pub fn has_free_unit(&self) -> bool {
        self.units.iter().any(|u| u.is_none())
    }

    /// Allocates a unit for an issued instruction.
    ///
    /// `reads` lists the pre-resolved source accesses to fetch. Returns
    /// `false` (and allocates nothing) when no unit is free.
    pub fn allocate(
        &mut self,
        warp_slot: usize,
        reads: &[ResolvedAccess],
        dest: CollectDest,
        token: u64,
    ) -> bool {
        let Some(slot) = self.units.iter().position(|u| u.is_none()) else {
            return false;
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut pending = self.reads_pool.pop().unwrap_or_default();
        pending.clear();
        pending.extend(reads.iter().map(|&access| PendingRead {
            access,
            ready_at: None,
        }));
        self.units[slot] = Some(CollectorEntry {
            warp_slot,
            reads: pending,
            dest,
            seq,
            token,
        });
        true
    }

    /// Enqueues a pre-resolved writeback request (from an execution pipe
    /// or the LSU).
    pub fn request_writeback(
        &mut self,
        warp_slot: usize,
        reg: Reg,
        access: ResolvedAccess,
        token: u64,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.writeback_queue.push_back(WritebackRequest {
            warp_slot,
            reg,
            access,
            seq,
            token,
        });
    }

    /// Advances the collector by one cycle.
    ///
    /// Arbitration: for each bank, the oldest writeback wins first, then
    /// the oldest pending collector read. `on_access` fires once per
    /// *granted* access with the full resolved access (partition for
    /// energy accounting, repair for fault accounting). Returns the
    /// instructions that finished collection and the writes that completed
    /// this cycle.
    pub fn tick(
        &mut self,
        cycle: u64,
        on_access: impl FnMut(ResolvedAccess, AccessKind),
    ) -> (Vec<CollectedInstr>, Vec<CompletedWrite>) {
        let mut collected = Vec::new();
        let mut done_writes = Vec::new();
        self.tick_into(cycle, on_access, &mut collected, &mut done_writes);
        (collected, done_writes)
    }

    /// The allocation-free form of [`OperandCollector::tick`]: appends the
    /// released instructions and completed writes to caller-provided
    /// buffers (cleared here) and reuses internal scratch for arbitration.
    pub fn tick_into(
        &mut self,
        cycle: u64,
        mut on_access: impl FnMut(ResolvedAccess, AccessKind),
        collected: &mut Vec<CollectedInstr>,
        done_writes: &mut Vec<CompletedWrite>,
    ) {
        collected.clear();
        done_writes.clear();

        // 1. Completed writes.
        self.inflight_writes.retain(|(done_at, w)| {
            if *done_at <= cycle {
                done_writes.push(*w);
                false
            } else {
                true
            }
        });

        // 2. Bank arbitration. One grant per bank per cycle.
        let num_banks = self.bank_busy_until.len();
        let mut granted_bank = std::mem::take(&mut self.granted_scratch);
        granted_bank.clear();
        granted_bank.resize(num_banks, false);

        // 2a. Writebacks (age order, priority over reads).
        let mut remaining = std::mem::take(&mut self.wb_scratch);
        remaining.clear();
        while let Some(req) = self.writeback_queue.pop_front() {
            let bank = req.access.bank % num_banks;
            if !granted_bank[bank] && self.bank_busy_until[bank] <= cycle {
                granted_bank[bank] = true;
                let lat = u64::from(req.access.latency.max(1));
                self.bank_busy_until[bank] = cycle + self.occupancy(req.access.latency);
                on_access(req.access, AccessKind::Write);
                self.inflight_writes.push((
                    cycle + lat,
                    CompletedWrite {
                        warp_slot: req.warp_slot,
                        reg: req.reg,
                        token: req.token,
                        partition: req.access.partition,
                    },
                ));
            } else {
                self.bank_conflict_waits += 1;
                remaining.push_back(req);
            }
        }
        self.wb_scratch = std::mem::replace(&mut self.writeback_queue, remaining);

        // 2b. Collector reads, oldest entry first.
        let pipelined = self.pipelined;
        let occupancy = |latency: u32| -> u64 {
            if pipelined {
                1
            } else {
                u64::from(latency.max(1))
            }
        };
        let mut order = std::mem::take(&mut self.order_scratch);
        order.clear();
        order.extend((0..self.units.len()).filter(|&i| self.units[i].is_some()));
        order.sort_by_key(|&i| self.units[i].as_ref().map(|e| e.seq));
        for &i in &order {
            let entry = self.units[i].as_mut().expect("filtered to occupied units");
            for pr in entry.reads.iter_mut().filter(|r| r.ready_at.is_none()) {
                let bank = pr.access.bank % num_banks;
                if !granted_bank[bank] && self.bank_busy_until[bank] <= cycle {
                    granted_bank[bank] = true;
                    let lat = u64::from(pr.access.latency.max(1));
                    self.bank_busy_until[bank] = cycle + occupancy(pr.access.latency);
                    pr.ready_at = Some(cycle + lat);
                    on_access(pr.access, AccessKind::Read);
                } else {
                    self.bank_conflict_waits += 1;
                }
            }
        }

        self.order_scratch = order;
        self.granted_scratch = granted_bank;

        // 3. Release fully-collected entries.
        for unit in self.units.iter_mut() {
            let ready = unit.as_ref().is_some_and(|e| {
                e.reads
                    .iter()
                    .all(|r| r.ready_at.is_some_and(|t| t <= cycle))
            });
            if ready {
                let mut e = unit.take().expect("checked is_some");
                collected.push(CollectedInstr {
                    warp_slot: e.warp_slot,
                    dest: e.dest,
                    token: e.token,
                });
                e.reads.clear();
                self.reads_pool.push(e.reads);
            }
        }
    }

    /// The next cycle (strictly after `cycle`) at which ticking the
    /// collector could have an observable effect, or `None` when idle.
    ///
    /// Conservative: any state still subject to arbitration (an un-granted
    /// read, a queued writeback, an entry whose reads are all ready) pins
    /// the horizon to `cycle + 1`; only work waiting purely on known data
    /// latencies (granted reads in flight, writes draining) reports its
    /// real completion time. An early wake-up is always safe — the skipped
    /// span is exactly the cycles where `tick` provably does nothing.
    pub fn next_event(&self, cycle: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut merge = |t: u64| {
            let t = t.max(cycle + 1);
            next = Some(next.map_or(t, |n| n.min(t)));
        };
        if !self.writeback_queue.is_empty() {
            merge(cycle + 1);
        }
        for &(done_at, _) in &self.inflight_writes {
            merge(done_at);
        }
        for entry in self.units.iter().flatten() {
            let mut all_ready_now = true;
            for r in &entry.reads {
                match r.ready_at {
                    None => {
                        // Still competing for a bank: retry next cycle.
                        merge(cycle + 1);
                        all_ready_now = false;
                    }
                    Some(t) => {
                        if t > cycle {
                            merge(t);
                            all_ready_now = false;
                        }
                    }
                }
            }
            if all_ready_now {
                // Fully collected: the entry releases on the next tick.
                merge(cycle + 1);
            }
        }
        next
    }

    /// True when no instruction or write is outstanding.
    pub fn is_idle(&self) -> bool {
        self.units.iter().all(|u| u.is_none())
            && self.writeback_queue.is_empty()
            && self.inflight_writes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(bank: usize, latency: u32, partition: RfPartition) -> ResolvedAccess {
        ResolvedAccess {
            bank,
            latency,
            partition,
            phys_reg: bank,
            repair: None,
        }
    }

    fn stv(bank: usize) -> ResolvedAccess {
        acc(bank, 1, RfPartition::MrfStv)
    }

    fn run_cycles(
        oc: &mut OperandCollector,
        from: u64,
        to: u64,
    ) -> (Vec<CollectedInstr>, Vec<CompletedWrite>) {
        let mut all_c = Vec::new();
        let mut all_w = Vec::new();
        for cyc in from..to {
            let (c, w) = oc.tick(cyc, |_, _| {});
            all_c.extend(c);
            all_w.extend(w);
        }
        (all_c, all_w)
    }

    #[test]
    fn allocate_until_full() {
        let mut oc = OperandCollector::new(2, 24, true);
        assert!(oc.has_free_unit());
        assert!(oc.allocate(0, &[stv(0)], CollectDest::Memory, 1));
        assert!(oc.allocate(1, &[stv(1)], CollectDest::Memory, 2));
        assert!(!oc.allocate(2, &[stv(2)], CollectDest::Memory, 3));
        assert_eq!(oc.free_units(), 0);
    }

    #[test]
    fn single_read_completes_after_latency() {
        let mut oc = OperandCollector::new(4, 24, true);
        oc.allocate(
            0,
            &[stv(3)],
            CollectDest::Execute {
                latency: 4,
                writeback: Some(Reg(5)),
            },
            7,
        );
        // Cycle 0: read granted, ready at 1. Cycle 1: entry releases.
        let (c0, _) = oc.tick(0, |_, _| {});
        assert!(c0.is_empty());
        let (c1, _) = oc.tick(1, |_, _| {});
        assert_eq!(c1.len(), 1);
        assert_eq!(c1[0].token, 7);
        assert!(oc.is_idle());
    }

    #[test]
    fn zero_read_instruction_releases_immediately() {
        let mut oc = OperandCollector::new(4, 24, true);
        oc.allocate(
            0,
            &[],
            CollectDest::Execute {
                latency: 1,
                writeback: None,
            },
            9,
        );
        let (c, _) = oc.tick(0, |_, _| {});
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn pipelined_bank_accepts_back_to_back_slow_reads() {
        // Pipelined banks (the default): two 3-cycle SRF reads to the same
        // bank are granted on consecutive cycles; data still takes 3 cycles.
        let mut oc = OperandCollector::new(4, 24, true);
        let slow = acc(0, 3, RfPartition::Srf);
        oc.allocate(
            0,
            &[slow],
            CollectDest::Execute {
                latency: 1,
                writeback: None,
            },
            1,
        );
        oc.allocate(
            0,
            &[slow],
            CollectDest::Execute {
                latency: 1,
                writeback: None,
            },
            2,
        );
        // Grants at cycles 0 and 1; data at 3 and 4; releases at 3 and 4.
        let (c, _) = run_cycles(&mut oc, 0, 4);
        assert_eq!(c.len(), 1);
        let (c, _) = run_cycles(&mut oc, 4, 5);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn bank_conflict_serialises_reads() {
        let mut oc = OperandCollector::new(4, 24, true);
        // Two reads to the same bank -> serialised grants.
        oc.allocate(
            0,
            &[stv(0), stv(0)],
            CollectDest::Execute {
                latency: 1,
                writeback: None,
            },
            1,
        );
        let (c, _) = run_cycles(&mut oc, 0, 2);
        assert!(c.is_empty(), "needs two grants over two cycles");
        let (c, _) = run_cycles(&mut oc, 2, 3);
        assert_eq!(c.len(), 1);
        assert!(oc.bank_conflict_waits > 0);
    }

    #[test]
    fn slow_access_holds_bank_longer() {
        // Unpipelined banks (the ablation mode): the SRF access occupies
        // its bank for the full 3 cycles.
        let mut oc = OperandCollector::new(4, 24, false);
        let slow = acc(0, 3, RfPartition::Srf); // SRF: 3-cycle access
        oc.allocate(
            0,
            &[slow],
            CollectDest::Execute {
                latency: 1,
                writeback: None,
            },
            1,
        );
        oc.allocate(
            0,
            &[slow],
            CollectDest::Execute {
                latency: 1,
                writeback: None,
            },
            2,
        );
        // First read: granted cycle 0, data at 3; second read can only be
        // granted at cycle 3, data at 6.
        let (c, _) = run_cycles(&mut oc, 0, 6);
        assert_eq!(
            c.len(),
            1,
            "only the first instruction should finish by cycle 5"
        );
        let (c, _) = run_cycles(&mut oc, 6, 7);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn writeback_has_priority_over_reads() {
        let mut oc = OperandCollector::new(4, 24, true);
        // Read and write targeting the same bank.
        oc.allocate(
            0,
            &[stv(0)],
            CollectDest::Execute {
                latency: 1,
                writeback: None,
            },
            1,
        );
        oc.request_writeback(0, Reg(0), stv(0), 99);
        let mut kinds = Vec::new();
        let (_, w) = oc.tick(0, |_, k| kinds.push(k));
        assert!(w.is_empty());
        assert_eq!(kinds, vec![AccessKind::Write], "write must win the bank");
        let (_, w) = oc.tick(1, |_, _| {});
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].token, 99);
        assert_eq!(w[0].partition, RfPartition::MrfStv);
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        let mut oc = OperandCollector::new(4, 24, true);
        oc.allocate(0, &[stv(0), stv(1), stv(2)], CollectDest::Memory, 5);
        let (c, _) = oc.tick(0, |_, _| {});
        assert!(c.is_empty());
        let (c, _) = oc.tick(1, |_, _| {});
        assert_eq!(c.len(), 1, "three reads to three banks complete together");
        assert_eq!(oc.bank_conflict_waits, 0);
    }

    #[test]
    fn access_callback_reports_partition_once_per_grant() {
        let mut oc = OperandCollector::new(2, 24, true);
        let srf = acc(4, 3, RfPartition::Srf);
        oc.allocate(0, &[srf], CollectDest::Memory, 1);
        let mut seen = Vec::new();
        for cyc in 0..5 {
            oc.tick(cyc, |a, k| seen.push((a.partition, k)));
        }
        assert_eq!(seen, vec![(RfPartition::Srf, AccessKind::Read)]);
    }

    #[test]
    fn next_event_is_conservative_and_tracks_data_return() {
        let mut oc = OperandCollector::new(4, 24, true);
        assert_eq!(oc.next_event(0), None, "idle collector has no horizon");
        let slow = acc(0, 3, RfPartition::Srf);
        oc.allocate(
            0,
            &[slow],
            CollectDest::Execute {
                latency: 1,
                writeback: None,
            },
            1,
        );
        // Un-granted read: must retry next cycle.
        assert_eq!(oc.next_event(0), Some(1));
        oc.tick(0, |_, _| {}); // grant at 0, data ready at 3
        assert_eq!(oc.next_event(0), Some(3), "waiting purely on data return");
        let (c, _) = oc.tick(3, |_, _| {});
        assert_eq!(c.len(), 1);
        assert_eq!(oc.next_event(3), None);
        // A queued writeback pins the horizon to the next cycle.
        oc.request_writeback(0, Reg(0), stv(0), 9);
        assert_eq!(oc.next_event(3), Some(4));
    }

    #[test]
    fn mixed_partition_reads() {
        // An FRF read (1 cycle) and an SRF read (3 cycles) on different
        // banks: the instruction waits for the slower one.
        let mut oc = OperandCollector::new(2, 24, true);
        oc.allocate(
            0,
            &[acc(0, 1, RfPartition::FrfHigh), acc(1, 3, RfPartition::Srf)],
            CollectDest::Execute {
                latency: 1,
                writeback: None,
            },
            1,
        );
        let (c, _) = run_cycles(&mut oc, 0, 3);
        assert!(c.is_empty());
        let (c, _) = run_cycles(&mut oc, 3, 4);
        assert_eq!(c.len(), 1);
    }
}
