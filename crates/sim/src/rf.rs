//! The register-file model interface.
//!
//! The simulator is agnostic to the physical organisation of the register
//! file: every read/write is *resolved* through a [`RegisterFileModel`],
//! which returns the physical bank, the access latency, and which physical
//! partition serviced the access (for energy accounting). The baseline
//! monolithic MRF lives here; the paper's partitioned RF and the RFC
//! baseline implement the same trait in `prf-core`.

use std::fmt;

use prf_isa::{Kernel, Reg};

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Register-file read (source operand).
    Read,
    /// Register-file write (destination / writeback).
    Write,
}

/// The physical structure that serviced an access — the unit of energy
/// accounting.
///
/// The variants cover every structure that appears in the paper's
/// evaluation: the monolithic MRF at STV or NTV, the two FRF modes and the
/// SRF of the partitioned design, and RFC hits/misses for the
/// register-file-cache baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RfPartition {
    /// Monolithic main RF operating at super-threshold voltage (1 cycle).
    MrfStv,
    /// Monolithic main RF operating at near-threshold voltage (3 cycles).
    MrfNtv,
    /// Fast RF partition in high-power mode (back gate = Vdd, 1 cycle).
    FrfHigh,
    /// Fast RF partition in low-power mode (back gate = 0, 2 cycles).
    FrfLow,
    /// Slow RF partition, always at NTV (3 cycles by default).
    Srf,
    /// Register-file-cache hit (access served by the RFC SRAM).
    RfcHit,
    /// Register-file-cache miss (tag check + backing MRF access + fill).
    RfcMiss,
    /// RFC write-back of an evicted dirty entry into the backing MRF.
    RfcWriteback,
}

impl RfPartition {
    /// All partition kinds (useful for report tables).
    pub const ALL: [RfPartition; 8] = [
        RfPartition::MrfStv,
        RfPartition::MrfNtv,
        RfPartition::FrfHigh,
        RfPartition::FrfLow,
        RfPartition::Srf,
        RfPartition::RfcHit,
        RfPartition::RfcMiss,
        RfPartition::RfcWriteback,
    ];

    /// Index into dense per-partition arrays.
    pub fn index(self) -> usize {
        match self {
            RfPartition::MrfStv => 0,
            RfPartition::MrfNtv => 1,
            RfPartition::FrfHigh => 2,
            RfPartition::FrfLow => 3,
            RfPartition::Srf => 4,
            RfPartition::RfcHit => 5,
            RfPartition::RfcMiss => 6,
            RfPartition::RfcWriteback => 7,
        }
    }
}

impl fmt::Display for RfPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RfPartition::MrfStv => "MRF@STV",
            RfPartition::MrfNtv => "MRF@NTV",
            RfPartition::FrfHigh => "FRF_high",
            RfPartition::FrfLow => "FRF_low",
            RfPartition::Srf => "SRF",
            RfPartition::RfcHit => "RFC-hit",
            RfPartition::RfcMiss => "RFC-miss",
            RfPartition::RfcWriteback => "RFC-wb",
        };
        f.write_str(s)
    }
}

/// How a faulty row was kept usable (graceful-degradation accounting).
///
/// Produced by the fault-injection wrapper in `prf-core` when an access
/// lands on a row its `FaultMap` marks stuck or weak; healthy accesses
/// carry no repair. Each kind charges a distinct energy/latency premium
/// and is conserved by the audit layer (faulty = remapped + spilled +
/// escalated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RepairKind {
    /// The row was remapped to a per-bank spare row (one extra decode
    /// cycle, small energy premium).
    Remapped,
    /// The row was disabled and the access spilled to the slow partition
    /// (SRF latency and energy).
    Spilled,
    /// The access ran with the row's supply escalated to STV for the
    /// cycle (no latency cost; pays the STV energy delta).
    Escalated,
}

impl RepairKind {
    /// All repair kinds (dense, for per-kind counters).
    pub const ALL: [RepairKind; 3] = [
        RepairKind::Remapped,
        RepairKind::Spilled,
        RepairKind::Escalated,
    ];

    /// Index into dense per-kind arrays.
    pub fn index(self) -> usize {
        match self {
            RepairKind::Remapped => 0,
            RepairKind::Spilled => 1,
            RepairKind::Escalated => 2,
        }
    }
}

impl fmt::Display for RepairKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RepairKind::Remapped => "remapped",
            RepairKind::Spilled => "spilled",
            RepairKind::Escalated => "escalated",
        };
        f.write_str(s)
    }
}

/// A resolved register-file access: where it goes and how long it takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedAccess {
    /// Bank servicing the access (0-based, `< num_rf_banks`).
    pub bank: usize,
    /// Cycles the bank is occupied / until data is available.
    pub latency: u32,
    /// The physical structure serviced (energy class).
    pub partition: RfPartition,
    /// Physical register index inside the bank's address space (drives the
    /// fault-map row lookup; equals the architectural index for models
    /// without renaming).
    pub phys_reg: usize,
    /// Repair applied when the access hit a faulty row (`None` for
    /// healthy rows and fault-free runs).
    pub repair: Option<RepairKind>,
}

/// Context passed to the model when a warp starts or finishes on the SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpLifecycle {
    /// Hardware warp slot within the SM.
    pub slot: usize,
    /// Flattened CTA id within the grid.
    pub cta: u32,
    /// Warp index within its CTA.
    pub warp_in_cta: u32,
}

/// A register-file organisation, as seen by the SM pipeline.
///
/// One model instance exists *per SM*, matching the paper where profiling
/// counters, the swapping table, and the FRF mode signal are per-SM
/// structures.
///
/// `Send` is a supertrait so whole simulations (SMs own their models) can
/// be fanned out across worker threads by the parallel experiment engine.
pub trait RegisterFileModel: fmt::Debug + Send {
    /// Resolves one access: physical bank, latency, and energy partition.
    ///
    /// Called once per register read/write when the access is granted by
    /// the bank arbiter. `warp_slot` is the hardware warp slot (bank
    /// swizzling is slot-based, as in GPGPU-Sim).
    fn resolve(
        &mut self,
        warp_slot: usize,
        reg: Reg,
        kind: AccessKind,
        cycle: u64,
    ) -> ResolvedAccess;

    /// Observes one *architectural* register access at issue time (before
    /// bank arbitration). The pilot-warp profiler counts accesses here —
    /// the paper increments its counters "when a warp instruction is
    /// scheduled for register access" (§III-B).
    fn observe_access(&mut self, warp_slot: usize, reg: Reg, kind: AccessKind, cycle: u64);

    /// Per-cycle hook: `issued` instructions were issued on this SM this
    /// cycle. Drives the adaptive-FRF epoch phase detector.
    fn tick(&mut self, cycle: u64, issued: u32);

    /// A new kernel was launched on this SM.
    fn on_kernel_launch(&mut self, kernel: &Kernel, cycle: u64);

    /// A warp became resident (its registers were allocated).
    fn on_warp_start(&mut self, warp: WarpLifecycle, cycle: u64);

    /// A resident warp finished execution.
    fn on_warp_finish(&mut self, warp: WarpLifecycle, cycle: u64);

    /// The scheduler demoted a warp from its active pool (two-level
    /// scheduling); the RFC flushes the warp's cached registers here.
    fn on_warp_deactivated(&mut self, warp_slot: usize, cycle: u64) {
        let _ = (warp_slot, cycle);
    }

    /// Audit hook: dirty entries this model evicted (and wrote back) so
    /// far. The conservation auditor cross-checks the sum against the
    /// `rfc_writebacks` telemetry counter; models without a write-back
    /// cache keep the default of 0.
    fn rfc_evictions(&self) -> u64 {
        0
    }

    /// Telemetry hook for the sampled time-series ([`crate::sampling`]):
    /// `Some(true)` while the model's fast partition runs in low-power
    /// mode, `Some(false)` in high-power mode, `None` (the default) for
    /// organisations without an adaptive FRF.
    fn frf_low_mode(&self) -> Option<bool> {
        None
    }

    /// Model name for reports.
    fn name(&self) -> &str;
}

/// Computes the default bank swizzle used by all models:
/// `(warp_slot + physical_reg) % num_banks`, the GPGPU-Sim mapping that
/// spreads consecutive registers of a warp — and the same register of
/// consecutive warps — across banks.
pub fn default_bank(warp_slot: usize, phys_reg: usize, num_banks: usize) -> usize {
    (warp_slot + phys_reg) % num_banks
}

/// The baseline monolithic main register file (MRF).
///
/// * `MrfStv`: 1-cycle access, the paper's power-aggressive baseline.
/// * `MrfNtv`: `latency`-cycle access (3 by default), the "just run
///   everything at NTV" alternative that loses 7.1% performance (§V-C).
#[derive(Debug, Clone)]
pub struct BaselineRf {
    partition: RfPartition,
    latency: u32,
    num_banks: usize,
    name: String,
}

impl BaselineRf {
    /// Monolithic RF at super-threshold voltage: 1-cycle access.
    pub fn stv(num_banks: usize) -> Self {
        BaselineRf {
            partition: RfPartition::MrfStv,
            latency: 1,
            num_banks,
            name: "MRF@STV".to_string(),
        }
    }

    /// Monolithic RF at near-threshold voltage with the given access
    /// latency (the paper uses 3 cycles).
    pub fn ntv(num_banks: usize, latency: u32) -> Self {
        BaselineRf {
            partition: RfPartition::MrfNtv,
            latency,
            num_banks,
            name: format!("MRF@NTV({latency}cy)"),
        }
    }
}

impl RegisterFileModel for BaselineRf {
    fn resolve(
        &mut self,
        warp_slot: usize,
        reg: Reg,
        _kind: AccessKind,
        _cycle: u64,
    ) -> ResolvedAccess {
        ResolvedAccess {
            bank: default_bank(warp_slot, reg.index(), self.num_banks),
            latency: self.latency,
            partition: self.partition,
            phys_reg: reg.index(),
            repair: None,
        }
    }

    fn observe_access(&mut self, _warp_slot: usize, _reg: Reg, _kind: AccessKind, _cycle: u64) {}

    fn tick(&mut self, _cycle: u64, _issued: u32) {}

    fn on_kernel_launch(&mut self, _kernel: &Kernel, _cycle: u64) {}

    fn on_warp_start(&mut self, _warp: WarpLifecycle, _cycle: u64) {}

    fn on_warp_finish(&mut self, _warp: WarpLifecycle, _cycle: u64) {}

    fn name(&self) -> &str {
        &self.name
    }
}

/// Factory that builds one register-file model per SM.
pub type RfModelFactory<'a> = dyn Fn(usize) -> Box<dyn RegisterFileModel> + 'a;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_indices_are_dense_and_unique() {
        let mut seen = [false; 8];
        for p in RfPartition::ALL {
            assert!(!seen[p.index()], "duplicate index for {p}");
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn default_bank_swizzle() {
        assert_eq!(default_bank(0, 0, 24), 0);
        assert_eq!(default_bank(0, 23, 24), 23);
        assert_eq!(default_bank(0, 24, 24), 0);
        assert_eq!(default_bank(5, 3, 24), 8);
        // Same register of consecutive warps lands in different banks.
        assert_ne!(default_bank(0, 7, 24), default_bank(1, 7, 24));
    }

    #[test]
    fn baseline_stv_is_one_cycle() {
        let mut rf = BaselineRf::stv(24);
        let a = rf.resolve(3, Reg(5), AccessKind::Read, 0);
        assert_eq!(a.latency, 1);
        assert_eq!(a.partition, RfPartition::MrfStv);
        assert_eq!(a.bank, 8);
        assert_eq!(rf.name(), "MRF@STV");
    }

    #[test]
    fn baseline_ntv_latency_configurable() {
        let mut rf = BaselineRf::ntv(24, 3);
        let a = rf.resolve(0, Reg(0), AccessKind::Write, 10);
        assert_eq!(a.latency, 3);
        assert_eq!(a.partition, RfPartition::MrfNtv);
        assert!(rf.name().contains("NTV"));
    }

    #[test]
    fn repair_kind_indices_are_dense_and_unique() {
        let mut seen = [false; 3];
        for k in RepairKind::ALL {
            assert!(!seen[k.index()], "duplicate index for {k}");
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(RepairKind::Spilled.to_string(), "spilled");
    }

    #[test]
    fn baseline_resolution_carries_no_repair() {
        let mut rf = BaselineRf::stv(24);
        let a = rf.resolve(3, Reg(5), AccessKind::Read, 0);
        assert_eq!(a.phys_reg, 5);
        assert_eq!(a.repair, None);
    }

    #[test]
    fn partition_display() {
        assert_eq!(RfPartition::FrfLow.to_string(), "FRF_low");
        assert_eq!(RfPartition::Srf.to_string(), "SRF");
        assert_eq!(RfPartition::RfcHit.to_string(), "RFC-hit");
    }
}
