//! Warp execution context: per-lane architectural state and the SIMT
//! reconvergence stack.

use prf_isa::{CtaId, ReconvergenceTable, WARP_SIZE};

/// One entry of the SIMT stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimtEntry {
    /// Next pc for the lanes in this entry.
    pub pc: usize,
    /// Reconvergence pc: when `pc == rpc` the entry pops. `usize::MAX`
    /// encodes "reconverge only at thread exit".
    pub rpc: usize,
    /// Lanes owned by this entry.
    pub mask: u32,
}

/// The SIMT reconvergence stack (GPGPU-Sim style, IPDOM reconvergence).
///
/// Divergence uses the *convert-top* scheme: the diverging entry is turned
/// into the reconvergence entry (it keeps the union mask) and the two paths
/// are pushed above it, taken path on top. Invariants (checked by the
/// property tests in this crate):
///
/// 1. Each entry's mask is a subset of the entry below it.
/// 2. Sibling paths pushed by one divergence are disjoint and union to
///    their parent's mask.
/// 3. Deeper (more recently pushed) entries execute first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimtStack {
    entries: Vec<SimtEntry>,
}

/// Marker rpc for "reconverges at thread exit".
pub const RPC_EXIT: usize = usize::MAX;

impl SimtStack {
    /// Creates a stack with all lanes in `mask` starting at pc 0.
    pub fn new(mask: u32) -> Self {
        SimtStack {
            entries: vec![SimtEntry {
                pc: 0,
                rpc: RPC_EXIT,
                mask,
            }],
        }
    }

    /// Resets the stack to a fresh single entry at pc 0, reusing the
    /// existing entry storage (no allocation).
    pub fn reset(&mut self, mask: u32) {
        self.entries.clear();
        self.entries.push(SimtEntry {
            pc: 0,
            rpc: RPC_EXIT,
            mask,
        });
    }

    /// The active entry (top of stack), if any lanes remain.
    pub fn top(&self) -> Option<SimtEntry> {
        self.entries.last().copied()
    }

    /// Current pc, if the warp is still running.
    pub fn pc(&self) -> Option<usize> {
        self.top().map(|e| e.pc)
    }

    /// Currently active lane mask.
    pub fn active_mask(&self) -> u32 {
        self.top().map_or(0, |e| e.mask)
    }

    /// True when every lane has exited.
    pub fn is_done(&self) -> bool {
        self.entries.is_empty()
    }

    /// Union of all lane masks on the stack (the still-running lanes).
    /// With the convert-top scheme this equals the bottom entry's mask.
    pub fn live_mask(&self) -> u32 {
        self.entries.iter().fold(0, |m, e| m | e.mask)
    }

    /// Test/diagnostic view of the raw entries, bottom first.
    pub fn entries(&self) -> &[SimtEntry] {
        &self.entries
    }

    /// Number of stack entries (divergence depth + 1).
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Advances the top entry to `next_pc` (non-branch fallthrough or a
    /// uniform branch).
    pub fn advance(&mut self, next_pc: usize) {
        let top = self.entries.last_mut().expect("advance on empty stack");
        top.pc = next_pc;
        self.pop_reconverged();
    }

    /// Executes a potentially divergent branch at `pc`.
    ///
    /// `taken` is the sub-mask of the active lanes that take the branch to
    /// `target`; the rest fall through to `pc + 1`. `rt` supplies the
    /// reconvergence point.
    ///
    /// # Panics
    ///
    /// Panics if `taken` contains lanes that are not active.
    pub fn branch(&mut self, pc: usize, target: usize, taken: u32, rt: &ReconvergenceTable) {
        let active = self.active_mask();
        assert_eq!(taken & !active, 0, "taken lanes must be active");
        let not_taken = active & !taken;
        if taken == 0 {
            self.advance(pc + 1);
        } else if not_taken == 0 {
            self.advance(target);
        } else {
            // Divergence: the current top becomes the reconvergence entry;
            // push the fall-through path below the taken path so the taken
            // path executes first (matching GPGPU-Sim's convention).
            let rpc = rt.reconvergence_pc(pc).unwrap_or(RPC_EXIT);
            let top = self.entries.last_mut().expect("branch on empty stack");
            top.pc = rpc;
            self.entries.push(SimtEntry {
                pc: pc + 1,
                rpc,
                mask: not_taken,
            });
            self.entries.push(SimtEntry {
                pc: target,
                rpc,
                mask: taken,
            });
        }
    }

    /// Retires the lanes in `mask` (they executed `Exit`). Removes them
    /// from every entry and pops empty/reconverged entries.
    pub fn exit_lanes(&mut self, mask: u32) {
        for e in &mut self.entries {
            e.mask &= !mask;
        }
        self.entries.retain(|e| e.mask != 0);
        self.pop_reconverged();
    }

    /// Pops entries whose pc has reached their reconvergence point.
    fn pop_reconverged(&mut self) {
        while let Some(top) = self.entries.last() {
            if top.rpc != RPC_EXIT && top.pc == top.rpc {
                self.entries.pop();
            } else {
                break;
            }
        }
    }
}

/// Which long-running operation a warp is blocked on, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarpBlock {
    /// Ready to fetch/issue.
    #[default]
    None,
    /// Waiting at a CTA barrier.
    Barrier,
}

/// Per-warp hardware context on an SM.
#[derive(Debug, Clone)]
pub struct WarpContext {
    /// Hardware warp slot on the SM.
    pub slot: usize,
    /// CTA slot on the SM this warp belongs to.
    pub cta_slot: usize,
    /// Flattened grid-wide CTA id.
    pub cta: CtaId,
    /// Warp index within the CTA.
    pub warp_in_cta: u32,
    /// SIMT reconvergence stack.
    pub stack: SimtStack,
    /// Per-lane register values, lane-major: `regs[lane][reg]`.
    pub regs: Vec<Vec<u32>>,
    /// Per-lane predicate values: `preds[lane][pred]`.
    pub preds: Vec<[bool; prf_isa::NUM_PRED_REGS]>,
    /// Blocking condition.
    pub block: WarpBlock,
    /// Cycle the warp became resident (used by GTO's "oldest" ordering).
    pub dispatch_cycle: u64,
    /// Set once all lanes have exited *and* all in-flight instructions have
    /// written back.
    pub finished: bool,
    /// Number of issued-but-not-retired instructions.
    pub inflight: u32,
}

impl WarpContext {
    /// Creates a resident warp with `regs_per_thread` zeroed registers per
    /// lane and the given initial active mask.
    pub fn new(
        slot: usize,
        cta_slot: usize,
        cta: CtaId,
        warp_in_cta: u32,
        active_mask: u32,
        regs_per_thread: usize,
        dispatch_cycle: u64,
    ) -> Self {
        WarpContext {
            slot,
            cta_slot,
            cta,
            warp_in_cta,
            stack: SimtStack::new(active_mask),
            regs: (0..WARP_SIZE)
                .map(|_| vec![0u32; regs_per_thread])
                .collect(),
            preds: vec![[false; prf_isa::NUM_PRED_REGS]; WARP_SIZE],
            block: WarpBlock::None,
            dispatch_cycle,
            finished: false,
            inflight: 0,
        }
    }

    /// True when the warp has no more lanes to run (it may still have
    /// in-flight instructions).
    pub fn exited(&self) -> bool {
        self.stack.is_done()
    }

    /// Reinitialises a recycled context in place, reusing the register and
    /// predicate storage. After this call the context is indistinguishable
    /// from one built with [`WarpContext::new`] with the same arguments, so
    /// pooling contexts never changes simulation results.
    #[allow(clippy::too_many_arguments)]
    pub fn reinit(
        &mut self,
        slot: usize,
        cta_slot: usize,
        cta: CtaId,
        warp_in_cta: u32,
        active_mask: u32,
        regs_per_thread: usize,
        dispatch_cycle: u64,
    ) {
        self.slot = slot;
        self.cta_slot = cta_slot;
        self.cta = cta;
        self.warp_in_cta = warp_in_cta;
        self.stack.reset(active_mask);
        for lane in self.regs.iter_mut() {
            lane.clear();
            lane.resize(regs_per_thread, 0);
        }
        for p in self.preds.iter_mut() {
            *p = [false; prf_isa::NUM_PRED_REGS];
        }
        self.block = WarpBlock::None;
        self.dispatch_cycle = dispatch_cycle;
        self.finished = false;
        self.inflight = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prf_isa::{CmpOp, KernelBuilder, PredReg, Reg};

    fn diamond_table() -> (prf_isa::Kernel, ReconvergenceTable) {
        let mut kb = KernelBuilder::new("d");
        kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(0), 16); // 0
        let else_ = kb.new_label();
        let join = kb.new_label();
        kb.bra_if(PredReg(0), false, else_); // 1
        kb.mov_imm(Reg(1), 1); // 2
        kb.bra(join); // 3
        kb.place_label(else_);
        kb.mov_imm(Reg(1), 2); // 4
        kb.place_label(join);
        kb.exit(); // 5
        let k = kb.build().unwrap();
        let rt = ReconvergenceTable::compute(&k);
        (k, rt)
    }

    #[test]
    fn uniform_branch_does_not_push() {
        let (_, rt) = diamond_table();
        let mut s = SimtStack::new(u32::MAX);
        s.branch(1, 4, u32::MAX, &rt); // all lanes taken
        assert_eq!(s.depth(), 1);
        assert_eq!(s.pc(), Some(4));
        let mut s2 = SimtStack::new(u32::MAX);
        s2.branch(1, 4, 0, &rt); // no lanes taken
        assert_eq!(s2.depth(), 1);
        assert_eq!(s2.pc(), Some(2));
    }

    #[test]
    fn divergent_branch_pushes_taken_first() {
        let (_, rt) = diamond_table();
        let mut s = SimtStack::new(0xFF);
        s.branch(1, 4, 0x0F, &rt);
        assert_eq!(s.depth(), 3);
        // Taken path on top.
        assert_eq!(s.pc(), Some(4));
        assert_eq!(s.active_mask(), 0x0F);
        // Lanes are conserved.
        assert_eq!(s.live_mask(), 0xFF);
    }

    #[test]
    fn reconvergence_restores_full_mask() {
        let (_, rt) = diamond_table();
        let mut s = SimtStack::new(0xFF);
        s.branch(1, 4, 0x0F, &rt);
        // Taken path: pc4 -> advance to 5 == rpc -> pops to fall-through.
        s.advance(5);
        assert_eq!(s.pc(), Some(2));
        assert_eq!(s.active_mask(), 0xF0);
        // Fall-through: 2 -> 3 (bra join) -> 5 == rpc -> pops to base.
        s.advance(3);
        s.advance(5);
        assert_eq!(s.pc(), Some(5));
        assert_eq!(s.active_mask(), 0xFF);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn exit_lanes_drains_stack() {
        let mut s = SimtStack::new(0b1111);
        s.exit_lanes(0b0011);
        assert_eq!(s.active_mask(), 0b1100);
        assert!(!s.is_done());
        s.exit_lanes(0b1100);
        assert!(s.is_done());
        assert_eq!(s.active_mask(), 0);
        assert_eq!(s.pc(), None);
    }

    #[test]
    fn partial_exit_under_divergence() {
        let (_, rt) = diamond_table();
        let mut s = SimtStack::new(0xFF);
        s.branch(1, 4, 0x0F, &rt);
        // The taken lanes exit entirely (e.g. guarded Exit).
        s.exit_lanes(0x0F);
        // Fall-through entry becomes top.
        assert_eq!(s.pc(), Some(2));
        assert_eq!(s.active_mask(), 0xF0);
        assert_eq!(s.live_mask(), 0xF0);
    }

    #[test]
    #[should_panic(expected = "taken lanes must be active")]
    fn branch_rejects_inactive_taken_lanes() {
        let (_, rt) = diamond_table();
        let mut s = SimtStack::new(0x0F);
        s.branch(1, 4, 0xF0, &rt);
    }

    #[test]
    fn warp_context_initial_state() {
        let w = WarpContext::new(3, 1, CtaId(7), 2, 0xFFFF, 13, 100);
        assert_eq!(w.slot, 3);
        assert_eq!(w.stack.active_mask(), 0xFFFF);
        assert_eq!(w.regs.len(), WARP_SIZE);
        assert_eq!(w.regs[0].len(), 13);
        assert!(!w.exited());
        assert!(!w.finished);
    }

    #[test]
    fn nested_divergence_mask_nesting() {
        let (_, rt) = diamond_table();
        let mut s = SimtStack::new(u32::MAX);
        s.branch(1, 4, 0x0000_FFFF, &rt);
        // Diverge again on the taken path (reusing the same table for the
        // mask bookkeeping check).
        s.branch(1, 4, 0x0000_00FF, &rt);
        let e = s.entries();
        assert_eq!(e.len(), 5);
        // First divergence: e[1] (fall-through) and e[2] (taken, converted
        // to the second divergence's parent) are disjoint siblings that
        // union to the base entry e[0].
        assert_eq!(e[1].mask & e[2].mask, 0);
        assert_eq!(e[1].mask | e[2].mask, e[0].mask);
        // Second divergence: e[3]/e[4] are disjoint siblings under e[2].
        assert_eq!(e[3].mask & e[4].mask, 0);
        assert_eq!(e[3].mask | e[4].mask, e[2].mask);
        // Every child is a subset of its parent.
        assert_eq!(e[3].mask & !e[2].mask, 0);
        assert_eq!(e[4].mask & !e[2].mask, 0);
        assert_eq!(s.live_mask(), u32::MAX);
    }
}
