//! Simulator configuration (the paper's Table II).

use std::fmt;

/// Warp-scheduler policy.
///
/// The paper evaluates the proposed register file under GTO, the two-level
/// (TL) scheduler that the RFC design requires, and the fetch-group
/// scheduler, reporting "consistent performance across all the schedulers"
/// (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Greedy-then-oldest: keep issuing from the last-issued warp; on stall
    /// fall back to the oldest ready warp.
    Gto,
    /// Loose round-robin.
    Lrr,
    /// Two-level scheduler (Gebhart et al., ISCA 2011): a small *active*
    /// pool issues; warps that hit a long-latency dependence are demoted to
    /// the pending pool and replaced. Required by the RFC baseline, which
    /// flushes a warp's cache entries on demotion.
    TwoLevel {
        /// Active-pool size per scheduler (warps).
        active_per_scheduler: usize,
    },
    /// Fetch-group scheduling (Narasiman et al., MICRO 2011): warps are
    /// grouped; one group is prioritised until it stalls, then the next.
    FetchGroup {
        /// Warps per fetch group.
        group_size: usize,
    },
}

impl SchedulerPolicy {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerPolicy::Gto => "GTO",
            SchedulerPolicy::Lrr => "LRR",
            SchedulerPolicy::TwoLevel { .. } => "TL",
            SchedulerPolicy::FetchGroup { .. } => "FG",
        }
    }
}

impl fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Full GPU configuration.
///
/// Defaults come from the paper's Table II (Kepler GTX-780-like):
/// 15 SMs, 64 warps/SM, 4 schedulers × 2-issue, 24 RF banks, 24 operand
/// collectors, 256 KB RF per SM.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Hardware warp slots per SM.
    pub max_warps_per_sm: usize,
    /// Maximum resident CTAs per SM.
    pub max_ctas_per_sm: usize,
    /// Warp schedulers per SM.
    pub num_schedulers: usize,
    /// Instructions each scheduler may issue per cycle.
    pub issue_per_scheduler: usize,
    /// Register-file banks per SM.
    pub num_rf_banks: usize,
    /// Operand-collector units per SM.
    pub num_collectors: usize,
    /// Register file capacity in 32-bit registers (256 KB → 65536).
    pub rf_registers: usize,
    /// Scheduling policy.
    pub scheduler: SchedulerPolicy,
    /// Integer-ALU result latency (cycles).
    pub alu_latency: u32,
    /// FP-unit result latency (cycles).
    pub fp_latency: u32,
    /// Special-function-unit result latency (cycles).
    pub sfu_latency: u32,
    /// Shared-memory access latency (cycles).
    pub shared_mem_latency: u32,
    /// Global-memory L1 hit latency (cycles).
    pub l1_hit_latency: u32,
    /// Global-memory L1 miss (DRAM round-trip) latency (cycles).
    pub l1_miss_latency: u32,
    /// L1 cache lines (128-byte lines, fully associative LRU model).
    pub l1_lines: usize,
    /// Whether RF banks are pipelined: a bank accepts a new request every
    /// cycle and a multi-cycle access only delays the data (the paper's
    /// operating assumption — the SRF's 3 cycles cost latency, not
    /// throughput). Clear for the unpipelined-bank ablation.
    pub rf_pipelined: bool,
    /// Global memory size in 32-bit words (addresses wrap modulo this).
    pub global_mem_words: usize,
    /// Shared memory size per CTA in 32-bit words.
    pub shared_mem_words: usize,
    /// Collect per-warp per-register access counts (needed only by the
    /// §III-A2 code-dynamics analysis; costs memory on big launches).
    pub per_warp_stats: bool,
    /// Issue-jitter divisor: each cycle, a warp is skipped for issue with
    /// probability `1/issue_jitter` (deterministic hash of cycle and
    /// slot). Models the fetch/i-buffer hiccups real pipelines have and
    /// prevents the perfectly regular synthetic warps from phase-locking.
    /// 0 disables jitter.
    pub issue_jitter: u32,
    /// Seed mixed into the issue-jitter hash. Experiments average over a
    /// few seeds to wash out timing-resonance noise, as one would average
    /// over multiple measured runs on hardware.
    pub jitter_seed: u64,
    /// Minimum cycles between CTA dispatches to the same SM. Real GPUs
    /// take tens of cycles to initialise a CTA's state; modelling this
    /// staggers otherwise lock-step CTA waves and breaks artificial
    /// memory-burst resonance.
    pub cta_dispatch_interval: u64,
    /// Safety limit: abort if a kernel exceeds this many cycles.
    pub max_cycles: u64,
    /// Per-SM pipeline-trace ring capacity (events). 0 disables tracing.
    pub trace_capacity: usize,
    /// Sampled time-series telemetry: when set, each SM records
    /// cycle-windowed counter deltas (IPC, per-partition RF traffic,
    /// active warps, FRF mode, stall breakdown) into a preallocated
    /// buffer ([`crate::sampling`]). `None` (the default) records nothing
    /// and costs one branch per SM per cycle.
    pub sampling: Option<crate::sampling::SamplingConfig>,
    /// Run the conservation-invariant auditor ([`crate::audit`]): every
    /// pipeline event is counted and cross-checked against the statistics
    /// counters at end of run. Costs a few percent of simulation speed;
    /// off by default, on in integration tests and under `--audit` in the
    /// figure binaries.
    pub audit: bool,
    /// Worker threads for intra-simulation SM parallelism: each cycle, the
    /// SMs step concurrently on a persistent scoped pool and their buffered
    /// global-memory writes commit in SM-id order at the cycle barrier, so
    /// the result is bit-identical to the serial loop. `1` (the default)
    /// keeps the serial loop; values above `num_sms` are clamped. Plumbed
    /// from `PRF_SM_THREADS` by the experiment harness.
    pub sm_threads: usize,
    /// Skip-ahead over fully-stalled spans: when no warp on any SM can
    /// issue and every pending event (LSU completion, execution-pipe
    /// result, collector data return, CTA-dispatch window) lies strictly
    /// beyond the next cycle, the driver fast-forwards to the earliest
    /// such event, replaying only the per-cycle bookkeeping (stall
    /// classification, RF-model tick, sampling) the serial loop would have
    /// performed. Exact by construction — disabled automatically for
    /// schedulers whose prioritisation mutates state on idle cycles
    /// (two-level, fetch-group).
    pub skip_ahead: bool,
}

impl GpuConfig {
    /// The paper's Kepler GTX-780-like configuration (Table II).
    pub fn kepler_gtx780() -> Self {
        GpuConfig {
            num_sms: 15,
            max_warps_per_sm: 64,
            max_ctas_per_sm: 16,
            num_schedulers: 4,
            issue_per_scheduler: 2,
            num_rf_banks: 24,
            num_collectors: 24,
            rf_registers: 256 * 1024 / 4,
            scheduler: SchedulerPolicy::Gto,
            alu_latency: 4,
            fp_latency: 4,
            sfu_latency: 16,
            shared_mem_latency: 24,
            l1_hit_latency: 28,
            l1_miss_latency: 220,
            l1_lines: 256, // 32 KB of 128-byte lines
            rf_pipelined: true,
            global_mem_words: 1 << 22, // 16 MB
            shared_mem_words: 48 * 1024 / 4,
            per_warp_stats: false,
            issue_jitter: 13,
            jitter_seed: 0,
            cta_dispatch_interval: 25,
            max_cycles: 50_000_000,
            trace_capacity: 0,
            sampling: None,
            audit: false,
            sm_threads: 1,
            skip_ahead: true,
        }
    }

    /// A single-SM version of [`GpuConfig::kepler_gtx780`], used by most
    /// experiments: register-file behaviour is per-SM, so simulating one SM
    /// with its share of CTAs produces the same RF statistics faster (the
    /// standard methodology for RF studies).
    pub fn kepler_single_sm() -> Self {
        GpuConfig {
            num_sms: 1,
            ..Self::kepler_gtx780()
        }
    }

    /// Maximum issue width per SM per cycle (8 for the default config —
    /// "at most 8 instructions can be issued every cycle", §IV-C).
    pub fn issue_width(&self) -> usize {
        self.num_schedulers * self.issue_per_scheduler
    }

    /// How many CTAs of the given shape fit on one SM simultaneously,
    /// limited by CTA slots, warp slots, and register-file capacity.
    pub fn max_resident_ctas(&self, threads_per_cta: u32, regs_per_thread: u8) -> usize {
        let warps_per_cta = threads_per_cta.div_ceil(32) as usize;
        let by_warps = self.max_warps_per_sm / warps_per_cta.max(1);
        let regs_per_cta = threads_per_cta as usize * regs_per_thread.max(1) as usize;
        let by_regs = self
            .rf_registers
            .checked_div(regs_per_cta)
            .unwrap_or(self.max_ctas_per_sm);
        self.max_ctas_per_sm.min(by_warps).min(by_regs).max(1)
    }

    /// Checks internal consistency, returning the first offending field
    /// as a typed [`crate::validate::ValidationError`].
    pub fn check(&self) -> Result<(), crate::validate::ValidationError> {
        crate::validate::check_config(self)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any structural parameter is zero or global memory is not
    /// a power of two. [`GpuConfig::check`] is the non-panicking form.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::kepler_gtx780()
    }
}

impl fmt::Display for GpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "GPU configuration (Table II):")?;
        writeln!(f, "  SMs                      {}", self.num_sms)?;
        writeln!(f, "  warps/SM                 {}", self.max_warps_per_sm)?;
        writeln!(
            f,
            "  schedulers x issue       {} x {}",
            self.num_schedulers, self.issue_per_scheduler
        )?;
        writeln!(
            f,
            "  RF banks / collectors    {} / {}",
            self.num_rf_banks, self.num_collectors
        )?;
        writeln!(
            f,
            "  RF size                  {} KB",
            self.rf_registers * 4 / 1024
        )?;
        writeln!(f, "  scheduler                {}", self.scheduler)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kepler_matches_table2() {
        let c = GpuConfig::kepler_gtx780();
        assert_eq!(c.num_sms, 15);
        assert_eq!(c.max_warps_per_sm, 64);
        assert_eq!(c.num_rf_banks, 24);
        assert_eq!(c.num_collectors, 24);
        assert_eq!(c.rf_registers * 4, 256 * 1024);
        assert_eq!(c.issue_width(), 8);
        c.validate();
    }

    #[test]
    fn resident_cta_limits() {
        let c = GpuConfig::kepler_gtx780();
        // 256 threads, 13 regs (backprop): warp limit = 64/8 = 8 CTAs;
        // register limit = 65536/(256*13) = 19 -> warp-bound 8.
        assert_eq!(c.max_resident_ctas(256, 13), 8);
        // 1024 threads (stencil): 64/32 = 2 CTAs.
        assert_eq!(c.max_resident_ctas(1024, 15), 2);
        // Tiny CTAs (nw, 16 threads): CTA-slot bound, 16.
        assert_eq!(c.max_resident_ctas(16, 21), 16);
        // Register-hungry: 512 threads x 27 regs = 13824 regs/CTA ->
        // 65536/13824 = 4 CTAs (< warp bound of 4... equal) -> 4.
        assert_eq!(c.max_resident_ctas(512, 27), 4);
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(SchedulerPolicy::Gto.name(), "GTO");
        assert_eq!(
            SchedulerPolicy::TwoLevel {
                active_per_scheduler: 8
            }
            .name(),
            "TL"
        );
        assert_eq!(SchedulerPolicy::FetchGroup { group_size: 8 }.name(), "FG");
        assert_eq!(SchedulerPolicy::Lrr.to_string(), "LRR");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn validate_rejects_non_pow2_memory() {
        let c = GpuConfig {
            global_mem_words: 1000,
            ..GpuConfig::kepler_gtx780()
        };
        c.validate();
    }

    #[test]
    fn display_mentions_key_params() {
        let s = GpuConfig::kepler_gtx780().to_string();
        assert!(s.contains("256 KB"));
        assert!(s.contains("4 x 2"));
    }
}
