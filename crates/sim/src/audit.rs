//! Conservation-invariant auditing for the accounting chain.
//!
//! The paper's headline numbers are ratios of counters that flow from the
//! SM pipeline (`SmStats`) through model telemetry into the energy model.
//! Silent counter drift in a GPU simulator produces plausible-but-wrong
//! figures, and the risk compounds once runs fan out across worker threads.
//! The auditor subscribes to the same pipeline event stream as the trace
//! ring ([`crate::trace`]) — but as unbounded counters rather than a
//! bounded ring — and verifies conservation laws when the run ends:
//!
//! * **issue conservation** — `SmStats::instructions` equals observed
//!   [`TraceEvent::Issue`] events;
//! * **RF-port conservation** — `SmStats::partition_accesses` equals
//!   observed [`TraceEvent::RfRead`]/[`TraceEvent::RfWrite`] grants, per
//!   partition and access kind;
//! * **scoreboard conservation** — every [`TraceEvent::ScoreboardReserve`]
//!   has a matching [`TraceEvent::ScoreboardRelease`]; no warp finishes
//!   with reservations outstanding;
//! * **collector conservation** — every allocated collector entry collects
//!   exactly once ([`TraceEvent::Collect`]);
//! * **memory-pipeline conservation** — memory-side collects equal LSU
//!   completions equal `SmStats::mem_instructions`;
//! * **writeback conservation** — completed destination writes
//!   ([`TraceEvent::Writeback`]) equal granted RF write ports.
//!
//! Enable it with `GpuConfig::audit`; the per-SM reports are merged into
//! `SimResult::audit`. `prf-core` extends the chain across crates: RFC
//! write-backs recorded in telemetry must equal dirty-evict events reported
//! by the model, and the dynamic energy recomputed from raw events must
//! match the telemetry-derived value.
//!
//! A violated invariant never panics mid-run: violations carry cycle / SM /
//! warp provenance in a structured [`AuditReport`] so a broken counter in a
//! 10-million-cycle batch run is diagnosable after the fact.

use std::fmt;

use crate::rf::{AccessKind, RepairKind, RfPartition};
use crate::stats::{PartitionAccessCounts, SmStats};
use crate::trace::TraceEvent;

/// One violated invariant, with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Which conservation law was violated.
    pub invariant: &'static str,
    /// Cycle at which the violation was detected (for end-of-run checks,
    /// the final cycle of the run).
    pub cycle: u64,
    /// SM the violation belongs to; `None` for cross-SM / cross-crate
    /// checks.
    pub sm: Option<usize>,
    /// Warp slot, when the violation is warp-local.
    pub warp: Option<usize>,
    /// Human-readable mismatch description (expected vs observed).
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] cycle {}", self.invariant, self.cycle)?;
        if let Some(sm) = self.sm {
            write!(f, " sm{sm}")?;
        }
        if let Some(w) = self.warp {
            write!(f, " w{w}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The outcome of an audited run: raw event totals plus any violations.
///
/// Reports merge across SMs, launches, and seeds; event counters add up and
/// violations concatenate, so one report summarises an arbitrarily large
/// experiment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Observed `Issue` events.
    pub issue_events: u64,
    /// Observed `Collect` events (operand gathering completed).
    pub collect_events: u64,
    /// RF port grants rebuilt from `RfRead`/`RfWrite` events — an
    /// independent copy of `SmStats::partition_accesses`.
    pub rf_events: PartitionAccessCounts,
    /// Observed `Writeback` events (destination write completed).
    pub writeback_events: u64,
    /// Observed `LsuComplete` events (LSU / shared-memory unit).
    pub lsu_complete_events: u64,
    /// Observed `ScoreboardReserve` events.
    pub sb_reserve_events: u64,
    /// Observed `ScoreboardRelease` events.
    pub sb_release_events: u64,
    /// Dirty-eviction write-backs reported by the register-file model
    /// (RFC); cross-checked against telemetry by `prf-core`.
    pub rfc_evict_events: u64,
    /// Observed `RfRepair` events, dense by [`RepairKind::index`]
    /// (remapped, spilled, escalated); cross-checked per kind against
    /// `SmStats::rf_repairs` here and against telemetry by `prf-core`.
    pub rf_repair_events: [u64; 3],
    /// Invariant checks evaluated.
    pub checks: u64,
    /// Violations found (empty on a clean run).
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total observed repair events of any kind (faulty accesses kept
    /// usable: remapped + spilled + escalated).
    pub fn total_repair_events(&self) -> u64 {
        self.rf_repair_events.iter().sum()
    }

    /// Folds another report (another SM, launch, or seed) into this one.
    pub fn merge(&mut self, other: &AuditReport) {
        self.issue_events += other.issue_events;
        self.collect_events += other.collect_events;
        self.rf_events.merge(&other.rf_events);
        self.writeback_events += other.writeback_events;
        self.lsu_complete_events += other.lsu_complete_events;
        self.sb_reserve_events += other.sb_reserve_events;
        self.sb_release_events += other.sb_release_events;
        self.rfc_evict_events += other.rfc_evict_events;
        for (a, b) in self
            .rf_repair_events
            .iter_mut()
            .zip(other.rf_repair_events.iter())
        {
            *a += b;
        }
        self.checks += other.checks;
        self.violations.extend(other.violations.iter().cloned());
    }

    /// Records one equality check between two counters; a mismatch becomes
    /// a violation carrying `cycle`/`sm` provenance.
    pub fn check_counts(
        &mut self,
        invariant: &'static str,
        expected: u64,
        observed: u64,
        cycle: u64,
        sm: Option<usize>,
    ) {
        self.checks += 1;
        if expected != observed {
            self.violations.push(AuditViolation {
                invariant,
                cycle,
                sm,
                warp: None,
                detail: format!("expected {expected}, observed {observed}"),
            });
        }
    }

    /// Records one closeness check between two floating-point quantities
    /// (used for the energy recomputation); tolerance is
    /// `tol * max(1, |expected|)`.
    pub fn check_close(
        &mut self,
        invariant: &'static str,
        expected: f64,
        observed: f64,
        tol: f64,
        cycle: u64,
    ) {
        self.checks += 1;
        if (expected - observed).abs() > tol * expected.abs().max(1.0) {
            self.violations.push(AuditViolation {
                invariant,
                cycle,
                sm: None,
                warp: None,
                detail: format!("expected {expected}, observed {observed} (tol {tol})"),
            });
        }
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit: {} checks, {} violations",
            self.checks,
            self.violations.len()
        )?;
        for v in &self.violations {
            write!(f, "\n  {v}")?;
        }
        Ok(())
    }
}

/// Per-SM event accumulator. Created by the SM when `GpuConfig::audit` is
/// set; fed every pipeline event at emission time; finalised against the
/// SM's own `SmStats` when the run ends.
#[derive(Debug, Clone)]
pub struct Auditor {
    sm: usize,
    issues: u64,
    collects_exec: u64,
    collects_mem: u64,
    collector_allocs: u64,
    rf_events: PartitionAccessCounts,
    rf_repairs: [u64; 3],
    writebacks: u64,
    lsu_completes: u64,
    sb_reserves: u64,
    sb_releases: u64,
    /// Outstanding scoreboard reservations per warp slot.
    outstanding: Vec<u64>,
    violations: Vec<AuditViolation>,
}

impl Auditor {
    /// A fresh auditor for SM `sm` with `max_warps` hardware warp slots.
    pub fn new(sm: usize, max_warps: usize) -> Self {
        Auditor {
            sm,
            issues: 0,
            collects_exec: 0,
            collects_mem: 0,
            collector_allocs: 0,
            rf_events: PartitionAccessCounts::new(),
            rf_repairs: [0; 3],
            writebacks: 0,
            lsu_completes: 0,
            sb_reserves: 0,
            sb_releases: 0,
            outstanding: vec![0; max_warps],
            violations: Vec::new(),
        }
    }

    /// Consumes one pipeline event (the same stream the trace ring sees).
    pub fn observe(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Issue { .. } => self.issues += 1,
            TraceEvent::Collect { mem, .. } => {
                if mem {
                    self.collects_mem += 1;
                } else {
                    self.collects_exec += 1;
                }
            }
            TraceEvent::RfRead { partition, .. } => {
                self.rf_events.record(partition, AccessKind::Read);
            }
            TraceEvent::RfWrite { partition, .. } => {
                self.rf_events.record(partition, AccessKind::Write);
            }
            TraceEvent::RfRepair { repair, .. } => {
                self.rf_repairs[repair.index()] += 1;
            }
            TraceEvent::Writeback { .. } => self.writebacks += 1,
            TraceEvent::LsuComplete { .. } => self.lsu_completes += 1,
            TraceEvent::ScoreboardReserve { warp, .. } => {
                self.sb_reserves += 1;
                self.outstanding[warp] += 1;
            }
            TraceEvent::ScoreboardRelease { cycle, warp, .. } => {
                self.sb_releases += 1;
                match self.outstanding[warp].checked_sub(1) {
                    Some(n) => self.outstanding[warp] = n,
                    None => self.violations.push(AuditViolation {
                        invariant: "scoreboard conservation",
                        cycle,
                        sm: Some(self.sm),
                        warp: Some(warp),
                        detail: "release without a matching reserve".to_string(),
                    }),
                }
            }
            TraceEvent::WarpFinish { cycle, warp, .. } => {
                if self.outstanding[warp] != 0 {
                    self.violations.push(AuditViolation {
                        invariant: "scoreboard conservation",
                        cycle,
                        sm: Some(self.sm),
                        warp: Some(warp),
                        detail: format!(
                            "warp finished with {} outstanding reservation(s)",
                            self.outstanding[warp]
                        ),
                    });
                }
            }
            TraceEvent::CtaDispatch { .. } | TraceEvent::BarrierWait { .. } => {}
        }
    }

    /// Notes one operand-collector entry allocation (not a trace event:
    /// allocation is internal to issue, but its count must balance the
    /// `Collect` events).
    pub fn note_collector_alloc(&mut self) {
        self.collector_allocs += 1;
    }

    /// Flags a warp that finished while its scoreboard still had pending
    /// bits set (called by the SM, which owns the scoreboards).
    pub fn note_unclear_scoreboard(&mut self, warp: usize, pending: u32, cycle: u64) {
        self.violations.push(AuditViolation {
            invariant: "scoreboard conservation",
            cycle,
            sm: Some(self.sm),
            warp: Some(warp),
            detail: format!("scoreboard has {pending} pending bit(s) at warp finish"),
        });
    }

    /// Runs the end-of-run checks against the SM's independently maintained
    /// statistics and produces the report. `rfc_evictions` is the model's
    /// own dirty-evict count (0 for models without a cache).
    pub fn finish(self, stats: &SmStats, rfc_evictions: u64, final_cycle: u64) -> AuditReport {
        let sm = self.sm;
        let mut report = AuditReport {
            issue_events: self.issues,
            collect_events: self.collects_exec + self.collects_mem,
            rf_events: self.rf_events,
            writeback_events: self.writebacks,
            lsu_complete_events: self.lsu_completes,
            sb_reserve_events: self.sb_reserves,
            sb_release_events: self.sb_releases,
            rfc_evict_events: rfc_evictions,
            rf_repair_events: self.rf_repairs,
            checks: 0,
            violations: self.violations,
        };

        report.check_counts(
            "issue conservation",
            stats.instructions,
            report.issue_events,
            final_cycle,
            Some(sm),
        );
        for p in RfPartition::ALL {
            // Borrow dance: `check_counts` needs `&mut report` while the
            // counts are read out of it first.
            let (er, ew) = (
                stats.partition_accesses.reads(p),
                stats.partition_accesses.writes(p),
            );
            let (or, ow) = (report.rf_events.reads(p), report.rf_events.writes(p));
            report.check_counts(
                "RF-port conservation (reads)",
                er,
                or,
                final_cycle,
                Some(sm),
            );
            report.check_counts(
                "RF-port conservation (writes)",
                ew,
                ow,
                final_cycle,
                Some(sm),
            );
        }
        report.check_counts(
            "scoreboard conservation",
            report.sb_reserve_events,
            report.sb_release_events,
            final_cycle,
            Some(sm),
        );
        report.check_counts(
            "collector conservation",
            self.collector_allocs,
            report.collect_events,
            final_cycle,
            Some(sm),
        );
        report.check_counts(
            "memory-pipeline conservation (collect->submit)",
            self.collects_mem,
            report.lsu_complete_events,
            final_cycle,
            Some(sm),
        );
        report.check_counts(
            "memory-pipeline conservation (stats)",
            stats.mem_instructions,
            report.lsu_complete_events,
            final_cycle,
            Some(sm),
        );
        report.check_counts(
            "writeback conservation",
            report.rf_events.total_writes(),
            report.writeback_events,
            final_cycle,
            Some(sm),
        );
        for k in RepairKind::ALL {
            let expected = stats.repairs(k);
            let observed = report.rf_repair_events[k.index()];
            report.check_counts(
                "RF-repair conservation",
                expected,
                observed,
                final_cycle,
                Some(sm),
            );
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds a minimal, perfectly balanced event stream: one ALU
    /// instruction (2 reads, 1 write) issued, collected, written back.
    fn balanced_auditor() -> (Auditor, SmStats) {
        let mut a = Auditor::new(0, 4);
        let sm = 0;
        a.observe(&TraceEvent::Issue {
            cycle: 1,
            sm,
            warp: 0,
            pc: 0,
        });
        a.observe(&TraceEvent::ScoreboardReserve {
            cycle: 1,
            sm,
            warp: 0,
        });
        a.note_collector_alloc();
        for _ in 0..2 {
            a.observe(&TraceEvent::RfRead {
                cycle: 2,
                sm,
                partition: RfPartition::MrfStv,
            });
        }
        a.observe(&TraceEvent::Collect {
            cycle: 3,
            sm,
            warp: 0,
            mem: false,
        });
        a.observe(&TraceEvent::ScoreboardRelease {
            cycle: 7,
            sm,
            warp: 0,
        });
        a.observe(&TraceEvent::RfWrite {
            cycle: 7,
            sm,
            partition: RfPartition::MrfStv,
        });
        a.observe(&TraceEvent::Writeback {
            cycle: 8,
            sm,
            warp: 0,
            reg: prf_isa::Reg(1),
        });
        a.observe(&TraceEvent::WarpFinish {
            cycle: 9,
            sm,
            warp: 0,
        });

        let mut stats = SmStats::new();
        stats.instructions = 1;
        stats
            .partition_accesses
            .record(RfPartition::MrfStv, AccessKind::Read);
        stats
            .partition_accesses
            .record(RfPartition::MrfStv, AccessKind::Read);
        stats
            .partition_accesses
            .record(RfPartition::MrfStv, AccessKind::Write);
        (a, stats)
    }

    #[test]
    fn balanced_stream_is_clean() {
        let (a, stats) = balanced_auditor();
        let report = a.finish(&stats, 0, 10);
        assert!(report.is_clean(), "{report}");
        assert!(report.checks >= 6);
        assert_eq!(report.issue_events, 1);
        assert_eq!(report.rf_events.total(), 3);
        assert_eq!(report.writeback_events, 1);
    }

    #[test]
    fn tampered_instruction_counter_is_caught_with_provenance() {
        // The mutation test the harness exists for: a silently drifted
        // counter must surface as a violation naming the cycle and SM.
        let (a, mut stats) = balanced_auditor();
        stats.instructions += 1;
        let report = a.finish(&stats, 0, 1234);
        assert!(!report.is_clean());
        let v = &report.violations[0];
        assert_eq!(v.invariant, "issue conservation");
        assert_eq!(v.cycle, 1234);
        assert_eq!(v.sm, Some(0));
        assert!(v.detail.contains("expected 2, observed 1"));
        assert!(v.to_string().contains("cycle 1234 sm0"));
    }

    #[test]
    fn release_without_reserve_is_flagged_at_its_cycle() {
        let mut a = Auditor::new(3, 2);
        a.observe(&TraceEvent::ScoreboardRelease {
            cycle: 42,
            sm: 3,
            warp: 1,
        });
        let report = a.finish(&SmStats::new(), 0, 100);
        let v = report
            .violations
            .iter()
            .find(|v| v.detail.contains("without a matching reserve"))
            .expect("must flag the stray release");
        assert_eq!(v.cycle, 42);
        assert_eq!(v.sm, Some(3));
        assert_eq!(v.warp, Some(1));
    }

    #[test]
    fn warp_finish_with_outstanding_reserve_is_flagged() {
        let mut a = Auditor::new(0, 2);
        a.observe(&TraceEvent::ScoreboardReserve {
            cycle: 5,
            sm: 0,
            warp: 0,
        });
        a.observe(&TraceEvent::WarpFinish {
            cycle: 9,
            sm: 0,
            warp: 0,
        });
        let report = a.finish(&SmStats::new(), 0, 10);
        assert!(report
            .violations
            .iter()
            .any(|v| v.detail.contains("outstanding reservation")));
    }

    #[test]
    fn reports_merge_counters_and_violations() {
        let (a, stats) = balanced_auditor();
        let clean = a.finish(&stats, 2, 10);
        let (b, mut broken_stats) = balanced_auditor();
        broken_stats.mem_instructions = 7;
        let dirty = b.finish(&broken_stats, 3, 10);

        let mut merged = AuditReport::default();
        merged.merge(&clean);
        merged.merge(&dirty);
        assert_eq!(merged.issue_events, 2);
        assert_eq!(merged.rfc_evict_events, 5);
        assert_eq!(merged.checks, clean.checks + dirty.checks);
        assert_eq!(merged.violations.len(), 1);
        assert!(!merged.is_clean());
    }

    #[test]
    fn repair_events_balance_against_stats() {
        let (mut a, mut stats) = balanced_auditor();
        a.observe(&TraceEvent::RfRepair {
            cycle: 2,
            sm: 0,
            repair: RepairKind::Remapped,
        });
        a.observe(&TraceEvent::RfRepair {
            cycle: 7,
            sm: 0,
            repair: RepairKind::Spilled,
        });
        stats.record_repair(RepairKind::Remapped);
        stats.record_repair(RepairKind::Spilled);
        let report = a.finish(&stats, 0, 10);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.rf_repair_events, [1, 1, 0]);
        assert_eq!(report.total_repair_events(), 2);
    }

    #[test]
    fn dropped_repair_event_is_caught() {
        // The model repaired an access (stats counter bumped) but the
        // pipeline never emitted the RfRepair event: conservation breaks.
        let (a, mut stats) = balanced_auditor();
        stats.record_repair(RepairKind::Escalated);
        let report = a.finish(&stats, 0, 10);
        assert!(!report.is_clean());
        let v = report
            .violations
            .iter()
            .find(|v| v.invariant == "RF-repair conservation")
            .expect("must flag the dropped repair");
        assert!(v.detail.contains("expected 1, observed 0"));
    }

    #[test]
    fn merged_reports_sum_repair_events() {
        let mut a = AuditReport {
            rf_repair_events: [1, 2, 3],
            ..AuditReport::default()
        };
        let b = AuditReport {
            rf_repair_events: [10, 0, 1],
            ..AuditReport::default()
        };
        a.merge(&b);
        assert_eq!(a.rf_repair_events, [11, 2, 4]);
        assert_eq!(a.total_repair_events(), 17);
    }

    #[test]
    fn check_close_tolerates_and_flags() {
        let mut r = AuditReport::default();
        r.check_close("energy recomputation", 1e6, 1e6 + 1e-4, 1e-9, 0);
        assert!(r.is_clean(), "within relative tolerance");
        r.check_close("energy recomputation", 1e6, 1e6 + 10.0, 1e-9, 99);
        assert!(!r.is_clean());
        assert_eq!(r.violations[0].cycle, 99);
        assert_eq!(r.checks, 2);
    }

    #[test]
    fn display_lists_violations() {
        let mut r = AuditReport::default();
        r.check_counts("issue conservation", 5, 4, 10, Some(1));
        let s = r.to_string();
        assert!(s.contains("1 violations"));
        assert!(s.contains("[issue conservation] cycle 10 sm1"));
    }
}
