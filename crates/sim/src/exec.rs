//! Functional execution of one warp instruction across its active lanes.
//!
//! The simulator is *functional-first*: architectural state (registers,
//! predicates, memories, the SIMT stack) is updated at issue time, while
//! timing (operand collection, bank conflicts, execution and memory
//! latencies) is modelled separately. The scoreboard guarantees that the
//! timing model never issues an instruction whose inputs are still in
//! flight, so the functional-first shortcut cannot produce value anomalies
//! visible to the timing model.

use prf_isa::{Dst, Instruction, Opcode, Operand, ReconvergenceTable, SpecialReg, WARP_SIZE};

use crate::mem::{GmemView, SharedMemory};
use crate::warp::WarpContext;

/// Geometry facts the executor needs to evaluate special registers.
#[derive(Debug, Clone, Copy)]
pub struct ExecEnv {
    /// Threads per CTA.
    pub threads_per_cta: u32,
    /// Number of CTAs in the grid.
    pub num_ctas: u32,
}

/// The side effects of executing one instruction, as relevant to timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Word addresses touched per active lane (for coalescing), if the
    /// instruction was a global memory access.
    pub global_addrs: Vec<u32>,
    /// True if the instruction was a shared-memory access.
    pub shared_access: bool,
    /// True if the warp hit a barrier and is now blocked.
    pub hit_barrier: bool,
    /// Lanes that exited.
    pub exited_mask: u32,
    /// Lanes active when the instruction executed.
    pub active_lanes: u32,
    /// The instruction was a branch, and whether it diverged.
    pub branch: Option<bool>,
}

impl ExecOutcome {
    fn none() -> Self {
        ExecOutcome {
            global_addrs: Vec::new(),
            shared_access: false,
            hit_barrier: false,
            exited_mask: 0,
            active_lanes: 0,
            branch: None,
        }
    }

    /// An empty outcome reusing `addrs` as the address buffer — the SM's
    /// issue path recycles retired instructions' buffers through a pool so
    /// steady-state execution performs no per-instruction allocation.
    pub fn with_buffer(mut addrs: Vec<u32>) -> Self {
        addrs.clear();
        ExecOutcome {
            global_addrs: addrs,
            ..Self::none()
        }
    }
}

impl Default for ExecOutcome {
    fn default() -> Self {
        Self::none()
    }
}

fn lane_operand(warp: &WarpContext, env: &ExecEnv, lane: usize, op: Operand) -> u32 {
    match op {
        Operand::Reg(r) => warp.regs[lane][r.index()],
        Operand::Imm(v) => v,
        Operand::Special(s) => {
            let tid = warp.warp_in_cta * WARP_SIZE as u32 + lane as u32;
            match s {
                SpecialReg::TidX => tid,
                SpecialReg::CtaIdX => warp.cta.0,
                SpecialReg::NTidX => env.threads_per_cta,
                SpecialReg::NCtaIdX => env.num_ctas,
                SpecialReg::LaneId => lane as u32,
                SpecialReg::WarpId => warp.warp_in_cta,
                SpecialReg::GlobalTid => warp.cta.0 * env.threads_per_cta + tid,
            }
        }
    }
}

/// Executes the instruction at the warp's current pc, updating the warp's
/// architectural state, the SIMT stack, and the memories.
///
/// Returns the [`ExecOutcome`] the timing model needs. The caller must have
/// fetched `instr` from the warp's current pc.
///
/// # Panics
///
/// Panics if the warp has already exited.
pub fn execute_warp_instruction(
    warp: &mut WarpContext,
    instr: &Instruction,
    rt: &ReconvergenceTable,
    env: &ExecEnv,
    global: &mut GmemView<'_>,
    shared: &mut SharedMemory,
) -> ExecOutcome {
    let mut outcome = ExecOutcome::none();
    execute_warp_instruction_into(warp, instr, rt, env, global, shared, &mut outcome);
    outcome
}

/// [`execute_warp_instruction`] writing into a caller-provided outcome
/// (typically built with [`ExecOutcome::with_buffer`] from a recycled
/// address buffer, keeping the issue path allocation-free).
#[allow(clippy::missing_panics_doc)] // same contract as the wrapper above
pub fn execute_warp_instruction_into(
    warp: &mut WarpContext,
    instr: &Instruction,
    rt: &ReconvergenceTable,
    env: &ExecEnv,
    global: &mut GmemView<'_>,
    shared: &mut SharedMemory,
    outcome: &mut ExecOutcome,
) {
    let pc = warp.stack.pc().expect("executing an exited warp");
    let active = warp.stack.active_mask();
    outcome.active_lanes = active.count_ones();

    // Lanes where the guard holds.
    let guard_mask = match &instr.guard {
        None => active,
        Some(g) => {
            let mut m = 0u32;
            for lane in 0..WARP_SIZE {
                if active & (1 << lane) != 0 && warp.preds[lane][g.pred.index()] == g.expected {
                    m |= 1 << lane;
                }
            }
            m
        }
    };

    match instr.opcode {
        Opcode::Bra => {
            let target = instr.target.expect("validated branch has a target");
            let not_taken = active & !guard_mask;
            outcome.branch = Some(guard_mask != 0 && not_taken != 0);
            warp.stack.branch(pc, target, guard_mask, rt);
            return;
        }
        Opcode::Exit => {
            // Exit applies to guarded lanes; unguarded exit retires all
            // active lanes.
            outcome.exited_mask = guard_mask;
            let survivors = active & !guard_mask;
            if survivors != 0 {
                // Guarded exit with survivors: survivors fall through.
                warp.stack.exit_lanes(guard_mask);
                if warp.stack.pc() == Some(pc) {
                    warp.stack.advance(pc + 1);
                }
            } else {
                warp.stack.exit_lanes(guard_mask);
            }
            return;
        }
        Opcode::Bar => {
            outcome.hit_barrier = true;
            warp.stack.advance(pc + 1);
            return;
        }
        _ => {}
    }

    // Selp's guard is a value selector, not an execution mask: it runs in
    // every active lane and picks src0/src1 by the predicate value.
    let exec_mask = if instr.opcode == Opcode::Selp {
        active
    } else {
        guard_mask
    };

    // Shuffle needs a snapshot of the source register across lanes
    // (stack array: this runs on the per-issue hot path).
    let shfl_snapshot: Option<[u32; WARP_SIZE]> = if instr.opcode == Opcode::Shfl {
        let src = instr.srcs[0]
            .and_then(|o| o.as_reg())
            .expect("shfl source must be a register");
        let mut snap = [0u32; WARP_SIZE];
        for (l, s) in snap.iter_mut().enumerate() {
            *s = warp.regs[l][src.index()];
        }
        Some(snap)
    } else {
        None
    };

    for lane in 0..WARP_SIZE {
        if exec_mask & (1 << lane) == 0 {
            continue;
        }
        let fetch =
            |i: usize| -> u32 { instr.srcs[i].map_or(0, |o| lane_operand(warp, env, lane, o)) };
        let result: Option<u32> = match instr.opcode {
            Opcode::Ldg => {
                let addr = fetch(0).wrapping_add(instr.mem_offset);
                outcome.global_addrs.push(addr);
                Some(global.read(addr))
            }
            Opcode::Stg => {
                let addr = fetch(0).wrapping_add(instr.mem_offset);
                outcome.global_addrs.push(addr);
                global.write(addr, fetch(1));
                None
            }
            Opcode::Lds => {
                outcome.shared_access = true;
                Some(shared.read(fetch(0).wrapping_add(instr.mem_offset)))
            }
            Opcode::Sts => {
                outcome.shared_access = true;
                shared.write(fetch(0).wrapping_add(instr.mem_offset), fetch(1));
                None
            }
            Opcode::Shfl => {
                let src_lane = (fetch(1) & 31) as usize;
                Some(shfl_snapshot.as_ref().expect("snapshot exists for shfl")[src_lane])
            }
            Opcode::Selp => {
                // Guard carries the predicate: by construction `selp` is
                // built with a guard, so lanes reaching here select src0;
                // but we want value selection, not squashing. Handle via
                // direct eval with the guard value.
                let g = instr
                    .guard
                    .as_ref()
                    .expect("selp carries its predicate as guard");
                let pv = warp.preds[lane][g.pred.index()] == g.expected;
                Some(Opcode::Selp.eval([fetch(0), fetch(1), u32::from(pv)]))
            }
            Opcode::Nop => None,
            Opcode::Setp(cmp) => {
                let v = cmp.eval(fetch(0), fetch(1));
                if let Dst::Pred(p) = instr.dst {
                    warp.preds[lane][p.index()] = v;
                }
                None
            }
            op => Some(op.eval([fetch(0), fetch(1), fetch(2)])),
        };
        if let (Some(v), Dst::Reg(r)) = (result, instr.dst) {
            warp.regs[lane][r.index()] = v;
        }
    }

    warp.stack.advance(pc + 1);
}

/// `Selp` executes in *all* active lanes (it is a value select, not a
/// guarded op), so its guard must not squash lanes. This helper tells the
/// issue logic whether an instruction's guard squashes lanes (`true` for
/// everything except `Selp`).
pub fn guard_squashes(instr: &Instruction) -> bool {
    instr.opcode != Opcode::Selp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::GlobalMemory;
    use prf_isa::{CmpOp, CtaId, KernelBuilder, PredReg, Reg};

    /// Executes one instruction with serial (commit-immediately) memory
    /// semantics, as the SM's per-cycle commit produces.
    fn exec_step(
        warp: &mut WarpContext,
        instr: &Instruction,
        rt: &ReconvergenceTable,
        e: &ExecEnv,
        global: &mut GlobalMemory,
        shared: &mut SharedMemory,
    ) -> ExecOutcome {
        let mut log = Vec::new();
        let out = {
            let mut view = GmemView::new(global, &mut log);
            execute_warp_instruction(warp, instr, rt, e, &mut view, shared)
        };
        for (a, v) in log {
            global.write(a, v);
        }
        out
    }

    fn env() -> ExecEnv {
        ExecEnv {
            threads_per_cta: 64,
            num_ctas: 4,
        }
    }

    fn fresh_warp(regs: usize) -> WarpContext {
        WarpContext::new(0, 0, CtaId(1), 1, u32::MAX, regs, 0)
    }

    fn run_to_completion(
        kernel: &prf_isa::Kernel,
        warp: &mut WarpContext,
        global: &mut GlobalMemory,
    ) {
        let rt = ReconvergenceTable::compute(kernel);
        let mut shared = SharedMemory::new(1024);
        let e = env();
        let mut steps = 0;
        while let Some(pc) = warp.stack.pc() {
            let instr = kernel.fetch(pc).clone();
            exec_step(warp, &instr, &rt, &e, global, &mut shared);
            steps += 1;
            assert!(steps < 100_000, "kernel did not terminate");
        }
    }

    #[test]
    fn special_registers_resolve_per_lane() {
        let mut kb = KernelBuilder::new("tid");
        kb.mov_special(Reg(0), SpecialReg::TidX);
        kb.mov_special(Reg(1), SpecialReg::GlobalTid);
        kb.exit();
        let k = kb.build().unwrap();
        let mut w = fresh_warp(2);
        let mut g = GlobalMemory::new(1024);
        run_to_completion(&k, &mut w, &mut g);
        // warp_in_cta = 1: tid = 32 + lane.
        assert_eq!(w.regs[0][0], 32);
        assert_eq!(w.regs[5][0], 37);
        // cta 1, 64 thr/cta: gtid = 64 + tid.
        assert_eq!(w.regs[5][1], 64 + 37);
    }

    #[test]
    fn arithmetic_updates_registers() {
        let mut kb = KernelBuilder::new("a");
        kb.mov_imm(Reg(0), 6);
        kb.mov_imm(Reg(1), 7);
        kb.imul(Reg(2), Reg(0), Reg(1));
        kb.exit();
        let k = kb.build().unwrap();
        let mut w = fresh_warp(3);
        let mut g = GlobalMemory::new(1024);
        run_to_completion(&k, &mut w, &mut g);
        for lane in 0..WARP_SIZE {
            assert_eq!(w.regs[lane][2], 42);
        }
    }

    #[test]
    fn global_load_store_roundtrip() {
        let mut kb = KernelBuilder::new("m");
        kb.mov_special(Reg(0), SpecialReg::TidX);
        kb.mov_imm(Reg(1), 1000);
        kb.iadd(Reg(1), Reg(1), Reg(0)); // addr = 1000 + tid
        kb.mov_imm(Reg(2), 5);
        kb.stg(Reg(1), Reg(2), 0);
        kb.ldg(Reg(3), Reg(1), 0);
        kb.exit();
        let k = kb.build().unwrap();
        let mut w = fresh_warp(4);
        let mut g = GlobalMemory::new(4096);
        run_to_completion(&k, &mut w, &mut g);
        assert_eq!(g.read(1032), 5); // tid 32 is lane 0 of warp 1
        assert_eq!(w.regs[0][3], 5);
    }

    #[test]
    fn divergent_branch_executes_both_paths() {
        // if (tid < 40) R1 = 1 else R1 = 2  — lanes 0..7 of warp 1 take it.
        let mut kb = KernelBuilder::new("div");
        kb.mov_special(Reg(0), SpecialReg::TidX);
        kb.setp_imm(PredReg(0), CmpOp::Lt, Reg(0), 40);
        let else_ = kb.new_label();
        let join = kb.new_label();
        kb.bra_if(PredReg(0), false, else_);
        kb.mov_imm(Reg(1), 1);
        kb.bra(join);
        kb.place_label(else_);
        kb.mov_imm(Reg(1), 2);
        kb.place_label(join);
        kb.exit();
        let k = kb.build().unwrap();
        let mut w = fresh_warp(2); // tids 32..63
        let mut g = GlobalMemory::new(1024);
        run_to_completion(&k, &mut w, &mut g);
        for lane in 0..8 {
            assert_eq!(w.regs[lane][1], 1, "lane {lane} (tid<40) takes then");
        }
        for lane in 8..WARP_SIZE {
            assert_eq!(w.regs[lane][1], 2, "lane {lane} takes else");
        }
    }

    #[test]
    fn data_dependent_loop_trip_counts() {
        // R0 = tid & 3; loop until R1 >= R0: per-lane trip counts differ.
        let mut kb = KernelBuilder::new("loop");
        kb.mov_special(Reg(0), SpecialReg::LaneId);
        kb.iand_imm(Reg(0), Reg(0), 3);
        kb.mov_imm(Reg(1), 0);
        kb.mov_imm(Reg(2), 0);
        let top = kb.new_label();
        kb.place_label(top);
        kb.iadd_imm(Reg(2), Reg(2), 10); // work
        kb.iadd_imm(Reg(1), Reg(1), 1);
        kb.setp(PredReg(0), CmpOp::Lt, Reg(1), Reg(0));
        kb.bra_if(PredReg(0), true, top);
        kb.exit();
        let k = kb.build().unwrap();
        let mut w = fresh_warp(3);
        let mut g = GlobalMemory::new(1024);
        run_to_completion(&k, &mut w, &mut g);
        // Lane 0: R0=0 -> one iteration (do-while), R2=10.
        assert_eq!(w.regs[0][2], 10);
        // Lane 3: R0=3 -> three iterations, R2=30.
        assert_eq!(w.regs[3][2], 30);
        // Lane 7 (7&3=3): 30 as well.
        assert_eq!(w.regs[7][2], 30);
    }

    #[test]
    fn shfl_broadcasts_lane_value() {
        let mut kb = KernelBuilder::new("sh");
        kb.mov_special(Reg(0), SpecialReg::LaneId);
        kb.mov_imm(Reg(1), 3); // read from lane 3
        kb.shfl(Reg(2), Reg(0), Reg(1));
        kb.exit();
        let k = kb.build().unwrap();
        let mut w = fresh_warp(3);
        let mut g = GlobalMemory::new(1024);
        run_to_completion(&k, &mut w, &mut g);
        for lane in 0..WARP_SIZE {
            assert_eq!(w.regs[lane][2], 3);
        }
    }

    #[test]
    fn selp_selects_per_lane_without_squashing() {
        let mut kb = KernelBuilder::new("sel");
        kb.mov_special(Reg(0), SpecialReg::LaneId);
        kb.mov_imm(Reg(1), 100);
        kb.mov_imm(Reg(2), 200);
        kb.setp_imm(PredReg(1), CmpOp::Lt, Reg(0), 16);
        kb.selp(Reg(3), Reg(1), Reg(2), PredReg(1));
        kb.exit();
        let k = kb.build().unwrap();
        let mut w = fresh_warp(4);
        let mut g = GlobalMemory::new(1024);
        run_to_completion(&k, &mut w, &mut g);
        assert_eq!(w.regs[0][3], 100);
        assert_eq!(w.regs[20][3], 200);
    }

    #[test]
    fn guarded_exit_retires_some_lanes() {
        let mut kb = KernelBuilder::new("gx");
        kb.mov_special(Reg(0), SpecialReg::LaneId);
        kb.setp_imm(PredReg(0), CmpOp::Ge, Reg(0), 16);
        kb.guard(PredReg(0), true);
        kb.exit(); // upper half leaves
        kb.mov_imm(Reg(1), 9);
        kb.exit();
        let k = kb.build().unwrap();
        let rt = ReconvergenceTable::compute(&k);
        let mut w = fresh_warp(2);
        let mut g = GlobalMemory::new(1024);
        let mut s = SharedMemory::new(64);
        let e = env();
        // Step the first three instructions.
        for _ in 0..3 {
            let pc = w.stack.pc().unwrap();
            let i = k.fetch(pc).clone();
            exec_step(&mut w, &i, &rt, &e, &mut g, &mut s);
        }
        assert_eq!(w.stack.active_mask(), 0x0000_FFFF);
        // Finish.
        while let Some(pc) = w.stack.pc() {
            let i = k.fetch(pc).clone();
            exec_step(&mut w, &i, &rt, &e, &mut g, &mut s);
        }
        assert_eq!(w.regs[0][1], 9);
        assert_eq!(w.regs[31][1], 0, "exited lane never ran the mov");
    }

    #[test]
    fn barrier_blocks_and_advances_pc() {
        let mut kb = KernelBuilder::new("b");
        kb.bar();
        kb.exit();
        let k = kb.build().unwrap();
        let rt = ReconvergenceTable::compute(&k);
        let mut w = fresh_warp(1);
        let mut g = GlobalMemory::new(1024);
        let mut s = SharedMemory::new(64);
        let out = exec_step(&mut w, &k.fetch(0).clone(), &rt, &env(), &mut g, &mut s);
        assert!(out.hit_barrier);
        assert_eq!(w.stack.pc(), Some(1));
    }

    #[test]
    fn partial_warp_respects_initial_mask() {
        // sad-like CTA with 61 threads: warp 1 has 29 lanes.
        let mut kb = KernelBuilder::new("p");
        kb.mov_imm(Reg(0), 1);
        kb.exit();
        let k = kb.build().unwrap();
        let rt = ReconvergenceTable::compute(&k);
        let mask = (1u32 << 29) - 1;
        let mut w = WarpContext::new(1, 0, CtaId(0), 1, mask, 1, 0);
        let mut g = GlobalMemory::new(1024);
        let mut s = SharedMemory::new(64);
        exec_step(&mut w, &k.fetch(0).clone(), &rt, &env(), &mut g, &mut s);
        assert_eq!(w.regs[0][0], 1);
        assert_eq!(w.regs[29][0], 0, "inactive lane untouched");
        assert_eq!(w.regs[31][0], 0);
    }
}
